//! Offline stand-in for the `criterion` crate.
//!
//! Provides just enough of criterion's API for the workspace's `benches/`
//! targets to compile and produce rough wall-clock numbers: a [`Criterion`]
//! entry point, benchmark groups, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. No statistics, warmup
//! tuning, or reports — each benchmark runs a fixed-duration measuring loop
//! and prints mean time per iteration.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benchmark work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { _c: self }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        run_bench(name.as_ref(), f);
        self
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        run_bench(name.as_ref(), f);
        self
    }

    /// Finish the group (formatting no-op in this shim).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut b = Bencher { iters: 0, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = if b.iters == 0 {
        Duration::ZERO
    } else {
        b.elapsed / u32::try_from(b.iters.min(u64::from(u32::MAX))).unwrap_or(u32::MAX)
    };
    println!("  {name}: {per_iter:?}/iter ({} iters)", b.iters);
}

/// Timing context handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `routine` over a short fixed-duration loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up briefly, then measure for a fixed budget.
        for _ in 0..10 {
            black_box(routine());
        }
        let budget = Duration::from_millis(200);
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < budget {
            for _ in 0..16 {
                black_box(routine());
            }
            iters += 16;
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

/// Collect benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit a `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        let mut runs = 0u64;
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        g.finish();
        assert!(runs > 0);
    }
}
