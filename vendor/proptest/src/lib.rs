//! Offline stand-in for the `proptest` crate.
//!
//! The build environment for this workspace cannot reach crates.io, so this
//! shim re-implements the subset of proptest the workspace's property tests
//! use: the [`Strategy`] trait with ranges / tuples / `prop_map` / `Just` /
//! `any` / `prop_oneof!` / `prop::collection::vec`, the [`proptest!`] test
//! macro, `prop_assert*!` macros and [`TestCaseError`].
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its seed and generated inputs
//!   (all inputs are `Debug`) but is not minimized.
//! * **Deterministic generation.** Case `k` of a test is generated from a
//!   fixed seed derived from `k`, so failures are reproducible across runs
//!   by construction (no persistence files needed).

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Re-export of this crate under the name the prelude glob provides.
pub use crate as prop;

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator driving test-case generation (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Next full-range `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `u64` in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift reduction: unbiased enough for test generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Errors and config
// ---------------------------------------------------------------------------

/// Why a single generated test case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property did not hold.
    Fail(String),
    /// The case was rejected (not counted as a failure).
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection with the given message.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Configuration accepted via `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A recipe producing random values of one type.
pub trait Strategy {
    /// The produced type.
    type Value: fmt::Debug;

    /// Generate one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values with `f`.
    fn prop_map<U: fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: std::rc::Rc::new(move |rng: &mut TestRng| self.sample(rng)) }
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    #[allow(clippy::type_complexity)]
    inner: std::rc::Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.inner)(rng)
    }
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("BoxedStrategy { .. }")
    }
}

/// Strategy returning a fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy choosing uniformly among boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from non-empty alternatives.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let k = rng.below(self.arms.len() as u64) as usize;
        self.arms[k].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    rng.next_u64() as $t
                } else {
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8 => u8, i16 => u16, i32 => u32, i64 => u64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.sample(rng),)*)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// `any::<T>()` support: the canonical full-domain strategy for a type.
pub trait Arbitrary: fmt::Debug + Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit()
    }
}

/// Strategy for any value of `T` (see [`Arbitrary`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::{fmt, Range, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// A vector of `elem` values with length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Choose uniformly among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Assert a boolean property, failing the current case (not panicking the
/// whole process) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert two values are equal (property-test flavour of `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Assert two values differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

#[doc(hidden)]
pub fn __run_cases<I: fmt::Debug>(
    test_name: &str,
    cases: u32,
    mut gen_inputs: impl FnMut(&mut TestRng) -> I,
    mut run: impl FnMut(I) -> Result<(), TestCaseError>,
) {
    for case in 0..cases {
        // A fixed per-case seed folded with the test name keeps runs
        // reproducible and distinct across tests.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        let mut rng = TestRng::new(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let inputs = gen_inputs(&mut rng);
        let desc = format!("{inputs:?}");
        match run(inputs) {
            Ok(()) | Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest {test_name}: case {case}/{cases} failed: {msg}\n  inputs: {desc}")
            }
        }
    }
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::__run_cases(
                stringify!($name),
                config.cases,
                |rng| ( $($crate::Strategy::sample(&($strat), rng),)* ),
                |( $($arg,)* )| -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = Strategy::sample(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::sample(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let strat = prop_oneof![Just(1u32), (10u32..20).prop_map(|v| v * 2)];
        let mut rng = TestRng::new(11);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!(v == 1 || (20..40).contains(&v));
        }
    }

    #[test]
    fn vec_lengths_in_range() {
        let strat = collection::vec(any::<bool>(), 2..5);
        let mut rng = TestRng::new(3);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = collection::vec(0u64..1000, 1..30);
        let one: Vec<_> = {
            let mut rng = TestRng::new(5);
            (0..20).map(|_| strat.sample(&mut rng)).collect()
        };
        let two: Vec<_> = {
            let mut rng = TestRng::new(5);
            (0..20).map(|_| strat.sample(&mut rng)).collect()
        };
        assert_eq!(one, two);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_runnable_tests(x in 0u64..100, flip in any::<bool>()) {
            prop_assert!(x < 100);
            if flip {
                prop_assert_eq!(x + 1, 1 + x);
            }
        }
    }
}
