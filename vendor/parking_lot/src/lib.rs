//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of `parking_lot` APIs the workspace uses are re-implemented
//! here over the standard library. Semantics match `parking_lot` where the
//! workspace depends on them:
//!
//! * `Mutex::lock` returns a guard directly (no `Result`); a poisoned
//!   std mutex is recovered transparently, matching `parking_lot`'s
//!   no-poisoning behaviour.
//! * `Condvar::wait` takes `&mut MutexGuard` and re-blocks on spurious
//!   wakeups exactly like the original (callers loop on their predicate).
//!
//! Only the surface actually used by the workspace is provided.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::PoisonError;

/// A mutual-exclusion primitive (std-backed `parking_lot::Mutex` stand-in).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available. Unlike
    /// `std::sync::Mutex`, poisoning is ignored (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)) }
    }

    /// Try to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    /// `Some` except transiently inside [`Condvar::wait`].
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable (std-backed `parking_lot::Condvar` stand-in).
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Atomically release the guard's mutex and block until notified,
    /// reacquiring the mutex before returning. May wake spuriously.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present before wait");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Wake one blocked waiter.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake all blocked waiters.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
