//! The lemming effect, live: why fair locks and HLE don't mix, and how
//! SCM fixes it.
//!
//! ```text
//! cargo run --release -p elision-bench --example lemming_effect
//! ```
//!
//! Eight threads hammer a small red-black tree under an MCS lock. With
//! plain HLE a single abort sends every thread into the MCS queue, where
//! fairness "remembers" the conflict: each queued thread acquires the
//! lock for real, and the globally visible acquisition keeps aborting
//! every newly speculating thread. The run degenerates into a serial
//! execution (watch `frac-nonspec` hit ~1.0). With the paper's
//! software-assisted conflict management, aborted threads serialize on an
//! auxiliary lock instead and *rejoin the speculative run* — concurrency
//! is restored without giving up the MCS lock's fairness.

use elision_core::{make_scheme, LockKind, SchemeConfig, SchemeKind};
use elision_htm::{harness, HtmConfig, MemoryBuilder};
use elision_sim::OpCounters;
use elision_structures::{key_domain, OpMix, RbTree, TreeOp};
use std::sync::Arc;

const THREADS: usize = 8;
const TREE_SIZE: usize = 64;
const OPS_PER_THREAD: u64 = 400;

fn main() {
    println!("Workload: {TREE_SIZE}-node tree, 10% insert / 10% delete / 80% lookup, {THREADS} threads, MCS lock\n");
    let mut baseline = None;
    for kind in [SchemeKind::Standard, SchemeKind::Hle, SchemeKind::HleRetries, SchemeKind::HleScm]
    {
        let (throughput, c) = run_under(kind);
        let speedup = baseline.map(|b: f64| throughput / b).unwrap_or(1.0);
        if kind == SchemeKind::Standard {
            baseline = Some(throughput);
        }
        println!(
            "{:<12} speedup-vs-standard {:>5.2}   frac-nonspec {:>5.3}   aborted attempts {:>6}",
            kind.label(),
            speedup,
            c.frac_nonspeculative(),
            c.aborted,
        );
    }
    println!(
        "\nHLE gains nothing over the standard MCS lock (everything serializes after \
         the first abort); HLE-retries barely helps because the queue must fully \
         drain before anyone can speculate again; HLE-SCM recovers the concurrency."
    );
}

fn run_under(kind: SchemeKind) -> (f64, OpCounters) {
    let domain = key_domain(TREE_SIZE);
    let mut b = MemoryBuilder::new();
    let tree = RbTree::new(&mut b, domain as usize + 64, THREADS);
    let scheme = make_scheme(kind, LockKind::Mcs, SchemeConfig::paper(), &mut b, THREADS);
    let mem = Arc::new(b.freeze(THREADS));
    tree.init(&mem);
    {
        let fill_tree = tree.clone();
        harness::run_arc(1, 0, HtmConfig::deterministic(), 7, Arc::clone(&mem), move |s| {
            let mut filled = 0;
            while filled < TREE_SIZE {
                let key = s.rng.below(domain);
                if fill_tree.insert(s, key).expect("fill") {
                    filled += 1;
                }
            }
        });
        tree.rebalance_freelists(&mem);
    }
    let tree2 = tree.clone();
    let (results, makespan) =
        harness::run_arc(THREADS, 16, HtmConfig::haswell(), 42, Arc::clone(&mem), move |s| {
            for _ in 0..OPS_PER_THREAD {
                let op = OpMix::MODERATE.draw(&mut s.rng);
                let key = s.rng.below(domain);
                scheme.execute(s, |s| match op {
                    TreeOp::Insert => tree2.insert(s, key).map(|_| ()),
                    TreeOp::Delete => tree2.remove(s, key).map(|_| ()),
                    TreeOp::Lookup => tree2.contains(s, key).map(|_| ()),
                });
            }
            s.counters
        });
    let total = OPS_PER_THREAD * THREADS as u64;
    (total as f64 * 1000.0 / makespan as f64, OpCounters::sum(results.iter()))
}
