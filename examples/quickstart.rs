//! Quickstart: protect a shared red-black tree with one global lock and
//! run it under every elision scheme the paper evaluates.
//!
//! ```text
//! cargo run --release -p elision-bench --example quickstart
//! ```
//!
//! The program builds a simulated 8-thread multicore, wraps a TTAS lock
//! in each scheme in turn, runs the same mixed workload, and prints the
//! paper's key metrics: throughput (in simulated cycles), the fraction of
//! operations that had to take the real lock, and the average number of
//! attempts per critical section.

use elision_core::{make_scheme, LockKind, SchemeConfig, SchemeKind};
use elision_htm::{harness, HtmConfig, MemoryBuilder};
use elision_sim::OpCounters;
use elision_structures::{key_domain, OpMix, RbTree, TreeOp};
use std::sync::Arc;

const THREADS: usize = 8;
const TREE_SIZE: usize = 256;
const OPS_PER_THREAD: u64 = 500;

fn main() {
    println!("scheme       ops/kcycle   frac-nonspec   attempts/op");
    println!("------------------------------------------------------");
    for kind in SchemeKind::ALL {
        let (throughput, counters) = run_under(kind);
        println!(
            "{:<12} {:>10.2} {:>14.3} {:>13.2}",
            kind.label(),
            throughput,
            counters.frac_nonspeculative(),
            counters.attempts_per_op(),
        );
    }
    println!(
        "\nReading the table: 'Standard' serializes everything (frac-nonspec 1); \
         plain HLE speculates but falls back on aborts; the paper's SCM and SLR \
         schemes keep almost every operation speculative."
    );
}

/// Build the world, fill the tree, run the workload; returns throughput
/// in operations per thousand simulated cycles plus the S/A/N counters.
fn run_under(kind: SchemeKind) -> (f64, OpCounters) {
    let domain = key_domain(TREE_SIZE);
    let mut b = MemoryBuilder::new();
    let tree = RbTree::new(&mut b, domain as usize + 64, THREADS);
    let scheme = make_scheme(kind, LockKind::Ttas, SchemeConfig::paper(), &mut b, THREADS);
    let mem = Arc::new(b.freeze(THREADS));
    tree.init(&mem);

    // Fill the tree to its target size (single simulated thread).
    {
        let fill_tree = tree.clone();
        harness::run_arc(1, 0, HtmConfig::deterministic(), 7, Arc::clone(&mem), move |s| {
            let mut filled = 0;
            while filled < TREE_SIZE {
                let key = s.rng.below(domain);
                if fill_tree.insert(s, key).expect("fill") {
                    filled += 1;
                }
            }
        });
        tree.rebalance_freelists(&mem);
    }

    // The measured phase: every thread runs the paper's moderate mix
    // (10% insert / 10% delete / 80% lookup).
    let tree2 = tree.clone();
    let (results, makespan) =
        harness::run_arc(THREADS, 16, HtmConfig::haswell(), 42, Arc::clone(&mem), move |s| {
            for _ in 0..OPS_PER_THREAD {
                let op = OpMix::MODERATE.draw(&mut s.rng);
                let key = s.rng.below(domain);
                scheme.execute(s, |s| match op {
                    TreeOp::Insert => tree2.insert(s, key).map(|_| ()),
                    TreeOp::Delete => tree2.remove(s, key).map(|_| ()),
                    TreeOp::Lookup => tree2.contains(s, key).map(|_| ()),
                });
            }
            s.counters
        });

    tree.validate(&mem).expect("tree invariants must hold after the run");
    let total = OPS_PER_THREAD * THREADS as u64;
    (total as f64 * 1000.0 / makespan as f64, OpCounters::sum(results.iter()))
}
