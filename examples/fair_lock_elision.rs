//! Appendix A, live: making ticket and CLH locks HLE-compatible.
//!
//! ```text
//! cargo run --release -p elision-bench --example fair_lock_elision
//! ```
//!
//! HLE requires that the store releasing a lock restore the lock word to
//! its pre-acquire value — only then can the hardware elide the whole
//! acquisition. The classic ticket lock releases by incrementing `owner`
//! (not a restore), and CLH leaves the tail pointing at the releaser's
//! node; neither can ever commit an elided critical section. The paper's
//! adaptation has the release first try `CAS`-ing the lock word back to
//! its original value, which succeeds exactly in the solo-run illusion
//! HLE provides.
//!
//! This example attempts one elided critical section with each variant
//! and shows the unadapted locks failing the restore check, then runs a
//! throughput comparison under elision.

use elision_core::{make_lock, LockKind, Scheme, SchemeConfig, SchemeKind};
use elision_htm::{harness, AbortReason, HtmConfig, MemoryBuilder};
use std::sync::Arc;

fn main() {
    println!("--- single elided critical section, per lock variant ---");
    for kind in [LockKind::TicketUnadapted, LockKind::Ticket, LockKind::ClhUnadapted, LockKind::Clh]
    {
        let outcome = solo_elision(kind);
        println!("{:<18} {}", kind.label(), outcome);
    }

    println!("\n--- elided throughput, 4 threads, disjoint data (ops/kcycle) ---");
    for kind in [LockKind::Ticket, LockKind::Clh, LockKind::Mcs] {
        let thr = disjoint_throughput(kind, SchemeKind::Hle);
        let std = disjoint_throughput(kind, SchemeKind::Standard);
        println!(
            "{:<8} HLE {:>8.2}   standard {:>8.2}   ({:.1}x from elision)",
            kind.label(),
            thr,
            std,
            thr / std
        );
    }
    println!(
        "\nThe adapted fair locks elide as well as MCS, so fair-lock programs keep \
         their starvation-freedom while gaining HLE's concurrency."
    );
}

/// Try exactly one elided critical section; report how it ended.
fn solo_elision(kind: LockKind) -> String {
    let mut b = MemoryBuilder::new();
    let data = b.alloc_isolated(0);
    let lock = make_lock(kind, &mut b, 1);
    let mem = b.freeze(1);
    let (mut results, ..) = harness::run(1, 0, HtmConfig::deterministic(), 1, mem, move |s| {
        let r = s.attempt(|s| {
            lock.elided_acquire(s)?;
            let v = s.load(data)?;
            s.store(data, v + 1)?;
            lock.elided_release(s)?;
            Ok(())
        });
        match r {
            Ok(()) => "committed speculatively (lock word restored)".to_string(),
            Err(st) if st.reason == AbortReason::HleRestore => {
                "ABORTED: release did not restore the lock word".to_string()
            }
            Err(st) => format!("aborted: {:?}", st.reason),
        }
    });
    results.pop().expect("one result")
}

/// Conflict-free workload: each thread updates its own slot under the
/// shared elided lock.
fn disjoint_throughput(kind: LockKind, scheme_kind: SchemeKind) -> f64 {
    let threads = 4;
    let ops = 300u64;
    let mut b = MemoryBuilder::new();
    let slots: Vec<_> = (0..threads).map(|_| b.alloc_isolated(0)).collect();
    let main = make_lock(kind, &mut b, threads);
    let scheme = Arc::new(
        Scheme::new(scheme_kind, SchemeConfig::paper(), main, None)
            .expect("non-SCM scheme needs no aux"),
    );
    let mem = b.freeze(threads);
    let (_, _, makespan) =
        harness::run(threads, 16, HtmConfig::deterministic(), 5, mem, move |s| {
            let my = slots[s.tid()];
            for _ in 0..ops {
                scheme.execute(s, |s| {
                    let v = s.load(my)?;
                    s.work(10)?;
                    s.store(my, v + 1)
                });
            }
        });
    ops as f64 * threads as f64 * 1000.0 / makespan as f64
}
