//! Anatomy of an abort storm: use the execution-trace facility to watch
//! one thread's transactions live through a lemming episode, and the
//! abort-status register to classify what killed each attempt.
//!
//! ```text
//! cargo run --release -p elision-bench --example abort_anatomy
//! ```

use elision_core::{make_scheme, LockKind, SchemeConfig, SchemeKind};
use elision_htm::{harness, HtmConfig, MemoryBuilder};
use elision_sim::TraceEvent;
use elision_structures::{key_domain, OpMix, RbTree, TreeOp};
use std::sync::Arc;

const THREADS: usize = 8;
const TREE_SIZE: usize = 32;

fn main() {
    let domain = key_domain(TREE_SIZE);
    let mut b = MemoryBuilder::new();
    let tree = RbTree::new(&mut b, domain as usize + 64, THREADS);
    let scheme =
        make_scheme(SchemeKind::Hle, LockKind::Mcs, SchemeConfig::paper(), &mut b, THREADS);
    let mem = Arc::new(b.freeze(THREADS));
    tree.init(&mem);
    {
        let fill = tree.clone();
        harness::run_arc(1, 0, HtmConfig::deterministic(), 7, Arc::clone(&mem), move |s| {
            let mut n = 0;
            while n < TREE_SIZE {
                let key = s.rng.below(domain);
                if fill.insert(s, key).expect("fill") {
                    n += 1;
                }
            }
        });
        tree.rebalance_freelists(&mem);
    }

    let tree2 = tree.clone();
    let (results, _) = harness::run_arc(THREADS, 16, HtmConfig::haswell(), 42, mem, move |s| {
        // Record the first 40 transaction events of thread 0.
        if s.tid() == 0 {
            s.enable_trace(40);
        }
        for _ in 0..150 {
            let op = OpMix::MODERATE.draw(&mut s.rng);
            let key = s.rng.below(domain);
            scheme.execute(s, |s| match op {
                TreeOp::Insert => tree2.insert(s, key).map(|_| ()),
                TreeOp::Delete => tree2.remove(s, key).map(|_| ()),
                TreeOp::Lookup => tree2.contains(s, key).map(|_| ()),
            });
        }
        (s.trace.take(), s.stats)
    });

    let (trace, _) = &results[0];
    let trace = trace.as_ref().expect("thread 0 traced");
    println!("--- first transaction events of thread 0 (HLE over MCS) ---");
    print!("{}", trace.dump());
    let aborts = trace.count(|e| matches!(e, TraceEvent::TxnAbort(_)));
    let commits = trace.count(|e| matches!(e, TraceEvent::TxnCommit));
    println!("\ntraced: {commits} commits, {aborts} aborts");

    println!("\n--- abort causes, all threads ---");
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "thread", "conflict", "capacity", "explicit", "spurious", "restore"
    );
    for (tid, (_, st)) in results.iter().enumerate() {
        println!(
            "{:<10} {:>9} {:>9} {:>9} {:>9} {:>9}",
            tid,
            st.aborts_conflict,
            st.aborts_capacity,
            st.aborts_explicit,
            st.aborts_spurious,
            st.aborts_restore
        );
    }
    println!(
        "\nReading the trace: under the MCS lemming effect nearly every begin is \
         followed by an explicit abort (code 3 — the arriving thread saw the \
         queue non-empty) and the operation completes under the real lock."
    );
}
