//! A tour of the STAMP kernels: run three representative applications
//! (tiny, medium and very long transactions) under the main schemes and
//! print runtimes normalized to standard locking — a miniature of the
//! paper's Figure 11.
//!
//! ```text
//! cargo run --release -p elision-bench --example stamp_tour
//! ```

use elision_core::{LockKind, SchemeKind};
use elision_htm::HtmConfig;
use elision_stamp::{run_kernel, KernelKind, StampParams};

fn main() {
    let kernels = [KernelKind::Ssca2, KernelKind::VacationHigh, KernelKind::Labyrinth];
    let schemes = [SchemeKind::Standard, SchemeKind::Hle, SchemeKind::HleScm, SchemeKind::OptSlr];
    let threads = 8;

    for lock in [LockKind::Ttas, LockKind::Mcs] {
        println!("--- {} lock (normalized runtime; lower is better) ---", lock.label());
        print!("{:<16}", "kernel");
        for s in schemes {
            print!("{:>12}", s.label());
        }
        println!();
        for kernel in kernels {
            print!("{:<16}", kernel.label());
            let mut baseline = 0.0;
            for scheme in schemes {
                let run = run_kernel(
                    kernel,
                    scheme,
                    lock,
                    threads,
                    &StampParams::quick(),
                    16,
                    HtmConfig::haswell(),
                );
                if scheme == SchemeKind::Standard {
                    baseline = run.makespan as f64;
                }
                print!("{:>12.3}", run.makespan as f64 / baseline);
            }
            println!();
        }
        println!();
    }
    println!(
        "ssca2's tiny transactions elide well everywhere; vacation shows the \
         scheme gaps; labyrinth's huge transactions favour lock removal (SLR), \
         which avoids aborting the long-running reader on every lock hand-off."
    );
}
