//! Property-based tests of the logical-time scheduler.

use elision_sim::SimBuilder;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Clocks accumulate exactly the sum of advanced costs, for any cost
    /// sequence and thread count.
    #[test]
    fn clocks_accumulate_costs(
        threads in 1usize..6,
        costs in prop::collection::vec(0u64..50, 1..60),
        window in prop_oneof![Just(0u64), Just(16), Just(128)],
    ) {
        let costs = Arc::new(costs);
        let expected: u64 = costs.iter().sum();
        let out = SimBuilder::new(threads).window(window).run({
            let costs = Arc::clone(&costs);
            move |ctx| {
                for &c in costs.iter() {
                    ctx.handle.advance(c);
                }
                ctx.handle.now()
            }
        });
        for t in 0..threads {
            prop_assert_eq!(out.results[t], expected);
            prop_assert_eq!(out.end_times[t], expected);
        }
        prop_assert_eq!(out.makespan, expected);
    }

    /// Bounded lag: while running, no thread ever observes itself more
    /// than `window + max_cost` ahead of a live peer it samples.
    #[test]
    fn bounded_lag_holds(
        threads in 2usize..5,
        window in prop_oneof![Just(0u64), Just(8), Just(32)],
        steps in 20usize..120,
    ) {
        let times: Arc<Vec<AtomicU64>> =
            Arc::new((0..threads).map(|_| AtomicU64::new(0)).collect());
        let max_cost = 5u64;
        let out = SimBuilder::new(threads).window(window).run({
            let times = Arc::clone(&times);
            move |ctx| {
                let mut worst = 0i64;
                for i in 0..steps {
                    ctx.handle.advance(1 + (i as u64 % max_cost));
                    let me = ctx.handle.now();
                    times[ctx.id].store(me, Ordering::SeqCst);
                    for (other_id, t) in times.iter().enumerate() {
                        if other_id == ctx.id {
                            continue;
                        }
                        let other = t.load(Ordering::SeqCst);
                        if other > 0 {
                            worst = worst.max(me as i64 - other as i64);
                        }
                    }
                }
                worst
            }
        });
        // A peer's published clock may lag its true clock by one step; a
        // finished peer stops publishing entirely, so the observable
        // bound is window + 2*max_cost plus the unpublished tail of a
        // finishing thread — use a generous structural bound.
        let limit = window as i64 + 3 * max_cost as i64 + steps as i64 * max_cost as i64 / 4;
        for w in out.results {
            prop_assert!(w <= limit, "lag {w} exceeded bound {limit} (window {window})");
        }
    }

    /// Strict mode (window 0) is deterministic: two identical runs
    /// produce identical per-thread interleaving fingerprints.
    #[test]
    fn strict_mode_is_deterministic(
        threads in 2usize..5,
        steps in 10usize..60,
    ) {
        let fingerprint = |_: ()| {
            let order: Arc<parking_lot::Mutex<Vec<usize>>> =
                Arc::new(parking_lot::Mutex::new(Vec::new()));
            SimBuilder::new(threads).window(0).run({
                let order = Arc::clone(&order);
                move |ctx| {
                    for i in 0..steps {
                        ctx.handle.advance(1 + ((ctx.id + i) as u64 % 3));
                        order.lock().push(ctx.id);
                    }
                }
            });
            let v = order.lock().clone();
            v
        };
        prop_assert_eq!(fingerprint(()), fingerprint(()));
    }
}
