//! Scheduler stress: liveness and clock correctness under adversarial
//! shapes — early finishers, wildly uneven costs, maximum thread counts.

use elision_sim::{SimBuilder, SimHandle};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn staggered_finishers_never_deadlock() {
    // Threads finish at very different times; remaining threads must keep
    // making progress past each departure.
    let n = 12;
    let out = SimBuilder::new(n).window(0).run(|ctx| {
        let steps = (ctx.id as u64 + 1) * 200;
        for _ in 0..steps {
            ctx.handle.advance(1);
        }
        ctx.handle.now()
    });
    for (id, &end) in out.end_times.iter().enumerate() {
        assert_eq!(end, (id as u64 + 1) * 200);
    }
}

#[test]
fn extreme_cost_imbalance() {
    // One thread advances in huge strides, others in tiny ones; totals
    // must still be exact and the run must finish.
    let out = SimBuilder::new(4).window(8).run(|ctx| {
        if ctx.id == 0 {
            for _ in 0..50 {
                ctx.handle.advance(10_000);
            }
        } else {
            for _ in 0..5_000 {
                ctx.handle.advance(1);
            }
        }
        ctx.handle.now()
    });
    assert_eq!(out.results[0], 500_000);
    for id in 1..4 {
        assert_eq!(out.results[id], 5_000);
    }
    assert_eq!(out.makespan, 500_000);
}

#[test]
fn many_threads_smoke() {
    let n = 32;
    let out = SimBuilder::new(n).window(16).run(|ctx| {
        for _ in 0..300 {
            ctx.handle.advance(2);
        }
        ctx.handle.now()
    });
    assert!(out.end_times.iter().all(|&t| t == 600));
}

#[test]
fn handle_clones_share_the_clock() {
    let out = SimBuilder::new(1).window(0).run(|ctx| {
        let clone: SimHandle = ctx.handle.clone();
        ctx.handle.advance(5);
        clone.advance(7);
        (ctx.handle.now(), clone.now())
    });
    assert_eq!(out.results[0], (12, 12));
}

#[test]
fn zero_window_interleaves_at_fine_grain() {
    // In strict mode with equal costs, threads must take turns at every
    // step: the recorded interleaving must alternate rather than batch.
    let n = 3;
    let order: Arc<parking_lot::Mutex<Vec<usize>>> = Arc::new(parking_lot::Mutex::new(Vec::new()));
    SimBuilder::new(n).window(0).run({
        let order = Arc::clone(&order);
        move |ctx| {
            for _ in 0..50 {
                ctx.handle.advance(1);
                order.lock().push(ctx.id);
            }
        }
    });
    let order = order.lock();
    // In any window of n consecutive events, all n threads appear.
    for w in order.windows(n) {
        let mut seen = [false; 3];
        for &id in w {
            seen[id] = true;
        }
        assert!(seen.iter().all(|&s| s), "batched interleaving: {w:?}");
    }
}

#[test]
fn monitorable_progress_under_contention() {
    // All threads hammer a host-side atomic while gated: the scheduler
    // must not starve anyone (every thread completes its share).
    let n = 8;
    let total = Arc::new(AtomicU64::new(0));
    let out = SimBuilder::new(n).window(4).run({
        let total = Arc::clone(&total);
        move |ctx| {
            let mut mine = 0u64;
            for _ in 0..500 {
                ctx.handle.advance(3);
                total.fetch_add(1, Ordering::Relaxed);
                mine += 1;
            }
            mine
        }
    });
    assert_eq!(total.load(Ordering::Relaxed), 4_000);
    assert!(out.results.iter().all(|&m| m == 500));
}
