//! Scheduler stress: liveness and clock correctness under adversarial
//! shapes — early finishers, wildly uneven costs, maximum thread counts,
//! and injected fault plans (preemption clock jumps, jitter).

use elision_sim::{FaultPlan, SimBuilder, SimHandle};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn staggered_finishers_never_deadlock() {
    // Threads finish at very different times; remaining threads must keep
    // making progress past each departure.
    let n = 12;
    let out = SimBuilder::new(n).window(0).run(|ctx| {
        let steps = (ctx.id as u64 + 1) * 200;
        for _ in 0..steps {
            ctx.handle.advance(1);
        }
        ctx.handle.now()
    });
    for (id, &end) in out.end_times.iter().enumerate() {
        assert_eq!(end, (id as u64 + 1) * 200);
    }
}

#[test]
fn extreme_cost_imbalance() {
    // One thread advances in huge strides, others in tiny ones; totals
    // must still be exact and the run must finish.
    let out = SimBuilder::new(4).window(8).run(|ctx| {
        if ctx.id == 0 {
            for _ in 0..50 {
                ctx.handle.advance(10_000);
            }
        } else {
            for _ in 0..5_000 {
                ctx.handle.advance(1);
            }
        }
        ctx.handle.now()
    });
    assert_eq!(out.results[0], 500_000);
    for id in 1..4 {
        assert_eq!(out.results[id], 5_000);
    }
    assert_eq!(out.makespan, 500_000);
}

#[test]
fn many_threads_smoke() {
    let n = 32;
    let out = SimBuilder::new(n).window(16).run(|ctx| {
        for _ in 0..300 {
            ctx.handle.advance(2);
        }
        ctx.handle.now()
    });
    assert!(out.end_times.iter().all(|&t| t == 600));
}

#[test]
fn handle_clones_share_the_clock() {
    let out = SimBuilder::new(1).window(0).run(|ctx| {
        let clone: SimHandle = ctx.handle.clone();
        ctx.handle.advance(5);
        clone.advance(7);
        (ctx.handle.now(), clone.now())
    });
    assert_eq!(out.results[0], (12, 12));
}

#[test]
fn zero_window_interleaves_at_fine_grain() {
    // In strict mode with equal costs, threads must take turns at every
    // step: the recorded interleaving must alternate rather than batch.
    let n = 3;
    let order: Arc<parking_lot::Mutex<Vec<usize>>> = Arc::new(parking_lot::Mutex::new(Vec::new()));
    SimBuilder::new(n).window(0).run({
        let order = Arc::clone(&order);
        move |ctx| {
            for _ in 0..50 {
                ctx.handle.advance(1);
                order.lock().push(ctx.id);
            }
        }
    });
    let order = order.lock();
    // In any window of n consecutive events, all n threads appear.
    for w in order.windows(n) {
        let mut seen = [false; 3];
        for &id in w {
            seen[id] = true;
        }
        assert!(seen.iter().all(|&s| s), "batched interleaving: {w:?}");
    }
}

#[test]
fn fault_injected_run_accounts_every_cycle() {
    // Each thread's final clock must equal its own work plus exactly the
    // cycles the fault layer reports injecting — no cycle invented or
    // lost while clocks jump around.
    let plan = FaultPlan::none().with_preempt(500, 2_000).with_jitter(250).with_seed(11);
    let out = SimBuilder::new(6).window(8).faults(plan).run(|ctx| {
        for _ in 0..400 {
            ctx.handle.advance(7);
        }
        ctx.handle.now()
    });
    for (id, stats) in out.fault_stats.iter().enumerate() {
        let expected = 400 * 7 + stats.pause_cycles + stats.jitter_cycles;
        assert_eq!(out.end_times[id], expected, "thread {id} clock drifted from fault accounting");
        assert!(stats.preemptions > 0, "thread {id} was never preempted");
    }
}

#[test]
fn no_lost_wakeup_when_clocks_jump_past_stalled_threads() {
    // Thread 0 stalls in giant strides while the rest advance at fine
    // grain under heavy preemption. A preemption jump can leap a thread
    // far past the bounded-lag frontier; the waiters behind it must still
    // be woken when the minimum clock catches up — a lost wakeup
    // deadlocks this run (caught by the test harness as a hang).
    let plan = FaultPlan::none().with_preempt(300, 5_000).with_seed(3);
    let out = SimBuilder::new(5).window(4).faults(plan).run(|ctx| {
        let mut steps = 0u64;
        if ctx.id == 0 {
            for _ in 0..40 {
                ctx.handle.advance(25_000);
                steps += 1;
            }
        } else {
            for _ in 0..3_000 {
                ctx.handle.advance(3);
                steps += 1;
            }
        }
        steps
    });
    assert_eq!(out.results[0], 40);
    for id in 1..5 {
        assert_eq!(out.results[id], 3_000, "thread {id} lost steps");
    }
}

#[test]
fn lag_stays_bounded_under_preemption_jumps() {
    // Bounded-lag invariant under faults: a thread may land at most one
    // advance (cost + injected extra) past `min + window`. Each thread
    // posts its clock after every advance; every post checks itself
    // against the slowest still-running peer.
    let n = 4;
    let window = 16u64;
    let cost = 5u64;
    let pause = 1_200u64;
    let plan = FaultPlan::none().with_preempt(200, pause).with_jitter(200).with_seed(17);
    // One preemption threshold at most per advance (cost << interval),
    // plus jitter of at most cost/5.
    let allowed = window + cost + pause + cost;
    let clocks: Arc<Vec<AtomicU64>> = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
    let done: Arc<Vec<AtomicBool>> = Arc::new((0..n).map(|_| AtomicBool::new(false)).collect());
    let worst = Arc::new(AtomicU64::new(0));
    SimBuilder::new(n).window(window).faults(plan).run({
        let clocks = Arc::clone(&clocks);
        let done = Arc::clone(&done);
        let worst = Arc::clone(&worst);
        move |ctx| {
            for _ in 0..1_500 {
                ctx.handle.advance(cost);
                let now = ctx.handle.now();
                clocks[ctx.id].store(now, Ordering::SeqCst);
                let min_other = (0..n)
                    .filter(|&j| j != ctx.id && !done[j].load(Ordering::SeqCst))
                    .map(|j| clocks[j].load(Ordering::SeqCst))
                    .min();
                if let Some(m) = min_other {
                    let lag = now.saturating_sub(m);
                    worst.fetch_max(lag, Ordering::SeqCst);
                }
            }
            done[ctx.id].store(true, Ordering::SeqCst);
        }
    });
    let worst = worst.load(Ordering::SeqCst);
    assert!(worst <= allowed, "observed lag {worst} exceeds bound {allowed}");
    assert!(worst > 0, "threads never diverged — the test observed nothing");
}

#[test]
fn fault_schedule_identical_across_reruns_at_window_zero() {
    // The fault schedule is keyed off each thread's own clock and seed
    // stream: at window 0 two runs of the same program are identical down
    // to every preemption and jitter draw.
    let plan = FaultPlan::none().with_preempt(150, 900).with_jitter(300).with_seed(29);
    let run = || {
        SimBuilder::new(4).window(0).faults(plan).run(|ctx| {
            // Vary the stride per thread so the schedules genuinely differ
            // across threads (kept >= 4 so the 30% jitter span is nonzero).
            let stride = 4 + ctx.id as u64;
            for _ in 0..800 {
                ctx.handle.advance(stride);
            }
            ctx.handle.now()
        })
    };
    let a = run();
    let b = run();
    assert_eq!(a.end_times, b.end_times);
    assert_eq!(a.results, b.results);
    assert_eq!(a.fault_stats, b.fault_stats);
    assert_eq!(a.makespan, b.makespan);
    // And the injected faults were real.
    assert!(a.fault_stats.iter().all(|s| s.preemptions > 0 && s.jitter_cycles > 0));
}

#[test]
fn monitorable_progress_under_contention() {
    // All threads hammer a host-side atomic while gated: the scheduler
    // must not starve anyone (every thread completes its share).
    let n = 8;
    let total = Arc::new(AtomicU64::new(0));
    let out = SimBuilder::new(n).window(4).run({
        let total = Arc::clone(&total);
        move |ctx| {
            let mut mine = 0u64;
            for _ in 0..500 {
                ctx.handle.advance(3);
                total.fetch_add(1, Ordering::Relaxed);
                mine += 1;
            }
            mine
        }
    });
    assert_eq!(total.load(Ordering::Relaxed), 4_000);
    assert!(out.results.iter().all(|&m| m == 500));
}
