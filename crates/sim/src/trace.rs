//! A lightweight bounded execution trace.
//!
//! Debugging a lock-elision pathology usually means asking "what did this
//! thread do around the time throughput collapsed?". Each simulated
//! thread can carry a [`TraceRing`] that records timestamped events
//! (transaction begins/commits/aborts, lock transitions, custom markers)
//! in a bounded ring — cheap enough to leave on during experiments, and
//! dumpable as aligned text after the run.

use std::collections::VecDeque;
use std::fmt;

/// One traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A transaction began.
    TxnBegin,
    /// A transaction committed.
    TxnCommit,
    /// A transaction aborted; the payload is a small cause code
    /// (by convention: 1 conflict, 2 capacity, 3 explicit, 4 spurious,
    /// 5 restore-check).
    TxnAbort(u8),
    /// A lock was acquired non-speculatively.
    LockAcquire,
    /// A lock was released non-speculatively.
    LockRelease,
    /// A user-defined marker with a label and value.
    Custom(&'static str, u64),
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::TxnBegin => write!(f, "txn-begin"),
            TraceEvent::TxnCommit => write!(f, "txn-commit"),
            TraceEvent::TxnAbort(code) => write!(f, "txn-abort({code})"),
            TraceEvent::LockAcquire => write!(f, "lock-acquire"),
            TraceEvent::LockRelease => write!(f, "lock-release"),
            TraceEvent::Custom(label, v) => write!(f, "{label}={v}"),
        }
    }
}

/// A bounded ring of timestamped [`TraceEvent`]s.
///
/// Older events are dropped once `capacity` is reached; `dropped()`
/// reports how many.
#[derive(Debug, Clone)]
pub struct TraceRing {
    capacity: usize,
    events: VecDeque<(u64, TraceEvent)>,
    dropped: u64,
}

impl TraceRing {
    /// Create a ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a trace ring needs room for at least one event");
        TraceRing { capacity, events: VecDeque::with_capacity(capacity), dropped: 0 }
    }

    /// Record `event` at logical time `now`.
    pub fn record(&mut self, now: u64, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back((now, event));
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &(u64, TraceEvent)> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// How many events were evicted by the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render the trace as aligned text, one event per line.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            out.push_str(&format!("... {} earlier events dropped ...\n", self.dropped));
        }
        for (t, ev) in &self.events {
            out.push_str(&format!("{t:>12}  {ev}\n"));
        }
        out
    }

    /// Count retained events matching a predicate.
    pub fn count(&self, pred: impl Fn(&TraceEvent) -> bool) -> usize {
        self.events.iter().filter(|(_, e)| pred(e)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut r = TraceRing::new(8);
        r.record(10, TraceEvent::TxnBegin);
        r.record(20, TraceEvent::TxnCommit);
        let seq: Vec<_> = r.events().cloned().collect();
        assert_eq!(seq, vec![(10, TraceEvent::TxnBegin), (20, TraceEvent::TxnCommit)]);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut r = TraceRing::new(3);
        for t in 0..5 {
            r.record(t, TraceEvent::Custom("step", t));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let first = r.events().next().cloned().expect("nonempty");
        assert_eq!(first.0, 2);
    }

    #[test]
    fn dump_mentions_drops_and_events() {
        let mut r = TraceRing::new(2);
        r.record(1, TraceEvent::TxnBegin);
        r.record(2, TraceEvent::TxnAbort(1));
        r.record(3, TraceEvent::LockAcquire);
        let d = r.dump();
        assert!(d.contains("1 earlier events dropped"));
        assert!(d.contains("txn-abort(1)"));
        assert!(d.contains("lock-acquire"));
    }

    #[test]
    fn count_filters() {
        let mut r = TraceRing::new(10);
        r.record(1, TraceEvent::TxnBegin);
        r.record(2, TraceEvent::TxnAbort(4));
        r.record(3, TraceEvent::TxnBegin);
        r.record(4, TraceEvent::TxnCommit);
        assert_eq!(r.count(|e| matches!(e, TraceEvent::TxnBegin)), 2);
        assert_eq!(r.count(|e| matches!(e, TraceEvent::TxnAbort(_))), 1);
    }

    #[test]
    #[should_panic(expected = "room for at least one")]
    fn zero_capacity_rejected() {
        TraceRing::new(0);
    }
}
