//! A lightweight bounded execution trace.
//!
//! Debugging a lock-elision pathology usually means asking "what did this
//! thread do around the time throughput collapsed?". Each simulated
//! thread can carry a [`TraceRing`] that records timestamped events
//! (transaction begins/commits/aborts, lock transitions, custom markers)
//! in a bounded ring — cheap enough to leave on during experiments, and
//! dumpable as aligned text after the run.

use crate::stats::AbortCause;
use std::collections::VecDeque;
use std::fmt;

/// One traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A transaction began.
    TxnBegin,
    /// A transaction committed.
    TxnCommit,
    /// A transaction aborted, classified by the telemetry taxonomy (the
    /// same [`AbortCause`] the histograms and JSON emitters use, so the
    /// trace never drifts from the aggregate counters).
    TxnAbort(AbortCause),
    /// A lock was acquired non-speculatively; the payload is the raw
    /// index of the lock's primary word (its identity for lint passes).
    LockAcquire(u32),
    /// A lock was released non-speculatively; the payload is the raw
    /// index of the lock's primary word.
    LockRelease(u32),
    /// A user-defined marker with a label and value.
    Custom(&'static str, u64),
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::TxnBegin => write!(f, "txn-begin"),
            TraceEvent::TxnCommit => write!(f, "txn-commit"),
            TraceEvent::TxnAbort(cause) => write!(f, "txn-abort({})", cause.label()),
            TraceEvent::LockAcquire(word) => write!(f, "lock-acquire({word})"),
            TraceEvent::LockRelease(word) => write!(f, "lock-release({word})"),
            TraceEvent::Custom(label, v) => write!(f, "{label}={v}"),
        }
    }
}

/// A bounded ring of timestamped [`TraceEvent`]s.
///
/// Older events are dropped once `capacity` is reached; `dropped()`
/// reports how many.
#[derive(Debug, Clone)]
pub struct TraceRing {
    capacity: usize,
    events: VecDeque<(u64, TraceEvent)>,
    dropped: u64,
}

impl TraceRing {
    /// Create a ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a trace ring needs room for at least one event");
        TraceRing { capacity, events: VecDeque::with_capacity(capacity), dropped: 0 }
    }

    /// Record `event` at logical time `now`.
    pub fn record(&mut self, now: u64, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back((now, event));
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &(u64, TraceEvent)> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// How many events were evicted by the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render the trace as aligned text, one event per line.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            out.push_str(&format!("... {} earlier events dropped ...\n", self.dropped));
        }
        for (t, ev) in &self.events {
            out.push_str(&format!("{t:>12}  {ev}\n"));
        }
        out
    }

    /// Count retained events matching a predicate.
    pub fn count(&self, pred: impl Fn(&TraceEvent) -> bool) -> usize {
        self.events.iter().filter(|(_, e)| pred(e)).count()
    }
}

/// One entry of a [`GlobalTrace`]: a per-thread trace event tagged with
/// the thread that recorded it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalEvent {
    /// Logical time the event was recorded at.
    pub time: u64,
    /// The recording simulated thread.
    pub tid: usize,
    /// The recorded event.
    pub event: TraceEvent,
}

/// A total-order merge of per-thread [`TraceRing`]s.
///
/// Events are ordered by `(time, tid)` with same-thread events keeping
/// their ring (program) order. Under the strict scheduler window the
/// runnable thread is always the one with the lexicographically smallest
/// `(clock, id)`, so this ordering *is* the execution order — which is
/// what makes cross-thread protocol lints (lock discipline, subscription
/// ordering) sound over the merged trace.
#[derive(Debug, Clone, Default)]
pub struct GlobalTrace {
    events: Vec<GlobalEvent>,
    dropped: u64,
}

impl GlobalTrace {
    /// Merge `(tid, ring)` pairs into one totally ordered trace.
    pub fn merge<'a>(rings: impl IntoIterator<Item = (usize, &'a TraceRing)>) -> Self {
        let mut events = Vec::new();
        let mut dropped = 0;
        for (tid, ring) in rings {
            dropped += ring.dropped();
            for &(time, event) in ring.events() {
                events.push(GlobalEvent { time, tid, event });
            }
        }
        // Stable sort: same-(time, tid) entries keep ring order.
        events.sort_by_key(|e| (e.time, e.tid));
        GlobalTrace { events, dropped }
    }

    /// The merged events, in execution order.
    pub fn events(&self) -> &[GlobalEvent] {
        &self.events
    }

    /// Number of merged events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the merge is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events evicted from the source rings before merging. A
    /// nonzero value means the merge has gaps: lint passes that track
    /// balanced acquire/release or begin/commit pairs are unreliable on
    /// truncated traces and should refuse to run.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render the merged trace as aligned text, one event per line.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            out.push_str(&format!("... {} events dropped before merging ...\n", self.dropped));
        }
        for e in &self.events {
            out.push_str(&format!("{:>12}  t{:<3} {}\n", e.time, e.tid, e.event));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut r = TraceRing::new(8);
        r.record(10, TraceEvent::TxnBegin);
        r.record(20, TraceEvent::TxnCommit);
        let seq: Vec<_> = r.events().cloned().collect();
        assert_eq!(seq, vec![(10, TraceEvent::TxnBegin), (20, TraceEvent::TxnCommit)]);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut r = TraceRing::new(3);
        for t in 0..5 {
            r.record(t, TraceEvent::Custom("step", t));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let first = r.events().next().cloned().expect("nonempty");
        assert_eq!(first.0, 2);
    }

    #[test]
    fn dump_mentions_drops_and_events() {
        let mut r = TraceRing::new(2);
        r.record(1, TraceEvent::TxnBegin);
        r.record(2, TraceEvent::TxnAbort(AbortCause::DataConflict));
        r.record(3, TraceEvent::LockAcquire(7));
        let d = r.dump();
        assert!(d.contains("1 earlier events dropped"));
        assert!(d.contains("txn-abort(data_conflict)"));
        assert!(d.contains("lock-acquire(7)"));
    }

    #[test]
    fn count_filters() {
        let mut r = TraceRing::new(10);
        r.record(1, TraceEvent::TxnBegin);
        r.record(2, TraceEvent::TxnAbort(AbortCause::FaultInjected));
        r.record(3, TraceEvent::TxnBegin);
        r.record(4, TraceEvent::TxnCommit);
        assert_eq!(r.count(|e| matches!(e, TraceEvent::TxnBegin)), 2);
        assert_eq!(r.count(|e| matches!(e, TraceEvent::TxnAbort(_))), 1);
    }

    #[test]
    #[should_panic(expected = "room for at least one")]
    fn zero_capacity_rejected() {
        TraceRing::new(0);
    }

    #[test]
    fn global_merge_orders_by_time_then_tid() {
        let mut r0 = TraceRing::new(8);
        r0.record(5, TraceEvent::LockAcquire(0));
        r0.record(9, TraceEvent::LockRelease(0));
        let mut r1 = TraceRing::new(8);
        r1.record(2, TraceEvent::TxnBegin);
        r1.record(5, TraceEvent::TxnCommit);
        let g = GlobalTrace::merge([(0, &r0), (1, &r1)]);
        let seq: Vec<(u64, usize)> = g.events().iter().map(|e| (e.time, e.tid)).collect();
        assert_eq!(seq, vec![(2, 1), (5, 0), (5, 1), (9, 0)]);
        assert_eq!(g.len(), 4);
        assert_eq!(g.dropped(), 0);
        assert!(g.dump().contains("lock-release(0)"));
    }

    #[test]
    fn global_merge_keeps_program_order_within_a_thread() {
        // Two same-time events on one thread must keep ring order even
        // though the sort key cannot distinguish them.
        let mut r = TraceRing::new(8);
        r.record(3, TraceEvent::TxnBegin);
        r.record(3, TraceEvent::TxnCommit);
        let g = GlobalTrace::merge([(0, &r)]);
        assert_eq!(g.events()[0].event, TraceEvent::TxnBegin);
        assert_eq!(g.events()[1].event, TraceEvent::TxnCommit);
    }

    #[test]
    fn global_merge_propagates_drops() {
        let mut r = TraceRing::new(1);
        r.record(1, TraceEvent::TxnBegin);
        r.record(2, TraceEvent::TxnCommit);
        let g = GlobalTrace::merge([(0, &r)]);
        assert_eq!(g.dropped(), 1);
        assert!(g.dump().contains("dropped before merging"));
    }
}
