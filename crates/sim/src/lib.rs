//! A deterministic logical-time multicore simulator.
//!
//! The lock-elision paper this workspace reproduces ("Software-Improved
//! Hardware Lock Elision", PODC 2014) measures throughput, abort rates and
//! serialization dynamics of threads racing through critical sections on a
//! real 4-core/8-thread Haswell machine. This host has neither TSX hardware
//! nor multiple cores, so the workspace substitutes a *simulated* multicore:
//! every simulated thread owns a monotonically increasing logical clock
//! (measured in abstract "cycles"), every memory access / spin iteration /
//! transaction event advances that clock by a cost taken from a
//! [`CostModel`], and a scheduler only lets a thread run while its clock is
//! within a bounded window of the global minimum clock.
//!
//! The result is that critical sections genuinely *overlap in logical time*
//! regardless of how the host OS schedules the backing threads, which is
//! the property every experiment in the paper depends on. With
//! [`SimBuilder::window`] set to `0` the interleaving is fully
//! deterministic (exactly one thread — the lexicographically smallest
//! `(clock, thread id)` — runs at a time), which the test-suites use.
//!
//! # Quick example
//!
//! ```
//! use elision_sim::SimBuilder;
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! let hits = Arc::new(AtomicU64::new(0));
//! let outcome = SimBuilder::new(4).window(0).run({
//!     let hits = Arc::clone(&hits);
//!     move |ctx| {
//!         for _ in 0..100 {
//!             ctx.handle.advance(3);
//!             hits.fetch_add(1, Ordering::Relaxed);
//!         }
//!         ctx.id
//!     }
//! });
//! assert_eq!(hits.load(Ordering::Relaxed), 400);
//! assert_eq!(outcome.results, vec![0, 1, 2, 3]);
//! assert!(outcome.makespan >= 300);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod control;
mod cost;
mod fault;
mod rng;
mod sched;
mod slots;
mod stats;
mod trace;

pub use arrivals::{generate_arrivals, Arrival, ArrivalPhase, Zipf};
pub use control::{ScheduleControl, StepAccess, StepRecord};
pub use cost::CostModel;
pub use fault::{FaultPlan, FaultStats, PreemptSpec};
pub use rng::DetRng;
pub use sched::{Scheduler, SimHandle};
pub use slots::{CauseSlotRecorder, CauseSlotSeries, SlotRecorder, SlotSeries};
pub use stats::{AbortCause, AttemptKind, CauseHistogram, ConflictLineHistogram, OpCounters};
pub use trace::{GlobalEvent, GlobalTrace, TraceEvent, TraceRing};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Process-global count of simulated threads currently in flight, across
/// every concurrently running simulation. See [`sim_threads_in_flight`].
static IN_FLIGHT: AtomicUsize = AtomicUsize::new(0);

/// The number of simulated threads currently executing, summed over every
/// simulation running in this process.
///
/// A sweep harness that runs many independent simulations on a host
/// thread pool uses this to account for (and cap) the total number of OS
/// threads the `sim` layer has live at once: each [`SimBuilder::run`]
/// adds its thread count on entry and removes it when the run finishes,
/// even if a simulated thread panics. The read is a single relaxed atomic
/// load — cheap enough to poll from a hot scheduling loop.
pub fn sim_threads_in_flight() -> usize {
    IN_FLIGHT.load(Ordering::Relaxed)
}

/// Decrements the in-flight gauge on drop so a panicking simulated thread
/// cannot leak its contribution.
struct InFlightGuard(usize);

impl InFlightGuard {
    fn new(threads: usize) -> Self {
        IN_FLIGHT.fetch_add(threads, Ordering::Relaxed);
        InFlightGuard(threads)
    }
}

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        IN_FLIGHT.fetch_sub(self.0, Ordering::Relaxed);
    }
}

/// Per-thread context handed to each simulated thread's body.
#[derive(Debug)]
pub struct ThreadCtx {
    /// The simulated thread's index in `0..threads`.
    pub id: usize,
    /// Handle used to advance logical time (and thereby yield to peers).
    pub handle: SimHandle,
}

/// The result of running a simulation to completion.
#[derive(Debug)]
pub struct SimOutcome<R> {
    /// Per-thread return values, indexed by thread id.
    pub results: Vec<R>,
    /// Final logical clock of each thread.
    pub end_times: Vec<u64>,
    /// The simulated makespan: the largest per-thread end time.
    pub makespan: u64,
    /// Per-thread injected-fault counters; empty when the run had no
    /// fault plan attached.
    pub fault_stats: Vec<FaultStats>,
}

impl<R> SimOutcome<R> {
    /// Throughput in operations per 1000 simulated cycles, given a total
    /// operation count performed across all threads.
    ///
    /// Returns `0.0` for an empty (zero-cycle) run.
    pub fn throughput(&self, total_ops: u64) -> f64 {
        if self.makespan == 0 {
            0.0
        } else {
            total_ops as f64 * 1000.0 / self.makespan as f64
        }
    }
}

/// Builder for a simulated multicore run.
///
/// A simulation consists of `threads` simulated threads all executing the
/// same closure (distinguished by [`ThreadCtx::id`]). The closure runs on a
/// real OS thread but is gated by the logical-clock scheduler: it must call
/// [`SimHandle::advance`] for every costed event, and may be blocked there
/// until slower peers catch up.
#[derive(Debug, Clone)]
pub struct SimBuilder {
    threads: usize,
    window: u64,
    faults: FaultPlan,
    control: Option<Arc<ScheduleControl>>,
}

impl SimBuilder {
    /// Create a builder for `threads` simulated threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or greater than 64 (the HTM layer's
    /// conflict-bitmap width).
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "need at least one simulated thread");
        assert!(
            threads <= sched::MAX_THREADS,
            "at most {} simulated threads are supported",
            sched::MAX_THREADS
        );
        SimBuilder { threads, window: 64, faults: FaultPlan::none(), control: None }
    }

    /// Set the bounded-lag window, in cycles.
    ///
    /// A thread may run while `clock <= min(live clocks) + window`. `0`
    /// selects *strict* mode: exactly one thread (the lexicographically
    /// smallest `(clock, id)`) runs at a time, making the whole simulation
    /// deterministic. Larger windows trade determinism for host speed.
    pub fn window(mut self, window: u64) -> Self {
        self.window = window;
        self
    }

    /// Attach a deterministic fault-injection plan (simulated preemption
    /// and clock jitter) to the run. See [`FaultPlan`]. The default plan
    /// injects nothing.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Serialize the run under a model-checker [`ScheduleControl`]: every
    /// [`SimHandle::advance`] becomes a decision point replayed from the
    /// control's schedule. Forces window 0 semantics and bypasses any
    /// attached fault plan (see the [`control`] module docs).
    pub fn control(mut self, control: Arc<ScheduleControl>) -> Self {
        self.control = Some(control);
        self
    }

    /// Number of simulated threads this builder will run.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `body` once per simulated thread and collect the outcome.
    ///
    /// `body` is cloned per thread; shared state should be captured via
    /// `Arc`. The call blocks until every simulated thread finishes.
    pub fn run<R, F>(&self, body: F) -> SimOutcome<R>
    where
        R: Send + 'static,
        F: Fn(ThreadCtx) -> R + Clone + Send + 'static,
    {
        let sched = Arc::new(match &self.control {
            Some(ctl) => Scheduler::with_control(self.threads, Arc::clone(ctl)),
            None => Scheduler::with_faults(self.threads, self.window, self.faults),
        });
        let _in_flight = InFlightGuard::new(self.threads);
        let mut joins = Vec::with_capacity(self.threads);
        for id in 0..self.threads {
            let body = body.clone();
            let handle = SimHandle::new(Arc::clone(&sched), id);
            joins.push(
                std::thread::Builder::new()
                    .name(format!("sim-{id}"))
                    .spawn(move || {
                        // Wait for all threads to be registered so the
                        // initial min-clock computation sees everyone.
                        handle.wait_for_start();
                        let r = body(ThreadCtx { id, handle: handle.clone() });
                        let end = handle.now();
                        handle.finish();
                        (r, end)
                    })
                    .expect("spawning simulated thread"),
            );
        }
        sched.release_start();
        let mut results = Vec::with_capacity(self.threads);
        let mut end_times = Vec::with_capacity(self.threads);
        for j in joins {
            let (r, end) = j.join().expect("simulated thread panicked");
            results.push(r);
            end_times.push(end);
        }
        let makespan = end_times.iter().copied().max().unwrap_or(0);
        let fault_stats = (0..self.threads).filter_map(|id| sched.fault_stats(id)).collect();
        SimOutcome { results, end_times, makespan, fault_stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn single_thread_clock_accumulates() {
        let out = SimBuilder::new(1).window(0).run(|ctx| {
            for _ in 0..10 {
                ctx.handle.advance(7);
            }
            ctx.handle.now()
        });
        assert_eq!(out.results[0], 70);
        assert_eq!(out.makespan, 70);
    }

    #[test]
    fn threads_progress_in_lockstep_with_zero_window() {
        // With window 0, at any advance the running thread is the global
        // minimum, so observing a peer's clock far ahead is impossible.
        let n = 4;
        let sched_times: Arc<Vec<AtomicU64>> =
            Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
        let out = SimBuilder::new(n).window(0).run({
            let times = Arc::clone(&sched_times);
            move |ctx| {
                let mut max_lead = 0i64;
                for _ in 0..500 {
                    ctx.handle.advance(1);
                    times[ctx.id].store(ctx.handle.now(), Ordering::SeqCst);
                    let me = ctx.handle.now() as i64;
                    for t in times.iter() {
                        let other = t.load(Ordering::SeqCst) as i64;
                        if other > 0 {
                            max_lead = max_lead.max(me - other);
                        }
                    }
                }
                max_lead
            }
        });
        for lead in out.results {
            // A thread can lead a peer by at most one step's cost (the
            // peer may not have republished its clock yet).
            assert!(lead <= 2, "thread led by {lead} cycles in strict mode");
        }
    }

    #[test]
    fn makespan_is_max_thread_time() {
        let out = SimBuilder::new(3).window(16).run(|ctx| {
            let steps = (ctx.id as u64 + 1) * 10;
            for _ in 0..steps {
                ctx.handle.advance(2);
            }
            ctx.handle.now()
        });
        assert_eq!(out.makespan, 60);
        assert_eq!(out.end_times, vec![20, 40, 60]);
    }

    #[test]
    fn uneven_finish_does_not_deadlock() {
        // Thread 0 finishes immediately; the others must still be able to
        // advance past it.
        let out = SimBuilder::new(4).window(0).run(|ctx| {
            if ctx.id == 0 {
                return 0;
            }
            for _ in 0..1000 {
                ctx.handle.advance(1);
            }
            ctx.handle.now()
        });
        assert_eq!(out.results[0], 0);
        for id in 1..4 {
            assert_eq!(out.results[id], 1000);
        }
    }

    #[test]
    fn throughput_helper() {
        let out = SimBuilder::new(2).window(0).run(|ctx| {
            for _ in 0..50 {
                ctx.handle.advance(10);
            }
        });
        assert_eq!(out.makespan, 500);
        let thr = out.throughput(100);
        assert!((thr - 200.0).abs() < 1e-9);
    }

    #[test]
    fn fault_plan_extends_makespan_deterministically() {
        let run = |plan: FaultPlan| {
            SimBuilder::new(2).window(0).faults(plan).run(|ctx| {
                for _ in 0..200 {
                    ctx.handle.advance(5);
                }
                ctx.handle.now()
            })
        };
        let base = run(FaultPlan::none());
        assert!(base.fault_stats.is_empty(), "inactive plan records no stats");
        let plan = FaultPlan::none().with_preempt(100, 400).with_jitter(100).with_seed(11);
        let a = run(plan);
        let b = run(plan);
        assert_eq!(a.end_times, b.end_times, "same seed, same schedule");
        assert_eq!(a.fault_stats, b.fault_stats, "same seed, same stats");
        assert!(a.makespan > base.makespan, "faults must cost simulated time");
        assert!(a.fault_stats.iter().any(|s| s.preemptions > 0));
    }

    #[test]
    fn in_flight_gauge_counts_own_run() {
        // Other tests may run sims concurrently in this process, so only
        // one-directional claims are safe: while our 3-thread run is
        // live, the gauge must report at least our contribution.
        let out = SimBuilder::new(3).window(0).run(|ctx| {
            ctx.handle.advance(1);
            sim_threads_in_flight()
        });
        for seen in out.results {
            assert!(seen >= 3, "gauge reported {seen} while 3 of ours were live");
        }
    }

    #[test]
    fn zero_cost_advance_is_allowed() {
        let out = SimBuilder::new(2).window(0).run(|ctx| {
            for _ in 0..10 {
                ctx.handle.advance(0);
                ctx.handle.advance(1);
            }
        });
        assert_eq!(out.makespan, 10);
    }
}
