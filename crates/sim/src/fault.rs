//! Deterministic fault injection for the logical-time simulator.
//!
//! A [`FaultPlan`] attaches to a simulation run and perturbs logical time in
//! two ways, both of which the lock-elision paper identifies as the
//! environments where naive elision falls apart:
//!
//! * **Simulated preemption** ([`PreemptSpec`]): at a fixed cadence on each
//!   thread's *own* clock the thread's logical time jumps forward by a
//!   configurable pause, modelling the OS descheduling a lock holder — the
//!   injection point is [`SimHandle::advance`], so the jump lands wherever
//!   the thread happens to be, including mid-critical-section.
//! * **Clock jitter**: every advance is stretched by a bounded random
//!   fraction of its cost, modelling per-core frequency and interference
//!   noise that de-synchronises threads.
//!
//! All randomness derives from the plan's seed via per-thread [`DetRng`]
//! streams, and every threshold is keyed off the owning thread's own clock.
//! That makes the fault schedule a pure function of `(plan, thread id,
//! thread-local history)` — independent of interleaving — so a run with
//! `window == 0` is exactly reproducible from the seed.
//!
//! [`SimHandle::advance`]: crate::SimHandle::advance

use crate::rng::DetRng;

/// Periodic simulated lock-holder preemption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreemptSpec {
    /// Thread-clock cycles between preemptions. Must be non-zero for the
    /// spec to have any effect.
    pub interval: u64,
    /// Cycles the thread's clock jumps forward at each preemption.
    pub pause: u64,
}

/// A complete fault-injection plan for one simulation run.
///
/// The default plan injects nothing; [`FaultPlan::is_active`] reports
/// whether any fault source is enabled, and inactive plans add zero
/// overhead (and consume zero RNG draws) on the advance path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Periodic clock jumps simulating preemption, if enabled.
    pub preempt: Option<PreemptSpec>,
    /// Per-advance clock jitter, in permille of each advance's cost.
    /// `250` stretches every advance by a uniform 0..=25% extra.
    pub jitter_permille: u32,
    /// Seed for the fault-schedule RNG streams (independent of the
    /// workload seed so faults can be varied while the workload is held
    /// fixed, and vice versa).
    pub seed: u64,
}

impl FaultPlan {
    /// A plan injecting nothing.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Enable periodic preemption: every `interval` cycles of thread-local
    /// time, jump the clock forward by `pause` cycles.
    pub fn with_preempt(mut self, interval: u64, pause: u64) -> Self {
        self.preempt = Some(PreemptSpec { interval, pause });
        self
    }

    /// Enable per-advance clock jitter of up to `permille`/1000 of each
    /// advance's cost.
    pub fn with_jitter(mut self, permille: u32) -> Self {
        self.jitter_permille = permille;
        self
    }

    /// Set the fault-schedule seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether any fault source is enabled.
    pub fn is_active(&self) -> bool {
        self.preempt.map(|p| p.interval > 0 && p.pause > 0).unwrap_or(false)
            || self.jitter_permille > 0
    }
}

/// Counters describing the faults actually injected into one thread.
///
/// Two runs with the same seed and `window == 0` produce identical stats;
/// the chaos harness asserts exactly that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Number of simulated preemptions delivered.
    pub preemptions: u64,
    /// Total cycles injected by preemption pauses.
    pub pause_cycles: u64,
    /// Total cycles injected by jitter.
    pub jitter_cycles: u64,
}

impl FaultStats {
    /// Accumulate another thread's stats into this one.
    pub fn merge(&mut self, other: &FaultStats) {
        self.preemptions += other.preemptions;
        self.pause_cycles += other.pause_cycles;
        self.jitter_cycles += other.jitter_cycles;
    }
}

/// Per-thread fault-schedule state, owned by the scheduler.
#[derive(Debug)]
pub(crate) struct FaultThreadState {
    plan: FaultPlan,
    rng: DetRng,
    /// Thread-clock threshold for the next preemption (`u64::MAX` when
    /// preemption is disabled).
    next_preempt_at: u64,
    stats: FaultStats,
}

/// Stream namespace offset separating fault RNG streams from workload ones.
const FAULT_STREAM_BASE: u64 = 0xFA17_0000;

impl FaultThreadState {
    pub(crate) fn new(plan: FaultPlan, tid: usize) -> Self {
        let mut rng = DetRng::new(plan.seed, FAULT_STREAM_BASE + tid as u64);
        let next_preempt_at = match plan.preempt {
            // Stagger the first preemption per thread so the whole fleet
            // does not stall in lockstep.
            Some(p) if p.interval > 0 && p.pause > 0 => p.interval + rng.below(p.interval),
            _ => u64::MAX,
        };
        FaultThreadState { plan, rng, next_preempt_at, stats: FaultStats::default() }
    }

    /// Extra cycles to inject for an advance from `now` by `cost`.
    pub(crate) fn extra_cycles(&mut self, now: u64, cost: u64) -> u64 {
        let mut extra = 0u64;
        if self.plan.jitter_permille > 0 && cost > 0 {
            let span = (cost as u128 * self.plan.jitter_permille as u128 / 1000) as u64;
            if span > 0 {
                let j = self.rng.below(span + 1);
                self.stats.jitter_cycles += j;
                extra += j;
            }
        }
        if let Some(p) = self.plan.preempt {
            if p.interval > 0 && p.pause > 0 {
                // A single large advance may cross several thresholds.
                let end = now.saturating_add(cost).saturating_add(extra);
                while self.next_preempt_at <= end {
                    extra = extra.saturating_add(p.pause);
                    self.stats.preemptions += 1;
                    self.stats.pause_cycles += p.pause;
                    // The next preemption comes `interval` *run* cycles
                    // later: the pause is descheduled time and must not
                    // itself burn down the interval, otherwise a pause
                    // longer than the interval cascades into an unbounded
                    // storm of back-to-back preemptions.
                    self.next_preempt_at =
                        self.next_preempt_at.saturating_add(p.interval).saturating_add(p.pause);
                }
            }
        }
        extra
    }

    pub(crate) fn stats(&self) -> FaultStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_plan_injects_nothing() {
        let mut st = FaultThreadState::new(FaultPlan::none(), 0);
        for now in (0..10_000).step_by(17) {
            assert_eq!(st.extra_cycles(now, 17), 0);
        }
        assert_eq!(st.stats(), FaultStats::default());
    }

    #[test]
    fn preempt_fires_at_cadence() {
        let plan = FaultPlan::none().with_preempt(100, 1000).with_seed(7);
        let mut st = FaultThreadState::new(plan, 0);
        let mut now = 0u64;
        for _ in 0..1000 {
            let extra = st.extra_cycles(now, 10);
            now += 10 + extra;
        }
        let s = st.stats();
        assert!(s.preemptions > 0, "expected at least one preemption");
        assert_eq!(s.pause_cycles, s.preemptions * 1000);
        assert_eq!(s.jitter_cycles, 0);
    }

    #[test]
    fn huge_advance_crosses_multiple_thresholds() {
        let plan = FaultPlan::none().with_preempt(100, 5).with_seed(1);
        let mut st = FaultThreadState::new(plan, 0);
        st.extra_cycles(0, 1_000);
        assert!(st.stats().preemptions >= 8, "got {:?}", st.stats());
    }

    #[test]
    fn jitter_is_bounded_by_permille() {
        let plan = FaultPlan::none().with_jitter(250).with_seed(3);
        let mut st = FaultThreadState::new(plan, 2);
        for _ in 0..1000 {
            let extra = st.extra_cycles(0, 1000);
            assert!(extra <= 250, "jitter {extra} exceeds 25% of cost");
        }
        assert!(st.stats().jitter_cycles > 0);
    }

    #[test]
    fn same_seed_same_schedule() {
        let plan = FaultPlan::none().with_preempt(64, 300).with_jitter(100).with_seed(42);
        let mut a = FaultThreadState::new(plan, 3);
        let mut b = FaultThreadState::new(plan, 3);
        let mut now = 0u64;
        for _ in 0..500 {
            let ea = a.extra_cycles(now, 13);
            let eb = b.extra_cycles(now, 13);
            assert_eq!(ea, eb);
            now += 13 + ea;
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn different_threads_stagger() {
        let plan = FaultPlan::none().with_preempt(1000, 50).with_seed(9);
        let a = FaultThreadState::new(plan, 0);
        let b = FaultThreadState::new(plan, 1);
        assert_ne!(a.next_preempt_at, b.next_preempt_at);
    }

    #[test]
    fn activity_detection() {
        assert!(!FaultPlan::none().is_active());
        assert!(!FaultPlan::none().with_preempt(0, 100).is_active());
        assert!(!FaultPlan::none().with_preempt(100, 0).is_active());
        assert!(FaultPlan::none().with_preempt(100, 100).is_active());
        assert!(FaultPlan::none().with_jitter(1).is_active());
    }
}
