//! Controlled serialized scheduling for the model checker.
//!
//! In controlled mode the simulator runs exactly one thread at a time:
//! every [`crate::SimHandle::advance`] call is a *decision point* where a
//! [`ScheduleControl`] picks which thread executes the next segment. The
//! default choice is the same `(clock, id)`-minimal rule the window-0
//! scheduler uses, so a run with no overrides reproduces the standard
//! window-0 execution exactly. A schedule is a sparse map from decision
//! index to thread id; forcing a choice different from the default is a
//! *divergence* (a preemption the free-running scheduler would not take).
//!
//! The explorer in `elision-analysis` replays many such schedules to
//! enumerate interleavings. To make that sound, instrumented code reports
//! the shared cache lines each segment touches via
//! [`crate::SimHandle::note_access`]; the per-step footprints are stored
//! on the [`StepRecord`] and drive dynamic partial-order reduction.
//!
//! Controlled runs ignore fault plans (the chaos layer's extra-cycle and
//! preemption hooks are bypassed) — chaos explores timing, the model
//! checker explores orderings, and mixing the two would double-count.

use parking_lot::{Condvar, Mutex};
use std::collections::BTreeMap;

/// One shared-memory access performed during a schedule step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepAccess {
    /// Cache line index touched.
    pub line: u32,
    /// Whether the access can modify shared state (write/RMW/publication).
    pub write: bool,
}

/// One scheduling decision and the execution segment that followed it.
#[derive(Clone, Debug)]
pub struct StepRecord {
    /// Thread granted at this decision point.
    pub chosen: usize,
    /// Thread the window-0 `(clock, id)`-minimal rule would have picked.
    pub default: usize,
    /// Threads that had not yet finished at this decision point (sorted).
    pub enabled: Vec<usize>,
    /// Simulated clock of the chosen thread at grant time.
    pub clock: u64,
    /// Shared lines touched by the granted segment, in program order.
    pub accesses: Vec<StepAccess>,
}

struct CtlInner {
    /// All threads have reached their first decision point (or finished).
    started: bool,
    /// Thread currently allowed to run, if any.
    granted: Option<usize>,
    arrived: Vec<bool>,
    done: Vec<bool>,
    steps: Vec<StepRecord>,
    divergences: u32,
}

/// Serializes a simulated run and records/replays its schedule.
///
/// Construct one per run, hand it to
/// [`crate::SimBuilder::control`], and read back [`ScheduleControl::steps`]
/// after the run completes. Overrides index into the decision sequence; an
/// override whose target thread has already finished (or whose index is
/// never reached) is silently ignored, which keeps schedule minimization
/// robust when dropping earlier forced choices shortens the run.
pub struct ScheduleControl {
    inner: Mutex<CtlInner>,
    cv: Condvar,
    threads: usize,
    overrides: BTreeMap<usize, usize>,
    max_steps: usize,
}

impl std::fmt::Debug for ScheduleControl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScheduleControl")
            .field("threads", &self.threads)
            .field("overrides", &self.overrides)
            .field("steps_taken", &self.steps_taken())
            .finish_non_exhaustive()
    }
}

impl ScheduleControl {
    /// Default runaway backstop on the number of decision steps.
    pub const DEFAULT_MAX_STEPS: usize = 200_000;

    /// New control for `threads` simulated threads replaying `overrides`.
    #[must_use]
    pub fn new(threads: usize, overrides: BTreeMap<usize, usize>) -> Self {
        Self::with_max_steps(threads, overrides, Self::DEFAULT_MAX_STEPS)
    }

    /// As [`ScheduleControl::new`] with an explicit step backstop.
    #[must_use]
    pub fn with_max_steps(
        threads: usize,
        overrides: BTreeMap<usize, usize>,
        max_steps: usize,
    ) -> Self {
        assert!(threads >= 1, "controlled run needs at least one thread");
        for (&idx, &tid) in &overrides {
            assert!(tid < threads, "override at step {idx} targets out-of-range thread {tid}");
        }
        Self {
            inner: Mutex::new(CtlInner {
                started: false,
                granted: None,
                arrived: vec![false; threads],
                done: vec![false; threads],
                steps: Vec::new(),
                divergences: 0,
            }),
            cv: Condvar::new(),
            threads,
            overrides,
            max_steps,
        }
    }

    /// Pick the next thread to run. Caller holds the inner lock; every
    /// live thread other than the caller is parked in [`Self::wait_turn`].
    fn decide(&self, g: &mut CtlInner, clock_of: &dyn Fn(usize) -> u64) {
        let enabled: Vec<usize> = (0..self.threads).filter(|&t| !g.done[t]).collect();
        debug_assert!(!enabled.is_empty(), "decide called with no live threads");
        let default =
            enabled.iter().copied().min_by_key(|&t| (clock_of(t), t)).expect("nonempty enabled");
        let idx = g.steps.len();
        assert!(
            idx < self.max_steps,
            "controlled run exceeded {} decision steps (runaway schedule?)",
            self.max_steps
        );
        let mut chosen = default;
        if let Some(&want) = self.overrides.get(&idx) {
            if !g.done[want] {
                chosen = want;
            }
        }
        if chosen != default {
            g.divergences += 1;
        }
        g.steps.push(StepRecord {
            chosen,
            default,
            enabled,
            clock: clock_of(chosen),
            accesses: Vec::new(),
        });
        g.granted = Some(chosen);
    }

    fn wait_turn(&self, g: &mut parking_lot::MutexGuard<'_, CtlInner>, id: usize) {
        while g.granted != Some(id) {
            self.cv.wait(g);
        }
    }

    /// Called by the scheduler on every `advance` in controlled mode.
    /// Blocks until this thread is granted the next segment.
    pub(crate) fn at_decision_point(&self, id: usize, clock_of: &dyn Fn(usize) -> u64) {
        let mut g = self.inner.lock();
        if g.started {
            // Only the granted thread can be executing; it just ended its
            // segment, so pick the next one.
            debug_assert_eq!(g.granted, Some(id), "non-granted thread reached a decision point");
            g.granted = None;
            self.decide(&mut g, clock_of);
            self.cv.notify_all();
        } else {
            g.arrived[id] = true;
            if g.arrived.iter().zip(&g.done).all(|(&a, &d)| a || d) {
                g.started = true;
                self.decide(&mut g, clock_of);
                self.cv.notify_all();
            }
        }
        self.wait_turn(&mut g, id);
    }

    /// Called by the scheduler when a thread finishes in controlled mode.
    pub(crate) fn thread_finished(&self, id: usize, clock_of: &dyn Fn(usize) -> u64) {
        let mut g = self.inner.lock();
        g.done[id] = true;
        if g.started {
            debug_assert_eq!(g.granted, Some(id), "non-granted thread finished");
            g.granted = None;
            if g.done.iter().all(|&d| d) {
                return;
            }
            self.decide(&mut g, clock_of);
            self.cv.notify_all();
        } else {
            // A thread may finish without ever reaching a decision point
            // (empty body); treat that as arrival so the run can start.
            g.arrived[id] = true;
            let all_here = g.arrived.iter().zip(&g.done).all(|(&a, &d)| a || d);
            if all_here && g.done.iter().any(|&d| !d) {
                g.started = true;
                self.decide(&mut g, clock_of);
                self.cv.notify_all();
            }
        }
    }

    /// Record a shared-line access by the currently granted thread.
    pub(crate) fn note_access(&self, id: usize, line: u32, write: bool) {
        let mut g = self.inner.lock();
        if let Some(step) = g.steps.last_mut() {
            debug_assert_eq!(step.chosen, id, "access noted by non-granted thread");
            step.accesses.push(StepAccess { line, write });
        }
    }

    /// Number of decisions taken so far; monotone over the serialized
    /// execution, so usable as a logical timestamp for history recording.
    #[must_use]
    pub fn steps_taken(&self) -> usize {
        self.inner.lock().steps.len()
    }

    /// The recorded schedule (one entry per decision point).
    #[must_use]
    pub fn steps(&self) -> Vec<StepRecord> {
        self.inner.lock().steps.clone()
    }

    /// How many decisions differed from the window-0 default choice.
    #[must_use]
    pub fn divergences(&self) -> u32 {
        self.inner.lock().divergences
    }

    /// Number of simulated threads under control.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimBuilder;
    use std::collections::HashSet;
    use std::sync::Arc;

    /// Two threads, two advances each: run one controlled schedule and
    /// return the per-step chosen/default/enabled records.
    fn run_toy(
        threads: usize,
        advances: usize,
        overrides: BTreeMap<usize, usize>,
    ) -> Vec<StepRecord> {
        let ctl = Arc::new(ScheduleControl::new(threads, overrides));
        let ctl_body = Arc::clone(&ctl);
        SimBuilder::new(threads).control(Arc::clone(&ctl)).run(move |ctx| {
            let _ = &ctl_body;
            for _ in 0..advances {
                ctx.handle.advance(10);
            }
        });
        ctl.steps()
    }

    #[test]
    fn empty_schedule_matches_window0_defaults() {
        let steps = run_toy(2, 2, BTreeMap::new());
        assert_eq!(steps.len(), 4);
        for s in &steps {
            assert_eq!(s.chosen, s.default, "unforced run must follow defaults");
        }
        // Equal costs: min-(clock, id) alternates t0, t1, t0, t1.
        let order: Vec<usize> = steps.iter().map(|s| s.chosen).collect();
        assert_eq!(order, vec![0, 1, 0, 1]);
    }

    #[test]
    fn dense_prefix_dfs_enumerates_all_six_interleavings() {
        // 2 threads x 2 segments each => C(4,2) = 6 maximal interleavings.
        let mut seen: HashSet<Vec<usize>> = HashSet::new();
        let mut queued: HashSet<Vec<usize>> = HashSet::new();
        let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
        queued.insert(Vec::new());
        let mut runs = 0;
        while let Some(prefix) = stack.pop() {
            let overrides: BTreeMap<usize, usize> = prefix.iter().copied().enumerate().collect();
            let steps = run_toy(2, 2, overrides);
            runs += 1;
            assert!(runs <= 64, "toy DFS exploded");
            let choices: Vec<usize> = steps.iter().map(|s| s.chosen).collect();
            assert_eq!(&choices[..prefix.len()], &prefix[..], "prefix must replay verbatim");
            seen.insert(choices.clone());
            for i in prefix.len()..steps.len() {
                for &t in &steps[i].enabled {
                    if t == choices[i] {
                        continue;
                    }
                    let mut child = choices[..i].to_vec();
                    child.push(t);
                    if queued.insert(child.clone()) {
                        stack.push(child);
                    }
                }
            }
        }
        assert_eq!(seen.len(), 6, "expected all C(4,2) interleavings, got {seen:?}");
        // Every execution schedules each thread exactly twice.
        for choices in &seen {
            assert_eq!(choices.len(), 4);
            assert_eq!(choices.iter().filter(|&&t| t == 0).count(), 2);
        }
    }

    #[test]
    fn overrides_divergences_are_counted_and_replayed() {
        // Force t1 to run both its segments first.
        let overrides: BTreeMap<usize, usize> = [(0, 1), (1, 1)].into_iter().collect();
        let ctl = Arc::new(ScheduleControl::new(2, overrides));
        SimBuilder::new(2).control(Arc::clone(&ctl)).run(move |ctx| {
            for _ in 0..2 {
                ctx.handle.advance(10);
            }
        });
        let steps = ctl.steps();
        let choices: Vec<usize> = steps.iter().map(|s| s.chosen).collect();
        assert_eq!(choices, vec![1, 1, 0, 0]);
        // Step 0 diverges (default t0); step 1 diverges too (after t1 ran
        // one segment its clock is ahead, default returns to t0).
        assert_eq!(ctl.divergences(), 2);
    }

    #[test]
    fn override_of_finished_thread_falls_back_to_default() {
        // t1 has only finished segments by step 3; forcing it is ignored.
        let overrides: BTreeMap<usize, usize> = [(0, 1), (1, 1), (2, 1)].into_iter().collect();
        let steps = run_toy(2, 2, overrides);
        let choices: Vec<usize> = steps.iter().map(|s| s.chosen).collect();
        assert_eq!(choices, vec![1, 1, 0, 0], "step 2 override must fall back to t0");
    }

    #[test]
    fn three_thread_enabled_sets_shrink_as_threads_finish() {
        let steps = run_toy(3, 1, BTreeMap::new());
        assert_eq!(steps.len(), 3);
        assert_eq!(steps[0].enabled, vec![0, 1, 2]);
        assert_eq!(steps[1].enabled, vec![1, 2]);
        assert_eq!(steps[2].enabled, vec![2]);
    }
}
