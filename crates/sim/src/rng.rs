//! Deterministic per-thread random number generation.
//!
//! Every source of randomness in the workspace — workload key choices,
//! operation-mix draws, spurious-abort injection, fault schedules — derives
//! from a `(global seed, stream)` pair so that a whole experiment is
//! reproducible from a single seed. The generator is self-contained
//! (xoshiro256++ seeded via SplitMix64) so the simulator has no external
//! RNG dependency.

/// A deterministic RNG stream.
///
/// xoshiro256++ state seeded from the `(seed, stream)` pair via SplitMix64,
/// fixing the seeding scheme so every component derives its stream the same
/// way.
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
}

/// The SplitMix64 finalizer: a bijective avalanche of one 64-bit word.
fn splitmix_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Create the RNG for (`seed`, `stream`). Different streams from the
    /// same seed are statistically independent.
    pub fn new(seed: u64, stream: u64) -> Self {
        // Two-word sequential SplitMix64 seeding: the seed word is pushed
        // through the full SplitMix64 finalizer *before* the stream word
        // is folded in and finalized again, and that digest seeds the
        // SplitMix64 draw of the 256-bit xoshiro state (which guarantees
        // the all-zero state, invalid for xoshiro, is unreachable).
        //
        // The previous initializer collapsed the pair linearly
        // (`state = seed ^ stream · C`), so `DetRng::new(a ^ s·C, 0)` and
        // `DetRng::new(a, s)` were byte-identical streams — any component
        // deriving its seed by xor-folding could silently alias another
        // component's stream. Sequential absorption breaks every such
        // linear relation: the stream word lands on an already-avalanched
        // seed digest, never on the raw seed bits.
        let mut state = splitmix_mix(seed.wrapping_add(0x9E37_79B9_7F4A_7C15));
        state = splitmix_mix(state.wrapping_add(stream).wrapping_add(0xD1B5_4A32_D192_ED03));
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            splitmix_mix(state)
        };
        let mut s = [next(), next(), next(), next()];
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        DetRng { s }
    }

    /// Uniform `u64` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Unbiased via rejection sampling on the multiply-high method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 high bits scaled into the unit interval.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// A full-range random `u64` (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream_is_deterministic() {
        let mut a = DetRng::new(42, 7);
        let mut b = DetRng::new(42, 7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = DetRng::new(42, 0);
        let mut b = DetRng::new(42, 1);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn old_seeding_collisions_now_diverge() {
        // Regression: the old initializer set the SplitMix state to
        // `seed ^ stream · C`, so `new(a ^ s·C, 0)` and `new(a, s)`
        // produced byte-identical streams for every (a, s). Construct
        // that exact colliding pair and require divergence.
        const C: u64 = 0x9E37_79B9_7F4A_7C15;
        for (a, s) in [(42u64, 7u64), (0, 1), (0xDEAD_BEEF, 0xF00D), (u64::MAX, C)] {
            let mut x = DetRng::new(a ^ s.wrapping_mul(C), 0);
            let mut y = DetRng::new(a, s);
            let same = (0..64).filter(|_| x.next_u64() == y.next_u64()).count();
            assert!(same < 4, "(seed {a:#x}, stream {s:#x}): {same}/64 outputs collide");
        }
    }

    #[test]
    fn seed_and_stream_are_not_interchangeable() {
        // Sequential absorption is order-sensitive: swapping the words
        // must give an unrelated stream (the old xor-fold was symmetric
        // up to the multiplier).
        let mut x = DetRng::new(3, 17);
        let mut y = DetRng::new(17, 3);
        let same = (0..64).filter(|_| x.next_u64() == y.next_u64()).count();
        assert!(same < 4, "{same}/64 outputs collide for swapped (seed, stream)");
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::new(1, 1);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn below_covers_range() {
        let mut r = DetRng::new(9, 3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_stays_in_interval() {
        let mut r = DetRng::new(3, 3);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(5, 5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        DetRng::new(0, 0).below(0);
    }
}
