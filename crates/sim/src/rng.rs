//! Deterministic per-thread random number generation.
//!
//! Every source of randomness in the workspace — workload key choices,
//! operation-mix draws, spurious-abort injection — derives from a
//! `(global seed, stream)` pair so that a whole experiment is reproducible
//! from a single seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic RNG stream.
///
/// Thin wrapper over [`rand::rngs::SmallRng`] that fixes the seeding scheme
/// so every component derives its stream the same way.
#[derive(Debug, Clone)]
pub struct DetRng {
    rng: SmallRng,
}

impl DetRng {
    /// Create the RNG for (`seed`, `stream`). Different streams from the
    /// same seed are statistically independent.
    pub fn new(seed: u64, stream: u64) -> Self {
        // SplitMix64 over the pair gives well-distributed 32-byte seeds.
        let mut state = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut bytes = [0u8; 32];
        for chunk in bytes.chunks_mut(8) {
            chunk.copy_from_slice(&next().to_le_bytes());
        }
        DetRng { rng: SmallRng::from_seed(bytes) }
    }

    /// Uniform `u64` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        self.rng.gen_range(0..bound)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.rng.gen::<f64>() < p
        }
    }

    /// A full-range random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream_is_deterministic() {
        let mut a = DetRng::new(42, 7);
        let mut b = DetRng::new(42, 7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = DetRng::new(42, 0);
        let mut b = DetRng::new(42, 1);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::new(1, 1);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(5, 5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        DetRng::new(0, 0).below(0);
    }
}
