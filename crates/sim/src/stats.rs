//! Execution counters matching the paper's Section 4 definitions.
//!
//! For each run the paper measures, per completed operation:
//!
//! * `S` — operations that completed via a *successful speculative*
//!   (transactional) execution,
//! * `A` — *aborted* speculative attempts,
//! * `N` — operations that completed via a *non-speculative* execution
//!   (holding the real lock),
//!
//! from which it derives the fraction of non-speculative completions
//! `N / (N + S)` and the average number of critical-section attempts per
//! operation `(A + N + S) / (N + S)`. It also counts arrivals that found
//! the lock held (the "TTAS Arrival with Lock Held" line in Figure 2).

/// Why a speculative attempt aborted, as the telemetry layer classifies
/// it (a refinement of the raw HTM abort reason).
///
/// The taxonomy separates the conflict class the paper's analysis hinges
/// on: a *lock-word* conflict (the lemming-effect trigger — some thread
/// wrote the lock's cache line, dooming every eliding transaction at
/// once) versus an ordinary *data* conflict on the protected structure.
/// The HTM layer performs the classification, since only it knows which
/// cache lines hold lock words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortCause {
    /// A conflicting access on a data (non-lock) cache line.
    DataConflict,
    /// A conflicting access on a cache line holding a lock word — the
    /// signature of the lemming effect.
    LockWordConflict,
    /// Read- or write-set capacity overflow.
    Capacity,
    /// The transaction aborted itself (`XABORT`), e.g. on observing the
    /// lock busy under SLR's commit-time subscription.
    Explicit,
    /// An injected abort: the seeded spurious-abort model or a chaos
    /// fault (abort storm).
    FaultInjected,
    /// An HLE commit failed because the elided lock word was not restored
    /// to its original value.
    HleRestore,
    /// The hardware dangerous-instruction screen (arXiv 1407.6968) caught
    /// a lazily subscribed transaction writing a lock-marked line — a
    /// zombie's wild store, aborted at the offending access.
    DangerousInstruction,
}

impl AbortCause {
    /// Every cause, in the fixed order used by [`CauseHistogram`] and the
    /// JSON/CSV emitters.
    pub const ALL: [AbortCause; 7] = [
        AbortCause::DataConflict,
        AbortCause::LockWordConflict,
        AbortCause::Capacity,
        AbortCause::Explicit,
        AbortCause::FaultInjected,
        AbortCause::HleRestore,
        AbortCause::DangerousInstruction,
    ];

    /// A stable snake_case label (JSON keys, CSV headers).
    pub fn label(&self) -> &'static str {
        match self {
            AbortCause::DataConflict => "data_conflict",
            AbortCause::LockWordConflict => "lock_word_conflict",
            AbortCause::Capacity => "capacity",
            AbortCause::Explicit => "explicit",
            AbortCause::FaultInjected => "fault_injected",
            AbortCause::HleRestore => "hle_restore",
            AbortCause::DangerousInstruction => "dangerous_instruction",
        }
    }

    fn index(self) -> usize {
        match self {
            AbortCause::DataConflict => 0,
            AbortCause::LockWordConflict => 1,
            AbortCause::Capacity => 2,
            AbortCause::Explicit => 3,
            AbortCause::FaultInjected => 4,
            AbortCause::HleRestore => 5,
            AbortCause::DangerousInstruction => 6,
        }
    }
}

/// A fixed-size histogram over [`AbortCause`].
///
/// The telemetry invariant — checked by the `diag_aborts` binary and the
/// chaos property tests — is that [`CauseHistogram::total`] equals the
/// aborted-attempt count `A` of the owning [`OpCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CauseHistogram {
    counts: [u64; 7],
}

impl CauseHistogram {
    /// An all-zero histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one abort of the given cause.
    pub fn record(&mut self, cause: AbortCause) {
        self.counts[cause.index()] += 1;
    }

    /// The count recorded for `cause`.
    pub fn get(&self, cause: AbortCause) -> u64 {
        self.counts[cause.index()]
    }

    /// Total aborts across all causes.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Add another histogram into this one.
    pub fn merge(&mut self, other: &CauseHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// `(cause, count)` pairs in the fixed [`AbortCause::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (AbortCause, u64)> + '_ {
        AbortCause::ALL.iter().map(move |&c| (c, self.get(c)))
    }
}

/// A sparse histogram of the cache lines on which conflict aborts were
/// attributed (`AbortStatus::conflict_line` of each unwound attempt).
///
/// This is the dynamic counterpart of the static advisor's predicted
/// hot-line set: the `elision_lint` cross-validation sweep asserts that
/// every line appearing here was predicted hot. Opt-in per strand (like
/// the cause-slot recorder) because a `BTreeMap` per abort is too heavy
/// for the default bench hot path — and note the attribution itself is
/// best-effort (a concurrent doom may overwrite the line hint), which is
/// why the map is keyed by whatever line the status carried.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConflictLineHistogram {
    counts: std::collections::BTreeMap<u32, u64>,
}

impl ConflictLineHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one abort attributed to `line`.
    pub fn record(&mut self, line: u32) {
        *self.counts.entry(line).or_insert(0) += 1;
    }

    /// The count recorded for `line`.
    pub fn get(&self, line: u32) -> u64 {
        self.counts.get(&line).copied().unwrap_or(0)
    }

    /// Total attributed aborts.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Add another histogram into this one.
    pub fn merge(&mut self, other: &ConflictLineHistogram) {
        for (&line, &n) in &other.counts {
            *self.counts.entry(line).or_insert(0) += n;
        }
    }

    /// `(line, count)` pairs in ascending line order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.counts.iter().map(|(&l, &n)| (l, n))
    }

    /// The distinct lines, ascending.
    pub fn lines(&self) -> Vec<u32> {
        self.counts.keys().copied().collect()
    }
}

/// How a single critical-section attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttemptKind {
    /// The attempt committed speculatively (counts toward `S`).
    Speculative,
    /// The attempt aborted (counts toward `A`).
    Aborted,
    /// The operation completed under the real lock (counts toward `N`).
    NonSpeculative,
}

/// Per-thread operation counters (the paper's `S`, `A`, `N`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounters {
    /// Successful speculative completions (`S`).
    pub speculative: u64,
    /// Aborted speculative attempts (`A`).
    pub aborted: u64,
    /// Non-speculative completions (`N`).
    pub nonspeculative: u64,
    /// Arrivals that observed the lock held before attempting elision.
    pub arrived_lock_held: u64,
    /// Abort-cause breakdown of the `aborted` attempts, recorded by the
    /// HTM layer as each abort unwinds. Invariant: `causes.total()`
    /// equals `aborted` whenever every transaction of the strand runs
    /// under an elision scheme.
    pub causes: CauseHistogram,
}

impl OpCounters {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one attempt outcome.
    pub fn record(&mut self, kind: AttemptKind) {
        match kind {
            AttemptKind::Speculative => self.speculative += 1,
            AttemptKind::Aborted => self.aborted += 1,
            AttemptKind::NonSpeculative => self.nonspeculative += 1,
        }
    }

    /// Total completed operations (`S + N`).
    pub fn completed(&self) -> u64 {
        self.speculative + self.nonspeculative
    }

    /// Total critical-section attempts (`A + N + S`).
    pub fn total_attempts(&self) -> u64 {
        self.aborted + self.completed()
    }

    /// The fraction of operations completing non-speculatively,
    /// `N / (N + S)`; `0.0` when nothing completed.
    pub fn frac_nonspeculative(&self) -> f64 {
        let c = self.completed();
        if c == 0 {
            0.0
        } else {
            self.nonspeculative as f64 / c as f64
        }
    }

    /// Average execution attempts per completed operation,
    /// `(A + N + S) / (N + S)`; `0.0` when nothing completed.
    pub fn attempts_per_op(&self) -> f64 {
        let c = self.completed();
        if c == 0 {
            0.0
        } else {
            (self.aborted + c) as f64 / c as f64
        }
    }

    /// Fraction of arrivals that found the lock already held, relative to
    /// completed operations.
    pub fn frac_arrived_lock_held(&self) -> f64 {
        let c = self.completed();
        if c == 0 {
            0.0
        } else {
            self.arrived_lock_held as f64 / c as f64
        }
    }

    /// Merge another counter set into this one (summing fields).
    pub fn merge(&mut self, other: &OpCounters) {
        self.speculative += other.speculative;
        self.aborted += other.aborted;
        self.nonspeculative += other.nonspeculative;
        self.arrived_lock_held += other.arrived_lock_held;
        self.causes.merge(&other.causes);
    }

    /// Sum an iterator of counters.
    pub fn sum<'a>(iter: impl IntoIterator<Item = &'a OpCounters>) -> OpCounters {
        let mut acc = OpCounters::new();
        for c in iter {
            acc.merge(c);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics_match_paper_formulas() {
        let mut c = OpCounters::new();
        for _ in 0..70 {
            c.record(AttemptKind::Speculative);
        }
        for _ in 0..30 {
            c.record(AttemptKind::NonSpeculative);
        }
        for _ in 0..50 {
            c.record(AttemptKind::Aborted);
        }
        assert_eq!(c.completed(), 100);
        assert!((c.frac_nonspeculative() - 0.3).abs() < 1e-12);
        assert!((c.attempts_per_op() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_counters_do_not_divide_by_zero() {
        let c = OpCounters::new();
        assert_eq!(c.frac_nonspeculative(), 0.0);
        assert_eq!(c.attempts_per_op(), 0.0);
        assert_eq!(c.frac_arrived_lock_held(), 0.0);
    }

    #[test]
    fn merge_and_sum() {
        let mut a = OpCounters {
            speculative: 1,
            aborted: 2,
            nonspeculative: 3,
            arrived_lock_held: 4,
            ..OpCounters::new()
        };
        a.causes.record(AbortCause::DataConflict);
        a.causes.record(AbortCause::LockWordConflict);
        let b = a;
        a.merge(&b);
        assert_eq!(a.speculative, 2);
        assert_eq!(a.arrived_lock_held, 8);
        assert_eq!(a.causes.total(), 4);
        assert_eq!(a.causes.get(AbortCause::LockWordConflict), 2);
        let total = OpCounters::sum([&a, &b]);
        assert_eq!(total.nonspeculative, 9);
        assert_eq!(total.causes.total(), 6);
        assert_eq!(total.total_attempts(), 18);
    }

    #[test]
    fn conflict_line_histogram_tallies_and_merges() {
        let mut h = ConflictLineHistogram::new();
        assert!(h.is_empty());
        h.record(7);
        h.record(7);
        h.record(3);
        assert_eq!(h.total(), 3);
        assert_eq!(h.get(7), 2);
        assert_eq!(h.get(0), 0);
        assert_eq!(h.lines(), vec![3, 7]);
        let mut acc = ConflictLineHistogram::new();
        acc.record(3);
        acc.merge(&h);
        assert_eq!(acc.get(3), 2);
        assert_eq!(acc.iter().collect::<Vec<_>>(), vec![(3, 2), (7, 2)]);
    }

    #[test]
    fn cause_histogram_tallies_and_iterates() {
        let mut h = CauseHistogram::new();
        h.record(AbortCause::Capacity);
        h.record(AbortCause::Capacity);
        h.record(AbortCause::FaultInjected);
        assert_eq!(h.total(), 3);
        assert_eq!(h.get(AbortCause::Capacity), 2);
        assert_eq!(h.get(AbortCause::Explicit), 0);
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs.len(), 7);
        assert_eq!(pairs[2], (AbortCause::Capacity, 2));
        // Labels are stable snake_case identifiers (JSON keys).
        for (cause, _) in h.iter() {
            assert!(cause.label().chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }
}
