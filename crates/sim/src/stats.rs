//! Execution counters matching the paper's Section 4 definitions.
//!
//! For each run the paper measures, per completed operation:
//!
//! * `S` — operations that completed via a *successful speculative*
//!   (transactional) execution,
//! * `A` — *aborted* speculative attempts,
//! * `N` — operations that completed via a *non-speculative* execution
//!   (holding the real lock),
//!
//! from which it derives the fraction of non-speculative completions
//! `N / (N + S)` and the average number of critical-section attempts per
//! operation `(A + N + S) / (N + S)`. It also counts arrivals that found
//! the lock held (the "TTAS Arrival with Lock Held" line in Figure 2).

/// How a single critical-section attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttemptKind {
    /// The attempt committed speculatively (counts toward `S`).
    Speculative,
    /// The attempt aborted (counts toward `A`).
    Aborted,
    /// The operation completed under the real lock (counts toward `N`).
    NonSpeculative,
}

/// Per-thread operation counters (the paper's `S`, `A`, `N`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounters {
    /// Successful speculative completions (`S`).
    pub speculative: u64,
    /// Aborted speculative attempts (`A`).
    pub aborted: u64,
    /// Non-speculative completions (`N`).
    pub nonspeculative: u64,
    /// Arrivals that observed the lock held before attempting elision.
    pub arrived_lock_held: u64,
}

impl OpCounters {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one attempt outcome.
    pub fn record(&mut self, kind: AttemptKind) {
        match kind {
            AttemptKind::Speculative => self.speculative += 1,
            AttemptKind::Aborted => self.aborted += 1,
            AttemptKind::NonSpeculative => self.nonspeculative += 1,
        }
    }

    /// Total completed operations (`S + N`).
    pub fn completed(&self) -> u64 {
        self.speculative + self.nonspeculative
    }

    /// The fraction of operations completing non-speculatively,
    /// `N / (N + S)`; `0.0` when nothing completed.
    pub fn frac_nonspeculative(&self) -> f64 {
        let c = self.completed();
        if c == 0 {
            0.0
        } else {
            self.nonspeculative as f64 / c as f64
        }
    }

    /// Average execution attempts per completed operation,
    /// `(A + N + S) / (N + S)`; `0.0` when nothing completed.
    pub fn attempts_per_op(&self) -> f64 {
        let c = self.completed();
        if c == 0 {
            0.0
        } else {
            (self.aborted + c) as f64 / c as f64
        }
    }

    /// Fraction of arrivals that found the lock already held, relative to
    /// completed operations.
    pub fn frac_arrived_lock_held(&self) -> f64 {
        let c = self.completed();
        if c == 0 {
            0.0
        } else {
            self.arrived_lock_held as f64 / c as f64
        }
    }

    /// Merge another counter set into this one (summing fields).
    pub fn merge(&mut self, other: &OpCounters) {
        self.speculative += other.speculative;
        self.aborted += other.aborted;
        self.nonspeculative += other.nonspeculative;
        self.arrived_lock_held += other.arrived_lock_held;
    }

    /// Sum an iterator of counters.
    pub fn sum<'a>(iter: impl IntoIterator<Item = &'a OpCounters>) -> OpCounters {
        let mut acc = OpCounters::new();
        for c in iter {
            acc.merge(c);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics_match_paper_formulas() {
        let mut c = OpCounters::new();
        for _ in 0..70 {
            c.record(AttemptKind::Speculative);
        }
        for _ in 0..30 {
            c.record(AttemptKind::NonSpeculative);
        }
        for _ in 0..50 {
            c.record(AttemptKind::Aborted);
        }
        assert_eq!(c.completed(), 100);
        assert!((c.frac_nonspeculative() - 0.3).abs() < 1e-12);
        assert!((c.attempts_per_op() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_counters_do_not_divide_by_zero() {
        let c = OpCounters::new();
        assert_eq!(c.frac_nonspeculative(), 0.0);
        assert_eq!(c.attempts_per_op(), 0.0);
        assert_eq!(c.frac_arrived_lock_held(), 0.0);
    }

    #[test]
    fn merge_and_sum() {
        let mut a =
            OpCounters { speculative: 1, aborted: 2, nonspeculative: 3, arrived_lock_held: 4 };
        let b = a;
        a.merge(&b);
        assert_eq!(a.speculative, 2);
        assert_eq!(a.arrived_lock_held, 8);
        let total = OpCounters::sum([&a, &b]);
        assert_eq!(total.nonspeculative, 9);
    }
}
