//! Time-slot statistics for the paper's Figure 3.
//!
//! Figure 3 divides an execution into 1 ms slots and plots, per slot, the
//! throughput normalized to the whole-run average and the fraction of
//! operations completing non-speculatively. Here "time" is simulated
//! cycles, so a slot is a fixed number of cycles.
//!
//! [`CauseSlotRecorder`] buckets *abort causes* by the same slots, so the
//! serialization dynamics can be read against what triggered them (e.g. a
//! burst of lock-word conflicts right before a non-speculative plateau —
//! the lemming effect in time).

use crate::stats::{AbortCause, CauseHistogram};
use std::collections::BTreeMap;

/// Number of slots stored densely (as vector entries). A completion at a
/// huge timestamp — a long chaos run with a small `slot_cycles`, or an
/// adversarial `now` near `u64::MAX` — previously forced a
/// `resize(slot + 1)` of O(now / slot_cycles) zeroed entries (after an
/// `as usize` cast that truncates on 32-bit targets); slots at or beyond
/// this cap now go to a sparse map instead, so one late event costs one
/// map entry.
const DENSE_SLOT_CAP: u64 = 1 << 16;

/// Split a recording timestamp into a dense index or a sparse slot key.
fn slot_index(now: u64, slot_cycles: u64) -> Result<usize, u64> {
    let slot = now / slot_cycles;
    if slot < DENSE_SLOT_CAP {
        Ok(slot as usize)
    } else {
        Err(slot)
    }
}

/// Add `src` into `dst` slot-wise, zero-extending `dst` first so no tail
/// count on either side is ever dropped (a *total* merge).
fn add_padded(dst: &mut Vec<u64>, src: &[u64]) {
    if src.len() > dst.len() {
        dst.resize(src.len(), 0);
    }
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

/// Histogram counterpart of [`add_padded`]: merge `src` into `dst`
/// slot-wise, extending `dst` with empty histograms as needed.
fn merge_padded(dst: &mut Vec<CauseHistogram>, src: &[CauseHistogram]) {
    if src.len() > dst.len() {
        dst.resize(src.len(), CauseHistogram::new());
    }
    for (d, s) in dst.iter_mut().zip(src) {
        d.merge(s);
    }
}

/// Records completion events bucketed by logical-time slot.
///
/// One recorder per thread; merge them with [`SlotRecorder::merge`] after
/// the run.
#[derive(Debug, Clone)]
pub struct SlotRecorder {
    slot_cycles: u64,
    completed: Vec<u64>,
    nonspec: Vec<u64>,
    /// Sparse `(completed, nonspec)` counts for slots at or beyond
    /// [`DENSE_SLOT_CAP`].
    tail: BTreeMap<u64, (u64, u64)>,
}

impl SlotRecorder {
    /// Create a recorder with the given slot width in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `slot_cycles` is zero.
    pub fn new(slot_cycles: u64) -> Self {
        assert!(slot_cycles > 0, "slot width must be positive");
        SlotRecorder {
            slot_cycles,
            completed: Vec::new(),
            nonspec: Vec::new(),
            tail: BTreeMap::new(),
        }
    }

    /// Slot width in cycles.
    pub fn slot_cycles(&self) -> u64 {
        self.slot_cycles
    }

    /// Record one completed operation at logical time `now`;
    /// `nonspeculative` marks completions under the real lock.
    pub fn record(&mut self, now: u64, nonspeculative: bool) {
        match slot_index(now, self.slot_cycles) {
            Ok(slot) => {
                if slot >= self.completed.len() {
                    self.completed.resize(slot + 1, 0);
                    self.nonspec.resize(slot + 1, 0);
                }
                self.completed[slot] += 1;
                if nonspeculative {
                    self.nonspec[slot] += 1;
                }
            }
            Err(slot) => {
                let (c, n) = self.tail.entry(slot).or_insert((0, 0));
                *c += 1;
                if nonspeculative {
                    *n += 1;
                }
            }
        }
    }

    /// Merge another recorder (same slot width) into this one.
    ///
    /// # Panics
    ///
    /// Panics if the slot widths differ.
    pub fn merge(&mut self, other: &SlotRecorder) {
        assert_eq!(self.slot_cycles, other.slot_cycles, "slot widths must match");
        add_padded(&mut self.completed, &other.completed);
        add_padded(&mut self.nonspec, &other.nonspec);
        for (&slot, &(c, n)) in &other.tail {
            let e = self.tail.entry(slot).or_insert((0, 0));
            e.0 += c;
            e.1 += n;
        }
    }

    /// Finish recording and compute the per-slot series.
    pub fn into_series(self) -> SlotSeries {
        let mut series = SlotSeries {
            slot_cycles: self.slot_cycles,
            completed: self.completed,
            nonspec: self.nonspec,
            tail: self.tail,
            normalized_throughput: Vec::new(),
            frac_nonspec: Vec::new(),
        };
        series.recompute();
        series
    }
}

/// Per-slot series derived from a [`SlotRecorder`] (Figure 3's two panels).
#[derive(Debug, Clone)]
pub struct SlotSeries {
    /// Slot width in cycles.
    pub slot_cycles: u64,
    /// Raw completions per slot.
    pub completed: Vec<u64>,
    /// Raw non-speculative completions per slot.
    pub nonspec: Vec<u64>,
    /// Sparse `(completed, nonspec)` counts for slots at or beyond the
    /// dense cap — late stragglers of very long runs. Included in totals
    /// and merges; the derived per-slot vectors below stay dense-only
    /// (the figures plot the dense prefix).
    pub tail: BTreeMap<u64, (u64, u64)>,
    /// Per-slot throughput normalized to the whole-run average (top panel).
    pub normalized_throughput: Vec<f64>,
    /// Per-slot fraction of non-speculative completions (bottom panel).
    pub frac_nonspec: Vec<f64>,
}

impl SlotSeries {
    /// Number of slots.
    pub fn len(&self) -> usize {
        self.completed.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.completed.is_empty()
    }

    /// Merge another series (e.g. a different seed of the same cell) into
    /// this one: raw counts add slot-wise and the derived per-slot ratios
    /// are recomputed over the combined counts.
    ///
    /// This is a *total* merge: each raw vector is independently
    /// zero-extended to the longest input, so mismatched slot counts —
    /// including a series whose `completed` and `nonspec` lengths disagree
    /// (both fields are public) — extend the result instead of silently
    /// truncating tail slots or panicking out of bounds.
    ///
    /// # Panics
    ///
    /// Panics if the slot widths differ.
    pub fn merge(&mut self, other: &SlotSeries) {
        assert_eq!(self.slot_cycles, other.slot_cycles, "slot widths must match");
        add_padded(&mut self.completed, &other.completed);
        add_padded(&mut self.nonspec, &other.nonspec);
        for (&slot, &(c, n)) in &other.tail {
            let e = self.tail.entry(slot).or_insert((0, 0));
            e.0 += c;
            e.1 += n;
        }
        // Square the result up so the derived per-slot vectors (computed by
        // zipping the two) cover every slot that holds a count.
        let width = self.completed.len().max(self.nonspec.len());
        self.completed.resize(width, 0);
        self.nonspec.resize(width, 0);
        self.recompute();
    }

    /// Recompute the derived per-slot vectors from the raw counts.
    fn recompute(&mut self) {
        let total: u64 = self.completed.iter().sum();
        let slots = self.completed.len().max(1) as f64;
        let avg_per_slot = total as f64 / slots;
        self.normalized_throughput = self
            .completed
            .iter()
            .map(|&c| if avg_per_slot > 0.0 { c as f64 / avg_per_slot } else { 0.0 })
            .collect();
        self.frac_nonspec = self
            .completed
            .iter()
            .zip(&self.nonspec)
            .map(|(&c, &n)| if c > 0 { n as f64 / c as f64 } else { 0.0 })
            .collect();
    }

    /// The largest throughput drop relative to average (e.g. `2.5` means
    /// the worst slot ran 2.5x below the run average), ignoring empty
    /// trailing slots.
    pub fn worst_slowdown(&self) -> f64 {
        self.normalized_throughput
            .iter()
            .filter(|&&x| x > 0.0)
            .fold(1.0f64, |acc, &x| acc.max(1.0 / x))
    }
}

/// Records abort causes bucketed by logical-time slot (one recorder per
/// thread; merge afterwards, like [`SlotRecorder`]).
#[derive(Debug, Clone)]
pub struct CauseSlotRecorder {
    slot_cycles: u64,
    slots: Vec<CauseHistogram>,
    /// Sparse histograms for slots at or beyond [`DENSE_SLOT_CAP`].
    tail: BTreeMap<u64, CauseHistogram>,
}

impl CauseSlotRecorder {
    /// Create a recorder with the given slot width in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `slot_cycles` is zero.
    pub fn new(slot_cycles: u64) -> Self {
        assert!(slot_cycles > 0, "slot width must be positive");
        CauseSlotRecorder { slot_cycles, slots: Vec::new(), tail: BTreeMap::new() }
    }

    /// Slot width in cycles.
    pub fn slot_cycles(&self) -> u64 {
        self.slot_cycles
    }

    /// Record one abort of `cause` at logical time `now`.
    pub fn record(&mut self, now: u64, cause: AbortCause) {
        match slot_index(now, self.slot_cycles) {
            Ok(slot) => {
                if slot >= self.slots.len() {
                    self.slots.resize(slot + 1, CauseHistogram::new());
                }
                self.slots[slot].record(cause);
            }
            Err(slot) => {
                self.tail.entry(slot).or_default().record(cause);
            }
        }
    }

    /// Merge another recorder (same slot width) into this one.
    ///
    /// # Panics
    ///
    /// Panics if the slot widths differ.
    pub fn merge(&mut self, other: &CauseSlotRecorder) {
        assert_eq!(self.slot_cycles, other.slot_cycles, "slot widths must match");
        merge_padded(&mut self.slots, &other.slots);
        for (&slot, h) in &other.tail {
            self.tail.entry(slot).or_default().merge(h);
        }
    }

    /// Finish recording.
    pub fn into_series(self) -> CauseSlotSeries {
        CauseSlotSeries { slot_cycles: self.slot_cycles, slots: self.slots, tail: self.tail }
    }
}

/// Per-slot abort-cause histograms derived from a [`CauseSlotRecorder`].
#[derive(Debug, Clone)]
pub struct CauseSlotSeries {
    /// Slot width in cycles.
    pub slot_cycles: u64,
    /// One histogram per slot, earliest first.
    pub slots: Vec<CauseHistogram>,
    /// Sparse histograms for slots at or beyond the dense cap; counted by
    /// [`CauseSlotSeries::totals`] and preserved by merges.
    pub tail: BTreeMap<u64, CauseHistogram>,
}

impl CauseSlotSeries {
    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Merge another series (same slot width) into this one, histogram by
    /// histogram. Total like [`SlotSeries::merge`]: the shorter side is
    /// extended with empty histograms, never truncated.
    ///
    /// # Panics
    ///
    /// Panics if the slot widths differ.
    pub fn merge(&mut self, other: &CauseSlotSeries) {
        assert_eq!(self.slot_cycles, other.slot_cycles, "slot widths must match");
        merge_padded(&mut self.slots, &other.slots);
        for (&slot, h) in &other.tail {
            self.tail.entry(slot).or_default().merge(h);
        }
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty() && self.tail.is_empty()
    }

    /// All slots folded into one histogram, the sparse tail included.
    pub fn totals(&self) -> CauseHistogram {
        let mut acc = CauseHistogram::new();
        for h in &self.slots {
            acc.merge(h);
        }
        for h in self.tail.values() {
            acc.merge(h);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_by_slot() {
        let mut r = SlotRecorder::new(100);
        r.record(5, false);
        r.record(99, true);
        r.record(100, false);
        r.record(250, true);
        let s = r.into_series();
        assert_eq!(s.completed, vec![2, 1, 1]);
        assert!((s.frac_nonspec[0] - 0.5).abs() < 1e-12);
        assert_eq!(s.frac_nonspec[1], 0.0);
        assert_eq!(s.frac_nonspec[2], 1.0);
    }

    #[test]
    fn normalized_throughput_averages_to_one() {
        let mut r = SlotRecorder::new(10);
        for t in 0..100 {
            r.record(t, false);
        }
        let s = r.into_series();
        let mean: f64 = s.normalized_throughput.iter().sum::<f64>() / s.len() as f64;
        assert!((mean - 1.0).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = SlotRecorder::new(10);
        let mut b = SlotRecorder::new(10);
        a.record(5, true);
        b.record(15, false);
        b.record(5, false);
        a.merge(&b);
        let s = a.into_series();
        assert_eq!(s.completed, vec![2, 1]);
    }

    #[test]
    fn series_merge_adds_counts_and_recomputes() {
        let mut a = SlotRecorder::new(10);
        a.record(5, true);
        a.record(6, false);
        let mut b = SlotRecorder::new(10);
        b.record(15, false);
        b.record(7, false);
        let mut sa = a.into_series();
        let sb = b.into_series();
        sa.merge(&sb);
        assert_eq!(sa.completed, vec![3, 1]);
        assert_eq!(sa.nonspec, vec![1, 0]);
        // frac_nonspec recomputed over combined counts: 1/3 in slot 0.
        assert!((sa.frac_nonspec[0] - 1.0 / 3.0).abs() < 1e-12);
        // normalized throughput recomputed: avg 2/slot, slot 0 at 1.5x.
        assert!((sa.normalized_throughput[0] - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "slot widths")]
    fn series_merge_rejects_mismatched_widths() {
        let mut a = SlotRecorder::new(10).into_series();
        a.merge(&SlotRecorder::new(20).into_series());
    }

    #[test]
    fn cause_series_merge_adds_histograms() {
        let mut a = CauseSlotRecorder::new(100);
        a.record(10, AbortCause::DataConflict);
        let mut b = CauseSlotRecorder::new(100);
        b.record(20, AbortCause::DataConflict);
        b.record(250, AbortCause::Capacity);
        let mut sa = a.into_series();
        sa.merge(&b.into_series());
        assert_eq!(sa.len(), 3);
        assert_eq!(sa.slots[0].get(AbortCause::DataConflict), 2);
        assert_eq!(sa.slots[2].get(AbortCause::Capacity), 1);
    }

    #[test]
    #[should_panic(expected = "slot widths")]
    fn merge_rejects_mismatched_widths() {
        let mut a = SlotRecorder::new(10);
        let b = SlotRecorder::new(20);
        a.merge(&b);
    }

    #[test]
    fn cause_slots_bucket_and_merge() {
        let mut a = CauseSlotRecorder::new(100);
        a.record(10, AbortCause::LockWordConflict);
        a.record(150, AbortCause::DataConflict);
        let mut b = CauseSlotRecorder::new(100);
        b.record(40, AbortCause::LockWordConflict);
        b.record(350, AbortCause::Capacity);
        a.merge(&b);
        let s = a.into_series();
        assert_eq!(s.len(), 4);
        assert_eq!(s.slots[0].get(AbortCause::LockWordConflict), 2);
        assert_eq!(s.slots[1].get(AbortCause::DataConflict), 1);
        assert_eq!(s.slots[2].total(), 0);
        assert_eq!(s.totals().total(), 4);
    }

    #[test]
    #[should_panic(expected = "slot widths")]
    fn cause_slots_reject_mismatched_widths() {
        let mut a = CauseSlotRecorder::new(10);
        a.merge(&CauseSlotRecorder::new(20));
    }

    /// Build a series directly from raw counts (the public fields allow
    /// internally inconsistent lengths, which merge must tolerate).
    fn raw_series(completed: Vec<u64>, nonspec: Vec<u64>) -> SlotSeries {
        let mut s = SlotSeries {
            slot_cycles: 10,
            completed,
            nonspec,
            tail: BTreeMap::new(),
            normalized_throughput: Vec::new(),
            frac_nonspec: Vec::new(),
        };
        s.recompute();
        s
    }

    #[test]
    fn series_merge_extends_mismatched_lengths_instead_of_truncating() {
        // Regression: `other` with more slots than `self` — and with its
        // own completed/nonspec lengths disagreeing — used to truncate the
        // tail of the longer vector (zip over the shorter) or index out of
        // bounds. A total merge keeps every count.
        let mut a = raw_series(vec![1, 1], vec![1]);
        let b = raw_series(vec![2, 2, 2, 7], vec![0, 0, 0, 0, 9]);
        a.merge(&b);
        assert_eq!(a.completed, vec![3, 3, 2, 7, 0], "tail slots must survive the merge");
        assert_eq!(a.nonspec, vec![1, 0, 0, 0, 9], "nonspec tail must survive the merge");
        assert_eq!(a.normalized_throughput.len(), 5, "derived vectors cover all slots");
        assert_eq!(a.frac_nonspec.len(), 5);
        // Same in the other direction: a longer `self` keeps its tail.
        let mut c = raw_series(vec![5, 5, 5], vec![0, 0, 5]);
        c.merge(&raw_series(vec![1], vec![1]));
        assert_eq!(c.completed, vec![6, 5, 5]);
        assert_eq!(c.nonspec, vec![1, 0, 5]);
    }

    #[test]
    fn cause_series_merge_extends_shorter_side() {
        let mut a = CauseSlotRecorder::new(100);
        a.record(10, AbortCause::Explicit);
        let mut sa = a.into_series();
        let mut b = CauseSlotRecorder::new(100);
        b.record(450, AbortCause::Capacity);
        sa.merge(&b.into_series());
        assert_eq!(sa.len(), 5, "merge extends to the longer series");
        assert_eq!(sa.slots[0].get(AbortCause::Explicit), 1);
        assert_eq!(sa.slots[4].get(AbortCause::Capacity), 1);
    }

    mod merge_props {
        use super::*;
        use proptest::collection::vec;
        use proptest::prelude::*;

        proptest! {
            /// Merging raw slot counts is commutative and total: either
            /// order yields the same per-slot sums, with length equal to
            /// the longest input vector (nothing truncated).
            fn slot_series_merge_commutative_and_length_preserving(
                ac in vec(0u64..1000, 0..10),
                an in vec(0u64..1000, 0..10),
                bc in vec(0u64..1000, 0..10),
                bn in vec(0u64..1000, 0..10),
            ) {
                let want_len = ac.len().max(an.len()).max(bc.len()).max(bn.len());
                let mut ab = raw_series(ac.clone(), an.clone());
                ab.merge(&raw_series(bc.clone(), bn.clone()));
                let mut ba = raw_series(bc.clone(), bn);
                ba.merge(&raw_series(ac.clone(), an));
                prop_assert_eq!(&ab.completed, &ba.completed);
                prop_assert_eq!(&ab.nonspec, &ba.nonspec);
                prop_assert_eq!(ab.completed.len(), want_len);
                prop_assert_eq!(ab.nonspec.len(), want_len);
                // Totals are conserved: no count dropped on either side.
                let total: u64 = ab.completed.iter().sum();
                let want: u64 = ac.iter().chain(&bc).sum();
                prop_assert_eq!(total, want);
            }

            /// Same for the per-slot abort-cause histograms.
            fn cause_series_merge_commutative_and_length_preserving(
                a in vec(vec(0usize..6, 0..5), 0..8),
                b in vec(vec(0usize..6, 0..5), 0..8),
            ) {
                let build = |spec: &[Vec<usize>]| {
                    let mut r = CauseSlotRecorder::new(100);
                    for (slot, causes) in spec.iter().enumerate() {
                        for &c in causes {
                            r.record(slot as u64 * 100, AbortCause::ALL[c]);
                        }
                    }
                    r.into_series()
                };
                let mut ab = build(&a);
                ab.merge(&build(&b));
                let mut ba = build(&b);
                ba.merge(&build(&a));
                prop_assert_eq!(ab.len(), ba.len());
                prop_assert_eq!(&ab.slots, &ba.slots);
                prop_assert_eq!(ab.len(), a.len().max(b.len()));
                prop_assert_eq!(ab.totals().total(), ba.totals().total());
            }
        }
    }

    #[test]
    fn adversarial_now_goes_to_the_sparse_tail() {
        // Regression: a single completion at a huge timestamp used to
        // resize the dense vectors to now/slot_cycles entries — O(10^18)
        // zeroed slots for the worst case below.
        let mut r = SlotRecorder::new(1);
        r.record(u64::MAX, true);
        r.record(u64::MAX, false);
        r.record(DENSE_SLOT_CAP - 1, false); // last dense slot
        let mut s = r.into_series();
        assert_eq!(s.completed.len(), DENSE_SLOT_CAP as usize, "dense prefix is capped");
        assert_eq!(s.tail.get(&u64::MAX), Some(&(2, 1)));
        // The tail survives a series merge.
        let mut r2 = SlotRecorder::new(1);
        r2.record(u64::MAX, true);
        s.merge(&r2.into_series());
        assert_eq!(s.tail.get(&u64::MAX), Some(&(3, 2)));

        let mut c = CauseSlotRecorder::new(1);
        c.record(u64::MAX, AbortCause::Capacity);
        c.record(0, AbortCause::DataConflict);
        let cs = c.into_series();
        assert_eq!(cs.slots.len(), 1, "no dense blow-up");
        assert_eq!(cs.totals().total(), 2, "totals include the sparse tail");
        assert!(!cs.is_empty());
    }

    #[test]
    fn recorder_merge_preserves_sparse_tails() {
        let mut a = SlotRecorder::new(100);
        a.record(u64::MAX - 5, false);
        let mut b = SlotRecorder::new(100);
        b.record(u64::MAX - 5, true);
        a.merge(&b);
        let s = a.into_series();
        assert_eq!(s.tail.values().copied().collect::<Vec<_>>(), vec![(2, 1)]);

        let mut ca = CauseSlotRecorder::new(100);
        ca.record(u64::MAX, AbortCause::Explicit);
        let mut cb = CauseSlotRecorder::new(100);
        cb.record(u64::MAX, AbortCause::Explicit);
        ca.merge(&cb);
        assert_eq!(ca.into_series().totals().get(AbortCause::Explicit), 2);
    }

    #[test]
    fn worst_slowdown_detects_dips() {
        let mut r = SlotRecorder::new(10);
        // Three slots with 4, 4, 1 ops: average 3, worst slot 1 → 3x dip.
        for t in [0, 1, 2, 3, 10, 11, 12, 13, 20] {
            r.record(t, false);
        }
        let s = r.into_series();
        assert!((s.worst_slowdown() - 3.0).abs() < 1e-9);
    }
}
