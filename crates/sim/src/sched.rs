//! The bounded-lag min-clock scheduler.
//!
//! Every simulated thread owns a logical clock. The scheduler's single
//! invariant is the *bounded-lag* rule: a thread may only proceed past an
//! [`SimHandle::advance`] call while
//!
//! ```text
//! clock(self) <= min(clock(t) for live t) + window
//! ```
//!
//! With `window == 0` the rule tightens to "only the lexicographically
//! smallest `(clock, id)` runs", which yields a fully deterministic
//! interleaving.
//!
//! # Parking
//!
//! Threads that violate the rule park on a **per-thread** mutex/condvar
//! pair, and clock changes issue *directed* wakeups: after bumping its
//! clock (or finishing), a thread scans the clocks once and notifies only
//! the peers the new minimum makes runnable — exactly one thread (the new
//! lexicographic minimum) at window 0. The previous design parked every
//! blocked thread on one shared condvar and `notify_all`'d it after every
//! clock change; at window 0 that is a thundering herd of `threads - 1`
//! sleepers woken (and mostly re-parked) per baton hand-off, which on a
//! single-CPU host made futex traffic — not simulated work — the dominant
//! cost of every benchmark.
//!
//! No wakeup is lost: a parker takes its own mutex, publishes its parked
//! flag, and re-checks runnability *before* waiting; a waker bumps the
//! clock first and then takes the target's mutex to notify. Everything is
//! `SeqCst`, so either the waker's scan sees the parked flag (and
//! notifies under the mutex, which the parker holds until it waits), or
//! the parker's runnability re-check sees the waker's new clock.
//!
//! Which threads are runnable is a pure function of the clock vector, so
//! wakeup mechanics cannot change window-0 schedules — every artifact is
//! byte-identical to the broadcast design.

use crate::control::ScheduleControl;
use crate::fault::{FaultPlan, FaultStats, FaultThreadState};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Maximum number of simulated threads (bounded by the conflict-bitmap
/// width used in the HTM layer).
pub(crate) const MAX_THREADS: usize = 64;

/// Sentinel clock value marking a finished thread.
const DONE: u64 = u64::MAX;

/// Pads an atomic to its own cache line to avoid host-level false sharing.
#[derive(Debug)]
#[repr(align(128))]
struct PaddedClock(AtomicU64);

/// One thread's parking place, padded like the clocks so parkers never
/// false-share. Only its owner waits on `cv`; anyone may notify.
#[derive(Debug, Default)]
#[repr(align(128))]
struct Parker {
    /// True while the owner is inside `park` (set and cleared under
    /// `mutex`, read lock-free by wakers).
    parked: AtomicBool,
    mutex: Mutex<()>,
    cv: Condvar,
}

/// The shared scheduler state for one simulation run.
#[derive(Debug)]
pub struct Scheduler {
    window: u64,
    times: Vec<PaddedClock>,
    /// Per-thread parking places for the directed-wakeup protocol.
    parkers: Vec<Parker>,
    /// The start gate (cold path: crossed once per thread per run).
    start: Mutex<bool>,
    start_cv: Condvar,
    /// Per-thread fault-schedule state; empty when no faults are injected.
    /// Each entry is only ever locked by its own thread, so the mutexes are
    /// uncontended — they exist to make the state shareable via `&self`.
    faults: Vec<Mutex<FaultThreadState>>,
    /// When set, every `advance` is a serialized decision point driven by
    /// the model checker instead of the bounded-lag parking rule.
    control: Option<Arc<ScheduleControl>>,
}

impl Scheduler {
    /// Create a scheduler for `threads` simulated threads with the given
    /// bounded-lag `window`.
    pub fn new(threads: usize, window: u64) -> Self {
        Self::with_faults(threads, window, FaultPlan::none())
    }

    /// Create a scheduler that additionally injects the faults described by
    /// `plan` (see [`FaultPlan`]). An inactive plan is free.
    pub fn with_faults(threads: usize, window: u64, plan: FaultPlan) -> Self {
        assert!((1..=MAX_THREADS).contains(&threads));
        let faults = if plan.is_active() {
            (0..threads).map(|tid| Mutex::new(FaultThreadState::new(plan, tid))).collect()
        } else {
            Vec::new()
        };
        Scheduler {
            window,
            times: (0..threads).map(|_| PaddedClock(AtomicU64::new(0))).collect(),
            parkers: (0..threads).map(|_| Parker::default()).collect(),
            start: Mutex::new(false),
            start_cv: Condvar::new(),
            faults,
            control: None,
        }
    }

    /// Create a scheduler whose interleaving is dictated by `control`
    /// (see [`ScheduleControl`]). Controlled runs are always window 0 and
    /// never inject faults: the clock still accrues per-thread costs (it
    /// feeds the default min-clock choice and the final makespan), but
    /// parking is replaced by the control's serialized turn-taking.
    pub fn with_control(threads: usize, control: Arc<ScheduleControl>) -> Self {
        assert_eq!(control.threads(), threads, "control sized for a different thread count");
        let mut s = Self::with_faults(threads, 0, FaultPlan::none());
        s.control = Some(control);
        s
    }

    /// The faults injected so far into thread `id`, or `None` when the run
    /// has no fault plan.
    pub fn fault_stats(&self, id: usize) -> Option<FaultStats> {
        self.faults.get(id).map(|f| f.lock().stats())
    }

    /// Number of simulated threads.
    pub fn threads(&self) -> usize {
        self.times.len()
    }

    /// The bounded-lag window.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Open the start gate, releasing all simulated threads.
    pub fn release_start(&self) {
        let mut started = self.start.lock();
        *started = true;
        self.start_cv.notify_all();
    }

    fn wait_for_start(&self) {
        let mut started = self.start.lock();
        while !*started {
            self.start_cv.wait(&mut started);
        }
    }

    /// Read thread `id`'s clock (`u64::MAX` once finished).
    pub fn time_of(&self, id: usize) -> u64 {
        self.times[id].0.load(Ordering::SeqCst)
    }

    /// The smallest live clock and the id holding it (ties broken by the
    /// smaller id). Returns `(DONE, 0)` when every thread has finished.
    fn min_clock(&self) -> (u64, usize) {
        let mut best = DONE;
        let mut best_id = 0;
        for (id, t) in self.times.iter().enumerate() {
            let v = t.0.load(Ordering::SeqCst);
            if v < best {
                best = v;
                best_id = id;
            }
        }
        (best, best_id)
    }

    fn is_runnable(&self, id: usize, my_time: u64) -> bool {
        let (min, min_id) = self.min_clock();
        if min == DONE {
            return true;
        }
        if self.window == 0 {
            (my_time, id) <= (min, min_id)
        } else {
            my_time <= min.saturating_add(self.window)
        }
    }

    /// Notify thread `target` if it is parked. Taking the parker's mutex
    /// before notifying orders this wakeup after the parker has either
    /// re-checked runnability (seeing the caller's prior clock change) or
    /// entered the condvar wait — so no wakeup is lost.
    fn wake(&self, target: usize) {
        let p = &self.parkers[target];
        if p.parked.load(Ordering::SeqCst) {
            let _g = p.mutex.lock();
            p.cv.notify_one();
        }
    }

    /// Directed wakeups after a clock change by (or finish of) `id`: scan
    /// the clocks once and notify exactly the peers the new state makes
    /// runnable — the new lexicographic minimum at window 0, every thread
    /// back inside the lag window otherwise. Returns the scanned
    /// `(min, min_id)` so `advance` can reuse it for its own runnability
    /// check without a second scan.
    fn wake_runnable(&self, id: usize) -> (u64, usize) {
        let (min, min_id) = self.min_clock();
        if min == DONE {
            // Everyone finished; defensively release any parked stragglers
            // (is_runnable is vacuously true for them now).
            for t in 0..self.parkers.len() {
                self.wake(t);
            }
        } else if self.window == 0 {
            // Exactly one thread is runnable: the minimum. Skip the
            // self-notify when the caller kept the baton.
            if min_id != id {
                self.wake(min_id);
            }
        } else {
            let cap = min.saturating_add(self.window);
            for t in 0..self.parkers.len() {
                if t != id && self.times[t].0.load(Ordering::SeqCst) <= cap {
                    self.wake(t);
                }
            }
        }
        (min, min_id)
    }

    /// Block until the bounded-lag rule readmits thread `id` at clock `t`.
    fn park(&self, id: usize, t: u64) {
        let p = &self.parkers[id];
        let mut guard = p.mutex.lock();
        p.parked.store(true, Ordering::SeqCst);
        // Re-check under the mutex: a waker that missed our parked flag
        // has already bumped its clock, so this check sees it.
        while !self.is_runnable(id, t) {
            p.cv.wait(&mut guard);
        }
        p.parked.store(false, Ordering::SeqCst);
    }

    fn advance(&self, id: usize, cost: u64) {
        if let Some(ctl) = &self.control {
            self.times[id].0.fetch_add(cost, Ordering::SeqCst);
            ctl.at_decision_point(id, &|tid| self.times[tid].0.load(Ordering::SeqCst));
            return;
        }
        let cost = match self.faults.get(id) {
            Some(f) => {
                let now = self.times[id].0.load(Ordering::SeqCst);
                cost + f.lock().extra_cycles(now, cost)
            }
            None => cost,
        };
        let t = self.times[id].0.fetch_add(cost, Ordering::SeqCst) + cost;
        // Single-thread fast path: alone, the bounded-lag rule is always
        // satisfied and there is no one to wake (fill phases and
        // single-thread baselines take this branch on every advance).
        if self.times.len() == 1 {
            return;
        }
        let (min, min_id) = self.wake_runnable(id);
        let runnable = if min == DONE {
            true
        } else if self.window == 0 {
            (t, id) <= (min, min_id)
        } else {
            t <= min.saturating_add(self.window)
        };
        if !runnable {
            self.park(id, t);
        }
    }

    fn finish(&self, id: usize) {
        self.times[id].0.store(DONE, Ordering::SeqCst);
        if let Some(ctl) = &self.control {
            ctl.thread_finished(id, &|tid| self.times[tid].0.load(Ordering::SeqCst));
            return;
        }
        if self.times.len() > 1 {
            self.wake_runnable(id);
        }
    }
}

/// A per-thread handle onto the scheduler.
///
/// Cloning is cheap; clones share the same underlying clock.
#[derive(Debug, Clone)]
pub struct SimHandle {
    sched: Arc<Scheduler>,
    id: usize,
}

impl SimHandle {
    /// Create a handle for simulated thread `id`.
    pub fn new(sched: Arc<Scheduler>, id: usize) -> Self {
        assert!(id < sched.threads());
        SimHandle { sched, id }
    }

    /// The simulated thread id this handle represents.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Total number of simulated threads in this run.
    pub fn threads(&self) -> usize {
        self.sched.threads()
    }

    /// The thread's current logical clock, in cycles.
    pub fn now(&self) -> u64 {
        self.sched.time_of(self.id)
    }

    /// Advance the thread's logical clock by `cost` cycles, blocking while
    /// the bounded-lag rule forbids this thread from running.
    ///
    /// This is the simulation's only yield point: all simulated work —
    /// memory accesses, spin iterations, transaction bookkeeping, pure
    /// compute — must be accounted through it.
    pub fn advance(&self, cost: u64) {
        self.sched.advance(self.id, cost);
    }

    /// Block until the start gate opens (all simulated threads spawned).
    pub fn wait_for_start(&self) {
        self.sched.wait_for_start();
    }

    /// Whether this run is serialized under a [`ScheduleControl`].
    pub fn controlled(&self) -> bool {
        self.sched.control.is_some()
    }

    /// Report a shared-line access for model-checker footprints. A no-op
    /// outside controlled runs, so instrumentation can call this
    /// unconditionally on hot paths.
    pub fn note_access(&self, line: u32, write: bool) {
        if let Some(ctl) = &self.sched.control {
            ctl.note_access(self.id, line, write);
        }
    }

    /// Decision steps taken so far in a controlled run (0 otherwise).
    /// Monotone over the serialized execution, so usable as a logical
    /// timestamp for operation-history recording.
    pub fn steps_taken(&self) -> u64 {
        self.sched.control.as_ref().map_or(0, |c| c.steps_taken() as u64)
    }

    /// Mark the thread finished, excluding it from min-clock computation
    /// so peers may run ahead freely.
    pub fn finish(&self) {
        self.sched.finish(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_clock_ignores_finished_threads() {
        // NOTE: `advance` may park the calling thread, so scheduler unit
        // tests only drive the non-blocking entry points.
        let s = Scheduler::new(3, 0);
        s.release_start();
        s.finish(0);
        s.finish(1);
        let (min, id) = s.min_clock();
        assert_eq!((min, id), (0, 2), "live thread 2 holds the minimum");
        assert_eq!(s.time_of(0), u64::MAX, "finished threads report DONE");
        // With every peer finished, thread 2 (the minimum) is runnable.
        assert!(s.is_runnable(2, 0));
    }

    #[test]
    fn runnable_respects_window() {
        let s = Scheduler::new(2, 8);
        s.release_start();
        // Thread 0 at 0, thread 1 at 0: both runnable.
        assert!(s.is_runnable(0, 0));
        assert!(s.is_runnable(1, 0));
        // Push thread 0 to 9 while thread 1 is at 0: 9 > 0 + 8.
        assert!(!s.is_runnable(0, 9));
        assert!(s.is_runnable(0, 8));
    }

    #[test]
    fn strict_mode_breaks_ties_by_id() {
        let s = Scheduler::new(2, 0);
        s.release_start();
        // Both clocks 0: only thread 0 is runnable.
        assert!(s.is_runnable(0, 0));
        assert!(!s.is_runnable(1, 0));
    }

    #[test]
    fn all_done_is_runnable() {
        let s = Scheduler::new(2, 0);
        s.release_start();
        s.finish(0);
        s.finish(1);
        assert!(s.is_runnable(0, DONE));
    }

    #[test]
    fn wake_runnable_reports_the_minimum() {
        let s = Scheduler::new(3, 0);
        s.release_start();
        s.times[0].0.store(10, Ordering::SeqCst);
        s.times[2].0.store(4, Ordering::SeqCst);
        // No peers are parked, so this only scans and reports.
        assert_eq!(s.wake_runnable(0), (0, 1));
        s.times[1].0.store(7, Ordering::SeqCst);
        assert_eq!(s.wake_runnable(0), (4, 2));
    }

    #[test]
    fn directed_wakeup_is_not_lost() {
        // One thread parks (not runnable), a peer then advances past it;
        // the parked thread must be released by the directed wakeup. This
        // is the race the Dekker-style flag/clock ordering closes.
        for _ in 0..200 {
            let s = Arc::new(Scheduler::new(2, 0));
            s.release_start();
            // Thread 1 at clock 5: not runnable while thread 0 is at 0.
            let parker = {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    s.times[1].0.store(5, Ordering::SeqCst);
                    if !s.is_runnable(1, 5) {
                        s.park(1, 5);
                    }
                })
            };
            // Thread 0 races ahead to 6 and issues the directed wakeup.
            let waker = {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    s.times[0].0.store(6, Ordering::SeqCst);
                    s.wake_runnable(0);
                })
            };
            waker.join().expect("waker");
            parker.join().expect("parker must be woken");
        }
    }
}
