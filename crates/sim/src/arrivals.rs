//! Open-loop arrival processes on the simulated clock.
//!
//! Closed-loop benchmarks (N threads looping as fast as they can) hide
//! queueing delay: a slow operation simply delays the *next* request,
//! so the latency distribution never sees the backlog — the classic
//! coordinated-omission trap. An **open-loop** workload fixes request
//! arrival times up front, independent of service progress, and
//! measures each request from its *scheduled arrival* to completion, so
//! a stall shows up as queueing delay on every request behind it.
//!
//! This module generates deterministic arrival plans for the service
//! engine: Poisson arrivals (exponential inter-arrival gaps) shaped by
//! a sequence of [`ArrivalPhase`]s (steady load, bursts, diurnal-style
//! linear ramps), plus a [`Zipf`] key sampler for skewed key
//! popularity. Everything is a pure function of a [`DetRng`] stream, so
//! a whole traffic scenario replays byte-identically from one seed.

use crate::rng::DetRng;

/// A phase of an open-loop arrival schedule.
///
/// Arrivals within the phase are Poisson: inter-arrival gaps are drawn
/// from an exponential distribution whose mean interpolates linearly
/// from `mean_gap_start` to `mean_gap_end` over the phase (equal values
/// give steady load; a descending ramp models a diurnal climb toward
/// peak; a short phase with a small gap is a burst).
#[derive(Debug, Clone)]
pub struct ArrivalPhase {
    /// Phase label, carried into telemetry ("steady", "burst", ...).
    pub label: &'static str,
    /// Phase length in simulated cycles.
    pub duration: u64,
    /// Mean inter-arrival gap (cycles) at the start of the phase.
    pub mean_gap_start: f64,
    /// Mean inter-arrival gap (cycles) at the end of the phase.
    pub mean_gap_end: f64,
}

impl ArrivalPhase {
    /// A constant-rate phase with the given mean inter-arrival gap.
    pub fn steady(label: &'static str, duration: u64, mean_gap: f64) -> Self {
        ArrivalPhase { label, duration, mean_gap_start: mean_gap, mean_gap_end: mean_gap }
    }

    /// A linear ramp from one mean gap to another (diurnal-style).
    pub fn ramp(label: &'static str, duration: u64, from_gap: f64, to_gap: f64) -> Self {
        ArrivalPhase { label, duration, mean_gap_start: from_gap, mean_gap_end: to_gap }
    }

    /// Expected number of arrivals in this phase (duration over the
    /// average of the endpoint gaps — exact for steady phases, the
    /// harmonic-free approximation for ramps).
    pub fn expected_arrivals(&self) -> f64 {
        let mean = 0.5 * (self.mean_gap_start + self.mean_gap_end);
        if mean <= 0.0 {
            0.0
        } else {
            self.duration as f64 / mean
        }
    }
}

/// One scheduled request arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Simulated cycle at which the request arrives (enqueue time —
    /// latency is measured from here, not from service start).
    pub at: u64,
    /// Index into the phase list that produced this arrival.
    pub phase: usize,
}

/// Generate the full open-loop arrival schedule for a phase sequence.
///
/// Phases run back to back starting at cycle 0; arrivals are strictly
/// ordered by time (ties broken by draw order are impossible: gaps are
/// rounded up to at least one cycle). The schedule is a pure function
/// of the RNG stream and the phases.
pub fn generate_arrivals(rng: &mut DetRng, phases: &[ArrivalPhase]) -> Vec<Arrival> {
    let mut out = Vec::new();
    let mut phase_start = 0u64;
    for (idx, phase) in phases.iter().enumerate() {
        let end = phase_start + phase.duration;
        let mut t = phase_start;
        loop {
            // Interpolate the mean gap at the current offset into the
            // phase, then draw an exponential gap at that rate.
            let frac = if phase.duration == 0 {
                0.0
            } else {
                (t - phase_start) as f64 / phase.duration as f64
            };
            let mean = phase.mean_gap_start + (phase.mean_gap_end - phase.mean_gap_start) * frac;
            let gap = exponential_gap(rng, mean);
            t = t.saturating_add(gap);
            if t >= end {
                break;
            }
            out.push(Arrival { at: t, phase: idx });
        }
        phase_start = end;
    }
    out
}

/// Draw an exponential inter-arrival gap with the given mean, in whole
/// cycles (at least 1, so arrival times strictly increase).
fn exponential_gap(rng: &mut DetRng, mean: f64) -> u64 {
    let mean = mean.max(1.0);
    // Inverse-CDF sampling; `unit()` is in [0, 1) so the argument of
    // `ln` is in (0, 1] and the result is finite and non-negative.
    let gap = -mean * (1.0 - rng.unit()).ln();
    (gap.round() as u64).max(1)
}

/// A Zipf-distributed key sampler over `[0, n)`.
///
/// Key `k` has weight `1 / (k+1)^theta`; `theta = 0` degenerates to
/// uniform, `theta ≈ 1` is the classic web-traffic skew. Sampling is by
/// binary search over the precomputed CDF — O(log n) per draw, O(n)
/// memory, exact (no rejection).
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative weights; `cdf[k]` = sum of weights of keys `0..=k`.
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler over `n` keys with skew exponent `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf over an empty key domain");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        Zipf { cdf }
    }

    /// Number of keys in the domain.
    pub fn domain(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one key.
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        let total = *self.cdf.last().expect("non-empty by construction");
        let target = rng.unit() * total;
        self.cdf.partition_point(|&c| c <= target) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_deterministic() {
        let phases = [
            ArrivalPhase::steady("steady", 10_000, 50.0),
            ArrivalPhase::ramp("ramp", 10_000, 50.0, 10.0),
        ];
        let a = generate_arrivals(&mut DetRng::new(7, 0), &phases);
        let b = generate_arrivals(&mut DetRng::new(7, 0), &phases);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn arrivals_strictly_increase_and_stay_in_phase() {
        let phases = [ArrivalPhase::steady("a", 5_000, 3.0), ArrivalPhase::steady("b", 5_000, 3.0)];
        let arrivals = generate_arrivals(&mut DetRng::new(1, 2), &phases);
        for w in arrivals.windows(2) {
            assert!(w[0].at < w[1].at, "arrival times must strictly increase");
        }
        for a in &arrivals {
            let (lo, hi) = if a.phase == 0 { (0, 5_000) } else { (5_000, 10_000) };
            assert!(a.at >= lo && a.at < hi, "arrival {a:?} outside its phase");
        }
    }

    #[test]
    fn steady_phase_hits_target_rate() {
        let phases = [ArrivalPhase::steady("s", 1_000_000, 100.0)];
        let n = generate_arrivals(&mut DetRng::new(11, 4), &phases).len() as f64;
        let expected = phases[0].expected_arrivals();
        assert!((n - expected).abs() / expected < 0.05, "got {n} arrivals, expected ~{expected}");
    }

    #[test]
    fn burst_phase_is_denser_than_steady() {
        let phases = [
            ArrivalPhase::steady("steady", 100_000, 200.0),
            ArrivalPhase::steady("burst", 100_000, 20.0),
        ];
        let arrivals = generate_arrivals(&mut DetRng::new(3, 9), &phases);
        let steady = arrivals.iter().filter(|a| a.phase == 0).count();
        let burst = arrivals.iter().filter(|a| a.phase == 1).count();
        assert!(
            burst > 5 * steady,
            "burst ({burst}) should dwarf steady ({steady}) at 10x the rate"
        );
    }

    #[test]
    fn ramp_gets_denser_toward_the_end() {
        let phases = [ArrivalPhase::ramp("ramp", 1_000_000, 400.0, 40.0)];
        let arrivals = generate_arrivals(&mut DetRng::new(5, 5), &phases);
        let first_half = arrivals.iter().filter(|a| a.at < 500_000).count();
        let second_half = arrivals.len() - first_half;
        assert!(
            second_half > 2 * first_half,
            "descending-gap ramp must accelerate: {first_half} then {second_half}"
        );
    }

    #[test]
    fn zipf_skews_toward_low_keys() {
        let zipf = Zipf::new(1000, 0.99);
        let mut rng = DetRng::new(42, 1);
        let mut head = 0;
        let draws = 10_000;
        for _ in 0..draws {
            if zipf.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // Under theta=0.99 the top 10 of 1000 keys carry ~38% of the
        // mass; uniform would give 1%.
        assert!(head > draws / 5, "only {head}/{draws} draws hit the head");
    }

    #[test]
    fn zipf_zero_theta_is_uniformish() {
        let zipf = Zipf::new(100, 0.0);
        let mut rng = DetRng::new(8, 8);
        let mut counts = [0u32; 100];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max - min < 400, "uniform spread expected, got min {min} max {max}");
    }

    #[test]
    fn zipf_covers_domain() {
        let zipf = Zipf::new(8, 1.2);
        let mut rng = DetRng::new(2, 6);
        let mut seen = [false; 8];
        for _ in 0..10_000 {
            seen[zipf.sample(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "every key must be reachable");
    }
}
