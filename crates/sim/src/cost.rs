//! The simulated cost model.
//!
//! All costs are in abstract cycles. The defaults are loosely calibrated to
//! a Haswell-class core (cache-hit loads of a couple of cycles, tens of
//! cycles for transaction begin/commit, an abort penalty of roughly a
//! hundred cycles covering the pipeline flush plus fallback dispatch), but
//! the experiments only depend on their *ratios*: critical sections must be
//! long relative to single accesses and aborts must be expensive relative
//! to commits.

/// Cycle costs charged by the HTM / lock layers for each simulated event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// A (cache-hit) load.
    pub load: u64,
    /// A store.
    pub store: u64,
    /// An atomic read-modify-write (CAS, SWAP, fetch-add).
    pub rmw: u64,
    /// Starting a hardware transaction (`XBEGIN` / `XACQUIRE`).
    pub txn_begin: u64,
    /// Committing a hardware transaction (`XEND` / `XRELEASE`).
    pub txn_commit: u64,
    /// The penalty charged when a transaction aborts (rollback + restart
    /// dispatch).
    pub txn_abort: u64,
    /// One busy-wait iteration (a `PAUSE`-style spin).
    pub spin: u64,
    /// One unit of pure compute issued via `Strand::work`.
    pub work_unit: u64,
}

impl CostModel {
    /// The default Haswell-flavoured cost model.
    ///
    /// Loads/stores model a pointer-chasing mix of L1/L2/L3 hits (~8
    /// cycles), not pure L1 hits: critical sections that traverse linked
    /// structures must be *long relative to the abort penalty*, or the
    /// simulator exhibits an artifact real hardware does not — an aborted
    /// thread's re-executed acquisition lands after the current holder
    /// already released, acquiring the lock non-speculatively and
    /// re-dooming everyone (a self-sustaining convoy). On hardware the
    /// victim's re-executed test-and-set overlaps the holder's critical
    /// section, returns "busy", and the thread re-enters speculation
    /// (paper §4, TTAS analysis).
    pub const fn haswell() -> Self {
        CostModel {
            load: 8,
            store: 8,
            rmw: 16,
            txn_begin: 40,
            txn_commit: 40,
            txn_abort: 150,
            spin: 16,
            work_unit: 1,
        }
    }

    /// A uniform model where every event costs one cycle; useful in tests
    /// that reason about exact clock values.
    pub const fn uniform() -> Self {
        CostModel {
            load: 1,
            store: 1,
            rmw: 1,
            txn_begin: 1,
            txn_commit: 1,
            txn_abort: 1,
            spin: 1,
            work_unit: 1,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::haswell()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_haswell() {
        assert_eq!(CostModel::default(), CostModel::haswell());
    }

    #[test]
    fn aborts_cost_more_than_commits() {
        let c = CostModel::default();
        assert!(c.txn_abort > c.txn_commit);
        assert!(c.txn_begin >= c.load);
    }
}
