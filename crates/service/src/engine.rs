//! The open-loop service engine: shards, workers, and telemetry.

use crate::plan::{build_plan, RequestOp, ServicePlan};
use crate::ServiceSpec;
use elision_core::{make_scheme, LatencyHistogram, Watchdog};
use elision_htm::{harness, HtmConfig, MemoryBuilder};
use elision_sim::OpCounters;
use elision_structures::{HashTable, SimQueue};
use std::sync::Arc;

/// Telemetry of one shard, merged across its workers.
#[derive(Debug, Clone)]
pub struct ShardTelemetry {
    /// S/A/N counters plus the abort-cause histogram — lemming storms
    /// show here as `lock_word_conflict` spikes.
    pub counters: OpCounters,
    /// Requests routed to this shard.
    pub requests: u64,
    /// Per-request latency (arrival to completion) of this shard.
    pub latency: LatencyHistogram,
}

/// Telemetry of one arrival phase.
#[derive(Debug, Clone)]
pub struct PhaseTelemetry {
    /// The phase label from the spec ("steady", "burst", ...).
    pub label: &'static str,
    /// Requests that arrived in this phase.
    pub requests: u64,
    /// Latency of requests that arrived in this phase — a burst's
    /// backlog shows as a p999 blowup here even when the overall
    /// distribution looks tame.
    pub latency: LatencyHistogram,
}

/// The outcome of one service run.
#[derive(Debug, Clone)]
pub struct ServiceResult {
    /// Requests completed (always the plan's total: open-loop workers
    /// drain their assigned queues).
    pub requests: u64,
    /// Simulated makespan of the run.
    pub makespan: u64,
    /// Requests per thousand simulated cycles.
    pub throughput: f64,
    /// Per-request latency across all shards and phases.
    pub latency: LatencyHistogram,
    /// Attempt accounting across all workers.
    pub watchdog: Watchdog,
    /// S/A/N counters summed across all workers.
    pub counters: OpCounters,
    /// Per-shard telemetry, indexed by shard.
    pub shards: Vec<ShardTelemetry>,
    /// Per-phase telemetry, in spec order.
    pub phases: Vec<PhaseTelemetry>,
}

impl ServiceResult {
    /// Fold another run of the *same cell shape* (same shard count and
    /// phase list, e.g. a different seed) into this one. Histograms and
    /// counters merge exactly; throughput is recomputed over the summed
    /// makespan.
    pub fn merge(&mut self, other: &ServiceResult) {
        debug_assert_eq!(self.shards.len(), other.shards.len(), "merging different shard counts");
        debug_assert_eq!(self.phases.len(), other.phases.len(), "merging different phase lists");
        self.requests += other.requests;
        self.makespan += other.makespan;
        self.latency.merge(&other.latency);
        self.watchdog.merge(&other.watchdog);
        self.counters.merge(&other.counters);
        for (a, b) in self.shards.iter_mut().zip(&other.shards) {
            a.counters.merge(&b.counters);
            a.requests += b.requests;
            a.latency.merge(&b.latency);
        }
        for (a, b) in self.phases.iter_mut().zip(&other.phases) {
            debug_assert_eq!(a.label, b.label, "merging different phase orders");
            a.requests += b.requests;
            a.latency.merge(&b.latency);
        }
        self.throughput = self.requests as f64 * 1000.0 / self.makespan.max(1) as f64;
    }
}

/// What each worker thread returns to the harness.
type WorkerOut = (OpCounters, Watchdog, Vec<LatencyHistogram>);

/// Run one open-loop service cell.
///
/// Builds the sharded state (per-shard hash table + queue + lock +
/// elision scheme), materializes the request plan, then runs one
/// simulated worker pool where each worker sleeps until its next
/// request's *scheduled* arrival, executes it under the shard's scheme,
/// and records latency from the scheduled arrival — so backlog behind a
/// slow critical section is charged to every delayed request.
pub fn run_service(spec: &ServiceSpec) -> ServiceResult {
    spec.validate();
    let plan = build_plan(spec);
    let workers = spec.workers();
    let domain = spec.key_domain();

    // Shared state: one table + queue + scheme per shard, all in one
    // simulated memory so conflict detection spans shards (workers of
    // different shards are still isolated — they touch disjoint lines —
    // but the lock words of a hot shard are genuinely contended).
    let mut b = MemoryBuilder::new();
    let mut tables = Vec::with_capacity(spec.shards);
    let mut queues = Vec::with_capacity(spec.shards);
    let mut schemes = Vec::with_capacity(spec.shards);
    let table_capacity = domain as usize + 16;
    let queue_capacity = (spec.keys_per_shard * 2).max(64);
    // Locks and freelists index per-thread slots by the *global* tid, so
    // every shard's structures are sized for the whole worker pool even
    // though only its own workers ever touch them.
    for _ in 0..spec.shards {
        tables.push(HashTable::new(&mut b, spec.keys_per_shard.max(16), table_capacity, workers));
        queues.push(SimQueue::new(&mut b, queue_capacity));
        schemes.push(make_scheme(spec.scheme, spec.lock, spec.scheme_cfg, &mut b, workers));
    }
    let mem = Arc::new(b.freeze(workers));
    for t in &tables {
        t.init(&mem);
    }

    // Fill phase: seed each shard's table with the keys that route to it
    // pre-migration, and give each queue a working backlog so dequeues
    // mostly succeed.
    {
        let tables = tables.clone();
        let shards = spec.shards;
        let fill = spec.shards as u64 * spec.keys_per_shard as u64;
        harness::run_arc(
            1,
            0,
            HtmConfig::deterministic(),
            spec.seed ^ 0xF111,
            Arc::clone(&mem),
            move |s| {
                for key in 0..fill {
                    let shard = crate::plan::shard_of(key, 0, shards);
                    tables[shard].put(s, key, key).expect("fill runs without transactions");
                }
            },
        );
    }
    for t in &tables {
        t.rebalance_freelists(&mem);
    }
    for q in &queues {
        q.fill_direct(&mem, 0..(spec.keys_per_shard as u64 / 2).max(8));
    }

    // Measured phase: one simulated thread per worker, each draining its
    // pre-assigned request queue on the open-loop clock.
    let phase_count = spec.phases.len();
    let wps = spec.workers_per_shard;
    let plan = Arc::new(plan);
    let (results, makespan) = {
        let plan: Arc<ServicePlan> = Arc::clone(&plan);
        let tables = tables.clone();
        let queues = queues.clone();
        let schemes = schemes.clone();
        harness::run_arc(
            workers,
            spec.window,
            spec.htm,
            spec.seed,
            Arc::clone(&mem),
            move |s| -> WorkerOut {
                let tid = s.tid();
                let shard = tid / wps;
                let table = &tables[shard];
                let queue = &queues[shard];
                let scheme = &schemes[shard];
                let mut watchdog = Watchdog::new(0);
                let mut phase_hist = vec![LatencyHistogram::new(); phase_count];
                for req in &plan.per_worker[tid] {
                    // Open-loop: idle until the scheduled arrival. When
                    // the worker is backlogged (now > req.at) it starts
                    // immediately and the queueing delay lands in the
                    // measured latency.
                    let now = s.now();
                    if req.at > now {
                        s.sim().advance(req.at - now);
                    }
                    let key = req.key;
                    let out = scheme.execute(s, |s| match req.op {
                        RequestOp::Get => table.get(s, key).map(|_| ()),
                        RequestOp::Put => table.put(s, key, key).map(|_| ()),
                        RequestOp::Remove => table.remove(s, key).map(|_| ()),
                        RequestOp::Enqueue => queue.push(s, key).map(|_| ()),
                        RequestOp::Dequeue => queue.pop(s).map(|_| ()),
                    });
                    let latency = s.now().saturating_sub(req.at);
                    watchdog.record(out.attempts, latency);
                    phase_hist[req.phase].record(latency);
                }
                (s.counters, watchdog, phase_hist)
            },
        )
    };

    // Aggregate: workers of shard k are tids [k*wps, (k+1)*wps).
    let mut counters = OpCounters::new();
    let mut watchdog = Watchdog::new(0);
    let mut latency = LatencyHistogram::new();
    let mut shard_tel: Vec<ShardTelemetry> = (0..spec.shards)
        .map(|sh| ShardTelemetry {
            counters: OpCounters::new(),
            requests: plan.per_shard[sh],
            latency: LatencyHistogram::new(),
        })
        .collect();
    let mut phase_hist = vec![LatencyHistogram::new(); phase_count];
    for (tid, (c, w, ph)) in results.iter().enumerate() {
        counters.merge(c);
        watchdog.merge(w);
        latency.merge(w.histogram());
        let shard = tid / wps;
        shard_tel[shard].counters.merge(c);
        shard_tel[shard].latency.merge(w.histogram());
        for (acc, h) in phase_hist.iter_mut().zip(ph) {
            acc.merge(h);
        }
    }
    let phases = spec
        .phases
        .iter()
        .zip(phase_hist)
        .enumerate()
        .map(|(i, (p, h))| PhaseTelemetry {
            label: p.label,
            requests: plan.per_phase[i],
            latency: h,
        })
        .collect();

    debug_assert_eq!(latency.count(), plan.total, "every planned request must complete");
    ServiceResult {
        requests: plan.total,
        makespan,
        throughput: plan.total as f64 * 1000.0 / makespan.max(1) as f64,
        latency,
        watchdog,
        counters,
        shards: shard_tel,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elision_core::{LockKind, SchemeKind};
    use elision_sim::{AbortCause, ArrivalPhase};

    fn quick(scheme: SchemeKind) -> ServiceSpec {
        ServiceSpec::quick(scheme, LockKind::Ttas)
    }

    #[test]
    fn service_completes_every_request() {
        let r = run_service(&quick(SchemeKind::Hle));
        assert!(r.requests > 0);
        assert_eq!(r.latency.count(), r.requests);
        assert_eq!(r.watchdog.operations(), r.requests);
        let by_shard: u64 = r.shards.iter().map(|s| s.requests).sum();
        assert_eq!(by_shard, r.requests);
        let shard_lat: u64 = r.shards.iter().map(|s| s.latency.count()).sum();
        assert_eq!(shard_lat, r.requests);
        let by_phase: u64 = r.phases.iter().map(|p| p.requests).sum();
        assert_eq!(by_phase, r.requests);
        assert!(r.throughput > 0.0);
    }

    #[test]
    fn service_run_is_deterministic() {
        let spec = quick(SchemeKind::HleScm);
        let a = run_service(&spec);
        let b = run_service(&spec);
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.makespan, b.makespan);
        for p in [50, 90, 99, 100] {
            assert_eq!(a.latency.percentile(p), b.latency.percentile(p), "p{p}");
        }
        assert_eq!(a.latency.quantile(0.999), b.latency.quantile(0.999));
        for (x, y) in a.shards.iter().zip(&b.shards) {
            assert_eq!(x.counters.aborted, y.counters.aborted);
            assert_eq!(
                x.counters.causes.get(AbortCause::LockWordConflict),
                y.counters.causes.get(AbortCause::LockWordConflict)
            );
        }
    }

    #[test]
    fn burst_raises_tail_latency_at_equal_mean_load() {
        // Coordinated-omission guard: the same number of expected
        // arrivals over the same wall-clock, but one schedule packs half
        // of them into a 4x-rate burst. Open-loop measurement must show
        // the burst's backlog as a strictly higher p999; a closed-loop
        // harness would show nearly identical distributions.
        let mut steady = quick(SchemeKind::Hle);
        steady.phases = vec![ArrivalPhase::steady("steady", 240_000, 120.0)];
        let mut bursty = quick(SchemeKind::Hle);
        bursty.phases = vec![
            ArrivalPhase::steady("lull", 120_000, 360.0),
            ArrivalPhase::steady("burst", 120_000, 72.0),
        ];
        // Equal expected arrivals: 240k/120 == 120k/360 + 120k/72.
        let e_steady = steady.phases.iter().map(|p| p.expected_arrivals()).sum::<f64>();
        let e_burst = bursty.phases.iter().map(|p| p.expected_arrivals()).sum::<f64>();
        assert!((e_steady - e_burst).abs() < 1e-9);

        let r_steady = run_service(&steady);
        let r_bursty = run_service(&bursty);
        let p999_steady = r_steady.latency.quantile(0.999).unwrap();
        let p999_bursty = r_bursty.latency.quantile(0.999).unwrap();
        assert!(
            p999_bursty > p999_steady,
            "burst must blow up the tail: steady p999 {p999_steady}, bursty {p999_bursty}"
        );
    }

    #[test]
    fn phase_telemetry_separates_burst_from_lull() {
        let mut spec = quick(SchemeKind::Hle);
        spec.phases = vec![
            ArrivalPhase::steady("lull", 120_000, 360.0),
            ArrivalPhase::steady("burst", 120_000, 60.0),
        ];
        let r = run_service(&spec);
        assert_eq!(r.phases.len(), 2);
        assert_eq!(r.phases[0].label, "lull");
        assert_eq!(r.phases[1].label, "burst");
        assert!(r.phases[1].requests > r.phases[0].requests * 3);
        let p99_lull = r.phases[0].latency.percentile(99).unwrap();
        let p99_burst = r.phases[1].latency.percentile(99).unwrap();
        assert!(
            p99_burst > p99_lull,
            "burst-phase tail ({p99_burst}) must exceed lull tail ({p99_lull})"
        );
    }

    #[test]
    fn telemetry_invariants_hold_across_schemes() {
        for scheme in [SchemeKind::Hle, SchemeKind::HleScm, SchemeKind::OptSlr] {
            let r = run_service(&quick(scheme));
            assert_eq!(
                r.counters.causes.total(),
                r.counters.aborted,
                "{scheme}: cause histogram must sum to aborted attempts"
            );
            assert_eq!(r.counters.completed(), r.requests, "{scheme}: every request completes");
        }
    }
}
