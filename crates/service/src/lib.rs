//! Open-loop sharded service engine over the elision schemes.
//!
//! Every other benchmark in this workspace is closed-loop: N simulated
//! threads hammer one structure as fast as the scheme lets them, so a
//! stall slows the *offered load* down and the latency distribution
//! never sees the backlog. This crate models the deployment the paper's
//! effects actually matter for — a sharded key-value/queue **service**
//! under *arriving* traffic:
//!
//! - requests arrive on the simulated clock via a Poisson process with
//!   Zipf key skew, shaped by phases (steady, burst, diurnal ramp) and
//!   an optional hot-shard migration ([`plan`]);
//! - each shard owns a hash table, a queue, a lock, and an elision
//!   scheme, served by a fixed worker pool;
//! - each request's latency runs from its *scheduled arrival* to
//!   completion, so queueing delay is measured rather than omitted, and
//!   it lands in a bounded log-bucketed histogram
//!   ([`elision_core::LatencyHistogram`]) good for millions of requests
//!   at fixed memory.
//!
//! A lemming storm under this engine is visible twice at once: the hot
//! shard's abort-cause histogram spikes on `lock_word_conflict`, and the
//! arrival phases behind the storm blow up at p999.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod plan;

pub use engine::{run_service, PhaseTelemetry, ServiceResult, ShardTelemetry};
pub use plan::{build_plan, shard_of, Request, RequestOp, ServiceMix, ServicePlan};

use elision_core::{LockKind, SchemeConfig, SchemeKind};
use elision_htm::HtmConfig;
use elision_sim::ArrivalPhase;

/// Parameters of one open-loop service cell.
#[derive(Debug, Clone)]
pub struct ServiceSpec {
    /// Elision scheme used by every shard.
    pub scheme: SchemeKind,
    /// Main-lock family of every shard.
    pub lock: LockKind,
    /// Number of shards.
    pub shards: usize,
    /// Worker threads per shard (total simulated threads =
    /// `shards * workers_per_shard`, capped by the simulator at 64).
    pub workers_per_shard: usize,
    /// Keys initially resident per shard; the key domain is
    /// `2 * shards * keys_per_shard` (half-full tables, as in the
    /// closed-loop benchmarks).
    pub keys_per_shard: usize,
    /// Zipf skew exponent of key popularity (0 = uniform).
    pub zipf_theta: f64,
    /// Operation mix.
    pub mix: ServiceMix,
    /// Arrival phases, run back to back from cycle 0.
    pub phases: Vec<ArrivalPhase>,
    /// When set, the shard-routing salt flips at this cycle, migrating
    /// the hot key set to a different shard.
    pub migrate_at: Option<u64>,
    /// Scheduler lag window (0 = fully deterministic).
    pub window: u64,
    /// HTM configuration.
    pub htm: HtmConfig,
    /// RNG seed; the whole scenario is a pure function of it.
    pub seed: u64,
    /// Scheme tuning.
    pub scheme_cfg: SchemeConfig,
}

impl ServiceSpec {
    /// A small deterministic cell for tests and `--quick` sweeps.
    pub fn quick(scheme: SchemeKind, lock: LockKind) -> Self {
        ServiceSpec {
            scheme,
            lock,
            shards: 4,
            workers_per_shard: 2,
            keys_per_shard: 64,
            zipf_theta: 0.99,
            mix: ServiceMix::MIXED,
            phases: vec![
                ArrivalPhase::steady("steady", 60_000, 80.0),
                ArrivalPhase::steady("burst", 30_000, 25.0),
            ],
            migrate_at: None,
            window: 0,
            htm: HtmConfig::deterministic(),
            seed: 42,
            scheme_cfg: SchemeConfig::paper(),
        }
    }

    /// Total simulated worker threads.
    pub fn workers(&self) -> usize {
        self.shards * self.workers_per_shard
    }

    /// Size of the key domain.
    pub fn key_domain(&self) -> u64 {
        2 * self.shards as u64 * self.keys_per_shard as u64
    }

    /// Panic early on specs the simulator cannot run.
    pub(crate) fn validate(&self) {
        assert!(self.shards > 0, "at least one shard");
        assert!(self.workers_per_shard > 0, "at least one worker per shard");
        assert!(self.workers() <= 64, "simulator supports at most 64 threads");
        assert!(!self.phases.is_empty(), "at least one arrival phase");
    }
}
