//! Deterministic request-plan generation.
//!
//! The whole traffic scenario — arrival times, operations, keys, shard
//! routing, worker assignment — is materialized up front as a pure
//! function of the spec's seed, *before* any simulated thread runs.
//! This is what makes the engine open-loop: arrival times cannot react
//! to service progress, so queueing delay is measured rather than
//! silently absorbed into the arrival process (coordinated omission).

use crate::ServiceSpec;
use elision_sim::{generate_arrivals, DetRng};

/// RNG streams used by plan generation. They sit far above the strand
/// streams the harness derives per thread (`tid`, `1_000_000 + tid`,
/// `2_000_000 + tid`), so a service plan never aliases a worker's
/// workload/abort/retry stream.
const STREAM_ARRIVALS: u64 = 3_000_001;
const STREAM_OPS: u64 = 3_000_002;
const STREAM_KEYS: u64 = 3_000_003;

/// Routing salt after a hot-shard migration. Chosen so the Zipf head
/// key actually changes shards at common shard counts (salt 1 happens
/// to keep key 0 on the same shard at 4 shards).
const MIGRATED_SALT: u64 = 2;

/// One operation of the sharded key-value/queue service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOp {
    /// Key-value lookup.
    Get,
    /// Key-value insert/overwrite.
    Put,
    /// Key-value delete.
    Remove,
    /// Queue push (value = key).
    Enqueue,
    /// Queue pop.
    Dequeue,
}

/// Operation percentages of the service workload; the remainder after
/// all four named percentages is `Get`.
#[derive(Debug, Clone, Copy)]
pub struct ServiceMix {
    /// Percent of requests that are `Put`.
    pub put_pct: u32,
    /// Percent of requests that are `Remove`.
    pub remove_pct: u32,
    /// Percent of requests that are `Enqueue`.
    pub enqueue_pct: u32,
    /// Percent of requests that are `Dequeue`.
    pub dequeue_pct: u32,
}

impl ServiceMix {
    /// Read-heavy key-value traffic (85% get).
    pub const KV_READ_HEAVY: ServiceMix =
        ServiceMix { put_pct: 10, remove_pct: 5, enqueue_pct: 0, dequeue_pct: 0 };
    /// Write-heavy key-value traffic (50% get).
    pub const KV_WRITE_HEAVY: ServiceMix =
        ServiceMix { put_pct: 35, remove_pct: 15, enqueue_pct: 0, dequeue_pct: 0 };
    /// Mixed key-value + queue traffic.
    pub const MIXED: ServiceMix =
        ServiceMix { put_pct: 15, remove_pct: 10, enqueue_pct: 10, dequeue_pct: 10 };

    /// Draw one operation.
    pub fn draw(&self, rng: &mut DetRng) -> RequestOp {
        let r = rng.below(100) as u32;
        if r < self.put_pct {
            RequestOp::Put
        } else if r < self.put_pct + self.remove_pct {
            RequestOp::Remove
        } else if r < self.put_pct + self.remove_pct + self.enqueue_pct {
            RequestOp::Enqueue
        } else if r < self.put_pct + self.remove_pct + self.enqueue_pct + self.dequeue_pct {
            RequestOp::Dequeue
        } else {
            RequestOp::Get
        }
    }
}

/// One scheduled request, fully determined before the run.
#[derive(Debug, Clone, Copy)]
pub struct Request {
    /// Scheduled arrival cycle (latency is measured from here).
    pub at: u64,
    /// Index of the arrival phase that produced this request.
    pub phase: usize,
    /// The operation.
    pub op: RequestOp,
    /// The key (also the queued value for queue ops).
    pub key: u64,
    /// The shard serving this request.
    pub shard: usize,
}

/// The materialized request plan for one service run.
#[derive(Debug, Clone)]
pub struct ServicePlan {
    /// Requests per worker thread (indexed by simulated tid), each in
    /// arrival order.
    pub per_worker: Vec<Vec<Request>>,
    /// Requests routed to each shard.
    pub per_shard: Vec<u64>,
    /// Requests in each arrival phase.
    pub per_phase: Vec<u64>,
    /// Total requests.
    pub total: u64,
}

/// The SplitMix64 finalizer, used as the shard-routing hash.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The shard serving `key` under routing salt `salt`.
///
/// Routing is by hash, so the Zipf head keys concentrate on whichever
/// shard the salt maps them to — changing the salt mid-run *migrates*
/// the hot set to a different shard (the hot-shard-migration scenario).
pub fn shard_of(key: u64, salt: u64, shards: usize) -> usize {
    (mix64(key ^ salt.wrapping_mul(0xD1B5_4A32_D192_ED03)) % shards as u64) as usize
}

/// Materialize the full request plan for `spec`.
pub fn build_plan(spec: &ServiceSpec) -> ServicePlan {
    let workers = spec.workers();
    let shards = spec.shards;
    let mut rng_arrivals = DetRng::new(spec.seed, STREAM_ARRIVALS);
    let mut rng_ops = DetRng::new(spec.seed, STREAM_OPS);
    let mut rng_keys = DetRng::new(spec.seed, STREAM_KEYS);

    let arrivals = generate_arrivals(&mut rng_arrivals, &spec.phases);
    let zipf = elision_sim::Zipf::new(spec.key_domain() as usize, spec.zipf_theta);

    let mut per_worker: Vec<Vec<Request>> = vec![Vec::new(); workers];
    let mut per_shard = vec![0u64; shards];
    let mut per_phase = vec![0u64; spec.phases.len()];
    // Round-robin dispatch across a shard's workers, like an accept
    // loop handing connections to a worker pool.
    let mut rr = vec![0usize; shards];
    for a in &arrivals {
        let key = zipf.sample(&mut rng_keys);
        let op = spec.mix.draw(&mut rng_ops);
        let salt = match spec.migrate_at {
            Some(at) if a.at >= at => MIGRATED_SALT,
            _ => 0,
        };
        let shard = shard_of(key, salt, shards);
        let worker = shard * spec.workers_per_shard + rr[shard];
        rr[shard] = (rr[shard] + 1) % spec.workers_per_shard;
        per_shard[shard] += 1;
        per_phase[a.phase] += 1;
        per_worker[worker].push(Request { at: a.at, phase: a.phase, op, key, shard });
    }
    let total = arrivals.len() as u64;
    ServicePlan { per_worker, per_shard, per_phase, total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServiceSpec;
    use elision_sim::ArrivalPhase;

    fn spec() -> ServiceSpec {
        let mut s = ServiceSpec::quick(elision_core::SchemeKind::Hle, elision_core::LockKind::Ttas);
        s.phases = vec![
            ArrivalPhase::steady("steady", 50_000, 60.0),
            ArrivalPhase::steady("burst", 20_000, 15.0),
        ];
        s
    }

    #[test]
    fn plan_is_deterministic() {
        let s = spec();
        let a = build_plan(&s);
        let b = build_plan(&s);
        assert_eq!(a.total, b.total);
        assert_eq!(a.per_shard, b.per_shard);
        for (x, y) in a.per_worker.iter().zip(&b.per_worker) {
            assert_eq!(x.len(), y.len());
            for (p, q) in x.iter().zip(y) {
                assert_eq!((p.at, p.op, p.key, p.shard), (q.at, q.op, q.key, q.shard));
            }
        }
    }

    #[test]
    fn plan_conserves_requests() {
        let plan = build_plan(&spec());
        let by_worker: u64 = plan.per_worker.iter().map(|w| w.len() as u64).sum();
        let by_shard: u64 = plan.per_shard.iter().sum();
        let by_phase: u64 = plan.per_phase.iter().sum();
        assert_eq!(by_worker, plan.total);
        assert_eq!(by_shard, plan.total);
        assert_eq!(by_phase, plan.total);
        assert!(plan.total > 0);
    }

    #[test]
    fn workers_only_serve_their_shard() {
        let s = spec();
        let plan = build_plan(&s);
        for (tid, reqs) in plan.per_worker.iter().enumerate() {
            let shard = tid / s.workers_per_shard;
            assert!(reqs.iter().all(|r| r.shard == shard), "worker {tid} crossed shards");
        }
    }

    #[test]
    fn worker_queues_are_in_arrival_order() {
        let plan = build_plan(&spec());
        for reqs in &plan.per_worker {
            for w in reqs.windows(2) {
                assert!(w[0].at < w[1].at);
            }
        }
    }

    #[test]
    fn zipf_skew_creates_a_hot_shard() {
        let mut s = spec();
        s.zipf_theta = 1.2;
        let plan = build_plan(&s);
        let max = *plan.per_shard.iter().max().unwrap();
        let min = *plan.per_shard.iter().min().unwrap();
        assert!(max > min * 2, "skewed keys must concentrate on one shard: {:?}", plan.per_shard);
    }

    #[test]
    fn migration_moves_the_hot_set() {
        let mut s = spec();
        s.zipf_theta = 1.2;
        s.migrate_at = Some(50_000);
        let plan = build_plan(&s);
        // Recompute the pre/post hot shard from the plan itself.
        let mut pre = vec![0u64; s.shards];
        let mut post = vec![0u64; s.shards];
        for reqs in &plan.per_worker {
            for r in reqs {
                if r.at < 50_000 {
                    pre[r.shard] += 1;
                } else {
                    post[r.shard] += 1;
                }
            }
        }
        let hot_pre = pre.iter().enumerate().max_by_key(|(_, &c)| c).unwrap().0;
        let hot_post = post.iter().enumerate().max_by_key(|(_, &c)| c).unwrap().0;
        assert_ne!(hot_pre, hot_post, "salt flip must migrate the hot shard");
    }

    #[test]
    fn mix_draw_covers_all_ops() {
        let mix = ServiceMix::MIXED;
        let mut rng = DetRng::new(5, 0);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let i = match mix.draw(&mut rng) {
                RequestOp::Get => 0,
                RequestOp::Put => 1,
                RequestOp::Remove => 2,
                RequestOp::Enqueue => 3,
                RequestOp::Dequeue => 4,
            };
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
