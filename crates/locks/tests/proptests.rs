//! Property-based tests: mutual exclusion and elision safety for every
//! lock family under randomized critical-section lengths, thread counts
//! and scheduler windows.

use elision_htm::{harness, HtmConfig, MemoryBuilder};
use elision_locks::{ClhLock, McsLock, RawLock, TicketLock, TtasLock};
use proptest::prelude::*;
use std::sync::Arc;

fn build_lock(kind: u8, b: &mut MemoryBuilder, threads: usize) -> Arc<dyn RawLock> {
    match kind % 4 {
        0 => Arc::new(TtasLock::new(b)),
        1 => Arc::new(McsLock::new(b, threads)),
        2 => Arc::new(TicketLock::new(b, threads)),
        _ => Arc::new(ClhLock::new(b, threads)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Non-atomic read-modify-write inside the lock must never lose an
    /// update, for any lock, any CS length, any thread count, any window.
    #[test]
    fn mutual_exclusion(
        kind in 0u8..4,
        threads in 2usize..6,
        cs_work in 0u64..24,
        ops in 10u64..60,
        window in prop_oneof![Just(0u64), Just(8), Just(64)],
    ) {
        let mut b = MemoryBuilder::new();
        let counter = b.alloc_isolated(0);
        let lock = build_lock(kind, &mut b, threads);
        let mem = b.freeze(threads);
        let (_, mem, _) = harness::run(threads, window, HtmConfig::deterministic(), 5, mem, move |s| {
            for _ in 0..ops {
                lock.acquire(s).unwrap();
                let v = s.load(counter).unwrap();
                s.work(cs_work).unwrap();
                s.store(counter, v + 1).unwrap();
                lock.release(s).unwrap();
            }
        });
        prop_assert_eq!(mem.read_direct(counter), threads as u64 * ops);
    }

    /// Elided critical sections never leak lock-word changes: after any
    /// number of solo elided round trips, the lock still reports free and
    /// a plain acquire/release pair still works.
    #[test]
    fn elision_restores_lock_state(kind in 0u8..4, rounds in 1usize..20) {
        let mut b = MemoryBuilder::new();
        let data = b.alloc_isolated(0);
        let lock = build_lock(kind, &mut b, 1);
        let mem = b.freeze(1);
        harness::run(1, 0, HtmConfig::deterministic(), 5, mem, move |s| {
            for _ in 0..rounds {
                let r = s.attempt(|s| {
                    lock.elided_acquire(s)?;
                    let v = s.load(data)?;
                    s.store(data, v + 1)?;
                    lock.elided_release(s)?;
                    Ok(())
                });
                assert!(r.is_ok(), "solo elision must commit");
                assert!(!lock.is_locked(s).unwrap(), "lock state leaked by elision");
            }
            lock.acquire(s).unwrap();
            assert!(lock.is_locked(s).unwrap());
            lock.release(s).unwrap();
            assert!(!lock.is_locked(s).unwrap());
            assert_eq!(s.load(data).unwrap(), rounds as u64);
        });
    }

    /// Mixing elided and non-speculative users of the same lock is safe:
    /// eliders either commit without the lock or fall back; counts add up.
    #[test]
    fn mixed_elided_and_standard_users(
        kind in 0u8..4,
        threads in 2usize..5,
        ops in 10u64..40,
    ) {
        let mut b = MemoryBuilder::new();
        let counter = b.alloc_isolated(0);
        let lock = build_lock(kind, &mut b, threads);
        let mem = b.freeze(threads);
        let (_, mem, _) = harness::run(threads, 0, HtmConfig::deterministic(), 5, mem, move |s| {
            for _ in 0..ops {
                if s.tid() % 2 == 0 {
                    // Speculative user with a fallback loop.
                    let r = s.attempt(|s| {
                        lock.elided_acquire(s)?;
                        let v = s.load(counter)?;
                        s.store(counter, v + 1)?;
                        lock.elided_release(s)?;
                        Ok(())
                    });
                    if r.is_err() {
                        lock.acquire(s).unwrap();
                        let v = s.load(counter).unwrap();
                        s.store(counter, v + 1).unwrap();
                        lock.release(s).unwrap();
                    }
                } else {
                    lock.acquire(s).unwrap();
                    let v = s.load(counter).unwrap();
                    s.work(5).unwrap();
                    s.store(counter, v + 1).unwrap();
                    lock.release(s).unwrap();
                }
            }
        });
        prop_assert_eq!(mem.read_direct(counter), threads as u64 * ops);
    }
}
