//! The CLH queue lock (paper Figure 14) and its HLE-compatible adaptation
//! (Figure 15).
//!
//! Like the ticket lock, the original CLH release (clear own node's flag,
//! recycle the predecessor's node) does not restore the lock word — the
//! tail still points at the releaser's node — so HLE cannot elide it. The
//! adaptation attempts `CAS(&tail, myNode, pred)` first, erasing the
//! node's presence in a solo or speculative run.

use crate::{FallbackOutcome, RawLock, TXN_SPIN_BUDGET};
use elision_htm::{codes, HwSubscription, MemoryBuilder, Strand, TxResult, VarId};

const LOCKED: u64 = 1;
const UNLOCKED: u64 = 0;

/// A CLH queue lock; `adapted` selects the HLE-compatible release.
///
/// Nodes are identified by index: one per thread plus the initial
/// (unlocked) node that `tail` starts at.
#[derive(Debug)]
pub struct ClhLock {
    tail: VarId,
    /// `locked` flag of each node (indices `0..=threads`).
    node_locked: Vec<VarId>,
    /// Per-thread: which node the thread currently owns.
    my_node: Vec<VarId>,
    /// Per-thread: predecessor node saved between acquire and release.
    pred: Vec<VarId>,
    adapted: bool,
}

impl ClhLock {
    /// Allocate the HLE-adapted CLH lock (Figure 15).
    pub fn new(b: &mut MemoryBuilder, threads: usize) -> Self {
        Self::with_adaptation(b, threads, true)
    }

    /// Allocate the original, HLE-incompatible CLH lock (Figure 14).
    pub fn new_unadapted(b: &mut MemoryBuilder, threads: usize) -> Self {
        Self::with_adaptation(b, threads, false)
    }

    fn with_adaptation(b: &mut MemoryBuilder, threads: usize, adapted: bool) -> Self {
        // Node `threads` is the initial tail node, unlocked.
        let node_locked: Vec<VarId> = (0..=threads).map(|_| b.alloc_lock_word(UNLOCKED)).collect();
        ClhLock {
            tail: b.alloc_lock_word(threads as u64),
            node_locked,
            my_node: (0..threads).map(|t| b.alloc_lock_word(t as u64)).collect(),
            pred: (0..threads).map(|_| b.alloc_lock_word(u64::MAX)).collect(),
            adapted,
        }
    }

    /// Whether this instance uses the HLE-compatible release.
    pub fn is_adapted(&self) -> bool {
        self.adapted
    }
}

impl RawLock for ClhLock {
    fn acquire(&self, s: &mut Strand) -> TxResult<()> {
        let me = s.tid();
        let my = s.load(self.my_node[me])? as usize;
        s.store(self.node_locked[my], LOCKED)?;
        let p = s.swap(self.tail, my as u64)? as usize;
        s.store(self.pred[me], p as u64)?;
        s.spin_until(self.node_locked[p], TXN_SPIN_BUDGET, |v| v == UNLOCKED)?;
        s.note_lock_acquire(self.tail);
        Ok(())
    }

    fn release(&self, s: &mut Strand) -> TxResult<()> {
        let me = s.tid();
        let my = s.load(self.my_node[me])?;
        let p = s.load(self.pred[me])?;
        if self.adapted {
            // Optimistically erase our node from the queue (solo run).
            if s.cas(self.tail, my, p)? == my {
                s.note_lock_release(self.tail);
                return Ok(());
            }
        }
        // The node-unlock store is the release's linearization point:
        // record the release first so the successor's acquire never
        // precedes it in the merged trace.
        s.note_lock_release(self.tail);
        s.store(self.node_locked[my as usize], UNLOCKED)?;
        // Recycle the predecessor's node (standard CLH).
        s.store(self.my_node[me], p)?;
        Ok(())
    }

    fn is_locked(&self, s: &mut Strand) -> TxResult<bool> {
        let t = s.load(self.tail)? as usize;
        Ok(s.load(self.node_locked[t])? == LOCKED)
    }

    fn elided_acquire(&self, s: &mut Strand) -> TxResult<()> {
        let me = s.tid();
        let my = s.load(self.my_node[me])? as usize;
        s.store(self.node_locked[my], LOCKED)?;
        let p = s.elide_rmw(self.tail, |_| my as u64)? as usize;
        s.store(self.pred[me], p as u64)?;
        if s.load(self.node_locked[p])? == LOCKED {
            return Err(s.xabort(codes::QUEUE_BUSY, true));
        }
        Ok(())
    }

    fn elided_release(&self, s: &mut Strand) -> TxResult<()> {
        let me = s.tid();
        let my = s.load(self.my_node[me])?;
        let p = s.load(self.pred[me])?;
        if self.adapted {
            // Under the illusion tail == my; restoring it to the observed
            // predecessor satisfies the HLE restore check.
            let old = s.cas(self.tail, my, p)?;
            debug_assert_eq!(old, my, "elided CLH release out of sync");
            Ok(())
        } else {
            // Original release: the tail stays pointing at our node, so
            // the restore check will fail at commit.
            s.store(self.node_locked[my as usize], UNLOCKED)?;
            s.store(self.my_node[me], p)
        }
    }

    fn fallback_acquire(&self, s: &mut Strand) -> TxResult<FallbackOutcome> {
        self.acquire(s)?;
        Ok(FallbackOutcome::Acquired)
    }

    fn wait_until_free(&self, s: &mut Strand) -> TxResult<()> {
        loop {
            let t = s.load(self.tail)? as usize;
            if s.load(self.node_locked[t])? == UNLOCKED {
                return Ok(());
            }
            s.spin()?;
        }
    }

    fn lock_word(&self) -> VarId {
        self.tail
    }

    fn hw_subscription(&self) -> Option<HwSubscription> {
        // Free ⇔ the node the tail points at is unlocked.
        Some(HwSubscription::IndirectValueIs {
            ptr: self.tail,
            table: self.node_locked.clone(),
            free: UNLOCKED,
        })
    }

    fn name(&self) -> &'static str {
        if self.adapted {
            "CLH"
        } else {
            "CLH-unadapted"
        }
    }

    fn is_fair(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use elision_htm::{harness, AbortReason, HtmConfig, MemoryBuilder};
    use std::sync::Arc;

    #[test]
    fn provides_mutual_exclusion() {
        let (count, _) = testutil::mutex_stress::<ClhLock, _>(4, 200, 0, ClhLock::new);
        assert_eq!(count, 800);
    }

    #[test]
    fn provides_mutual_exclusion_with_lag_window() {
        let (count, _) = testutil::mutex_stress::<ClhLock, _>(8, 100, 32, ClhLock::new);
        assert_eq!(count, 800);
    }

    #[test]
    fn unadapted_provides_mutual_exclusion_too() {
        let (count, _) = testutil::mutex_stress::<ClhLock, _>(4, 100, 0, ClhLock::new_unadapted);
        assert_eq!(count, 400);
    }

    #[test]
    fn adapted_solo_elision_commits() {
        assert!(testutil::solo_elided_roundtrip(ClhLock::new));
    }

    #[test]
    fn unadapted_elision_always_fails_restore_check() {
        let mut b = MemoryBuilder::new();
        let lock = Arc::new(ClhLock::new_unadapted(&mut b, 1));
        let mem = b.freeze(1);
        harness::run(1, 0, HtmConfig::deterministic(), 1, mem, move |s| {
            let r = s.attempt(|s| {
                lock.elided_acquire(s)?;
                lock.elided_release(s)?;
                Ok(())
            });
            assert_eq!(r.unwrap_err().reason, AbortReason::HleRestore);
        });
    }

    #[test]
    fn adapted_release_erases_traces_in_solo_run() {
        let mut b = MemoryBuilder::new();
        let lock = Arc::new(ClhLock::new(&mut b, 1));
        let tail = lock.tail;
        let mem = b.freeze(1);
        let (_, mem, _) = harness::run(1, 0, HtmConfig::deterministic(), 1, mem, move |s| {
            lock.acquire(s).unwrap();
            lock.release(s).unwrap();
            assert!(!lock.is_locked(s).unwrap());
        });
        // Tail restored to the initial node (index 1 for a 1-thread lock).
        assert_eq!(mem.read_direct(tail), 1);
    }

    #[test]
    fn lock_state_visible_while_held() {
        let mut b = MemoryBuilder::new();
        let lock = Arc::new(ClhLock::new(&mut b, 1));
        let mem = b.freeze(1);
        harness::run(1, 0, HtmConfig::deterministic(), 1, mem, move |s| {
            assert!(!lock.is_locked(s).unwrap());
            lock.acquire(s).unwrap();
            assert!(lock.is_locked(s).unwrap());
            lock.release(s).unwrap();
            assert!(!lock.is_locked(s).unwrap());
        });
    }

    #[test]
    fn metadata() {
        let mut b = MemoryBuilder::new();
        assert_eq!(ClhLock::new(&mut b, 1).name(), "CLH");
        assert_eq!(ClhLock::new_unadapted(&mut b, 1).name(), "CLH-unadapted");
        assert!(ClhLock::new(&mut b, 1).is_fair());
    }
}
