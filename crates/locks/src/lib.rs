//! Simulated spin locks with HLE-compatible elided paths.
//!
//! The paper evaluates its schemes over two lock families:
//!
//! * the unfair **TTAS** (test-and-test-and-set) spinlock, which recovers
//!   from the lemming effect on its own because any thread that observes
//!   the lock free may immediately re-attempt elision, and
//! * **fair locks** — MCS, ticket, CLH — whose queues "remember" a
//!   conflict: after a single abort every queued and newly arriving thread
//!   runs non-speculatively until a quiescent period drains the queue.
//!
//! Ticket and CLH locks additionally violate HLE's requirement that the
//! release restore the lock word to its pre-acquire value; the paper's
//! Appendix A adapts them (the release first tries to CAS the lock back to
//! its original state). Both the adapted versions and — for demonstration
//! — the incompatible originals are provided.
//!
//! All locks implement [`RawLock`], whose elided entry points run inside a
//! transaction started by the caller (the elision scheme).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clh;
mod mcs;
mod ticket;
mod ttas;

pub use clh::ClhLock;
pub use mcs::McsLock;
pub use ticket::TicketLock;
pub use ttas::TtasLock;

use elision_htm::{HwSubscription, Strand, TxResult, VarId};

/// Result of re-executing the elided acquisition non-transactionally
/// after an abort (the hardware's HLE fallback).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackOutcome {
    /// The lock was acquired; run the critical section non-speculatively.
    Acquired,
    /// The lock was busy (possible only for try-style locks like TTAS);
    /// the thread should wait and re-attempt elision, per Figure 1.
    Busy,
}

/// A lock usable both non-speculatively and under HLE-style elision.
///
/// The elided methods must be called inside a transaction (begun by the
/// elision scheme); the plain methods must be called outside one.
/// Implementations keep any per-thread state (queue nodes) in simulated
/// memory indexed by [`Strand::tid`], so a single shared instance serves
/// all simulated threads.
pub trait RawLock: Send + Sync {
    /// Standard blocking acquisition (non-speculative).
    ///
    /// # Errors
    ///
    /// Never fails outside a transaction; the `TxResult` is for
    /// signature uniformity.
    fn acquire(&self, s: &mut Strand) -> TxResult<()>;

    /// Standard release.
    ///
    /// # Errors
    ///
    /// Never fails outside a transaction.
    fn release(&self, s: &mut Strand) -> TxResult<()>;

    /// Whether the lock is currently held (a transactional read of the
    /// lock state — this is the subscription read used by SLR and SCM).
    ///
    /// # Errors
    ///
    /// `Err(Abort)` if the enclosing transaction aborted.
    fn is_locked(&self, s: &mut Strand) -> TxResult<bool>;

    /// The elided (`XACQUIRE`) acquisition: places the lock in the read
    /// set with a local "held" illusion. Aborts the transaction (with
    /// [`elision_htm::codes::LOCK_BUSY`] or
    /// [`elision_htm::codes::QUEUE_BUSY`]) when the lock is observed busy,
    /// modelling the in-transaction wait that real hardware would
    /// eventually time out of.
    ///
    /// # Errors
    ///
    /// `Err(Abort)` if the transaction aborted (including the busy case).
    fn elided_acquire(&self, s: &mut Strand) -> TxResult<()>;

    /// The elided (`XRELEASE`) release: must restore the lock word to its
    /// pre-acquire value or the commit will fail the restore check.
    ///
    /// # Errors
    ///
    /// `Err(Abort)` if the transaction aborted.
    fn elided_release(&self, s: &mut Strand) -> TxResult<()>;

    /// Re-execute the acquisition non-transactionally once, as the HLE
    /// hardware does after an abort. TTAS returns [`FallbackOutcome::Busy`]
    /// when the test-and-set fails; queue locks enqueue and block until
    /// acquired.
    ///
    /// # Errors
    ///
    /// Never fails outside a transaction.
    fn fallback_acquire(&self, s: &mut Strand) -> TxResult<FallbackOutcome>;

    /// Busy-wait (outside any transaction) until the lock *appears* free,
    /// so that a new elision attempt is sensible. Used by the plain-HLE
    /// and HLE-retries schemes between attempts.
    ///
    /// # Errors
    ///
    /// Never fails outside a transaction.
    fn wait_until_free(&self, s: &mut Strand) -> TxResult<()>;

    /// The lock's primary word — its identity for the trace, sanitizer
    /// and lint layers (the word SLR/SCM subscription reads observe:
    /// TTAS's state word, the queue locks' tail/next word).
    fn lock_word(&self) -> VarId;

    /// A descriptor the hardware commit-time subscription extension
    /// (arXiv 1407.6968) can evaluate atomically with commit: "this lock
    /// is free" expressed over raw words, with no software read involved.
    /// `None` means the lock's free condition is not expressible in the
    /// descriptor forms the simulated hardware supports, and schemes must
    /// fall back to software subscription.
    fn hw_subscription(&self) -> Option<HwSubscription> {
        None
    }

    /// A short human-readable name ("TTAS", "MCS", ...).
    fn name(&self) -> &'static str;

    /// Whether the lock provides FIFO fairness.
    fn is_fair(&self) -> bool;
}

/// In-transaction spin budget before an elided wait self-aborts
/// (modelling timer/interrupt aborts of stuck transactions).
pub(crate) const TXN_SPIN_BUDGET: u32 = 64;

#[cfg(test)]
pub(crate) mod testutil {
    use elision_htm::{harness, HtmConfig, Memory, MemoryBuilder, Strand};
    use std::sync::Arc;

    /// Run a mutual-exclusion stress: `threads` threads each perform
    /// `ops` non-atomic increments of a shared counter inside the lock.
    /// Returns the final counter value (must equal `threads * ops`) and
    /// the memory.
    pub fn mutex_stress<L, F>(threads: usize, ops: u64, window: u64, build: F) -> (u64, Arc<Memory>)
    where
        L: super::RawLock + 'static,
        F: FnOnce(&mut MemoryBuilder, usize) -> L,
    {
        let mut b = MemoryBuilder::new();
        let counter = b.alloc_isolated(0);
        let lock = Arc::new(build(&mut b, threads));
        let mem = b.freeze(threads);
        let (_, mem, _) = harness::run(
            threads,
            window,
            HtmConfig::deterministic(),
            7,
            mem,
            move |s: &mut Strand| {
                for _ in 0..ops {
                    lock.acquire(s).unwrap();
                    let v = s.load(counter).unwrap();
                    s.work(5).unwrap();
                    s.store(counter, v + 1).unwrap();
                    lock.release(s).unwrap();
                }
            },
        );
        (mem.read_direct(counter), mem)
    }

    /// Run a single-threaded elided critical section and return whether
    /// the transaction committed.
    pub fn solo_elided_roundtrip<L>(build: impl FnOnce(&mut MemoryBuilder, usize) -> L) -> bool
    where
        L: super::RawLock + 'static,
    {
        let mut b = MemoryBuilder::new();
        let data = b.alloc_isolated(0);
        let lock = Arc::new(build(&mut b, 1));
        let mem = b.freeze(1);
        let (mut results, mem, _) =
            harness::run(1, 0, HtmConfig::deterministic(), 7, mem, move |s: &mut Strand| {
                let r = s.attempt(|s| {
                    lock.elided_acquire(s)?;
                    let v = s.load(data)?;
                    s.store(data, v + 1)?;
                    lock.elided_release(s)?;
                    Ok(())
                });
                r.is_ok()
            });
        let ok = results.pop().expect("one result");
        if ok {
            assert_eq!(mem.read_direct(data), 1, "committed data must be visible");
        }
        ok
    }
}
