//! The ticket lock (paper Figure 12) and its HLE-compatible adaptation
//! (Figure 13).
//!
//! The original ticket lock releases by incrementing `owner`, which does
//! *not* restore the lock to its pre-acquire state (`next` was
//! incremented at acquire time) — so HLE's restore check fails and the
//! lock can never be elided. The paper's Appendix A adaptation makes the
//! release first attempt `CAS(&next, owner + 1, owner)`: in a solo (or
//! speculative) run this erases all traces of the acquisition, satisfying
//! HLE; with multiple requesters the CAS fails and the release falls back
//! to the standard `owner + 1` path.

use crate::{FallbackOutcome, RawLock, TXN_SPIN_BUDGET};
use elision_htm::{codes, HwSubscription, MemoryBuilder, Strand, TxResult, VarId};

/// A ticket lock; `adapted` selects the paper's HLE-compatible release.
#[derive(Debug)]
pub struct TicketLock {
    next: VarId,
    owner: VarId,
    /// Per-thread saved ticket value (needed at release time).
    cur: Vec<VarId>,
    adapted: bool,
}

impl TicketLock {
    /// Allocate the HLE-adapted ticket lock (Figure 13).
    pub fn new(b: &mut MemoryBuilder, threads: usize) -> Self {
        Self::with_adaptation(b, threads, true)
    }

    /// Allocate the original, HLE-*incompatible* ticket lock (Figure 12);
    /// elided critical sections will always fail the restore check. Used
    /// to demonstrate why the adaptation is necessary.
    pub fn new_unadapted(b: &mut MemoryBuilder, threads: usize) -> Self {
        Self::with_adaptation(b, threads, false)
    }

    fn with_adaptation(b: &mut MemoryBuilder, threads: usize, adapted: bool) -> Self {
        TicketLock {
            next: b.alloc_lock_word(0),
            owner: b.alloc_lock_word(0),
            cur: (0..threads).map(|_| b.alloc_lock_word(0)).collect(),
            adapted,
        }
    }

    /// Whether this instance uses the HLE-compatible release.
    pub fn is_adapted(&self) -> bool {
        self.adapted
    }
}

impl RawLock for TicketLock {
    fn acquire(&self, s: &mut Strand) -> TxResult<()> {
        let me = s.tid();
        let my = s.fetch_add(self.next, 1)?;
        s.store(self.cur[me], my)?;
        s.spin_until(self.owner, TXN_SPIN_BUDGET, move |v| v == my)?;
        s.note_lock_acquire(self.next);
        Ok(())
    }

    fn release(&self, s: &mut Strand) -> TxResult<()> {
        let me = s.tid();
        let my = s.load(self.cur[me])?;
        if self.adapted {
            // Optimistically erase the acquisition (solo run): restores
            // `next` to its pre-acquire value.
            if s.cas(self.next, my + 1, my)? == my + 1 {
                s.note_lock_release(self.next);
                return Ok(());
            }
        }
        // Standard release: pass ownership to the following ticket. The
        // owner store is the linearization point: record the release
        // first so the successor's acquire never precedes it in the
        // merged trace.
        s.note_lock_release(self.next);
        s.store(self.owner, my + 1)?;
        Ok(())
    }

    fn is_locked(&self, s: &mut Strand) -> TxResult<bool> {
        let n = s.load(self.next)?;
        let o = s.load(self.owner)?;
        Ok(n != o)
    }

    fn elided_acquire(&self, s: &mut Strand) -> TxResult<()> {
        let me = s.tid();
        let my = s.elide_rmw(self.next, |n| n + 1)?;
        let o = s.load(self.owner)?;
        if o != my {
            // Someone holds (or queues on) the lock; speculation would
            // spin forever on `owner`.
            return Err(s.xabort(codes::QUEUE_BUSY, true));
        }
        s.store(self.cur[me], my)
    }

    fn elided_release(&self, s: &mut Strand) -> TxResult<()> {
        let me = s.tid();
        let my = s.load(self.cur[me])?;
        if self.adapted {
            // Under the elision illusion next == my + 1, so this CAS
            // always succeeds speculatively, restoring next == my.
            let old = s.cas(self.next, my + 1, my)?;
            debug_assert_eq!(old, my + 1, "elided ticket release out of sync");
            Ok(())
        } else {
            // Original release: bump owner — the restore check will fail
            // at commit, demonstrating the incompatibility.
            s.store(self.owner, my + 1)
        }
    }

    fn fallback_acquire(&self, s: &mut Strand) -> TxResult<FallbackOutcome> {
        self.acquire(s)?;
        Ok(FallbackOutcome::Acquired)
    }

    fn wait_until_free(&self, s: &mut Strand) -> TxResult<()> {
        loop {
            let n = s.load(self.next)?;
            let o = s.load(self.owner)?;
            if n == o {
                return Ok(());
            }
            s.spin()?;
        }
    }

    fn lock_word(&self) -> VarId {
        self.next
    }

    fn hw_subscription(&self) -> Option<HwSubscription> {
        // Free ⇔ no outstanding tickets: next == owner.
        Some(HwSubscription::WordsEqual { a: self.next, b: self.owner })
    }

    fn name(&self) -> &'static str {
        if self.adapted {
            "Ticket"
        } else {
            "Ticket-unadapted"
        }
    }

    fn is_fair(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use elision_htm::{harness, AbortReason, HtmConfig, MemoryBuilder};
    use std::sync::Arc;

    #[test]
    fn provides_mutual_exclusion() {
        let (count, _) = testutil::mutex_stress::<TicketLock, _>(4, 200, 0, TicketLock::new);
        assert_eq!(count, 800);
    }

    #[test]
    fn unadapted_provides_mutual_exclusion_too() {
        let (count, _) = testutil::mutex_stress::<TicketLock, _>(4, 100, 32, |b, t| {
            TicketLock::new_unadapted(b, t)
        });
        assert_eq!(count, 400);
    }

    #[test]
    fn adapted_solo_elision_commits() {
        assert!(testutil::solo_elided_roundtrip(TicketLock::new));
    }

    #[test]
    fn unadapted_elision_always_fails_restore_check() {
        let mut b = MemoryBuilder::new();
        let lock = Arc::new(TicketLock::new_unadapted(&mut b, 1));
        let mem = b.freeze(1);
        harness::run(1, 0, HtmConfig::deterministic(), 1, mem, move |s| {
            let r = s.attempt(|s| {
                lock.elided_acquire(s)?;
                lock.elided_release(s)?;
                Ok(())
            });
            assert_eq!(r.unwrap_err().reason, AbortReason::HleRestore);
        });
    }

    #[test]
    fn adapted_release_erases_traces_in_solo_run() {
        let mut b = MemoryBuilder::new();
        let lock = Arc::new(TicketLock::new(&mut b, 1));
        let next = lock.next;
        let owner = lock.owner;
        let mem = b.freeze(1);
        let (_, mem, _) = harness::run(1, 0, HtmConfig::deterministic(), 1, mem, move |s| {
            lock.acquire(s).unwrap();
            lock.release(s).unwrap();
        });
        // Solo non-speculative run: the CAS path restored next, so both
        // counters are still 0 (no trace of the acquisition).
        assert_eq!(mem.read_direct(next), 0);
        assert_eq!(mem.read_direct(owner), 0);
    }

    #[test]
    fn adapted_release_falls_back_with_contention() {
        let mut b = MemoryBuilder::new();
        let lock = Arc::new(TicketLock::new(&mut b, 2));
        let owner = lock.owner;
        let mem = b.freeze(2);
        let (_, mem, _) = harness::run(2, 0, HtmConfig::deterministic(), 1, mem, move |s| {
            if s.tid() == 0 {
                lock.acquire(s).unwrap();
                s.work(2000).unwrap(); // ensure thread 1 queues
                lock.release(s).unwrap();
            } else {
                s.work(100).unwrap();
                lock.acquire(s).unwrap();
                lock.release(s).unwrap();
            }
        });
        // Thread 0's release saw a second requester: it bumped owner.
        assert!(mem.read_direct(owner) >= 1);
    }

    #[test]
    fn elided_acquire_aborts_when_held() {
        let mut b = MemoryBuilder::new();
        let lock = Arc::new(TicketLock::new(&mut b, 2));
        let mem = b.freeze(2);
        let (results, ..) = harness::run(2, 0, HtmConfig::deterministic(), 1, mem, move |s| {
            if s.tid() == 0 {
                lock.acquire(s).unwrap();
                s.work(2000).unwrap();
                lock.release(s).unwrap();
                None
            } else {
                s.work(100).unwrap();
                s.begin();
                let r = lock.elided_acquire(s);
                assert!(r.is_err());
                Some(s.last_abort())
            }
        });
        let st = results[1].expect("status");
        assert!(st.is_explicit(codes::QUEUE_BUSY) || st.reason == AbortReason::Conflict);
    }

    #[test]
    fn metadata() {
        let mut b = MemoryBuilder::new();
        assert_eq!(TicketLock::new(&mut b, 1).name(), "Ticket");
        assert_eq!(TicketLock::new_unadapted(&mut b, 1).name(), "Ticket-unadapted");
        assert!(TicketLock::new(&mut b, 1).is_fair());
        assert!(TicketLock::new(&mut b, 1).is_adapted());
    }
}
