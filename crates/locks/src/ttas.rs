//! The test-and-test-and-set spinlock (paper Figure 1).

use crate::{FallbackOutcome, RawLock, TXN_SPIN_BUDGET};
use elision_htm::{codes, HwSubscription, MemoryBuilder, Strand, TxResult, VarId};

const FREE: u64 = 0;
const HELD: u64 = 1;

/// A TTAS spinlock over one simulated word (0 = free, 1 = held).
///
/// Under elision this is the paper's Figure 1: the test-and-set is
/// `XACQUIRE`-prefixed, so a successful acquisition only places the lock
/// word in the transaction's read set, and the release (restoring 0)
/// elides the write entirely.
#[derive(Debug)]
pub struct TtasLock {
    word: VarId,
}

impl TtasLock {
    /// Allocate a TTAS lock on its own cache line.
    pub fn new(b: &mut MemoryBuilder) -> Self {
        TtasLock { word: b.alloc_lock_word(FREE) }
    }

    /// The lock word (for tests and instrumentation).
    pub fn word(&self) -> VarId {
        self.word
    }
}

impl RawLock for TtasLock {
    fn acquire(&self, s: &mut Strand) -> TxResult<()> {
        loop {
            // Test...
            s.spin_until(self.word, TXN_SPIN_BUDGET, |v| v == FREE)?;
            // ...and test-and-set.
            if s.swap(self.word, HELD)? == FREE {
                s.note_lock_acquire(self.word);
                return Ok(());
            }
        }
    }

    fn release(&self, s: &mut Strand) -> TxResult<()> {
        s.store(self.word, FREE)?;
        s.note_lock_release(self.word);
        Ok(())
    }

    fn is_locked(&self, s: &mut Strand) -> TxResult<bool> {
        Ok(s.load(self.word)? == HELD)
    }

    fn elided_acquire(&self, s: &mut Strand) -> TxResult<()> {
        let old = s.elide_rmw(self.word, |_| HELD)?;
        if old != FREE {
            // The elided TAS observed the lock held: on hardware the
            // thread would spin inside the transaction until the holder's
            // release doomed it; we abort straight away.
            return Err(s.xabort(codes::LOCK_BUSY, true));
        }
        Ok(())
    }

    fn elided_release(&self, s: &mut Strand) -> TxResult<()> {
        s.store(self.word, FREE)
    }

    fn fallback_acquire(&self, s: &mut Strand) -> TxResult<FallbackOutcome> {
        // Re-execute the TAS non-transactionally, exactly once: this is
        // the globally visible store that dooms every eliding peer.
        if s.swap(self.word, HELD)? == FREE {
            s.note_lock_acquire(self.word);
            Ok(FallbackOutcome::Acquired)
        } else {
            Ok(FallbackOutcome::Busy)
        }
    }

    fn lock_word(&self) -> VarId {
        self.word
    }

    fn hw_subscription(&self) -> Option<HwSubscription> {
        Some(HwSubscription::ValueIs { word: self.word, free: FREE })
    }

    fn wait_until_free(&self, s: &mut Strand) -> TxResult<()> {
        s.spin_until(self.word, TXN_SPIN_BUDGET, |v| v == FREE)
    }

    fn name(&self) -> &'static str {
        "TTAS"
    }

    fn is_fair(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use elision_htm::{harness, HtmConfig, MemoryBuilder};
    use std::sync::Arc;

    #[test]
    fn provides_mutual_exclusion() {
        let (count, _) = testutil::mutex_stress::<TtasLock, _>(4, 200, 0, |b, _| TtasLock::new(b));
        assert_eq!(count, 800);
    }

    #[test]
    fn provides_mutual_exclusion_with_lag_window() {
        let (count, _) = testutil::mutex_stress::<TtasLock, _>(8, 100, 32, |b, _| TtasLock::new(b));
        assert_eq!(count, 800);
    }

    #[test]
    fn solo_elision_commits() {
        assert!(testutil::solo_elided_roundtrip(|b, _| TtasLock::new(b)));
    }

    #[test]
    fn elided_acquire_aborts_when_held() {
        let mut b = MemoryBuilder::new();
        let lock = Arc::new(TtasLock::new(&mut b));
        let word = lock.word();
        let mem = b.freeze(1);
        harness::run(1, 0, HtmConfig::deterministic(), 1, mem, move |s| {
            // Take the lock for real, then try to elide it.
            s.store(word, super::HELD).unwrap();
            s.begin();
            let err = lock.elided_acquire(s).unwrap_err();
            assert_eq!(err, elision_htm::Abort);
            assert!(s.last_abort().is_explicit(codes::LOCK_BUSY));
        });
    }

    #[test]
    fn fallback_acquire_reports_busy_or_acquired() {
        let mut b = MemoryBuilder::new();
        let lock = Arc::new(TtasLock::new(&mut b));
        let mem = b.freeze(1);
        harness::run(1, 0, HtmConfig::deterministic(), 1, mem, move |s| {
            assert_eq!(lock.fallback_acquire(s).unwrap(), FallbackOutcome::Acquired);
            assert!(lock.is_locked(s).unwrap());
            assert_eq!(lock.fallback_acquire(s).unwrap(), FallbackOutcome::Busy);
            lock.release(s).unwrap();
            assert!(!lock.is_locked(s).unwrap());
        });
    }

    #[test]
    fn metadata() {
        let mut b = MemoryBuilder::new();
        let lock = TtasLock::new(&mut b);
        assert_eq!(lock.name(), "TTAS");
        assert!(!lock.is_fair());
    }
}
