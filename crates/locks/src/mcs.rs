//! The MCS queue lock (Mellor-Crummey & Scott), the paper's representative
//! fair lock.
//!
//! MCS is HLE-compatible as-is: a thread running alone (the illusion HLE
//! provides) releases by CAS-ing the tail back to nil, restoring the
//! lock's original state. Its fairness is exactly what makes the lemming
//! effect catastrophic (paper §4): after one abort the queue "remembers"
//! the conflict and every queued or arriving thread runs
//! non-speculatively until the queue drains.

use crate::{FallbackOutcome, RawLock, TXN_SPIN_BUDGET};
use elision_htm::{codes, HwSubscription, MemoryBuilder, Strand, TxResult, VarId};

const NIL: u64 = u64::MAX;
const WAIT: u64 = 1;
const GO: u64 = 0;

/// An MCS queue lock with one pre-allocated queue node per simulated
/// thread.
#[derive(Debug)]
pub struct McsLock {
    tail: VarId,
    /// Per-thread node: spin flag.
    locked: Vec<VarId>,
    /// Per-thread node: successor link (a thread index or `NIL`).
    next: Vec<VarId>,
}

impl McsLock {
    /// Allocate an MCS lock for `threads` simulated threads; every node
    /// field gets its own cache line (threads spin on local nodes).
    pub fn new(b: &mut MemoryBuilder, threads: usize) -> Self {
        McsLock {
            tail: b.alloc_lock_word(NIL),
            locked: (0..threads).map(|_| b.alloc_lock_word(GO)).collect(),
            next: (0..threads).map(|_| b.alloc_lock_word(NIL)).collect(),
        }
    }

    /// The tail word (for tests and instrumentation).
    pub fn tail(&self) -> VarId {
        self.tail
    }
}

impl RawLock for McsLock {
    fn acquire(&self, s: &mut Strand) -> TxResult<()> {
        let me = s.tid();
        s.store(self.next[me], NIL)?;
        s.store(self.locked[me], WAIT)?;
        let pred = s.swap(self.tail, me as u64)?;
        if pred != NIL {
            let pred = pred as usize;
            s.store(self.next[pred], me as u64)?;
            s.spin_until(self.locked[me], TXN_SPIN_BUDGET, |v| v == GO)?;
        }
        s.note_lock_acquire(self.tail);
        Ok(())
    }

    fn release(&self, s: &mut Strand) -> TxResult<()> {
        let me = s.tid();
        let mut succ = s.load(self.next[me])?;
        if succ == NIL {
            if s.cas(self.tail, me as u64, NIL)? == me as u64 {
                s.note_lock_release(self.tail);
                return Ok(());
            }
            // A successor is mid-enqueue; wait for the link.
            s.spin_until(self.next[me], TXN_SPIN_BUDGET, |v| v != NIL)?;
            succ = s.load(self.next[me])?;
        }
        // The handoff store is the release's linearization point: record
        // the release first so the successor's acquire never precedes it
        // in the merged trace.
        s.note_lock_release(self.tail);
        s.store(self.locked[succ as usize], GO)?;
        Ok(())
    }

    fn is_locked(&self, s: &mut Strand) -> TxResult<bool> {
        Ok(s.load(self.tail)? != NIL)
    }

    fn elided_acquire(&self, s: &mut Strand) -> TxResult<()> {
        let me = s.tid();
        s.store(self.next[me], NIL)?;
        s.store(self.locked[me], WAIT)?;
        let pred = s.elide_rmw(self.tail, |_| me as u64)?;
        if pred != NIL {
            // The queue is non-empty: on hardware the thread would link
            // behind its predecessor and spin inside the transaction until
            // doomed; speculation cannot succeed, so abort now.
            return Err(s.xabort(codes::QUEUE_BUSY, true));
        }
        Ok(())
    }

    fn elided_release(&self, s: &mut Strand) -> TxResult<()> {
        let me = s.tid();
        // Solo-run release: CAS the tail back to nil. Under the elision
        // illusion (tail == me) this always succeeds, restoring the tail
        // to the value observed at XACQUIRE time — which is exactly what
        // the HLE restore check requires.
        let old = s.cas(self.tail, me as u64, NIL)?;
        debug_assert_eq!(old, me as u64, "elided release with foreign tail");
        Ok(())
    }

    fn fallback_acquire(&self, s: &mut Strand) -> TxResult<FallbackOutcome> {
        // Re-executing the XACQUIRE swap really enqueues the node; the
        // thread then waits for its turn — the serialization the paper
        // calls the fair-lock lemming effect.
        self.acquire(s)?;
        Ok(FallbackOutcome::Acquired)
    }

    fn wait_until_free(&self, s: &mut Strand) -> TxResult<()> {
        s.spin_until(self.tail, TXN_SPIN_BUDGET, |v| v == NIL)
    }

    fn lock_word(&self) -> VarId {
        self.tail
    }

    fn hw_subscription(&self) -> Option<HwSubscription> {
        Some(HwSubscription::ValueIs { word: self.tail, free: NIL })
    }

    fn name(&self) -> &'static str {
        "MCS"
    }

    fn is_fair(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use elision_htm::{harness, HtmConfig, MemoryBuilder};
    use std::sync::Arc;

    #[test]
    fn provides_mutual_exclusion() {
        let (count, _) = testutil::mutex_stress::<McsLock, _>(4, 200, 0, McsLock::new);
        assert_eq!(count, 800);
    }

    #[test]
    fn provides_mutual_exclusion_with_lag_window() {
        let (count, _) = testutil::mutex_stress::<McsLock, _>(8, 100, 32, McsLock::new);
        assert_eq!(count, 800);
    }

    #[test]
    fn solo_elision_commits_and_restores_tail() {
        assert!(testutil::solo_elided_roundtrip(McsLock::new));
    }

    #[test]
    fn elided_acquire_aborts_on_nonempty_queue() {
        let mut b = MemoryBuilder::new();
        let lock = Arc::new(McsLock::new(&mut b, 2));
        let mem = b.freeze(2);
        let (results, ..) = harness::run(2, 0, HtmConfig::deterministic(), 1, mem, move |s| {
            if s.tid() == 0 {
                lock.acquire(s).unwrap();
                s.work(2000).unwrap();
                lock.release(s).unwrap();
                None
            } else {
                s.work(100).unwrap();
                s.begin();
                let r = lock.elided_acquire(s);
                assert!(r.is_err());
                Some(s.last_abort())
            }
        });
        let st = results[1].expect("thread 1 status");
        assert!(
            st.is_explicit(codes::QUEUE_BUSY) || st.reason == elision_htm::AbortReason::Conflict
        );
    }

    #[test]
    fn fifo_handoff_wakes_successor() {
        // Thread 0 takes the lock; thread 1 enqueues behind it; when 0
        // releases, 1 proceeds. The mutex test already exercises this, but
        // here we check the queue actually formed (the CAS fast path
        // failed).
        let mut b = MemoryBuilder::new();
        let order = b.alloc_isolated(0);
        let lock = Arc::new(McsLock::new(&mut b, 2));
        let mem = b.freeze(2);
        let (_, mem, _) = harness::run(2, 0, HtmConfig::deterministic(), 1, mem, move |s| {
            if s.tid() == 0 {
                lock.acquire(s).unwrap();
                s.work(3000).unwrap();
                // Thread 1 must be queued by now.
                assert!(lock.is_locked(s).unwrap());
                let v = s.load(order).unwrap();
                s.store(order, v * 10 + 1).unwrap();
                lock.release(s).unwrap();
            } else {
                s.work(100).unwrap();
                lock.acquire(s).unwrap();
                let v = s.load(order).unwrap();
                s.store(order, v * 10 + 2).unwrap();
                lock.release(s).unwrap();
            }
        });
        assert_eq!(mem.read_direct(order), 12, "FIFO order violated");
        assert_eq!(mem.read_direct(lock_tail_for_test(&mem)), NIL);
    }

    // Helper: the tail is the first isolated var allocated after `order`,
    // but we captured the lock inside the closure; easiest is to re-derive
    // from memory layout. To keep the test robust we instead re-check
    // through a fresh is_locked call — but that needs a Strand. Simplest:
    // scan is unnecessary; expose via constant below.
    fn lock_tail_for_test(_mem: &elision_htm::Memory) -> elision_htm::VarId {
        // order occupies line 0 (words 0..8); tail is the next isolated
        // word (index 8) given the default 8-word lines.
        elision_htm::VarId::from_index(8)
    }

    #[test]
    fn metadata() {
        let mut b = MemoryBuilder::new();
        let lock = McsLock::new(&mut b, 2);
        assert_eq!(lock.name(), "MCS");
        assert!(lock.is_fair());
    }
}
