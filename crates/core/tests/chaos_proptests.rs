//! Property-based chaos tests: correctness of every elision scheme under
//! *arbitrary* seeded fault plans.
//!
//! The deterministic fault layers (scheduler preemption/jitter, HTM abort
//! storms, capacity squeezes, hot lines) are sampled from wide parameter
//! ranges; for each sampled configuration the schemes must preserve their
//! core guarantees:
//!
//! * **Mutual exclusion / no lost updates**: a shared counter incremented
//!   non-atomically inside the critical section ends at exactly
//!   `threads * ops`.
//! * **Termination**: every operation completes within a (very generous)
//!   attempt bound — no livelock or starvation.
//! * **SLR consistency**: a two-variable invariant maintained inside the
//!   critical section is never observed broken by a *committed*
//!   execution, even though lazy subscription sacrifices opacity for
//!   in-flight (doomed, sandboxed) transactions.
//! * **Reproducibility**: at `window == 0` the whole run — including the
//!   injected fault schedule — is a pure function of the seeds.

use elision_core::{make_scheme, LockKind, SchemeConfig, SchemeKind, Watchdog};
use elision_htm::{harness, HtmConfig, HtmFaults, MemoryBuilder};
use elision_sim::{FaultPlan, OpCounters};
use proptest::prelude::*;
use std::sync::Arc;

/// An arbitrary scheduler-level fault plan (possibly inactive).
fn fault_plan() -> impl Strategy<Value = FaultPlan> {
    (0u64..4, 50u64..500, 100u64..3_000, 0u32..400, 0u64..1_000).prop_map(
        |(mode, interval, pause, jitter, seed)| {
            let mut p = FaultPlan::none().with_seed(seed);
            if mode & 1 != 0 {
                p = p.with_preempt(interval, pause);
            }
            if mode & 2 != 0 {
                p = p.with_jitter(jitter);
            }
            p
        },
    )
}

/// Arbitrary HTM-level faults (possibly inactive).
fn htm_faults() -> impl Strategy<Value = HtmFaults> {
    (
        0u32..8,
        (500u64..4_000, 100u64..2_000, 50u32..900),
        (500u64..4_000, 100u64..2_000),
        50u32..600,
    )
        .prop_map(|(mask, (sp, sd, s_pm), (qp, qd), hot_pm)| {
            let mut f = HtmFaults::none();
            if mask & 1 != 0 {
                f = f.with_storm(sp, sd, s_pm);
            }
            if mask & 2 != 0 {
                f = f.with_squeeze(qp, qd, 16, 8);
            }
            if mask & 4 != 0 {
                f = f.with_hot_line(0, hot_pm);
            }
            f
        })
}

fn scheme_kind() -> impl Strategy<Value = SchemeKind> {
    prop_oneof![
        Just(SchemeKind::Hle),
        Just(SchemeKind::HleRetries),
        Just(SchemeKind::HleScm),
        Just(SchemeKind::OptSlr),
        Just(SchemeKind::SlrScm),
    ]
}

fn lock_kind() -> impl Strategy<Value = LockKind> {
    prop_oneof![Just(LockKind::Ttas), Just(LockKind::Mcs), Just(LockKind::Ticket)]
}

fn scheme_cfg() -> impl Strategy<Value = SchemeConfig> {
    prop_oneof![Just(SchemeConfig::paper()), Just(SchemeConfig::hardened())]
}

/// Generous per-operation attempt cap: the speculative budget is 10, so
/// anything near this bound is a livelock, not a tuning artifact.
const ATTEMPT_CAP: u32 = 2_000;

/// Shared-counter stress under the given faults; returns (final counter,
/// summed counters, merged watchdog, makespan).
fn stress(
    kind: SchemeKind,
    lock: LockKind,
    cfg: SchemeConfig,
    plan: FaultPlan,
    faults: HtmFaults,
    threads: usize,
    ops: u64,
) -> (u64, OpCounters, Watchdog, u64) {
    let mut b = MemoryBuilder::new();
    let counter = b.alloc_isolated(0);
    let scheme = make_scheme(kind, lock, cfg, &mut b, threads);
    let mem = Arc::new(b.freeze(threads));
    let htm = HtmConfig::deterministic().with_faults(faults);
    let (results, makespan, _) =
        harness::run_arc_faulted(threads, 0, htm, 5, plan, Arc::clone(&mem), move |s| {
            let mut w = Watchdog::new(0);
            for _ in 0..ops {
                let started = s.now();
                let out = scheme.execute(s, |s| {
                    let v = s.load(counter)?;
                    s.work(3)?;
                    s.store(counter, v + 1)
                });
                w.record(out.attempts, s.now().saturating_sub(started));
            }
            (s.counters, w)
        });
    let counters = OpCounters::sum(results.iter().map(|(c, _)| c));
    let mut watchdog = Watchdog::new(0);
    for (_, w) in &results {
        watchdog.merge(w);
    }
    (mem.read_direct(counter), counters, watchdog, makespan)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// No lost updates and no starvation, for any scheme x lock x config
    /// under arbitrary combined fault plans.
    #[test]
    fn atomicity_and_termination_under_arbitrary_faults(
        kind in scheme_kind(),
        lock in lock_kind(),
        cfg in scheme_cfg(),
        plan in fault_plan(),
        faults in htm_faults(),
    ) {
        let threads = 3;
        let ops = 25u64;
        let (count, counters, watchdog, _) =
            stress(kind, lock, cfg, plan, faults, threads, ops);
        prop_assert_eq!(count, threads as u64 * ops,
            "{} over {} lost updates under {:?} + {:?}", kind, lock, plan, faults);
        prop_assert_eq!(counters.completed(), threads as u64 * ops);
        prop_assert!(watchdog.max_attempts() <= ATTEMPT_CAP,
            "an operation needed {} attempts", watchdog.max_attempts());
        // Attempt accounting must balance under every fault plan: each
        // attempt the watchdog saw is exactly one speculative commit, one
        // non-speculative run, or one abort — and every abort carries
        // exactly one classified cause.
        prop_assert_eq!(
            watchdog.total_attempts(),
            counters.speculative + counters.nonspeculative + counters.aborted,
            "attempt accounting out of balance for {} over {}", kind, lock);
        prop_assert_eq!(counters.causes.total(), counters.aborted,
            "every abort must have exactly one classified cause");
    }

    /// Committed SLR executions never observe a broken invariant, even
    /// though doomed in-flight transactions may (they are sandboxed and
    /// can never commit).
    #[test]
    fn slr_commits_are_consistent_under_arbitrary_faults(
        plan in fault_plan(),
        faults in htm_faults(),
        cfg in scheme_cfg(),
    ) {
        let threads = 3;
        let ops = 20u64;
        let mut b = MemoryBuilder::new();
        let x = b.alloc_isolated(1);
        let y = b.alloc_isolated(2);
        let scheme = make_scheme(SchemeKind::OptSlr, LockKind::Ttas, cfg, &mut b, threads);
        let mem = Arc::new(b.freeze(threads));
        let htm = HtmConfig::deterministic().with_faults(faults);
        let (results, _, _) =
            harness::run_arc_faulted(threads, 0, htm, 11, plan, Arc::clone(&mem), move |s| {
                let mut observed = Vec::new();
                for _ in 0..ops {
                    let out = scheme.execute(s, |s| {
                        let a = s.load(x)?;
                        s.work(5)?;
                        let b = s.load(y)?;
                        // Maintain the invariant y == 2*x.
                        s.store(x, a + 1)?;
                        s.work(5)?;
                        s.store(y, 2 * (a + 1))?;
                        Ok((a, b))
                    });
                    observed.push(out.value);
                }
                observed
            });
        for pairs in &results {
            for &(a, b) in pairs {
                prop_assert_eq!(b, 2 * a,
                    "a committed execution observed a broken invariant");
            }
        }
        let fx = mem.read_direct(x);
        let fy = mem.read_direct(y);
        prop_assert_eq!(fx, 1 + threads as u64 * ops);
        prop_assert_eq!(fy, 2 * fx);
    }

    /// At window 0 the full run — counters, final state, makespan — is a
    /// pure function of the seeds, whatever faults are injected.
    #[test]
    fn faulted_runs_reproduce_exactly(
        kind in scheme_kind(),
        plan in fault_plan(),
        faults in htm_faults(),
    ) {
        let run = || stress(kind, LockKind::Mcs, SchemeConfig::hardened(), plan, faults, 3, 15);
        let (count_a, counters_a, watchdog_a, makespan_a) = run();
        let (count_b, counters_b, watchdog_b, makespan_b) = run();
        prop_assert_eq!(count_a, count_b);
        prop_assert_eq!(counters_a, counters_b);
        prop_assert_eq!(makespan_a, makespan_b);
        prop_assert_eq!(watchdog_a.max_attempts(), watchdog_b.max_attempts());
        prop_assert_eq!(watchdog_a.percentile(99), watchdog_b.percentile(99));
    }
}
