//! Behavioural tests of individual scheme decision branches.

use elision_core::{
    make_grouped_scm, make_lock, make_scheme, LockKind, Scheme, SchemeConfig, SchemeKind,
};
use elision_htm::{harness, HtmConfig, MemoryBuilder, VarId};
use std::sync::Arc;

#[test]
fn speculative_success_costs_one_attempt() {
    for kind in [
        SchemeKind::Hle,
        SchemeKind::HleRetries,
        SchemeKind::HleScm,
        SchemeKind::OptSlr,
        SchemeKind::SlrScm,
    ] {
        let mut b = MemoryBuilder::new();
        let x = b.alloc_isolated(0);
        let scheme = make_scheme(kind, LockKind::Ttas, SchemeConfig::paper(), &mut b, 1);
        let mem = b.freeze(1);
        harness::run(1, 0, HtmConfig::deterministic(), 1, mem, move |s| {
            let out = scheme.execute(s, |s| s.store(x, 1));
            assert_eq!(out.attempts, 1, "{kind}");
            assert!(!out.nonspeculative, "{kind}");
            assert_eq!(s.counters.speculative, 1, "{kind}");
            assert_eq!(s.counters.aborted, 0, "{kind}");
        });
    }
}

#[test]
fn nolock_records_no_counters() {
    let mut b = MemoryBuilder::new();
    let x = b.alloc_isolated(0);
    let scheme = make_scheme(SchemeKind::NoLock, LockKind::Ttas, SchemeConfig::paper(), &mut b, 1);
    let mem = b.freeze(1);
    harness::run(1, 0, HtmConfig::deterministic(), 1, mem, move |s| {
        let out = scheme.execute(s, |s| s.store(x, 5));
        assert!(!out.nonspeculative);
        assert_eq!(s.counters.completed(), 0);
        assert_eq!(s.stats.begins, 0, "NoLock must not start transactions");
    });
}

#[test]
fn retry_budget_bounds_speculative_attempts() {
    // Every access aborts spuriously: every speculative attempt dies. The
    // schemes must give up after exactly their budget and complete under
    // the lock.
    for (kind, expected_attempts) in [
        (SchemeKind::Hle, 2u32),         // 1 speculative + 1 non-speculative
        (SchemeKind::HleRetries, 11u32), // 10 speculative + 1 non-speculative
        (SchemeKind::OptSlr, 11u32),
    ] {
        let mut b = MemoryBuilder::new();
        let x = b.alloc_isolated(0);
        let scheme = make_scheme(kind, LockKind::Ttas, SchemeConfig::paper(), &mut b, 1);
        let mem = b.freeze(1);
        let cfg = HtmConfig::deterministic().with_spurious(0.0, 1.0);
        harness::run(1, 0, cfg, 1, mem, move |s| {
            let out = scheme.execute(s, |s| s.store(x, 1));
            assert!(out.nonspeculative, "{kind}");
            assert_eq!(out.attempts, expected_attempts, "{kind}");
            assert_eq!(s.counters.aborted as u32, expected_attempts - 1, "{kind}");
            assert_eq!(s.counters.nonspeculative, 1, "{kind}");
        });
    }
}

#[test]
fn scm_budget_counts_only_aux_holder_retries() {
    // Under a total spurious storm, the SCM thread takes the aux lock
    // after the first abort and then burns its retry budget as holder:
    // 1 (pre-aux) + max_retries (as holder) speculative attempts + the
    // final locked run.
    let mut b = MemoryBuilder::new();
    let x = b.alloc_isolated(0);
    let scheme = make_scheme(SchemeKind::HleScm, LockKind::Ttas, SchemeConfig::paper(), &mut b, 1);
    let mem = b.freeze(1);
    let cfg = HtmConfig::deterministic().with_spurious(0.0, 1.0);
    harness::run(1, 0, cfg, 1, mem, move |s| {
        let out = scheme.execute(s, |s| s.store(x, 1));
        assert!(out.nonspeculative);
        assert_eq!(out.attempts, 12, "1 + 10 holder retries + locked run");
    });
}

#[test]
fn slr_status_tuning_skips_hopeless_retries() {
    // Capacity aborts clear the retry hint: with tuning on, opt SLR gives
    // up after the first abort; with tuning off it burns the full budget.
    fn attempts(tuning: bool) -> u32 {
        let mut b = MemoryBuilder::new().words_per_line(1);
        let vars = b.alloc_array(16, 0);
        b.pad_to_line();
        let cfg = SchemeConfig { slr_status_tuning: tuning, ..SchemeConfig::paper() };
        let scheme = make_scheme(SchemeKind::OptSlr, LockKind::Ttas, cfg, &mut b, 1);
        let mem = b.freeze(1);
        let htm = HtmConfig::deterministic().with_capacity(64, 4);
        let (mut out, ..) = harness::run(1, 0, htm, 1, mem, move |s| {
            let o = scheme.execute(s, |s| {
                for k in 0..8 {
                    s.store(VarId::from_index(vars.index() + k), 1)?;
                }
                Ok(())
            });
            o.attempts
        });
        out.pop().expect("one result")
    }
    assert_eq!(attempts(true), 2, "tuned: first capacity abort ends speculation");
    assert_eq!(attempts(false), 11, "untuned: full 10-attempt budget");
}

#[test]
fn scm_releases_aux_lock_on_both_paths() {
    // Whether the SCM operation ends speculatively or under the main
    // lock, the auxiliary lock must be free afterwards.
    for spurious in [0.0, 1.0] {
        let mut b = MemoryBuilder::new();
        let x = b.alloc_isolated(0);
        let aux = make_lock(LockKind::Mcs, &mut b, 1);
        let main = make_lock(LockKind::Ttas, &mut b, 1);
        let scheme = Arc::new(
            Scheme::new(
                SchemeKind::HleScm,
                SchemeConfig::paper(),
                Arc::clone(&main),
                Some(Arc::clone(&aux)),
            )
            .expect("aux supplied"),
        );
        let mem = b.freeze(1);
        let cfg = HtmConfig::deterministic().with_spurious(spurious, 0.0);
        harness::run(1, 0, cfg, 1, mem, move |s| {
            // Force the serializing path on the storm config by having the
            // first attempt abort.
            scheme.execute(s, |s| s.store(x, 1));
            assert!(!aux.is_locked(s).unwrap(), "aux lock leaked (spurious={spurious})");
            assert!(!main.is_locked(s).unwrap(), "main lock leaked (spurious={spurious})");
        });
    }
}

#[test]
fn grouped_scm_state_is_consistent_after_storms() {
    let threads = 4;
    let mut b = MemoryBuilder::new();
    let x = b.alloc_isolated(0);
    let scheme = make_grouped_scm(LockKind::Mcs, 8, SchemeConfig::paper(), &mut b, threads);
    let mem = b.freeze(threads);
    let cfg = HtmConfig::deterministic().with_spurious(0.4, 0.002);
    let (_, mem, _) = harness::run(threads, 0, cfg, 5, mem, move |s| {
        for _ in 0..40 {
            scheme.execute(s, |s| {
                let v = s.load(x)?;
                s.store(x, v + 1)
            });
        }
    });
    assert_eq!(mem.read_direct(x), threads as u64 * 40);
    assert!(!mem.any_residual_bits());
}

#[test]
fn grouped_scm_spreads_lineless_aborts_across_aux_locks() {
    // Capacity aborts carry no conflict line; before the round-robin fix
    // every such abort serialized on aux[0], defeating the grouping.
    let mut b = MemoryBuilder::new().words_per_line(1);
    let vars = b.alloc_array(16, 0);
    b.pad_to_line();
    let scheme = make_grouped_scm(LockKind::Ttas, 4, SchemeConfig::paper(), &mut b, 1);
    let probe = Arc::clone(&scheme);
    let mem = b.freeze(1);
    let htm = HtmConfig::deterministic().with_capacity(64, 4);
    harness::run(1, 0, htm, 1, mem, move |s| {
        for _ in 0..8 {
            scheme.execute(s, |s| {
                for k in 0..8 {
                    s.store(VarId::from_index(vars.index() + k), 1)?;
                }
                Ok(())
            });
        }
    });
    let traffic = probe.aux_acquisitions();
    assert_eq!(traffic.len(), 4, "one traffic counter per auxiliary lock");
    assert_eq!(traffic.iter().sum::<u64>(), 8, "one aux acquisition per operation");
    assert!(
        traffic.iter().filter(|&&c| c > 0).count() >= 2,
        "line-less aborts must spread over multiple aux locks: {traffic:?}"
    );
}

#[test]
fn labels_and_display() {
    assert_eq!(SchemeKind::GroupedScm.label(), "grouped-SCM");
    assert_eq!(format!("{}", SchemeKind::OptSlr), "opt SLR");
    assert!(SchemeKind::GroupedScm.uses_aux());
    assert!(!SchemeKind::Hle.uses_aux());
    assert_eq!(SchemeKind::ALL.len(), 6, "figures compare the paper's six schemes");
}

#[test]
fn hle_retries_over_fair_lock_waits_for_drain() {
    // HLE-retries turns fair locks into TTAS-style locks (paper §2): a
    // thread that aborts waits for the lock to drain instead of
    // enqueueing. Verify it still completes and stays correct under
    // contention.
    let threads = 4;
    let mut b = MemoryBuilder::new();
    let x = b.alloc_isolated(0);
    let scheme =
        make_scheme(SchemeKind::HleRetries, LockKind::Mcs, SchemeConfig::paper(), &mut b, threads);
    let mem = b.freeze(threads);
    let (_, mem, _) = harness::run(threads, 0, HtmConfig::deterministic(), 5, mem, move |s| {
        for _ in 0..50 {
            scheme.execute(s, |s| {
                let v = s.load(x)?;
                s.work(4)?;
                s.store(x, v + 1)
            });
        }
    });
    assert_eq!(mem.read_direct(x), threads as u64 * 50);
}
