//! **Software-improved hardware lock elision** (Afek, Levy, Morrison —
//! PODC 2014), reproduced over a simulated best-effort HTM.
//!
//! Hardware lock elision runs lock-protected critical sections as
//! hardware transactions, but a single abort forces a real lock
//! acquisition that conflicts with the lock word in every concurrent
//! transaction's read set — serializing everything (the *lemming
//! effect*). This crate implements the paper's two software remedies:
//!
//! * **SLR** (software-assisted lock removal): transactions never touch
//!   the lock until commit time, when they read it and self-abort if it
//!   is held. Higher concurrency, sacrifices opacity (safely: doomed
//!   transactions are sandboxed and can never commit).
//! * **SCM** (software-assisted conflict management): aborted threads
//!   serialize on an auxiliary lock and rejoin the speculative run,
//!   leaving non-conflicting threads undisturbed. Retains opacity, works
//!   with fair locks, and provides the first starvation-free HLE scheme.
//!
//! alongside the baselines the paper compares against (plain HLE,
//! HLE-with-retries, standard locking) and over the four lock families it
//! discusses (TTAS, MCS, HLE-adapted ticket and CLH).
//!
//! # Example
//!
//! ```
//! use elision_core::{make_scheme, LockKind, SchemeConfig, SchemeKind};
//! use elision_htm::{harness, HtmConfig, MemoryBuilder};
//!
//! let threads = 4;
//! let mut b = MemoryBuilder::new();
//! let counter = b.alloc_isolated(0);
//! let scheme = make_scheme(
//!     SchemeKind::HleScm,
//!     LockKind::Mcs,
//!     SchemeConfig::paper(),
//!     &mut b,
//!     threads,
//! );
//! let mem = b.freeze(threads);
//! let (_, mem, _) = harness::run(threads, 0, HtmConfig::deterministic(), 1, mem, move |s| {
//!     for _ in 0..100 {
//!         scheme.execute(s, |s| {
//!             let v = s.load(counter)?;
//!             s.store(counter, v + 1)
//!         });
//!     }
//! });
//! assert_eq!(mem.read_direct(counter), 400);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod factory;
mod scheme;
mod watchdog;

pub use factory::{make_grouped_scm, make_lock, make_scheme, make_scheme_with_aux, LockKind};
pub use scheme::{
    BackoffPolicy, BreakerConfig, ExecOutcome, LazyMode, Scheme, SchemeConfig, SchemeError,
    SchemeKind,
};
pub use watchdog::{LatencyHistogram, Watchdog};

#[cfg(test)]
mod tests {
    use super::*;
    use elision_htm::{harness, HtmConfig, MemoryBuilder, VarId};
    use elision_sim::OpCounters;
    use std::sync::Arc;

    /// Run `threads` threads, each performing `ops` non-atomic increments
    /// of a shared counter under the scheme; return (final counter,
    /// summed counters).
    fn counter_stress(
        scheme_kind: SchemeKind,
        lock: LockKind,
        threads: usize,
        ops: u64,
        window: u64,
    ) -> (u64, OpCounters) {
        let mut b = MemoryBuilder::new();
        let counter = b.alloc_isolated(0);
        let scheme = make_scheme(scheme_kind, lock, SchemeConfig::paper(), &mut b, threads);
        let mem = b.freeze(threads);
        let (results, mem, _) =
            harness::run(threads, window, HtmConfig::deterministic(), 3, mem, move |s| {
                for _ in 0..ops {
                    scheme.execute(s, |s| {
                        let v = s.load(counter)?;
                        s.work(3)?;
                        s.store(counter, v + 1)
                    });
                }
                s.counters
            });
        (mem.read_direct(counter), OpCounters::sum(results.iter()))
    }

    #[test]
    fn every_scheme_preserves_atomicity_on_ttas() {
        for kind in SchemeKind::ALL {
            let (count, c) = counter_stress(kind, LockKind::Ttas, 4, 50, 0);
            assert_eq!(count, 200, "{kind} lost updates");
            assert_eq!(c.completed(), 200, "{kind} miscounted completions");
        }
    }

    #[test]
    fn every_scheme_preserves_atomicity_on_mcs() {
        for kind in SchemeKind::ALL {
            let (count, c) = counter_stress(kind, LockKind::Mcs, 4, 50, 0);
            assert_eq!(count, 200, "{kind} lost updates");
            assert_eq!(c.completed(), 200, "{kind} miscounted completions");
        }
    }

    #[test]
    fn every_scheme_preserves_atomicity_on_adapted_fair_locks() {
        for lock in [LockKind::Ticket, LockKind::Clh] {
            for kind in [SchemeKind::Hle, SchemeKind::HleScm, SchemeKind::OptSlr] {
                let (count, _) = counter_stress(kind, lock, 3, 40, 0);
                assert_eq!(count, 120, "{kind} over {lock} lost updates");
            }
        }
    }

    #[test]
    fn schemes_survive_bounded_lag_windows() {
        for kind in SchemeKind::ALL {
            let (count, _) = counter_stress(kind, LockKind::Ttas, 6, 40, 48);
            assert_eq!(count, 240, "{kind} lost updates under lag window");
        }
    }

    #[test]
    fn standard_scheme_is_fully_nonspeculative() {
        let (_, c) = counter_stress(SchemeKind::Standard, LockKind::Mcs, 3, 30, 0);
        assert_eq!(c.nonspeculative, 90);
        assert_eq!(c.speculative, 0);
        assert_eq!(c.aborted, 0);
        assert!((c.attempts_per_op() - 1.0).abs() < 1e-12);
    }

    /// Disjoint per-thread data: elision schemes must run everything
    /// speculatively (no conflicts, no spurious aborts configured).
    fn disjoint_stress(scheme_kind: SchemeKind, lock: LockKind) -> OpCounters {
        let threads = 4;
        let mut b = MemoryBuilder::new();
        let slots: Vec<VarId> = (0..threads).map(|_| b.alloc_isolated(0)).collect();
        let scheme = make_scheme(scheme_kind, lock, SchemeConfig::paper(), &mut b, threads);
        let mem = b.freeze(threads);
        let (results, mem, _) =
            harness::run(threads, 0, HtmConfig::deterministic(), 3, mem, move |s| {
                let my = slots[s.tid()];
                for _ in 0..60 {
                    scheme.execute(s, |s| {
                        let v = s.load(my)?;
                        s.work(4)?;
                        s.store(my, v + 1)
                    });
                }
                s.counters
            });
        for t in 0..threads {
            // slots were captured; re-derive per-thread totals from memory
            let _ = t;
        }
        drop(mem);
        OpCounters::sum(results.iter())
    }

    #[test]
    fn conflict_free_workloads_stay_fully_speculative() {
        for kind in [
            SchemeKind::Hle,
            SchemeKind::HleRetries,
            SchemeKind::HleScm,
            SchemeKind::OptSlr,
            SchemeKind::SlrScm,
        ] {
            for lock in [LockKind::Ttas, LockKind::Mcs] {
                let c = disjoint_stress(kind, lock);
                assert_eq!(c.nonspeculative, 0, "{kind}/{lock} serialized needlessly");
                assert_eq!(c.speculative, 240);
                assert_eq!(c.aborted, 0, "{kind}/{lock} aborted without conflicts");
            }
        }
    }

    #[test]
    fn slr_commits_across_a_nonspeculative_critical_section() {
        // T0 holds the real lock for a long, disjoint critical section;
        // T1 (opt SLR) starts speculating meanwhile and must be able to
        // commit once T0 releases — without T0's acquisition aborting it
        // (lock removal's whole point). We verify T1 completed
        // speculatively.
        let mut b = MemoryBuilder::new();
        let a = b.alloc_isolated(0);
        let z = b.alloc_isolated(0);
        let main = make_lock(LockKind::Ttas, &mut b, 2);
        let standard = Arc::new(
            Scheme::new(SchemeKind::Standard, SchemeConfig::paper(), Arc::clone(&main), None)
                .expect("Standard needs no aux lock"),
        );
        let slr = Arc::new(
            Scheme::new(SchemeKind::OptSlr, SchemeConfig::paper(), Arc::clone(&main), None)
                .expect("OptSlr needs no aux lock"),
        );
        let mem = b.freeze(2);
        let (results, mem, _) = harness::run(2, 0, HtmConfig::deterministic(), 3, mem, move |s| {
            if s.tid() == 0 {
                let out = standard.execute(s, |s| {
                    let v = s.load(a)?;
                    s.work(500)?;
                    s.store(a, v + 1)
                });
                (out.nonspeculative, out.attempts)
            } else {
                s.work(100).unwrap();
                let out = slr.execute(s, |s| {
                    let v = s.load(z)?;
                    s.work(30)?;
                    s.store(z, v + 1)
                });
                (out.nonspeculative, out.attempts)
            }
        });
        assert!(results[0].0, "T0 ran under the real lock");
        assert!(!results[1].0, "SLR thread should have committed speculatively");
        assert_eq!(mem.read_direct(a), 1);
        assert_eq!(mem.read_direct(z), 1);
    }

    #[test]
    fn hle_on_mcs_serializes_after_one_abort_scm_recovers() {
        // A moderately conflicting workload: threads mostly touch private
        // slots but hit a shared word every 4th op. Plain HLE over MCS
        // must degenerate to (almost) fully non-speculative execution,
        // while HLE-SCM keeps most operations speculative — the paper's
        // central claim (Figures 2 and 10).
        fn run(kind: SchemeKind) -> OpCounters {
            let threads = 4;
            let ops = 120u64;
            let mut b = MemoryBuilder::new();
            let shared = b.alloc_isolated(0);
            let slots: Vec<VarId> = (0..threads).map(|_| b.alloc_isolated(0)).collect();
            let scheme = make_scheme(kind, LockKind::Mcs, SchemeConfig::paper(), &mut b, threads);
            let mem = b.freeze(threads);
            let (results, ..) =
                harness::run(threads, 0, HtmConfig::deterministic(), 3, mem, move |s| {
                    let my = slots[s.tid()];
                    for i in 0..ops {
                        scheme.execute(s, |s| {
                            let target = if i % 4 == 0 { shared } else { my };
                            let v = s.load(target)?;
                            s.work(6)?;
                            s.store(target, v + 1)
                        });
                    }
                    s.counters
                });
            OpCounters::sum(results.iter())
        }
        let hle = run(SchemeKind::Hle);
        let scm = run(SchemeKind::HleScm);
        assert!(
            hle.frac_nonspeculative() > 0.5,
            "HLE-MCS should suffer the lemming effect (got {:.2})",
            hle.frac_nonspeculative()
        );
        assert!(
            scm.frac_nonspeculative() < 0.2,
            "HLE-SCM should restore speculation (got {:.2})",
            scm.frac_nonspeculative()
        );
        assert!(scm.frac_nonspeculative() < hle.frac_nonspeculative());
    }

    #[test]
    fn scm_true_nesting_variant_works() {
        let threads = 4;
        let mut b = MemoryBuilder::new();
        let counter = b.alloc_isolated(0);
        let cfg = SchemeConfig { scm_true_nesting: true, ..SchemeConfig::paper() };
        let scheme = make_scheme(SchemeKind::HleScm, LockKind::Mcs, cfg, &mut b, threads);
        let mem = b.freeze(threads);
        let (_, mem, _) = harness::run(threads, 0, HtmConfig::deterministic(), 3, mem, move |s| {
            for _ in 0..50 {
                scheme.execute(s, |s| {
                    let v = s.load(counter)?;
                    s.store(counter, v + 1)
                });
            }
        });
        assert_eq!(mem.read_direct(counter), 200);
    }

    #[test]
    fn scm_with_unfair_aux_still_correct() {
        let threads = 4;
        let mut b = MemoryBuilder::new();
        let counter = b.alloc_isolated(0);
        let scheme = make_scheme_with_aux(
            SchemeKind::SlrScm,
            LockKind::Ttas,
            LockKind::Ttas,
            SchemeConfig::paper(),
            &mut b,
            threads,
        );
        let mem = b.freeze(threads);
        let (_, mem, _) = harness::run(threads, 0, HtmConfig::deterministic(), 3, mem, move |s| {
            for _ in 0..50 {
                scheme.execute(s, |s| {
                    let v = s.load(counter)?;
                    s.store(counter, v + 1)
                });
            }
        });
        assert_eq!(mem.read_direct(counter), 200);
    }

    #[test]
    fn outcome_reports_attempts() {
        let mut b = MemoryBuilder::new();
        let x = b.alloc_isolated(0);
        let scheme =
            make_scheme(SchemeKind::Standard, LockKind::Ttas, SchemeConfig::paper(), &mut b, 1);
        let mem = b.freeze(1);
        harness::run(1, 0, HtmConfig::deterministic(), 1, mem, move |s| {
            let out = scheme.execute(s, |s| s.store(x, 1));
            assert_eq!(out.attempts, 1);
            assert!(out.nonspeculative);
        });
    }

    #[test]
    fn schemes_tolerate_spurious_abort_storms() {
        // 20% of transactions spuriously abort: every scheme must still
        // complete all operations correctly (failure injection).
        let threads = 4;
        let ops = 40u64;
        for kind in [
            SchemeKind::Hle,
            SchemeKind::HleRetries,
            SchemeKind::HleScm,
            SchemeKind::OptSlr,
            SchemeKind::SlrScm,
        ] {
            let mut b = MemoryBuilder::new();
            let counter = b.alloc_isolated(0);
            let scheme = make_scheme(kind, LockKind::Mcs, SchemeConfig::paper(), &mut b, threads);
            let mem = b.freeze(threads);
            let cfg = HtmConfig::deterministic().with_spurious(0.2, 0.001);
            let (_, mem, _) = harness::run(threads, 0, cfg, 9, mem, move |s| {
                for _ in 0..ops {
                    scheme.execute(s, |s| {
                        let v = s.load(counter)?;
                        s.store(counter, v + 1)
                    });
                }
            });
            assert_eq!(
                mem.read_direct(counter),
                threads as u64 * ops,
                "{kind} under spurious storm"
            );
        }
    }

    #[test]
    fn grouped_scm_is_correct_under_contention() {
        let threads = 6;
        let mut b = MemoryBuilder::new();
        let counters: Vec<VarId> = (0..4).map(|_| b.alloc_isolated(0)).collect();
        let scheme = make_grouped_scm(LockKind::Mcs, 4, SchemeConfig::paper(), &mut b, threads);
        let mem = b.freeze(threads);
        let counters2 = counters.clone();
        let (_, mem, _) = harness::run(threads, 0, HtmConfig::deterministic(), 3, mem, move |s| {
            for i in 0..60u64 {
                let target = counters2[(s.tid() as u64 + i) as usize % counters2.len()];
                scheme.execute(s, |s| {
                    let v = s.load(target)?;
                    s.work(4)?;
                    s.store(target, v + 1)
                });
            }
        });
        let total: u64 = counters.iter().map(|&c| mem.read_direct(c)).sum();
        assert_eq!(total, threads as u64 * 60);
    }

    #[test]
    fn grouped_scm_outperforms_single_aux_on_partitioned_conflicts() {
        // Four independent hot words with long critical sections: the
        // regime where partitioning the serializing path pays off (the
        // `ablation_grouped` binary maps the full spectrum, including
        // regimes where grouping loses).
        fn run(grouped: bool) -> u64 {
            let threads = 8;
            let ops = 80u64;
            let mut b = MemoryBuilder::new();
            let hot: Vec<VarId> = (0..4).map(|_| b.alloc_isolated(0)).collect();
            let scheme = if grouped {
                make_grouped_scm(LockKind::Ttas, 16, SchemeConfig::paper(), &mut b, threads)
            } else {
                make_scheme(
                    SchemeKind::HleScm,
                    LockKind::Ttas,
                    SchemeConfig::paper(),
                    &mut b,
                    threads,
                )
            };
            let mem = b.freeze(threads);
            let hot2 = hot.clone();
            let (_, mem, makespan) =
                harness::run(threads, 0, HtmConfig::deterministic(), 3, mem, move |s| {
                    // Threads pair up on a hot word: 0,4 -> word 0; ...
                    let target = hot2[s.tid() % hot2.len()];
                    for _ in 0..ops {
                        scheme.execute(s, |s| {
                            let v = s.load(target)?;
                            s.work(80)?;
                            s.store(target, v + 1)
                        });
                    }
                });
            let total: u64 = hot.iter().map(|&h| mem.read_direct(h)).sum();
            assert_eq!(total, threads as u64 * ops, "lost updates");
            makespan
        }
        let single = run(false);
        let grouped = run(true);
        assert!(
            grouped < single,
            "grouped SCM should finish sooner on partitioned conflicts ({grouped} vs {single})"
        );
    }

    #[test]
    fn scm_without_aux_is_a_typed_error() {
        let mut b = MemoryBuilder::new();
        let main = make_lock(LockKind::Ttas, &mut b, 2);
        for kind in [SchemeKind::HleScm, SchemeKind::SlrScm, SchemeKind::GroupedScm] {
            let err = Scheme::new(kind, SchemeConfig::paper(), Arc::clone(&main), None)
                .expect_err("SCM without aux must be rejected");
            assert_eq!(err, SchemeError::MissingAuxLock(kind));
            assert!(err.to_string().contains("auxiliary lock"), "useful message: {err}");
        }
        let err = Scheme::new_grouped(SchemeConfig::paper(), Arc::clone(&main), Vec::new())
            .expect_err("grouped SCM without aux must be rejected");
        assert_eq!(err, SchemeError::NoAuxLocks);
        // Non-SCM kinds never need the aux lock.
        assert!(Scheme::new(SchemeKind::Hle, SchemeConfig::paper(), main, None).is_ok());
    }

    #[test]
    fn out_of_range_breaker_config_is_a_typed_error() {
        let mut b = MemoryBuilder::new();
        let main = make_lock(LockKind::Ttas, &mut b, 2);
        // trip_permille above 1000 can never trip: the window's abort
        // fraction is at most 1000 permille.
        let mut cfg = SchemeConfig::hardened();
        cfg.breaker =
            Some(BreakerConfig { trip_permille: 1001, ..BreakerConfig::default_policy() });
        let err = Scheme::new(SchemeKind::Hle, cfg, Arc::clone(&main), None)
            .expect_err("untrippable breaker threshold must be rejected");
        assert_eq!(err, SchemeError::InvalidConfig { knob: "breaker.trip_permille", value: 1001 });
        assert!(err.to_string().contains("trip_permille"), "useful message: {err}");

        let mut cfg = SchemeConfig::hardened();
        cfg.breaker = Some(BreakerConfig { window_attempts: 0, ..BreakerConfig::default_policy() });
        let err = Scheme::new_grouped(cfg, Arc::clone(&main), vec![Arc::clone(&main)])
            .expect_err("empty breaker window must be rejected");
        assert_eq!(err, SchemeError::InvalidConfig { knob: "breaker.window_attempts", value: 0 });

        // The boundary (trip at exactly 1000 permille = only when every
        // attempt aborted) and the presets are valid.
        let mut cfg = SchemeConfig::hardened();
        cfg.breaker =
            Some(BreakerConfig { trip_permille: 1000, ..BreakerConfig::default_policy() });
        assert!(Scheme::new(SchemeKind::Hle, cfg, Arc::clone(&main), None).is_ok());
        assert_eq!(SchemeConfig::paper().validate(), Ok(()));
        assert_eq!(SchemeConfig::hardened().validate(), Ok(()));
    }

    /// Like `counter_stress` but with an arbitrary scheme config and HTM
    /// fault injection; returns (counter value, summed counters, scheme).
    fn chaos_counter_stress(
        scheme_kind: SchemeKind,
        lock: LockKind,
        scheme_cfg: SchemeConfig,
        faults: elision_htm::HtmFaults,
        threads: usize,
        ops: u64,
    ) -> (u64, OpCounters, Arc<Scheme>) {
        let mut b = MemoryBuilder::new();
        let counter = b.alloc_isolated(0);
        let scheme = make_scheme(scheme_kind, lock, scheme_cfg, &mut b, threads);
        let mem = b.freeze(threads);
        let cfg = HtmConfig::deterministic().with_faults(faults);
        let scheme2 = Arc::clone(&scheme);
        let (results, mem, _) = harness::run(threads, 0, cfg, 7, mem, move |s| {
            for _ in 0..ops {
                scheme2.execute(s, |s| {
                    let v = s.load(counter)?;
                    s.work(3)?;
                    s.store(counter, v + 1)
                });
            }
            s.counters
        });
        (mem.read_direct(counter), OpCounters::sum(results.iter()), scheme)
    }

    #[test]
    fn hardened_config_stays_correct_under_abort_storms() {
        let faults = elision_htm::HtmFaults::none().with_storm(4000, 1500, 800);
        for kind in SchemeKind::ALL {
            for cfg in [SchemeConfig::paper(), SchemeConfig::hardened()] {
                let (count, c) = {
                    let (count, c, _) =
                        chaos_counter_stress(kind, LockKind::Mcs, cfg, faults, 4, 40);
                    (count, c)
                };
                assert_eq!(count, 160, "{kind} lost updates under storm (cfg {cfg:?})");
                assert_eq!(c.completed(), 160, "{kind} miscounted under storm");
            }
        }
    }

    #[test]
    fn breaker_trips_under_sustained_storm_and_stays_quiet_without() {
        let cfg = SchemeConfig {
            breaker: Some(BreakerConfig {
                window_attempts: 16,
                trip_permille: 600,
                cooldown_ops: 8,
            }),
            ..SchemeConfig::paper()
        };
        // Permanent storm: nearly every speculative attempt aborts.
        let storm = elision_htm::HtmFaults::none().with_storm(10, 10, 950);
        let (count, _, scheme) =
            chaos_counter_stress(SchemeKind::HleRetries, LockKind::Mcs, cfg, storm, 4, 60);
        assert_eq!(count, 240, "lost updates under permanent storm");
        assert!(scheme.breaker_trips() > 0, "breaker never tripped under a 95% abort storm");

        // No faults: conflict-heavy but mostly-committing workload must
        // not trip a 60%-abort-rate breaker.
        let calm = elision_htm::HtmFaults::none();
        let (count, _, scheme) =
            chaos_counter_stress(SchemeKind::HleScm, LockKind::Mcs, cfg, calm, 2, 40);
        assert_eq!(count, 80);
        assert_eq!(scheme.breaker_trips(), 0, "breaker tripped on a calm run");
    }

    #[test]
    fn backoff_preserves_atomicity_and_adds_no_attempts_when_calm() {
        let cfg = SchemeConfig {
            backoff: Some(BackoffPolicy {
                base_cycles: 32,
                max_cycles: 2048,
                jitter_permille: 500,
            }),
            ..SchemeConfig::paper()
        };
        let faults = elision_htm::HtmFaults::none().with_hot_line(0, 300);
        for kind in [SchemeKind::HleRetries, SchemeKind::OptSlr, SchemeKind::SlrScm] {
            let (count, c, _) = chaos_counter_stress(kind, LockKind::Ttas, cfg, faults, 4, 40);
            assert_eq!(count, 160, "{kind} lost updates with backoff under hot line");
            assert_eq!(c.completed(), 160);
        }
    }

    #[test]
    fn backoff_delays_grow_then_cap() {
        let bp = BackoffPolicy { base_cycles: 100, max_cycles: 1000, jitter_permille: 0 };
        let mut rng = elision_sim::DetRng::new(1, 1);
        assert_eq!(bp.delay(1, &mut rng), 100);
        assert_eq!(bp.delay(2, &mut rng), 200);
        assert_eq!(bp.delay(3, &mut rng), 400);
        assert_eq!(bp.delay(5, &mut rng), 1000, "capped");
        assert_eq!(bp.delay(64, &mut rng), 1000, "shift-overflow saturates at the cap");
        let jittered = BackoffPolicy { jitter_permille: 1000, ..bp };
        for attempt in 1..=8 {
            let d = jittered.delay(attempt, &mut rng);
            let raw = (100u64 << (attempt - 1).min(48)).min(1000);
            assert!(d >= raw && d <= 2 * raw, "jitter within [raw, 2*raw]: {d} vs {raw}");
        }
    }

    #[test]
    fn capacity_overflow_falls_back_to_lock() {
        // A critical section writing more lines than the write set can
        // hold must complete non-speculatively under every elision scheme.
        let mut b = MemoryBuilder::new().words_per_line(1);
        let vars = b.alloc_array(32, 0);
        b.pad_to_line();
        let scheme =
            make_scheme(SchemeKind::OptSlr, LockKind::Ttas, SchemeConfig::paper(), &mut b, 1);
        let mem = b.freeze(1);
        let cfg = HtmConfig::deterministic().with_capacity(64, 8);
        harness::run(1, 0, cfg, 1, mem, move |s| {
            let out = scheme.execute(s, |s| {
                for k in 0..32 {
                    s.store(VarId::from_index(vars.index() + k), 1)?;
                }
                Ok(())
            });
            assert!(out.nonspeculative, "capacity overflow must fall back");
            // SLR status tuning: capacity aborts skip the retry budget.
            assert_eq!(out.attempts, 2, "status tuning should give up immediately");
        });
    }
}
