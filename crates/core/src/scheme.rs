//! The elision schemes the paper evaluates (Section 7's "Methodology"):
//!
//! 1. **Standard** — the plain non-speculative lock.
//! 2. **HLE** — hardware lock elision as-is (Figure 1 semantics): one
//!    speculative attempt; on abort, the acquisition re-executes
//!    non-transactionally.
//! 3. **HLE-retries** — Intel's recommendation: wait for the lock to look
//!    free and retry elision up to `max_retries` times before acquiring
//!    for real. (For fair locks this effectively turns them into TTAS
//!    locks, sacrificing fairness — paper §2.)
//! 4. **HLE-SCM** — HLE plus software-assisted conflict management
//!    (Figure 7): aborted threads serialize on an auxiliary lock and
//!    *rejoin the speculative run*; only the auxiliary-lock holder may
//!    eventually take the main lock. Keeps opacity via an eager
//!    lock-subscription at transaction begin (the paper's RTM workaround
//!    for Haswell's missing HLE-in-RTM nesting).
//! 5. **opt SLR** — optimistic software-assisted lock removal (Figure 5):
//!    run the transaction without touching the lock, subscribe *lazily*
//!    at commit time, retry up to `max_retries` before acquiring for
//!    real. Sacrifices opacity (sandboxed).
//! 6. **SLR-SCM** — SLR with the SCM serializing path layered on top.
//!
//! Additionally **NoLock** (single-thread baseline used for the paper's
//! speedup normalization) and a **true-nesting** SCM variant (elide the
//! main lock inside the RTM transaction — the design Figure 7 describes
//! but Haswell could not run) are provided.

use elision_htm::{codes, Strand, TxResult};
use elision_locks::{FallbackOutcome, RawLock};
use elision_sim::AttemptKind;
use std::fmt;
use std::sync::Arc;

/// Which elision scheme to run (paper §7 "Methodology").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// No lock at all — valid only for single-threaded baseline runs.
    NoLock,
    /// Plain non-speculative locking.
    Standard,
    /// Hardware lock elision as-is.
    Hle,
    /// HLE with speculative retries (Intel's recommendation).
    HleRetries,
    /// HLE with software-assisted conflict management.
    HleScm,
    /// Optimistic software-assisted lock removal.
    OptSlr,
    /// SLR with conflict management.
    SlrScm,
    /// Extension of the paper's §6 remark / §8 future work: SCM with the
    /// conflicting threads partitioned into *groups* by the cache line
    /// the abort occurred on, each group serialized by its own auxiliary
    /// lock — so threads conflicting on unrelated data do not serialize
    /// with each other.
    GroupedScm,
}

impl SchemeKind {
    /// All schemes the paper's figures compare.
    pub const ALL: [SchemeKind; 6] = [
        SchemeKind::Standard,
        SchemeKind::Hle,
        SchemeKind::HleRetries,
        SchemeKind::HleScm,
        SchemeKind::OptSlr,
        SchemeKind::SlrScm,
    ];

    /// The paper's label for this scheme.
    pub fn label(&self) -> &'static str {
        match self {
            SchemeKind::NoLock => "NoLock",
            SchemeKind::Standard => "Standard",
            SchemeKind::Hle => "HLE",
            SchemeKind::HleRetries => "HLE-retries",
            SchemeKind::HleScm => "HLE-SCM",
            SchemeKind::OptSlr => "opt SLR",
            SchemeKind::SlrScm => "SLR-SCM",
            SchemeKind::GroupedScm => "grouped-SCM",
        }
    }

    /// Whether this scheme uses the SCM auxiliary lock(s).
    pub fn uses_aux(&self) -> bool {
        matches!(self, SchemeKind::HleScm | SchemeKind::SlrScm | SchemeKind::GroupedScm)
    }
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Scheme tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchemeConfig {
    /// Speculative attempts before giving up and taking the real lock
    /// (the paper uses 10 for HLE-retries, opt SLR and the SCM aux-holder
    /// budget).
    pub max_retries: u32,
    /// SLR tuning from §7: when the abort status says the transaction is
    /// unlikely to succeed (e.g. capacity), skip the remaining retries.
    pub slr_status_tuning: bool,
    /// SCM extension: elide the main lock inside the RTM transaction
    /// (true HLE-in-RTM nesting) instead of the read-and-check
    /// workaround the paper had to use on Haswell.
    pub scm_true_nesting: bool,
}

impl SchemeConfig {
    /// The paper's configuration: 10 retries, SLR status tuning on,
    /// Haswell-faithful SCM workaround.
    pub fn paper() -> Self {
        SchemeConfig { max_retries: 10, slr_status_tuning: true, scm_true_nesting: false }
    }
}

impl Default for SchemeConfig {
    fn default() -> Self {
        SchemeConfig::paper()
    }
}

/// How one critical-section execution completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOutcome<R> {
    /// The critical section's return value.
    pub value: R,
    /// Whether the operation completed under the real lock.
    pub nonspeculative: bool,
    /// Total attempts (aborted speculative attempts + the completing one).
    pub attempts: u32,
}

/// A lock wrapped in one of the paper's elision schemes.
///
/// One `Scheme` instance is shared by all simulated threads; per-execution
/// state (retry counts, auxiliary-lock ownership) is transient and local.
pub struct Scheme {
    kind: SchemeKind,
    cfg: SchemeConfig,
    main: Arc<dyn RawLock>,
    /// Auxiliary serializing locks: empty for non-SCM schemes, one for
    /// classic SCM, several for grouped SCM.
    aux: Vec<Arc<dyn RawLock>>,
}

impl fmt::Debug for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scheme")
            .field("kind", &self.kind)
            .field("main", &self.main.name())
            .field("aux", &self.aux.iter().map(|a| a.name()).collect::<Vec<_>>())
            .finish()
    }
}

impl Scheme {
    /// Wrap `main` in the given scheme. SCM schemes require `aux` (the
    /// paper recommends a fair lock; see [`SchemeKind::uses_aux`]).
    ///
    /// # Panics
    ///
    /// Panics if an SCM scheme is requested without an auxiliary lock.
    pub fn new(
        kind: SchemeKind,
        cfg: SchemeConfig,
        main: Arc<dyn RawLock>,
        aux: Option<Arc<dyn RawLock>>,
    ) -> Self {
        assert!(
            !kind.uses_aux() || aux.is_some(),
            "{kind} requires an auxiliary lock"
        );
        Scheme { kind, cfg, main, aux: aux.into_iter().collect() }
    }

    /// Build a grouped SCM scheme with one auxiliary lock per conflict
    /// group (the §8 future-work extension). Aborted threads serialize on
    /// `aux[hash(conflict line) % groups]`, so conflicts on unrelated
    /// data do not serialize with each other.
    ///
    /// # Panics
    ///
    /// Panics if `aux` is empty.
    pub fn new_grouped(
        cfg: SchemeConfig,
        main: Arc<dyn RawLock>,
        aux: Vec<Arc<dyn RawLock>>,
    ) -> Self {
        assert!(!aux.is_empty(), "grouped SCM needs at least one auxiliary lock");
        Scheme { kind: SchemeKind::GroupedScm, cfg, main, aux }
    }

    /// The scheme kind.
    pub fn kind(&self) -> SchemeKind {
        self.kind
    }

    /// The main lock.
    pub fn main_lock(&self) -> &Arc<dyn RawLock> {
        &self.main
    }

    /// Execute `body` as a critical section under this scheme.
    ///
    /// `body` may run several times (speculative retries) and must be
    /// idempotent in its side effects *outside* simulated memory;
    /// transactional memory effects roll back automatically. It must
    /// propagate `Err(Abort)` outward (never swallow it).
    ///
    /// S/A/N counters are recorded into `s.counters`.
    pub fn execute<R>(
        &self,
        s: &mut Strand,
        mut body: impl FnMut(&mut Strand) -> TxResult<R>,
    ) -> ExecOutcome<R> {
        match self.kind {
            SchemeKind::NoLock => {
                let value = body(s).expect("non-speculative body cannot abort");
                ExecOutcome { value, nonspeculative: false, attempts: 1 }
            }
            SchemeKind::Standard => {
                let value = self.run_locked(s, &mut body);
                s.counters.record(AttemptKind::NonSpeculative);
                ExecOutcome { value, nonspeculative: true, attempts: 1 }
            }
            SchemeKind::Hle => self.execute_hle(s, &mut body, 1),
            SchemeKind::HleRetries => self.execute_hle(s, &mut body, self.cfg.max_retries),
            SchemeKind::HleScm => self.execute_scm(s, &mut body, Subscription::Eager),
            SchemeKind::OptSlr => self.execute_slr(s, &mut body),
            SchemeKind::SlrScm => self.execute_scm(s, &mut body, Subscription::Lazy),
            SchemeKind::GroupedScm => self.execute_scm(s, &mut body, Subscription::Eager),
        }
    }

    /// Acquire the main lock, run the body non-speculatively, release.
    fn run_locked<R>(&self, s: &mut Strand, body: &mut impl FnMut(&mut Strand) -> TxResult<R>) -> R {
        self.main.acquire(s).expect("non-speculative acquire cannot abort");
        let value = body(s).expect("non-speculative body cannot abort");
        self.main.release(s).expect("non-speculative release cannot abort");
        value
    }

    /// One elided (XACQUIRE .. XRELEASE) speculative attempt.
    fn attempt_elided<R>(
        &self,
        s: &mut Strand,
        body: &mut impl FnMut(&mut Strand) -> TxResult<R>,
    ) -> Result<R, elision_htm::AbortStatus> {
        let main = &self.main;
        s.attempt(|s| {
            main.elided_acquire(s)?;
            let v = body(s)?;
            main.elided_release(s)?;
            Ok(v)
        })
    }

    /// Plain HLE (`budget == 1`) and HLE-retries (`budget == max_retries`).
    fn execute_hle<R>(
        &self,
        s: &mut Strand,
        body: &mut impl FnMut(&mut Strand) -> TxResult<R>,
        budget: u32,
    ) -> ExecOutcome<R> {
        let retries_mode = budget > 1;
        let mut attempts = 0u32;
        let mut first_arrival = true;
        loop {
            // Figure 1's outer test-and-test loop: unfair locks (and any
            // lock under Intel's retry guideline) wait until the lock
            // looks free before issuing the XACQUIRE.
            if !self.main.is_fair() || retries_mode {
                let held = self.main.is_locked(s).expect("plain read cannot abort");
                if held {
                    if first_arrival {
                        s.counters.arrived_lock_held += 1;
                    }
                    self.main.wait_until_free(s).expect("plain spin cannot abort");
                }
            }
            first_arrival = false;

            attempts += 1;
            match self.attempt_elided(s, body) {
                Ok(value) => {
                    s.counters.record(AttemptKind::Speculative);
                    return ExecOutcome { value, nonspeculative: false, attempts };
                }
                Err(_status) => {
                    s.counters.record(AttemptKind::Aborted);
                }
            }

            if attempts >= budget {
                // HLE's hardware fallback: re-execute the acquisition
                // non-transactionally. For TTAS this is a single TAS that
                // may fail (then we loop: spin and re-elide — Figure 1);
                // queue locks enqueue and block, serializing behind every
                // other aborted thread (the lemming effect).
                match self.main.fallback_acquire(s).expect("fallback cannot abort") {
                    FallbackOutcome::Acquired => {
                        let value = body(s).expect("non-speculative body cannot abort");
                        self.main.release(s).expect("release cannot abort");
                        s.counters.record(AttemptKind::NonSpeculative);
                        attempts += 1;
                        return ExecOutcome { value, nonspeculative: true, attempts };
                    }
                    FallbackOutcome::Busy => {
                        // Lock held by another aborted thread: loop back,
                        // wait for it to leave, then re-enter speculation.
                    }
                }
            }
        }
    }

    /// Optimistic SLR (Figure 5): no lock access until commit time.
    fn execute_slr<R>(
        &self,
        s: &mut Strand,
        body: &mut impl FnMut(&mut Strand) -> TxResult<R>,
    ) -> ExecOutcome<R> {
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let main = &self.main;
            let r = s.attempt(|s| {
                let v = body(s)?;
                // Lazy subscription: read the lock only when ready to
                // commit; if it is held a non-speculative peer is inside
                // the critical section and we may have seen inconsistent
                // state — self-abort (Figure 5 line 24).
                if main.is_locked(s)? {
                    return Err(s.xabort(codes::LOCK_BUSY, true));
                }
                Ok(v)
            });
            match r {
                Ok(value) => {
                    s.counters.record(AttemptKind::Speculative);
                    return ExecOutcome { value, nonspeculative: false, attempts };
                }
                Err(status) => {
                    s.counters.record(AttemptKind::Aborted);
                    let hopeless = self.cfg.slr_status_tuning && !status.retry_recommended;
                    if attempts >= self.cfg.max_retries || hopeless {
                        let value = self.run_locked(s, body);
                        s.counters.record(AttemptKind::NonSpeculative);
                        return ExecOutcome { value, nonspeculative: true, attempts: attempts + 1 };
                    }
                }
            }
        }
    }

    /// SCM (Figure 7), parameterized by when the transaction subscribes
    /// to the main lock: eagerly at begin (HLE-SCM, opacity-preserving)
    /// or lazily at commit (SLR-SCM).
    fn execute_scm<R>(
        &self,
        s: &mut Strand,
        body: &mut impl FnMut(&mut Strand) -> TxResult<R>,
        subscription: Subscription,
    ) -> ExecOutcome<R> {
        // The group is chosen by the *first* abort's conflict location and
        // then kept for the whole operation (at most one auxiliary lock is
        // ever held, so groups cannot deadlock against each other).
        let mut aux: &Arc<dyn RawLock> = self.aux.first().expect("SCM requires an auxiliary lock");
        let mut aux_owner = false;
        let mut retries = 0u32;
        let mut attempts = 0u32;
        let outcome = loop {
            // With the eager (HLE-like) subscription, speculation while
            // the main lock is held aborts instantly; wait it out first
            // (the paper's HLE-SCM tuning).
            if subscription == Subscription::Eager {
                let held = self.main.is_locked(s).expect("plain read cannot abort");
                if held {
                    if attempts == 0 {
                        s.counters.arrived_lock_held += 1;
                    }
                    self.main.wait_until_free(s).expect("plain spin cannot abort");
                }
            }

            attempts += 1;
            let main = &self.main;
            let true_nesting = self.cfg.scm_true_nesting;
            let r = s.attempt(|s| match subscription {
                Subscription::Eager => {
                    if true_nesting {
                        // The design Figure 7 describes: nest the HLE
                        // acquisition inside the RTM transaction.
                        main.elided_acquire(s)?;
                        let v = body(s)?;
                        main.elided_release(s)?;
                        Ok(v)
                    } else {
                        // Haswell workaround: put the main lock in the
                        // read set and verify it is free.
                        if main.is_locked(s)? {
                            return Err(s.xabort(codes::LOCK_BUSY, true));
                        }
                        body(s)
                    }
                }
                Subscription::Lazy => {
                    let v = body(s)?;
                    if main.is_locked(s)? {
                        return Err(s.xabort(codes::LOCK_BUSY, true));
                    }
                    Ok(v)
                }
            });
            let status = match r {
                Ok(value) => {
                    s.counters.record(AttemptKind::Speculative);
                    break ExecOutcome { value, nonspeculative: false, attempts };
                }
                Err(status) => {
                    s.counters.record(AttemptKind::Aborted);
                    status
                }
            };

            // Serializing path: group conflicting threads behind the
            // auxiliary lock; the holder rejoins the speculative run.
            if !aux_owner {
                if self.kind == SchemeKind::GroupedScm && self.aux.len() > 1 {
                    let group = status
                        .conflict_line
                        .map(|l| {
                            (l as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) as usize
                                % self.aux.len()
                        })
                        .unwrap_or(0);
                    aux = &self.aux[group];
                }
                aux.acquire(s).expect("aux acquire cannot abort");
                aux_owner = true;
            } else {
                retries += 1;
            }
            if retries >= self.cfg.max_retries {
                // The auxiliary-lock holder gives up: it is the only
                // thread that may acquire the main lock, so this cannot
                // deadlock and guarantees progress (paper §6).
                let value = self.run_locked(s, body);
                s.counters.record(AttemptKind::NonSpeculative);
                break ExecOutcome { value, nonspeculative: true, attempts: attempts + 1 };
            }
        };
        if aux_owner {
            aux.release(s).expect("aux release cannot abort");
        }
        outcome
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Subscription {
    Eager,
    Lazy,
}
