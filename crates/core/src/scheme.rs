//! The elision schemes the paper evaluates (Section 7's "Methodology"):
//!
//! 1. **Standard** — the plain non-speculative lock.
//! 2. **HLE** — hardware lock elision as-is (Figure 1 semantics): one
//!    speculative attempt; on abort, the acquisition re-executes
//!    non-transactionally.
//! 3. **HLE-retries** — Intel's recommendation: wait for the lock to look
//!    free and retry elision up to `max_retries` times before acquiring
//!    for real. (For fair locks this effectively turns them into TTAS
//!    locks, sacrificing fairness — paper §2.)
//! 4. **HLE-SCM** — HLE plus software-assisted conflict management
//!    (Figure 7): aborted threads serialize on an auxiliary lock and
//!    *rejoin the speculative run*; only the auxiliary-lock holder may
//!    eventually take the main lock. Keeps opacity via an eager
//!    lock-subscription at transaction begin (the paper's RTM workaround
//!    for Haswell's missing HLE-in-RTM nesting).
//! 5. **opt SLR** — optimistic software-assisted lock removal (Figure 5):
//!    run the transaction without touching the lock, subscribe *lazily*
//!    at commit time, retry up to `max_retries` before acquiring for
//!    real. Sacrifices opacity (sandboxed).
//! 6. **SLR-SCM** — SLR with the SCM serializing path layered on top.
//!
//! Additionally **NoLock** (single-thread baseline used for the paper's
//! speedup normalization) and a **true-nesting** SCM variant (elide the
//! main lock inside the RTM transaction — the design Figure 7 describes
//! but Haswell could not run) are provided.

use elision_htm::{codes, Strand, TxResult};
use elision_locks::{FallbackOutcome, RawLock};
use elision_sim::{AttemptKind, DetRng};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Typed configuration errors raised when assembling a [`Scheme`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeError {
    /// An SCM scheme (see [`SchemeKind::uses_aux`]) was constructed
    /// without the auxiliary serializing lock it requires.
    MissingAuxLock(SchemeKind),
    /// Grouped SCM was constructed with an empty auxiliary-lock vector.
    NoAuxLocks,
    /// A [`SchemeConfig`] knob is out of its domain (see
    /// [`SchemeConfig::validate`]).
    InvalidConfig {
        /// Which knob (e.g. `"breaker.trip_permille"`).
        knob: &'static str,
        /// The offending value.
        value: u64,
    },
}

impl fmt::Display for SchemeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemeError::MissingAuxLock(kind) => {
                write!(f, "{kind} requires an auxiliary lock")
            }
            SchemeError::NoAuxLocks => f.write_str("grouped SCM needs at least one auxiliary lock"),
            SchemeError::InvalidConfig { knob, value } => {
                write!(f, "scheme config: {knob} = {value} is out of range")
            }
        }
    }
}

impl std::error::Error for SchemeError {}

/// Which elision scheme to run (paper §7 "Methodology").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// No lock at all — valid only for single-threaded baseline runs.
    NoLock,
    /// Plain non-speculative locking.
    Standard,
    /// Hardware lock elision as-is.
    Hle,
    /// HLE with speculative retries (Intel's recommendation).
    HleRetries,
    /// HLE with software-assisted conflict management.
    HleScm,
    /// Optimistic software-assisted lock removal.
    OptSlr,
    /// SLR with conflict management.
    SlrScm,
    /// Extension of the paper's §6 remark / §8 future work: SCM with the
    /// conflicting threads partitioned into *groups* by the cache line
    /// the abort occurred on, each group serialized by its own auxiliary
    /// lock — so threads conflicting on unrelated data do not serialize
    /// with each other.
    GroupedScm,
}

impl SchemeKind {
    /// All schemes the paper's figures compare.
    pub const ALL: [SchemeKind; 6] = [
        SchemeKind::Standard,
        SchemeKind::Hle,
        SchemeKind::HleRetries,
        SchemeKind::HleScm,
        SchemeKind::OptSlr,
        SchemeKind::SlrScm,
    ];

    /// The paper's label for this scheme.
    pub fn label(&self) -> &'static str {
        match self {
            SchemeKind::NoLock => "NoLock",
            SchemeKind::Standard => "Standard",
            SchemeKind::Hle => "HLE",
            SchemeKind::HleRetries => "HLE-retries",
            SchemeKind::HleScm => "HLE-SCM",
            SchemeKind::OptSlr => "opt SLR",
            SchemeKind::SlrScm => "SLR-SCM",
            SchemeKind::GroupedScm => "grouped-SCM",
        }
    }

    /// Whether this scheme uses the SCM auxiliary lock(s).
    pub fn uses_aux(&self) -> bool {
        matches!(self, SchemeKind::HleScm | SchemeKind::SlrScm | SchemeKind::GroupedScm)
    }

    /// Whether this scheme subscribes to the main lock *lazily* (SLR
    /// style, Figure 5 line 24): the critical section body runs before
    /// the lock is read, so a doomed "zombie" can execute arbitrary
    /// section code on inconsistent state. Sections containing
    /// data-dependent write targets are dangerous under such schemes
    /// (arXiv 1407.6968).
    pub fn is_lazy_subscription(&self) -> bool {
        matches!(self, SchemeKind::OptSlr | SchemeKind::SlrScm)
    }
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Bounded exponential backoff between speculative retries.
///
/// After the `k`-th consecutive abort of one operation the thread burns
/// `min(max_cycles, base_cycles << (k-1))` cycles of simulated spin-wait,
/// plus a seeded random jitter of up to `jitter_permille`/1000 of that
/// delay. Jitter draws come from the strand's dedicated retry RNG stream,
/// so enabling backoff never perturbs workload or abort-injection draws.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Delay after the first abort, in cycles.
    pub base_cycles: u64,
    /// Cap on the exponential delay, in cycles.
    pub max_cycles: u64,
    /// Jitter span, in permille of the capped delay.
    pub jitter_permille: u32,
}

impl BackoffPolicy {
    /// A moderate default: 64..8192 cycles with 50% jitter.
    pub fn default_policy() -> Self {
        BackoffPolicy { base_cycles: 64, max_cycles: 8192, jitter_permille: 500 }
    }

    /// The delay before retry number `attempt` (1-based: the delay after
    /// the first abort uses `attempt == 1`).
    pub fn delay(&self, attempt: u32, rng: &mut DetRng) -> u64 {
        let shift = attempt.saturating_sub(1).min(48);
        let raw =
            self.base_cycles.checked_shl(shift).unwrap_or(self.max_cycles).min(self.max_cycles);
        let span = (raw as u128 * self.jitter_permille as u128 / 1000) as u64;
        raw + if span > 0 { rng.below(span + 1) } else { 0 }
    }
}

/// Per-scheme speculation circuit breaker.
///
/// The breaker watches the recent abort rate across *all* threads sharing
/// the scheme. Once `window_attempts` speculative attempts accumulate, the
/// window's abort fraction is compared against `trip_permille`; at or
/// above it the breaker opens and the next `cooldown_ops` operations are
/// routed straight to the non-speculative path (no doomed speculation, no
/// abort-storm amplification). After the cooldown the breaker closes and
/// speculation is re-probed with a fresh window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Speculative attempts per evaluation window.
    pub window_attempts: u32,
    /// Abort fraction (permille) at which the breaker trips.
    pub trip_permille: u32,
    /// Operations served non-speculatively while open.
    pub cooldown_ops: u32,
}

impl BreakerConfig {
    /// A moderate default: evaluate every 64 attempts, trip at 75%
    /// aborted, cool down for 32 operations.
    pub fn default_policy() -> Self {
        BreakerConfig { window_attempts: 64, trip_permille: 750, cooldown_ops: 32 }
    }
}

/// How an SLR-style scheme performs its lazy commit-time subscription
/// (Figure 5 line 24) — the knob at the heart of arXiv 1407.6968.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LazyMode {
    /// Software subscription whose read joins the transaction's read set.
    /// This is the simulator's long-standing default and the *idealized*
    /// reading of Figure 5: because the simulated commit validates the
    /// read set atomically with publication, the check-to-commit window
    /// is closed for free. A zombie can still defeat it from the inside —
    /// its own wild store to the lock word is served back from the write
    /// buffer, so the check passes on fabricated state.
    ReadSet,
    /// Software subscription the way real unfixed hardware executes it: a
    /// racy sample of committed state that joins no read set. The lock
    /// can be acquired between the sample and the commit (the paper's
    /// commit-time subscription race), on top of the zombie hazards.
    Unfenced,
    /// The paper's hardware fix: register the lock-free condition as a
    /// [`elision_htm::HwSubscription`] descriptor; the simulated commit
    /// evaluates it atomically with publication and aborts with
    /// [`elision_htm::codes::SUBSCRIPTION`] when the lock is held. No
    /// software read of the lock happens at all.
    HardwareCommit,
}

impl LazyMode {
    /// Stable snake_case label for artifacts and CSV/JSON emitters.
    pub fn label(&self) -> &'static str {
        match self {
            LazyMode::ReadSet => "read_set",
            LazyMode::Unfenced => "unfenced",
            LazyMode::HardwareCommit => "hardware_commit",
        }
    }
}

/// Scheme tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchemeConfig {
    /// Speculative attempts before giving up and taking the real lock
    /// (the paper uses 10 for HLE-retries, opt SLR and the SCM aux-holder
    /// budget).
    pub max_retries: u32,
    /// SLR tuning from §7: when the abort status says the transaction is
    /// unlikely to succeed (e.g. capacity), skip the remaining retries.
    pub slr_status_tuning: bool,
    /// SCM extension: elide the main lock inside the RTM transaction
    /// (true HLE-in-RTM nesting) instead of the read-and-check
    /// workaround the paper had to use on Haswell.
    pub scm_true_nesting: bool,
    /// Abort-adaptive retry backoff, if enabled (see [`BackoffPolicy`]).
    /// The paper's configuration retries immediately.
    pub backoff: Option<BackoffPolicy>,
    /// Extend the §7 status tuning to the HLE and SCM retry loops: an
    /// abort whose status says retrying is hopeless (capacity, explicit
    /// no-retry) skips the remaining speculative budget instead of
    /// burning it on attempts fated to fail the same way.
    pub capacity_skips_retries: bool,
    /// Speculation circuit breaker, if enabled (see [`BreakerConfig`]).
    pub breaker: Option<BreakerConfig>,
    /// Record `subscribe` protocol markers for the sanitizer's lint pass
    /// whenever a speculative attempt subscribes to the main lock (elided
    /// acquisition or SLR/SCM subscription read). Off in the paper
    /// configuration: markers cost nothing in simulated time but bloat
    /// trace rings.
    pub sanitize: bool,
    /// How SLR-style schemes subscribe to the main lock at commit time
    /// (see [`LazyMode`]). Eager schemes ignore this knob.
    pub lazy_mode: LazyMode,
}

impl SchemeConfig {
    /// The paper's configuration: 10 retries, SLR status tuning on,
    /// Haswell-faithful SCM workaround, no backoff, no breaker —
    /// byte-for-byte the behaviour every figure of the paper measures.
    pub fn paper() -> Self {
        SchemeConfig {
            max_retries: 10,
            slr_status_tuning: true,
            scm_true_nesting: false,
            backoff: None,
            capacity_skips_retries: false,
            breaker: None,
            sanitize: false,
            lazy_mode: LazyMode::ReadSet,
        }
    }

    /// Override the lazy subscription mode (see [`LazyMode`]).
    pub fn with_lazy_mode(mut self, mode: LazyMode) -> Self {
        self.lazy_mode = mode;
        self
    }

    /// The model-checking configuration: the paper's settings with the
    /// sanitizer log enabled. Deliberately keeps `breaker: None` — the
    /// circuit breaker's state lives in host atomics invisible to the
    /// explorer's per-step footprints, so enabling it would make the
    /// partial-order reduction unsound (steps could interact through
    /// state the dependence relation cannot see). The explorer also only
    /// drives [`super::SchemeKind::ALL`], which excludes `GroupedScm` for
    /// the same reason (its aux-lock round-robin cursor is a host atomic).
    pub fn explore() -> Self {
        SchemeConfig { sanitize: true, ..Self::paper() }
    }

    /// Check every knob against its domain: the breaker's trip threshold
    /// is a permille (≤ 1000) and its window must hold at least one
    /// attempt. A `trip_permille` above 1000 previously slipped through
    /// and made the breaker untrippable (the abort fraction can never
    /// cross it), silently disabling the hardening it was meant to tune.
    ///
    /// # Errors
    ///
    /// [`SchemeError::InvalidConfig`] naming the offending knob.
    pub fn validate(&self) -> Result<(), SchemeError> {
        if let Some(b) = &self.breaker {
            if b.trip_permille > 1000 {
                return Err(SchemeError::InvalidConfig {
                    knob: "breaker.trip_permille",
                    value: u64::from(b.trip_permille),
                });
            }
            if b.window_attempts == 0 {
                return Err(SchemeError::InvalidConfig {
                    knob: "breaker.window_attempts",
                    value: 0,
                });
            }
        }
        Ok(())
    }

    /// The hardened configuration: the paper's settings plus bounded
    /// exponential backoff with jitter, capacity-abort fast-pathing, and
    /// the speculation circuit breaker. This is what the chaos harness
    /// runs under injected fault storms.
    pub fn hardened() -> Self {
        SchemeConfig {
            backoff: Some(BackoffPolicy::default_policy()),
            capacity_skips_retries: true,
            breaker: Some(BreakerConfig::default_policy()),
            ..Self::paper()
        }
    }
}

impl Default for SchemeConfig {
    fn default() -> Self {
        SchemeConfig::paper()
    }
}

/// How one critical-section execution completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOutcome<R> {
    /// The critical section's return value.
    pub value: R,
    /// Whether the operation completed under the real lock.
    pub nonspeculative: bool,
    /// Total attempts (aborted speculative attempts + the completing one).
    pub attempts: u32,
}

/// A lock wrapped in one of the paper's elision schemes.
///
/// One `Scheme` instance is shared by all simulated threads; per-execution
/// state (retry counts, auxiliary-lock ownership) is transient and local.
pub struct Scheme {
    kind: SchemeKind,
    cfg: SchemeConfig,
    main: Arc<dyn RawLock>,
    /// Auxiliary serializing locks: empty for non-SCM schemes, one for
    /// classic SCM, several for grouped SCM.
    aux: Vec<Arc<dyn RawLock>>,
    /// Round-robin cursor spreading grouped-SCM aborts that carry no
    /// conflict line (capacity, explicit) across the auxiliary locks.
    aux_rr: AtomicU64,
    /// Per-auxiliary-lock acquisition counts (telemetry; lets tests and
    /// diagnostics verify grouped SCM actually spreads serialization).
    aux_traffic: Vec<AtomicU64>,
    /// Shared circuit-breaker state (used only when `cfg.breaker` is set).
    breaker: BreakerState,
}

/// Cross-thread speculation circuit-breaker state.
///
/// All counters are plain atomics shared by every strand executing under
/// the scheme. Under a zero-lag window the simulation serializes all
/// updates, so breaker decisions are deterministic there; under relaxed
/// windows the window boundaries are approximate, which is fine — the
/// breaker is a load-shedding heuristic, not a correctness mechanism.
#[derive(Debug, Default)]
struct BreakerState {
    /// Speculative attempts observed in the current window.
    attempts: AtomicU64,
    /// Aborted attempts observed in the current window.
    aborts: AtomicU64,
    /// Operations left to serve non-speculatively; `> 0` means open.
    open_remaining: AtomicU64,
    /// Total number of times the breaker has tripped.
    trips: AtomicU64,
}

impl BreakerState {
    /// If the breaker is open, consume one cooldown op and report `true`
    /// (the caller must run non-speculatively). Closing re-arms a fresh
    /// evaluation window.
    fn consume_if_open(&self) -> bool {
        let mut cur = self.open_remaining.load(Ordering::SeqCst);
        while cur > 0 {
            match self.open_remaining.compare_exchange(
                cur,
                cur - 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    if cur == 1 {
                        // Last cooldown op: re-probe speculation with a
                        // clean window.
                        self.attempts.store(0, Ordering::SeqCst);
                        self.aborts.store(0, Ordering::SeqCst);
                    }
                    return true;
                }
                Err(seen) => cur = seen,
            }
        }
        false
    }

    /// Record one completed operation's speculative attempt counts and
    /// trip the breaker if the window's abort rate crosses the threshold.
    fn record(&self, cfg: &BreakerConfig, attempts: u64, aborts: u64) {
        let total = self.attempts.fetch_add(attempts, Ordering::SeqCst) + attempts;
        let failed = self.aborts.fetch_add(aborts, Ordering::SeqCst) + aborts;
        if total >= u64::from(cfg.window_attempts) {
            if failed.saturating_mul(1000) >= u64::from(cfg.trip_permille) * total {
                self.trips.fetch_add(1, Ordering::SeqCst);
                self.open_remaining.store(u64::from(cfg.cooldown_ops), Ordering::SeqCst);
            }
            self.attempts.store(0, Ordering::SeqCst);
            self.aborts.store(0, Ordering::SeqCst);
        }
    }
}

impl fmt::Debug for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scheme")
            .field("kind", &self.kind)
            .field("main", &self.main.name())
            .field("aux", &self.aux.iter().map(|a| a.name()).collect::<Vec<_>>())
            .finish()
    }
}

impl Scheme {
    /// Wrap `main` in the given scheme. SCM schemes require `aux` (the
    /// paper recommends a fair lock; see [`SchemeKind::uses_aux`]).
    ///
    /// # Errors
    ///
    /// [`SchemeError::MissingAuxLock`] if an SCM scheme is requested
    /// without an auxiliary lock.
    pub fn new(
        kind: SchemeKind,
        cfg: SchemeConfig,
        main: Arc<dyn RawLock>,
        aux: Option<Arc<dyn RawLock>>,
    ) -> Result<Self, SchemeError> {
        cfg.validate()?;
        if kind.uses_aux() && aux.is_none() {
            return Err(SchemeError::MissingAuxLock(kind));
        }
        let aux: Vec<_> = aux.into_iter().collect();
        let aux_traffic = aux.iter().map(|_| AtomicU64::new(0)).collect();
        Ok(Scheme {
            kind,
            cfg,
            main,
            aux,
            aux_rr: AtomicU64::new(0),
            aux_traffic,
            breaker: BreakerState::default(),
        })
    }

    /// Build a grouped SCM scheme with one auxiliary lock per conflict
    /// group (the §8 future-work extension). Aborted threads serialize on
    /// `aux[hash(conflict line) % groups]`, so conflicts on unrelated
    /// data do not serialize with each other.
    ///
    /// # Errors
    ///
    /// [`SchemeError::NoAuxLocks`] if `aux` is empty.
    pub fn new_grouped(
        cfg: SchemeConfig,
        main: Arc<dyn RawLock>,
        aux: Vec<Arc<dyn RawLock>>,
    ) -> Result<Self, SchemeError> {
        cfg.validate()?;
        if aux.is_empty() {
            return Err(SchemeError::NoAuxLocks);
        }
        let aux_traffic = aux.iter().map(|_| AtomicU64::new(0)).collect();
        Ok(Scheme {
            kind: SchemeKind::GroupedScm,
            cfg,
            main,
            aux,
            aux_rr: AtomicU64::new(0),
            aux_traffic,
            breaker: BreakerState::default(),
        })
    }

    /// Per-auxiliary-lock acquisition counts since construction (empty
    /// for schemes without auxiliary locks).
    pub fn aux_acquisitions(&self) -> Vec<u64> {
        self.aux_traffic.iter().map(|c| c.load(Ordering::SeqCst)).collect()
    }

    /// How many times the speculation circuit breaker has tripped since
    /// construction (always zero without [`SchemeConfig::breaker`]).
    pub fn breaker_trips(&self) -> u64 {
        self.breaker.trips.load(Ordering::SeqCst)
    }

    /// The scheme kind.
    pub fn kind(&self) -> SchemeKind {
        self.kind
    }

    /// The main lock.
    pub fn main_lock(&self) -> &Arc<dyn RawLock> {
        &self.main
    }

    /// The auxiliary serializing locks (empty for non-SCM schemes).
    pub fn aux_locks(&self) -> &[Arc<dyn RawLock>] {
        &self.aux
    }

    /// Execute `body` as a critical section under this scheme.
    ///
    /// `body` may run several times (speculative retries) and must be
    /// idempotent in its side effects *outside* simulated memory;
    /// transactional memory effects roll back automatically. It must
    /// propagate `Err(Abort)` outward (never swallow it).
    ///
    /// S/A/N counters are recorded into `s.counters`.
    pub fn execute<R>(
        &self,
        s: &mut Strand,
        mut body: impl FnMut(&mut Strand) -> TxResult<R>,
    ) -> ExecOutcome<R> {
        match self.kind {
            SchemeKind::NoLock => {
                let value = body(s).expect("non-speculative body cannot abort");
                ExecOutcome { value, nonspeculative: false, attempts: 1 }
            }
            SchemeKind::Standard => {
                let value = self.run_locked(s, &mut body);
                s.counters.record(AttemptKind::NonSpeculative);
                ExecOutcome { value, nonspeculative: true, attempts: 1 }
            }
            _ => match &self.cfg.breaker {
                None => self.execute_speculative(s, &mut body),
                Some(bc) => {
                    if self.breaker.consume_if_open() {
                        // Breaker open: shed speculation entirely. Taking
                        // the main lock is always safe (it dooms whatever
                        // speculation is still in flight, which is exactly
                        // the storm the breaker is shedding).
                        let value = self.run_locked(s, &mut body);
                        s.counters.record(AttemptKind::NonSpeculative);
                        return ExecOutcome { value, nonspeculative: true, attempts: 1 };
                    }
                    let outcome = self.execute_speculative(s, &mut body);
                    let aborted = u64::from(outcome.attempts.saturating_sub(1));
                    let speculative =
                        if outcome.nonspeculative { aborted } else { u64::from(outcome.attempts) };
                    if speculative > 0 {
                        self.breaker.record(bc, speculative, aborted);
                    }
                    outcome
                }
            },
        }
    }

    /// Dispatch to the speculative scheme implementations.
    fn execute_speculative<R>(
        &self,
        s: &mut Strand,
        body: &mut impl FnMut(&mut Strand) -> TxResult<R>,
    ) -> ExecOutcome<R> {
        match self.kind {
            SchemeKind::Hle => self.execute_hle(s, body, 1),
            SchemeKind::HleRetries => self.execute_hle(s, body, self.cfg.max_retries),
            SchemeKind::HleScm => self.execute_scm(s, body, Subscription::Eager),
            SchemeKind::OptSlr => self.execute_slr(s, body),
            SchemeKind::SlrScm => self.execute_scm(s, body, Subscription::Lazy),
            SchemeKind::GroupedScm => self.execute_scm(s, body, Subscription::Eager),
            SchemeKind::NoLock | SchemeKind::Standard => {
                unreachable!("non-speculative kinds handled by execute")
            }
        }
    }

    /// Burn the configured backoff delay before retry number `attempt`.
    fn backoff_wait(&self, s: &mut Strand, attempt: u32) {
        if let Some(bp) = &self.cfg.backoff {
            let delay = bp.delay(attempt, &mut s.retry_rng);
            if delay > 0 {
                s.work(delay).expect("backoff wait outside a transaction cannot abort");
            }
        }
    }

    /// Acquire the main lock, run the body non-speculatively, release.
    fn run_locked<R>(
        &self,
        s: &mut Strand,
        body: &mut impl FnMut(&mut Strand) -> TxResult<R>,
    ) -> R {
        self.main.acquire(s).expect("non-speculative acquire cannot abort");
        let value = body(s).expect("non-speculative body cannot abort");
        self.main.release(s).expect("non-speculative release cannot abort");
        value
    }

    /// One elided (XACQUIRE .. XRELEASE) speculative attempt.
    fn attempt_elided<R>(
        &self,
        s: &mut Strand,
        body: &mut impl FnMut(&mut Strand) -> TxResult<R>,
    ) -> Result<R, elision_htm::AbortStatus> {
        let main = &self.main;
        let sanitize = self.cfg.sanitize;
        s.attempt(|s| {
            main.elided_acquire(s)?;
            if sanitize {
                s.note("subscribe", u64::from(main.lock_word().index()));
            }
            let v = body(s)?;
            main.elided_release(s)?;
            Ok(v)
        })
    }

    /// Plain HLE (`budget == 1`) and HLE-retries (`budget == max_retries`).
    fn execute_hle<R>(
        &self,
        s: &mut Strand,
        body: &mut impl FnMut(&mut Strand) -> TxResult<R>,
        budget: u32,
    ) -> ExecOutcome<R> {
        let retries_mode = budget > 1;
        let mut attempts = 0u32;
        let mut first_arrival = true;
        let mut hopeless = false;
        loop {
            // Figure 1's outer test-and-test loop: unfair locks (and any
            // lock under Intel's retry guideline) wait until the lock
            // looks free before issuing the XACQUIRE.
            if !self.main.is_fair() || retries_mode {
                let held = self.main.is_locked(s).expect("plain read cannot abort");
                if held {
                    if first_arrival {
                        s.counters.arrived_lock_held += 1;
                    }
                    self.main.wait_until_free(s).expect("plain spin cannot abort");
                }
            }
            first_arrival = false;

            attempts += 1;
            match self.attempt_elided(s, body) {
                Ok(value) => {
                    s.counters.record(AttemptKind::Speculative);
                    return ExecOutcome { value, nonspeculative: false, attempts };
                }
                Err(status) => {
                    s.counters.record(AttemptKind::Aborted);
                    // Abort-cause adaptation: a capacity (or other
                    // no-retry) abort will fail identically on every
                    // retry — skip straight to the fallback.
                    if self.cfg.capacity_skips_retries && !status.retry_recommended {
                        hopeless = true;
                    }
                }
            }

            if attempts < budget && !hopeless {
                self.backoff_wait(s, attempts);
            }

            if attempts >= budget || hopeless {
                // HLE's hardware fallback: re-execute the acquisition
                // non-transactionally. For TTAS this is a single TAS that
                // may fail (then we loop: spin and re-elide — Figure 1);
                // queue locks enqueue and block, serializing behind every
                // other aborted thread (the lemming effect).
                match self.main.fallback_acquire(s).expect("fallback cannot abort") {
                    FallbackOutcome::Acquired => {
                        let value = body(s).expect("non-speculative body cannot abort");
                        self.main.release(s).expect("release cannot abort");
                        s.counters.record(AttemptKind::NonSpeculative);
                        attempts += 1;
                        return ExecOutcome { value, nonspeculative: true, attempts };
                    }
                    FallbackOutcome::Busy => {
                        // Lock held by another aborted thread: loop back,
                        // wait for it to leave, then re-enter speculation.
                    }
                }
            }
        }
    }

    /// The commit-time subscription step of a lazy attempt, in the mode
    /// [`SchemeConfig::lazy_mode`] selects. Must run as the last thing
    /// before the attempt closure returns `Ok`.
    fn lazy_subscribe(&self, s: &mut Strand) -> TxResult<()> {
        let main = &self.main;
        match self.cfg.lazy_mode {
            // Read the lock only when ready to commit; if it is held a
            // non-speculative peer is inside the critical section and we
            // may have seen inconsistent state — self-abort (Figure 5
            // line 24). The read joins the read set, so a post-check
            // acquisition dooms the commit.
            LazyMode::ReadSet => {
                if main.is_locked(s)? {
                    return Err(s.xabort(codes::LOCK_BUSY, true));
                }
            }
            // The same software check as real unfixed hardware runs it:
            // a racy sample that joins no read set. A lock acquired after
            // the sample but before the commit goes unnoticed.
            LazyMode::Unfenced => match main.hw_subscription() {
                Some(sub) => {
                    if !s.probe_subscription(&sub)? {
                        return Err(s.xabort(codes::LOCK_BUSY, true));
                    }
                }
                None => {
                    if main.is_locked(s)? {
                        return Err(s.xabort(codes::LOCK_BUSY, true));
                    }
                }
            },
            // The hardware fix: hand the lock-free condition to the
            // commit itself; no software read of the lock at all.
            LazyMode::HardwareCommit => match main.hw_subscription() {
                Some(sub) => s.hw_subscribe(sub),
                None => {
                    if main.is_locked(s)? {
                        return Err(s.xabort(codes::LOCK_BUSY, true));
                    }
                }
            },
        }
        if self.cfg.sanitize {
            s.note("subscribe", u64::from(main.lock_word().index()));
        }
        Ok(())
    }

    /// Optimistic SLR (Figure 5): no lock access until commit time.
    fn execute_slr<R>(
        &self,
        s: &mut Strand,
        body: &mut impl FnMut(&mut Strand) -> TxResult<R>,
    ) -> ExecOutcome<R> {
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let r = s.attempt(|s| {
                // Declare lazy subscription up front so the hardware
                // dangerous-instruction screen (when configured) covers
                // every store the body issues.
                s.mark_lazy_subscription();
                let v = body(s)?;
                self.lazy_subscribe(s)?;
                Ok(v)
            });
            match r {
                Ok(value) => {
                    s.counters.record(AttemptKind::Speculative);
                    return ExecOutcome { value, nonspeculative: false, attempts };
                }
                Err(status) => {
                    s.counters.record(AttemptKind::Aborted);
                    let hopeless = self.cfg.slr_status_tuning && !status.retry_recommended;
                    if attempts >= self.cfg.max_retries || hopeless {
                        let value = self.run_locked(s, body);
                        s.counters.record(AttemptKind::NonSpeculative);
                        return ExecOutcome { value, nonspeculative: true, attempts: attempts + 1 };
                    }
                    self.backoff_wait(s, attempts);
                }
            }
        }
    }

    /// SCM (Figure 7), parameterized by when the transaction subscribes
    /// to the main lock: eagerly at begin (HLE-SCM, opacity-preserving)
    /// or lazily at commit (SLR-SCM).
    fn execute_scm<R>(
        &self,
        s: &mut Strand,
        body: &mut impl FnMut(&mut Strand) -> TxResult<R>,
        subscription: Subscription,
    ) -> ExecOutcome<R> {
        // The group is chosen by the *first* abort's conflict location and
        // then kept for the whole operation (at most one auxiliary lock is
        // ever held, so groups cannot deadlock against each other).
        //
        // Construction ([`Scheme::new`] / [`Scheme::new_grouped`]) rejects
        // SCM schemes without auxiliary locks, so this is unreachable in
        // practice; degrade to plain locking rather than panic if an
        // impossible state is ever reached.
        let Some(mut aux) = self.aux.first() else {
            let value = self.run_locked(s, body);
            s.counters.record(AttemptKind::NonSpeculative);
            return ExecOutcome { value, nonspeculative: true, attempts: 1 };
        };
        let mut aux_idx = 0usize;
        let mut aux_owner = false;
        let mut retries = 0u32;
        let mut attempts = 0u32;
        let outcome = loop {
            // With the eager (HLE-like) subscription, speculation while
            // the main lock is held aborts instantly; wait it out first
            // (the paper's HLE-SCM tuning).
            if subscription == Subscription::Eager {
                let held = self.main.is_locked(s).expect("plain read cannot abort");
                if held {
                    if attempts == 0 {
                        s.counters.arrived_lock_held += 1;
                    }
                    self.main.wait_until_free(s).expect("plain spin cannot abort");
                }
            }

            attempts += 1;
            let main = &self.main;
            let true_nesting = self.cfg.scm_true_nesting;
            let sanitize = self.cfg.sanitize;
            let r = s.attempt(|s| match subscription {
                Subscription::Eager => {
                    if true_nesting {
                        // The design Figure 7 describes: nest the HLE
                        // acquisition inside the RTM transaction.
                        main.elided_acquire(s)?;
                        if sanitize {
                            s.note("subscribe", u64::from(main.lock_word().index()));
                        }
                        let v = body(s)?;
                        main.elided_release(s)?;
                        Ok(v)
                    } else {
                        // Haswell workaround: put the main lock in the
                        // read set and verify it is free.
                        if main.is_locked(s)? {
                            return Err(s.xabort(codes::LOCK_BUSY, true));
                        }
                        if sanitize {
                            s.note("subscribe", u64::from(main.lock_word().index()));
                        }
                        body(s)
                    }
                }
                Subscription::Lazy => {
                    s.mark_lazy_subscription();
                    let v = body(s)?;
                    self.lazy_subscribe(s)?;
                    Ok(v)
                }
            });
            let status = match r {
                Ok(value) => {
                    s.counters.record(AttemptKind::Speculative);
                    break ExecOutcome { value, nonspeculative: false, attempts };
                }
                Err(status) => {
                    s.counters.record(AttemptKind::Aborted);
                    status
                }
            };

            // Serializing path: group conflicting threads behind the
            // auxiliary lock; the holder rejoins the speculative run.
            if !aux_owner {
                if self.kind == SchemeKind::GroupedScm && self.aux.len() > 1 {
                    let group = match status.conflict_line {
                        Some(l) => {
                            (l as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) as usize % self.aux.len()
                        }
                        // Capacity and explicit aborts carry no conflict
                        // line; spread them round-robin so they do not all
                        // dog-pile on aux[0].
                        None => {
                            self.aux_rr.fetch_add(1, Ordering::Relaxed) as usize % self.aux.len()
                        }
                    };
                    aux = &self.aux[group];
                    aux_idx = group;
                }
                self.aux_traffic[aux_idx].fetch_add(1, Ordering::Relaxed);
                aux.acquire(s).expect("aux acquire cannot abort");
                aux_owner = true;
            } else {
                retries += 1;
            }
            // Abort-cause adaptation: capacity/no-retry aborts will fail
            // identically on every retry. We hold the aux lock here, so
            // giving up early preserves the SCM invariant (only the aux
            // holder takes the main lock).
            let hopeless = self.cfg.capacity_skips_retries && !status.retry_recommended;
            if retries >= self.cfg.max_retries || hopeless {
                // The auxiliary-lock holder gives up: it is the only
                // thread that may acquire the main lock, so this cannot
                // deadlock and guarantees progress (paper §6).
                let value = self.run_locked(s, body);
                s.counters.record(AttemptKind::NonSpeculative);
                break ExecOutcome { value, nonspeculative: true, attempts: attempts + 1 };
            }
            self.backoff_wait(s, attempts);
        };
        if aux_owner {
            aux.release(s).expect("aux release cannot abort");
        }
        outcome
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Subscription {
    Eager,
    Lazy,
}
