//! Convenience constructors wiring lock types and schemes together, used
//! by benchmarks, examples and tests.

use crate::scheme::{Scheme, SchemeConfig, SchemeKind};
use elision_htm::MemoryBuilder;
use elision_locks::{ClhLock, McsLock, RawLock, TicketLock, TtasLock};
use std::fmt;
use std::sync::Arc;

/// The lock families the paper evaluates (plus the unadapted ticket/CLH
/// variants kept for demonstrating HLE incompatibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockKind {
    /// Test-and-test-and-set spinlock (unfair).
    Ttas,
    /// MCS queue lock (fair, HLE-compatible as-is).
    Mcs,
    /// HLE-adapted ticket lock (fair; paper Appendix A).
    Ticket,
    /// HLE-adapted CLH lock (fair; paper Appendix A).
    Clh,
    /// Original ticket lock — incompatible with HLE.
    TicketUnadapted,
    /// Original CLH lock — incompatible with HLE.
    ClhUnadapted,
}

impl LockKind {
    /// The two lock families used in every figure of the paper.
    pub const FIGURES: [LockKind; 2] = [LockKind::Ttas, LockKind::Mcs];

    /// All fair locks.
    pub const FAIR: [LockKind; 3] = [LockKind::Mcs, LockKind::Ticket, LockKind::Clh];

    /// A short display label.
    pub fn label(&self) -> &'static str {
        match self {
            LockKind::Ttas => "TTAS",
            LockKind::Mcs => "MCS",
            LockKind::Ticket => "Ticket",
            LockKind::Clh => "CLH",
            LockKind::TicketUnadapted => "Ticket-unadapted",
            LockKind::ClhUnadapted => "CLH-unadapted",
        }
    }
}

impl fmt::Display for LockKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Allocate a lock of the given kind for `threads` simulated threads.
pub fn make_lock(kind: LockKind, b: &mut MemoryBuilder, threads: usize) -> Arc<dyn RawLock> {
    match kind {
        LockKind::Ttas => Arc::new(TtasLock::new(b)),
        LockKind::Mcs => Arc::new(McsLock::new(b, threads)),
        LockKind::Ticket => Arc::new(TicketLock::new(b, threads)),
        LockKind::Clh => Arc::new(ClhLock::new(b, threads)),
        LockKind::TicketUnadapted => Arc::new(TicketLock::new_unadapted(b, threads)),
        LockKind::ClhUnadapted => Arc::new(ClhLock::new_unadapted(b, threads)),
    }
}

/// Build a complete scheme over a fresh main lock (and, for SCM schemes,
/// a fresh fair MCS auxiliary lock, as the paper recommends).
pub fn make_scheme(
    scheme: SchemeKind,
    lock: LockKind,
    cfg: SchemeConfig,
    b: &mut MemoryBuilder,
    threads: usize,
) -> Arc<Scheme> {
    let main = make_lock(lock, b, threads);
    let aux = if scheme.uses_aux() { Some(make_lock(LockKind::Mcs, b, threads)) } else { None };
    // The aux lock is supplied exactly when the scheme needs it, so
    // construction cannot fail.
    Arc::new(Scheme::new(scheme, cfg, main, aux).expect("aux wired by construction"))
}

/// Build the grouped-SCM extension (§8 future work): `groups` auxiliary
/// MCS locks, selected by the conflict line reported in the abort status.
pub fn make_grouped_scm(
    lock: LockKind,
    groups: usize,
    cfg: SchemeConfig,
    b: &mut MemoryBuilder,
    threads: usize,
) -> Arc<Scheme> {
    let main = make_lock(lock, b, threads);
    let aux = (0..groups.max(1)).map(|_| make_lock(LockKind::Mcs, b, threads)).collect();
    // `groups.max(1)` guarantees at least one aux lock.
    Arc::new(Scheme::new_grouped(cfg, main, aux).expect("at least one aux by construction"))
}

/// Like [`make_scheme`] but with an explicit auxiliary lock kind (the
/// SCM-fairness ablation).
pub fn make_scheme_with_aux(
    scheme: SchemeKind,
    lock: LockKind,
    aux_lock: LockKind,
    cfg: SchemeConfig,
    b: &mut MemoryBuilder,
    threads: usize,
) -> Arc<Scheme> {
    let main = make_lock(lock, b, threads);
    let aux = if scheme.uses_aux() { Some(make_lock(aux_lock, b, threads)) } else { None };
    // The aux lock is supplied exactly when the scheme needs it, so
    // construction cannot fail.
    Arc::new(Scheme::new(scheme, cfg, main, aux).expect("aux wired by construction"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let all = [
            LockKind::Ttas,
            LockKind::Mcs,
            LockKind::Ticket,
            LockKind::Clh,
            LockKind::TicketUnadapted,
            LockKind::ClhUnadapted,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.label(), b.label());
            }
        }
    }

    #[test]
    fn make_scheme_wires_aux_for_scm() {
        let mut b = MemoryBuilder::new();
        let s = make_scheme(SchemeKind::HleScm, LockKind::Ttas, SchemeConfig::paper(), &mut b, 2);
        assert_eq!(s.kind(), SchemeKind::HleScm);
        let s2 = make_scheme(SchemeKind::Hle, LockKind::Mcs, SchemeConfig::paper(), &mut b, 2);
        assert_eq!(s2.main_lock().name(), "MCS");
    }
}
