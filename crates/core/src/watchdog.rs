//! Starvation watchdog: caller-owned liveness accounting.
//!
//! The chaos harness needs to assert that *no individual operation*
//! starves under injected faults — aggregate throughput can look healthy
//! while one thread spins forever. A [`Watchdog`] records, per completed
//! operation, how many attempts it took and how many simulated cycles
//! elapsed; it tracks the worst case, flags budget violations, and can
//! report completion-time percentiles for degradation curves.
//!
//! Completion times are held in a bounded [`LatencyHistogram`] rather
//! than a raw sample vector, so the open-loop service engine can record
//! millions of requests at fixed memory and query percentiles in
//! O(buckets) instead of re-sorting every sample per query.
//!
//! The watchdog is plain data owned by the measuring thread (merge
//! per-thread instances afterwards with [`Watchdog::merge`]); it adds no
//! synchronization to the measured path.

/// Number of sub-buckets per octave, as a power of two: 2^7 = 128
/// sub-buckets give a guaranteed relative error below 1/128 < 1%.
const PRECISION_BITS: u32 = 7;
/// Sub-buckets per octave.
const SUB_BUCKETS: u64 = 1 << PRECISION_BITS;
/// Values below `EXACT_LIMIT` get a unit-width bucket each (no error).
const EXACT_LIMIT: u64 = 1 << (PRECISION_BITS + 1);
/// First octave that needs sub-bucketing (values >= `EXACT_LIMIT`).
const FIRST_OCTAVE: u32 = PRECISION_BITS + 1;
/// Total bucket count: the exact region plus `SUB_BUCKETS` per octave
/// for every octave up to 2^63.
const BUCKETS: usize = (EXACT_LIMIT + (64 - FIRST_OCTAVE as u64) * SUB_BUCKETS) as usize;

/// A bounded log-bucketed (HDR-style) histogram of `u64` samples.
///
/// Values below 256 land in exact unit-width buckets; larger values are
/// bucketed with 128 sub-buckets per power-of-two octave, so any
/// reported quantile is within **1% relative error** of the true sample
/// (error ≤ 1/128 ≈ 0.78%, and the reported value never exceeds the
/// true maximum). Memory is a fixed ~7.4k-bucket array regardless of
/// how many samples are recorded, and [`LatencyHistogram::merge`] is
/// exact — bucket boundaries are identical across instances, so merging
/// per-thread histograms loses nothing over recording centrally.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    /// Exact extrema, tracked outside the buckets so `percentile(0)` /
    /// `percentile(100)` stay exact and bucket upper bounds can be
    /// clamped to values actually observed.
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram { counts: vec![0; BUCKETS], total: 0, min: u64::MAX, max: 0 }
    }

    /// The bucket index of `value`.
    fn index(value: u64) -> usize {
        if value < EXACT_LIMIT {
            value as usize
        } else {
            let octave = 63 - value.leading_zeros();
            let shift = octave - PRECISION_BITS;
            let sub = (value >> shift) & (SUB_BUCKETS - 1);
            (EXACT_LIMIT + (octave - FIRST_OCTAVE) as u64 * SUB_BUCKETS + sub) as usize
        }
    }

    /// The largest value mapping to bucket `index` (the reported
    /// representative, so quantiles never under-report).
    fn upper_bound(index: usize) -> u64 {
        let index = index as u64;
        if index < EXACT_LIMIT {
            index
        } else {
            let rel = index - EXACT_LIMIT;
            let octave = FIRST_OCTAVE + (rel / SUB_BUCKETS) as u32;
            let sub = rel % SUB_BUCKETS;
            let shift = octave - PRECISION_BITS;
            // OR in the low bits rather than adding: for the topmost
            // bucket `(SUB_BUCKETS + sub + 1) << shift` is 2^64.
            ((SUB_BUCKETS + sub) << shift) | ((1 << shift) - 1)
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::index(value)] += 1;
        self.total += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The exact largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The exact smallest sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// The `p`-th percentile (0..=100, nearest-rank over buckets);
    /// `None` when empty. O(buckets), and within 1% relative error of
    /// the exact nearest-rank sample value.
    pub fn percentile(&self, p: u32) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        // Integer nearest-rank, matching the old sort-based
        // implementation exactly (float quantiles can round the rank).
        let p = u64::from(p.min(100));
        Some(self.value_at_rank((p * self.total).div_ceil(100).max(1)))
    }

    /// The `q`-quantile for `q` in `[0, 1]` (nearest-rank over buckets);
    /// `None` when empty. Supports tail quantiles finer than whole
    /// percentiles, e.g. `quantile(0.999)` for p999.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        Some(self.value_at_rank(rank))
    }

    /// The representative value of the bucket holding the sample of the
    /// given nearest-rank (1-based; caller guarantees `1 <= rank <=
    /// total`).
    fn value_at_rank(&self, rank: u64) -> u64 {
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Clamp to the exact extrema: the true sample cannot lie
                // outside [min, max] even when the bucket bound does.
                return Self::upper_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Fold another histogram into this one. Exact: both instances use
    /// identical bucket boundaries, so the merged histogram equals the
    /// histogram of the concatenated sample streams.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The non-empty buckets as `(upper_bound, count, cumulative)` rows
    /// in increasing value order — the CDF the service reports serialize.
    pub fn cdf(&self) -> Vec<(u64, u64, u64)> {
        let mut rows = Vec::new();
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                cum += c;
                rows.push((Self::upper_bound(i).clamp(self.min, self.max), c, cum));
            }
        }
        rows
    }
}

/// Per-operation attempt/latency accounting with a starvation budget.
#[derive(Debug, Clone)]
pub struct Watchdog {
    /// Attempts above this count a violation (0 disables the check).
    attempt_budget: u32,
    /// Worst attempts observed for a single operation.
    max_attempts: u32,
    /// Operations that exceeded the attempt budget.
    violations: u64,
    /// Total attempts across all recorded operations.
    total_attempts: u64,
    /// Completion times (cycles) of recorded operations, log-bucketed.
    cycles: LatencyHistogram,
}

impl Watchdog {
    /// A watchdog flagging operations that need more than
    /// `attempt_budget` attempts (0 disables violation counting).
    pub fn new(attempt_budget: u32) -> Self {
        Watchdog {
            attempt_budget,
            max_attempts: 0,
            violations: 0,
            total_attempts: 0,
            cycles: LatencyHistogram::new(),
        }
    }

    /// Record one completed operation: how many attempts it took and how
    /// many simulated cycles elapsed from start to completion.
    pub fn record(&mut self, attempts: u32, cycles: u64) {
        self.max_attempts = self.max_attempts.max(attempts);
        self.total_attempts += u64::from(attempts);
        if self.attempt_budget > 0 && attempts > self.attempt_budget {
            self.violations += 1;
        }
        self.cycles.record(cycles);
    }

    /// Operations recorded so far.
    pub fn operations(&self) -> u64 {
        self.cycles.count()
    }

    /// Worst attempts observed for a single operation.
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// The attempt budget violations are judged against.
    pub fn attempt_budget(&self) -> u32 {
        self.attempt_budget
    }

    /// Operations that exceeded the attempt budget.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Total attempts across all recorded operations.
    pub fn total_attempts(&self) -> u64 {
        self.total_attempts
    }

    /// Mean attempts per operation (0.0 when nothing recorded).
    pub fn mean_attempts(&self) -> f64 {
        if self.cycles.count() == 0 {
            0.0
        } else {
            self.total_attempts as f64 / self.cycles.count() as f64
        }
    }

    /// The `p`-th percentile (0..=100, nearest-rank) of operation
    /// completion cycles; `None` when nothing was recorded. O(buckets)
    /// per query, within 1% relative error of the exact sample (exact
    /// for values below 256 — see [`LatencyHistogram`]).
    pub fn percentile(&self, p: u32) -> Option<u64> {
        self.cycles.percentile(p)
    }

    /// The completion-time histogram (CDF rows, tail quantiles).
    pub fn histogram(&self) -> &LatencyHistogram {
        &self.cycles
    }

    /// Fold another watchdog (e.g. a different thread's) into this one.
    ///
    /// Both watchdogs must use the same `attempt_budget`: summing
    /// violation counts judged against different budgets would produce a
    /// number with no meaning. Debug builds assert this; release builds
    /// keep `self`'s budget for subsequent records.
    pub fn merge(&mut self, other: &Watchdog) {
        debug_assert_eq!(
            self.attempt_budget, other.attempt_budget,
            "merging watchdogs with different attempt budgets ({} vs {}): \
             their violation counts are judged against different lines",
            self.attempt_budget, other.attempt_budget
        );
        self.max_attempts = self.max_attempts.max(other.max_attempts);
        self.violations += other.violations;
        self.total_attempts += other.total_attempts;
        self.cycles.merge(&other.cycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_max_and_violations() {
        let mut w = Watchdog::new(5);
        w.record(1, 100);
        w.record(7, 900);
        w.record(3, 300);
        assert_eq!(w.operations(), 3);
        assert_eq!(w.max_attempts(), 7);
        assert_eq!(w.violations(), 1);
        assert!((w.mean_attempts() - 11.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_budget_disables_violations() {
        let mut w = Watchdog::new(0);
        w.record(1000, 1);
        assert_eq!(w.violations(), 0);
        assert_eq!(w.max_attempts(), 1000);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut w = Watchdog::new(0);
        for c in [50, 10, 40, 20, 30] {
            w.record(1, c);
        }
        assert_eq!(w.percentile(0), Some(10));
        assert_eq!(w.percentile(50), Some(30));
        assert_eq!(w.percentile(90), Some(50));
        assert_eq!(w.percentile(100), Some(50));
        assert_eq!(Watchdog::new(0).percentile(50), None);
    }

    #[test]
    fn merge_combines() {
        let mut a = Watchdog::new(2);
        a.record(1, 10);
        a.record(3, 30);
        let mut b = Watchdog::new(2);
        b.record(4, 40);
        a.merge(&b);
        assert_eq!(a.operations(), 3);
        assert_eq!(a.max_attempts(), 4);
        assert_eq!(a.violations(), 2);
        assert_eq!(a.percentile(100), Some(40));
    }

    #[test]
    #[should_panic(expected = "different attempt budgets")]
    #[cfg(debug_assertions)]
    fn merge_rejects_mismatched_budgets() {
        let mut a = Watchdog::new(2);
        a.merge(&Watchdog::new(3));
    }

    /// The old exact implementation, kept as the test oracle: sort the
    /// raw samples, take nearest-rank.
    fn exact_percentile(samples: &[u64], p: u32) -> Option<u64> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let p = p.min(100) as usize;
        let rank = (p * sorted.len()).div_ceil(100).max(1);
        Some(sorted[rank - 1])
    }

    #[test]
    fn histogram_is_exact_below_256() {
        // The unit-width bucket region reproduces the old Vec-based
        // implementation bit for bit on small inputs — the equivalence
        // the pre-rewrite tests relied on.
        let samples: Vec<u64> = (0..200).map(|i| (i * 37 + 11) % 256).collect();
        let mut w = Watchdog::new(0);
        for &s in &samples {
            w.record(1, s);
        }
        for p in 0..=100 {
            assert_eq!(w.percentile(p), exact_percentile(&samples, p), "p{p}");
        }
    }

    #[test]
    fn histogram_within_one_percent_of_exact() {
        // Large samples across many octaves: every percentile must be
        // within the documented 1% relative error of the exact
        // nearest-rank value, and never above the true maximum.
        let mut samples = Vec::new();
        let mut x = 0x0123_4567_89AB_CDEF_u64;
        for _ in 0..5000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            samples.push(x % 50_000_000);
        }
        let mut w = Watchdog::new(0);
        for &s in &samples {
            w.record(1, s);
        }
        let max = *samples.iter().max().unwrap();
        for p in [0, 1, 10, 25, 50, 75, 90, 95, 99, 100] {
            let exact = exact_percentile(&samples, p).unwrap();
            let approx = w.percentile(p).unwrap();
            assert!(approx <= max, "p{p}: {approx} above true max {max}");
            assert!(approx >= exact, "p{p}: bucket upper bound must not under-report");
            let err = (approx - exact) as f64 / exact.max(1) as f64;
            assert!(err <= 0.01, "p{p}: {approx} vs exact {exact} (err {err:.4})");
        }
    }

    #[test]
    fn histogram_memory_is_bounded() {
        // Millions of records, fixed footprint: the bucket array length
        // never changes (this is the property that lets the open-loop
        // engine log every request).
        let mut h = LatencyHistogram::new();
        let buckets_before = h.counts.len();
        for i in 0..2_000_000u64 {
            h.record(i.wrapping_mul(0x9E37_79B9) % 10_000_000);
        }
        assert_eq!(h.counts.len(), buckets_before);
        assert_eq!(h.count(), 2_000_000);
    }

    #[test]
    fn histogram_merge_is_exact() {
        // merge(a, b) must equal the histogram of the concatenation, for
        // counts, extrema and every bucket.
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for i in 0..1000u64 {
            let v = (i * i * 31) % 1_000_000;
            if i % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        assert_eq!(a.counts, whole.counts);
        for p in [1, 50, 99, 100] {
            assert_eq!(a.percentile(p), whole.percentile(p), "p{p}");
        }
    }

    #[test]
    fn quantile_reaches_into_the_tail() {
        let mut h = LatencyHistogram::new();
        for _ in 0..999 {
            h.record(100);
        }
        h.record(1_000_000);
        assert_eq!(h.quantile(0.5), Some(100));
        // The single outlier is exactly the p999+ tail.
        let p999 = h.quantile(0.999).unwrap();
        assert!(p999 >= 100, "tail quantile must see the distribution");
        let p9999 = h.quantile(0.9999).unwrap();
        assert_eq!(p9999, 1_000_000, "top quantile is clamped to the exact max");
        assert_eq!(h.quantile(1.0), Some(1_000_000));
    }

    #[test]
    fn cdf_rows_are_monotonic_and_complete() {
        let mut h = LatencyHistogram::new();
        for v in [5u64, 5, 300, 70_000, 70_000, 70_001, 9_000_000] {
            h.record(v);
        }
        let rows = h.cdf();
        assert_eq!(rows.last().unwrap().2, h.count(), "cumulative reaches the total");
        let mut prev_bound = 0;
        let mut prev_cum = 0;
        for &(bound, count, cum) in &rows {
            assert!(bound >= prev_bound, "bounds increase");
            assert!(count > 0, "only non-empty buckets appear");
            assert_eq!(cum, prev_cum + count, "cumulative sums the counts");
            prev_bound = bound;
            prev_cum = cum;
        }
    }

    #[test]
    fn bucket_index_and_bound_are_consistent() {
        // Every value maps to a bucket whose upper bound is >= the value
        // and within 1% of it (exhaustive near the exact/bucketed border,
        // sampled across the octaves).
        let check = |v: u64| {
            let i = LatencyHistogram::index(v);
            let hi = LatencyHistogram::upper_bound(i);
            assert!(hi >= v, "upper_bound({i}) = {hi} < value {v}");
            let err = (hi - v) as f64 / v.max(1) as f64;
            assert!(err <= 1.0 / 128.0, "value {v}: bound {hi} off by {err:.5}");
        };
        for v in 0..5000 {
            check(v);
        }
        for shift in 13..63 {
            for off in [0u64, 1, 12345] {
                check((1u64 << shift) + off);
            }
        }
        check(u64::MAX);
    }
}
