//! Starvation watchdog: caller-owned liveness accounting.
//!
//! The chaos harness needs to assert that *no individual operation*
//! starves under injected faults — aggregate throughput can look healthy
//! while one thread spins forever. A [`Watchdog`] records, per completed
//! operation, how many attempts it took and how many simulated cycles
//! elapsed; it tracks the worst case, flags budget violations, and can
//! report completion-time percentiles for degradation curves.
//!
//! The watchdog is plain data owned by the measuring thread (merge
//! per-thread instances afterwards with [`Watchdog::merge`]); it adds no
//! synchronization to the measured path.

/// Per-operation attempt/latency accounting with a starvation budget.
#[derive(Debug, Clone)]
pub struct Watchdog {
    /// Attempts above this count a violation (0 disables the check).
    attempt_budget: u32,
    /// Worst attempts observed for a single operation.
    max_attempts: u32,
    /// Operations that exceeded the attempt budget.
    violations: u64,
    /// Total attempts across all recorded operations.
    total_attempts: u64,
    /// Completion time (cycles) of every recorded operation.
    cycles: Vec<u64>,
}

impl Watchdog {
    /// A watchdog flagging operations that need more than
    /// `attempt_budget` attempts (0 disables violation counting).
    pub fn new(attempt_budget: u32) -> Self {
        Watchdog {
            attempt_budget,
            max_attempts: 0,
            violations: 0,
            total_attempts: 0,
            cycles: Vec::new(),
        }
    }

    /// Record one completed operation: how many attempts it took and how
    /// many simulated cycles elapsed from start to completion.
    pub fn record(&mut self, attempts: u32, cycles: u64) {
        self.max_attempts = self.max_attempts.max(attempts);
        self.total_attempts += u64::from(attempts);
        if self.attempt_budget > 0 && attempts > self.attempt_budget {
            self.violations += 1;
        }
        self.cycles.push(cycles);
    }

    /// Operations recorded so far.
    pub fn operations(&self) -> u64 {
        self.cycles.len() as u64
    }

    /// Worst attempts observed for a single operation.
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// Operations that exceeded the attempt budget.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Total attempts across all recorded operations.
    pub fn total_attempts(&self) -> u64 {
        self.total_attempts
    }

    /// Mean attempts per operation (0.0 when nothing recorded).
    pub fn mean_attempts(&self) -> f64 {
        if self.cycles.is_empty() {
            0.0
        } else {
            self.total_attempts as f64 / self.cycles.len() as f64
        }
    }

    /// The `p`-th percentile (0..=100, nearest-rank) of operation
    /// completion cycles; `None` when nothing was recorded.
    pub fn percentile(&self, p: u32) -> Option<u64> {
        if self.cycles.is_empty() {
            return None;
        }
        let mut sorted = self.cycles.clone();
        sorted.sort_unstable();
        let p = p.min(100) as usize;
        // Nearest-rank: ceil(p/100 * n), clamped to [1, n], as an index.
        let rank = (p * sorted.len()).div_ceil(100).max(1);
        Some(sorted[rank - 1])
    }

    /// Fold another watchdog (e.g. a different thread's) into this one.
    /// The attempt budget of `self` is kept; `other`'s violations were
    /// judged against its own budget.
    pub fn merge(&mut self, other: &Watchdog) {
        self.max_attempts = self.max_attempts.max(other.max_attempts);
        self.violations += other.violations;
        self.total_attempts += other.total_attempts;
        self.cycles.extend_from_slice(&other.cycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_max_and_violations() {
        let mut w = Watchdog::new(5);
        w.record(1, 100);
        w.record(7, 900);
        w.record(3, 300);
        assert_eq!(w.operations(), 3);
        assert_eq!(w.max_attempts(), 7);
        assert_eq!(w.violations(), 1);
        assert!((w.mean_attempts() - 11.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_budget_disables_violations() {
        let mut w = Watchdog::new(0);
        w.record(1000, 1);
        assert_eq!(w.violations(), 0);
        assert_eq!(w.max_attempts(), 1000);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut w = Watchdog::new(0);
        for c in [50, 10, 40, 20, 30] {
            w.record(1, c);
        }
        assert_eq!(w.percentile(0), Some(10));
        assert_eq!(w.percentile(50), Some(30));
        assert_eq!(w.percentile(90), Some(50));
        assert_eq!(w.percentile(100), Some(50));
        assert_eq!(Watchdog::new(0).percentile(50), None);
    }

    #[test]
    fn merge_combines() {
        let mut a = Watchdog::new(2);
        a.record(1, 10);
        a.record(3, 30);
        let mut b = Watchdog::new(2);
        b.record(4, 40);
        a.merge(&b);
        assert_eq!(a.operations(), 3);
        assert_eq!(a.max_attempts(), 4);
        assert_eq!(a.violations(), 2);
        assert_eq!(a.percentile(100), Some(40));
    }
}
