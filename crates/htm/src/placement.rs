//! Memory-placement policies and the variable→cache-line layout map.
//!
//! "The Influence of Malloc Placement on TSX HTM" (arXiv 1504.04640)
//! shows that where an allocator puts objects relative to cache lines
//! dominates HTM abort rates: packed objects false-share, lock words
//! co-resident with data self-abort every elided critical section, and
//! index-correlated placement turns logically disjoint operations into
//! line-level conflicts. This module makes placement a first-class,
//! configurable decision instead of an accident of allocation order:
//!
//! * [`PlacementPolicy`] selects the line-assignment strategy for record
//!   arenas (packed / padded / index-aware / randomized);
//! * [`PlacementConfig`] adds the lock-word decision (isolated vs
//!   co-resident with data — the classic HLE self-abort seed);
//! * [`Placer`] wraps a [`MemoryBuilder`] and applies the policy to every
//!   named region a structure allocates, producing both the usual frozen
//!   memory and a [`LayoutMap`] — the static variable→line assignment the
//!   analysis crate lints against;
//! * [`RecordArena`] is the structure-side handle: field addressing that
//!   is a contiguous base+stride formula for packed/padded layouts (the
//!   existing hot path) and a per-record base table for the scattered
//!   policies.
//!
//! The [`LayoutMap`] deliberately computes line indices with its *own*
//! division-based arithmetic rather than delegating to
//! [`Memory::line_of`](crate::Memory::line_of); a differential proptest
//! pins the two against each other, covering the power-of-two shift fast
//! path and the division fallback alike.

use crate::memory::{MemoryBuilder, VarId};
use elision_sim::DetRng;
use std::sync::Arc;

/// How a record arena maps record indices onto cache lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementPolicy {
    /// Dense allocation with no padding at all: records straddle line
    /// boundaries and share lines with whatever was allocated before and
    /// after them. The malloc-default worst case.
    Packed,
    /// Every record's stride is rounded up to a whole number of lines, so
    /// no two records ever share a line. The safe (and space-hungry)
    /// layout the advisor should pass clean.
    Padded,
    /// Records with adjacent indices are placed on *different* lines
    /// (block-cyclic assignment): index-correlated access patterns — the
    /// neighbouring keys a sorted workload touches together — stop
    /// colliding, while lines still hold multiple records.
    IndexAware,
    /// Records are assigned to line slots by a seeded Fisher–Yates
    /// shuffle: expected sharing is uniform, decorrelated from any index
    /// pattern. The seed makes the layout reproducible.
    Randomized(u64),
}

impl PlacementPolicy {
    /// The policies the placement sweeps compare (the randomized entry
    /// uses a fixed default seed).
    pub const ALL: [PlacementPolicy; 4] = [
        PlacementPolicy::Packed,
        PlacementPolicy::Padded,
        PlacementPolicy::IndexAware,
        PlacementPolicy::Randomized(0x9E37_79B9),
    ];

    /// Stable kebab-case label (bench keys, JSON artifacts).
    pub fn label(&self) -> &'static str {
        match self {
            PlacementPolicy::Packed => "packed",
            PlacementPolicy::Padded => "padded",
            PlacementPolicy::IndexAware => "index-aware",
            PlacementPolicy::Randomized(_) => "randomized",
        }
    }
}

/// A complete placement decision: the record policy plus where lock
/// words live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacementConfig {
    /// Line-assignment strategy for record arenas and metadata words.
    pub policy: PlacementPolicy,
    /// When true, lock words are *not* isolated on their own line: they
    /// land co-resident with adjacent data, so every elided critical
    /// section that touches that data conflicts with the lock word — the
    /// self-abort layout of arXiv 1504.04640 §4.
    pub lock_coresident: bool,
}

impl PlacementConfig {
    /// The given policy with properly isolated lock words.
    pub fn new(policy: PlacementPolicy) -> Self {
        PlacementConfig { policy, lock_coresident: false }
    }

    /// The safe baseline: padded records, isolated lock words.
    pub fn padded() -> Self {
        Self::new(PlacementPolicy::Padded)
    }

    /// The seeded-bad baseline: packed records *and* co-resident lock
    /// words.
    pub fn packed() -> Self {
        PlacementConfig { policy: PlacementPolicy::Packed, lock_coresident: true }
    }

    /// Override the lock-word co-residency decision.
    pub fn with_coresident_locks(mut self, coresident: bool) -> Self {
        self.lock_coresident = coresident;
        self
    }

    /// Stable label including the lock decision (bench keys).
    pub fn label(&self) -> String {
        if self.lock_coresident {
            format!("{}+lockco", self.policy.label())
        } else {
            self.policy.label().to_string()
        }
    }
}

/// What a layout region holds, for lint classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarRole {
    /// A lock word (subscription target; writes serialize everything).
    Lock,
    /// Record payload (tree nodes, hash buckets, queue slots).
    Data,
    /// Structure metadata (roots, heads, free-list heads).
    Meta,
}

impl VarRole {
    /// Stable lowercase label (JSON artifacts).
    pub fn label(&self) -> &'static str {
        match self {
            VarRole::Lock => "lock",
            VarRole::Data => "data",
            VarRole::Meta => "meta",
        }
    }
}

/// One named region of the layout: `bases[i]` is the first word of
/// record `i`, and the record occupies `stride` consecutive words.
#[derive(Debug, Clone)]
pub struct Region {
    /// Region name, e.g. `"rbtree.node"` or `"lock[0]"`.
    pub name: String,
    /// What the region holds.
    pub role: VarRole,
    /// Words per record.
    pub stride: u32,
    /// First word of each record, in record-index order.
    pub bases: Vec<u32>,
}

/// A word resolved back to its region/record/field coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedVar<'a> {
    /// Index into [`LayoutMap::regions`].
    pub region: usize,
    /// The region's name.
    pub name: &'a str,
    /// The region's role.
    pub role: VarRole,
    /// Record index within the region.
    pub record: u32,
    /// Field offset within the record (`< stride`).
    pub field: u32,
}

/// The static variable→cache-line assignment a [`Placer`] produced.
///
/// Line arithmetic here is an independent division-based implementation
/// (differentially tested against [`Memory::line_of`](crate::Memory::line_of)).
#[derive(Debug, Clone)]
pub struct LayoutMap {
    words_per_line: u32,
    words: u32,
    regions: Vec<Region>,
    /// `(base_word, region_index, record_index)` sorted by base, for
    /// [`LayoutMap::resolve`].
    index: Vec<(u32, u32, u32)>,
}

impl LayoutMap {
    /// Build a map from explicit regions (the [`Placer`] does this; tests
    /// may too).
    pub fn new(words_per_line: u32, words: u32, regions: Vec<Region>) -> Self {
        assert!(words_per_line > 0, "a line must hold at least one word");
        let mut index = Vec::new();
        for (ri, r) in regions.iter().enumerate() {
            assert!(r.stride > 0, "region {} has zero stride", r.name);
            for (rec, &b) in r.bases.iter().enumerate() {
                assert!(
                    b.saturating_add(r.stride) <= words,
                    "region {} record {rec} overruns memory",
                    r.name
                );
                index.push((b, ri as u32, rec as u32));
            }
        }
        index.sort_unstable();
        for w in index.windows(2) {
            let (b0, r0, _) = w[0];
            let end0 = b0 + regions[r0 as usize].stride;
            assert!(end0 <= w[1].0, "overlapping records in layout map");
        }
        LayoutMap { words_per_line, words, regions, index }
    }

    /// Words per cache line.
    pub fn words_per_line(&self) -> u32 {
        self.words_per_line
    }

    /// Total words the layout covers (including padding).
    pub fn words(&self) -> u32 {
        self.words
    }

    /// Number of cache lines the layout covers.
    pub fn line_count(&self) -> u32 {
        self.words.div_ceil(self.words_per_line).max(1)
    }

    /// The named regions, in allocation order (lock words last).
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// The cache line holding `word` — always the division form, never
    /// the shift fast path, so it is an independent oracle for
    /// [`Memory::line_of`](crate::Memory::line_of).
    pub fn line_of_word(&self, word: u32) -> u32 {
        word / self.words_per_line
    }

    /// The cache line holding `var` (convenience over raw words).
    pub fn line_of(&self, var: VarId) -> u32 {
        self.line_of_word(var.index())
    }

    /// Map `word` back to (region, record, field); `None` for padding
    /// words that belong to no region.
    pub fn resolve(&self, word: u32) -> Option<ResolvedVar<'_>> {
        let i = self.index.partition_point(|&(b, _, _)| b <= word);
        let &(base, ri, rec) = self.index.get(i.checked_sub(1)?)?;
        let r = &self.regions[ri as usize];
        let off = word - base;
        if off < r.stride {
            Some(ResolvedVar {
                region: ri as usize,
                name: &r.name,
                role: r.role,
                record: rec,
                field: off,
            })
        } else {
            None
        }
    }

    /// All lines of region `region_index`, sorted and deduplicated.
    pub fn lines_of_region(&self, region_index: usize) -> Vec<u32> {
        let r = &self.regions[region_index];
        let mut lines: Vec<u32> =
            r.bases.iter().flat_map(|&b| (b..b + r.stride).map(|w| self.line_of_word(w))).collect();
        lines.sort_unstable();
        lines.dedup();
        lines
    }

    /// Lines that hold at least one lock word, sorted and deduplicated.
    pub fn lock_lines(&self) -> Vec<u32> {
        let mut lines: Vec<u32> = self
            .regions
            .iter()
            .enumerate()
            .filter(|(_, r)| r.role == VarRole::Lock)
            .flat_map(|(i, _)| self.lines_of_region(i))
            .collect();
        lines.sort_unstable();
        lines.dedup();
        lines
    }
}

/// Structure-side handle for a placed record arena: turns `(record,
/// field)` into a [`VarId`].
///
/// Contiguous arenas (packed/padded — and every pre-placement structure)
/// use the base+pitch formula, keeping the existing single-branch hot
/// path; scattered arenas (index-aware/randomized) go through a shared
/// per-record base table.
#[derive(Debug, Clone)]
pub struct RecordArena {
    base: u32,
    /// Words between consecutive records (>= the logical stride for
    /// padded layouts).
    pitch: u32,
    /// Per-record first words for scattered layouts; `None` means the
    /// contiguous formula applies.
    map: Option<Arc<Vec<u32>>>,
}

impl RecordArena {
    /// A contiguous arena: record `i` starts at `base + i * pitch`.
    pub fn contiguous(base: u32, pitch: u32) -> Self {
        assert!(pitch > 0, "records must occupy at least one word");
        RecordArena { base, pitch, map: None }
    }

    /// A scattered arena: record `i` starts at `bases[i]`.
    pub fn mapped(bases: Vec<u32>, pitch: u32) -> Self {
        assert!(pitch > 0, "records must occupy at least one word");
        RecordArena { base: bases.first().copied().unwrap_or(0), pitch, map: Some(Arc::new(bases)) }
    }

    /// The word holding field `field` of record `record`.
    #[inline]
    pub fn word(&self, record: u64, field: u32) -> VarId {
        debug_assert!(field < self.pitch, "field {field} outside record pitch {}", self.pitch);
        match &self.map {
            None => VarId::from_index(self.base + record as u32 * self.pitch + field),
            Some(m) => VarId::from_index(m[record as usize] + field),
        }
    }

    /// Words between record fields 0 and the end of the record's slot.
    pub fn pitch(&self) -> u32 {
        self.pitch
    }

    /// The per-record base words (contiguous arenas synthesize them).
    pub fn bases(&self, count: usize) -> Vec<u32> {
        match &self.map {
            None => (0..count as u32).map(|i| self.base + i * self.pitch).collect(),
            Some(m) => {
                assert_eq!(m.len(), count, "scattered arena record count mismatch");
                m.as_ref().clone()
            }
        }
    }
}

/// Applies a [`PlacementConfig`] to every allocation of a structure,
/// recording the resulting regions into a [`LayoutMap`].
///
/// The placer owns the builder: allocate through it (and through
/// [`Placer::builder_mut`] for scheme/lock construction, which the
/// placer captures as lock regions at [`Placer::finish`] time), then
/// split it back into the builder and the finished map.
#[derive(Debug)]
pub struct Placer {
    b: MemoryBuilder,
    cfg: PlacementConfig,
    regions: Vec<Region>,
}

impl Placer {
    /// Wrap `builder` with placement `cfg`. Co-resident lock placement
    /// takes effect immediately (it flips the builder's isolation
    /// padding), so locks allocated later through
    /// [`Placer::builder_mut`] obey it too.
    pub fn new(mut builder: MemoryBuilder, cfg: PlacementConfig) -> Self {
        builder.set_pack_isolated(cfg.lock_coresident);
        Placer { b: builder, cfg, regions: Vec::new() }
    }

    /// The placement this placer applies.
    pub fn config(&self) -> PlacementConfig {
        self.cfg
    }

    /// The wrapped builder, for allocations the placer does not manage
    /// (scheme and lock construction).
    pub fn builder_mut(&mut self) -> &mut MemoryBuilder {
        &mut self.b
    }

    /// Allocate one metadata word (root pointer, head, tail). Isolated on
    /// its own line unless the policy is [`PlacementPolicy::Packed`].
    pub fn meta(&mut self, name: &str, init: u64) -> VarId {
        let var = match self.cfg.policy {
            PlacementPolicy::Packed => self.b.alloc(init),
            _ => {
                // Force real isolation even when lock co-residency packed
                // the builder: metadata keeps its line under non-packed
                // policies.
                let packed = self.cfg.lock_coresident;
                if packed {
                    self.b.set_pack_isolated(false);
                }
                let v = self.b.alloc_isolated(init);
                if packed {
                    self.b.set_pack_isolated(true);
                }
                v
            }
        };
        self.regions.push(Region {
            name: name.to_string(),
            role: VarRole::Meta,
            stride: 1,
            bases: vec![var.index()],
        });
        var
    }

    /// Allocate `count` records of `stride` words each under the policy,
    /// all words initialized to `init`.
    pub fn records(
        &mut self,
        name: &str,
        role: VarRole,
        count: usize,
        stride: u32,
        init: u64,
    ) -> RecordArena {
        assert!(count > 0 && stride > 0, "region {name} must have records");
        let wpl = self.b.line_width() as u32;
        let arena = match self.cfg.policy {
            PlacementPolicy::Packed => {
                let base = self.b.len() as u32;
                self.b.alloc_array(count * stride as usize, init);
                RecordArena::contiguous(base, stride)
            }
            PlacementPolicy::Padded => {
                self.pad_cursor();
                let pitch = stride.div_ceil(wpl) * wpl;
                let base = self.b.len() as u32;
                self.b.alloc_array(count * pitch as usize, init);
                RecordArena::contiguous(base, pitch)
            }
            PlacementPolicy::IndexAware => {
                let (slots, per_line, line_words, base) = self.slot_grid(count, stride, init);
                // Block-cyclic: record i lands in block (i mod blocks), so
                // adjacent indices sit on different lines.
                let blocks = slots / per_line;
                let bases = (0..count)
                    .map(|i| {
                        let slot = (i % blocks) * per_line + i / blocks;
                        base + (slot / per_line) as u32 * line_words
                            + (slot % per_line) as u32 * stride
                    })
                    .collect();
                RecordArena::mapped(bases, stride)
            }
            PlacementPolicy::Randomized(seed) => {
                let (slots, per_line, line_words, base) = self.slot_grid(count, stride, init);
                let mut order: Vec<usize> = (0..slots).collect();
                let mut rng = DetRng::new(seed, 0x9_1ACE);
                for i in (1..slots).rev() {
                    order.swap(i, rng.below(i as u64 + 1) as usize);
                }
                let bases = (0..count)
                    .map(|i| {
                        let slot = order[i];
                        base + (slot / per_line) as u32 * line_words
                            + (slot % per_line) as u32 * stride
                    })
                    .collect();
                RecordArena::mapped(bases, stride)
            }
        };
        self.regions.push(Region {
            name: name.to_string(),
            role,
            stride,
            bases: arena.bases(count),
        });
        arena
    }

    /// Line-align the cursor regardless of the lock-co-residency packing
    /// (that flag only targets isolation requests, not arena starts).
    fn pad_cursor(&mut self) {
        let packed = self.cfg.lock_coresident;
        if packed {
            self.b.set_pack_isolated(false);
        }
        self.b.pad_to_line();
        if packed {
            self.b.set_pack_isolated(true);
        }
    }

    /// Allocate the line-aligned slot grid shared by the scattered
    /// policies: `ceil(count / per_line)` blocks of `line_words` words,
    /// each block holding `per_line` record slots. Returns
    /// `(total_slots, per_line, line_words, base)`.
    fn slot_grid(&mut self, count: usize, stride: u32, init: u64) -> (usize, usize, u32, u32) {
        let wpl = self.b.line_width() as u32;
        let per_line = (wpl / stride).max(1) as usize;
        let line_words = if stride > wpl { stride.div_ceil(wpl) * wpl } else { wpl };
        let blocks = count.div_ceil(per_line);
        self.pad_cursor();
        let base = self.b.len() as u32;
        // Every slot word gets `init` (slack between slots is never
        // addressed, so over-initializing it is harmless).
        self.b.alloc_array(blocks * line_words as usize, init);
        (blocks * per_line, per_line, line_words, base)
    }

    /// Capture lock words allocated through the builder as lock regions
    /// and split into the builder (ready to freeze) and the layout map.
    pub fn finish(mut self) -> (MemoryBuilder, LayoutMap) {
        for (k, var) in self.b.registered_lock_words().to_vec().iter().enumerate() {
            self.regions.push(Region {
                name: format!("lock[{k}]"),
                role: VarRole::Lock,
                stride: 1,
                bases: vec![var.index()],
            });
        }
        let map = LayoutMap::new(self.b.line_width() as u32, self.b.len() as u32, self.regions);
        (self.b, map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn placer(policy: PlacementPolicy, wpl: usize) -> Placer {
        Placer::new(MemoryBuilder::new().words_per_line(wpl), PlacementConfig::new(policy))
    }

    #[test]
    fn labels_are_stable() {
        let labels: Vec<&str> = PlacementPolicy::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels, ["packed", "padded", "index-aware", "randomized"]);
        assert_eq!(PlacementConfig::packed().label(), "packed+lockco");
        assert_eq!(PlacementConfig::padded().label(), "padded");
    }

    #[test]
    fn padded_records_never_share_lines() {
        let mut p = placer(PlacementPolicy::Padded, 8);
        let arena = p.records("r", VarRole::Data, 5, 3, 0);
        let (_, map) = p.finish();
        let mut lines: Vec<u32> = (0..5).map(|i| map.line_of(arena.word(i, 0))).collect();
        for i in 0..5u64 {
            for f in 0..3 {
                assert_eq!(map.line_of(arena.word(i, f)), lines[i as usize]);
            }
        }
        lines.sort_unstable();
        lines.dedup();
        assert_eq!(lines.len(), 5, "each record owns its line(s)");
    }

    #[test]
    fn packed_records_share_lines() {
        let mut p = placer(PlacementPolicy::Packed, 8);
        let arena = p.records("r", VarRole::Data, 4, 3, 0);
        let (_, map) = p.finish();
        assert_eq!(map.line_of(arena.word(0, 0)), map.line_of(arena.word(1, 0)));
    }

    #[test]
    fn index_aware_separates_adjacent_records() {
        let mut p = placer(PlacementPolicy::IndexAware, 8);
        let arena = p.records("r", VarRole::Data, 12, 2, 0);
        let (_, map) = p.finish();
        for i in 0..11u64 {
            assert_ne!(
                map.line_of(arena.word(i, 0)),
                map.line_of(arena.word(i + 1, 0)),
                "adjacent records {i},{} must not share a line",
                i + 1
            );
        }
    }

    #[test]
    fn scattered_policies_are_bijections() {
        for policy in [PlacementPolicy::IndexAware, PlacementPolicy::Randomized(7)] {
            let mut p = placer(policy, 8);
            let arena = p.records("r", VarRole::Data, 13, 3, 5);
            let (b, map) = p.finish();
            let mem = b.freeze(1);
            let mut bases: Vec<u32> = (0..13).map(|i| arena.word(i, 0).index()).collect();
            bases.sort_unstable();
            bases.dedup();
            assert_eq!(bases.len(), 13, "{policy:?} must not alias records");
            for i in 0..13u64 {
                for f in 0..3 {
                    let v = arena.word(i, f);
                    assert_eq!(mem.read_direct(v), 5, "{policy:?} init must reach every field");
                    assert_eq!(
                        map.resolve(v.index()).expect("record word resolves").record,
                        i as u32
                    );
                }
            }
        }
    }

    #[test]
    fn randomized_is_seed_deterministic() {
        let build = |seed| {
            let mut p = placer(PlacementPolicy::Randomized(seed), 8);
            let arena = p.records("r", VarRole::Data, 10, 2, 0);
            (0..10).map(|i| arena.word(i, 0).index()).collect::<Vec<_>>()
        };
        assert_eq!(build(1), build(1));
        assert_ne!(build(1), build(2), "different seeds should differ for 10 records");
    }

    #[test]
    fn resolve_roundtrips_and_padding_is_unmapped() {
        let mut p = placer(PlacementPolicy::Padded, 8);
        let head = p.meta("head", 9);
        let arena = p.records("node", VarRole::Data, 3, 2, 0);
        let (b, map) = p.finish();
        assert_eq!(b.line_width(), 8);
        let r = map.resolve(head.index()).expect("meta resolves");
        assert_eq!((r.name, r.role, r.record, r.field), ("head", VarRole::Meta, 0, 0));
        let r = map.resolve(arena.word(2, 1).index()).expect("field resolves");
        assert_eq!((r.name, r.record, r.field), ("node", 2, 1));
        // The padding word right after the meta word belongs to nothing.
        assert_eq!(map.resolve(head.index() + 1), None);
    }

    #[test]
    fn finish_captures_lock_words_as_regions() {
        let mut p = placer(PlacementPolicy::Padded, 8);
        let _head = p.meta("head", 0);
        let lock = p.builder_mut().alloc_lock_word(0);
        let (_, map) = p.finish();
        let r = map.resolve(lock.index()).expect("lock resolves");
        assert_eq!((r.name, r.role), ("lock[0]", VarRole::Lock));
        assert_eq!(map.lock_lines(), vec![map.line_of(lock)]);
    }

    #[test]
    fn coresident_locks_share_data_lines() {
        let mut p = Placer::new(MemoryBuilder::new().words_per_line(8), PlacementConfig::packed());
        let arena = p.records("node", VarRole::Data, 3, 2, 0);
        let lock = p.builder_mut().alloc_lock_word(0);
        let (b, map) = p.finish();
        let mem = b.freeze(1);
        assert_eq!(map.line_of(lock), map.line_of(arena.word(2, 1)));
        assert!(mem.is_lock_line(mem.line_of(arena.word(2, 1)).raw()));
    }

    #[test]
    fn layout_line_count_matches_memory() {
        for policy in PlacementPolicy::ALL {
            let mut p = placer(policy, 8);
            let _ = p.meta("m", 0);
            let _ = p.records("r", VarRole::Data, 9, 3, 0);
            let (b, map) = p.finish();
            let mem = b.freeze(1);
            assert_eq!(map.words() as usize, mem.words());
            assert_eq!(map.line_count() as usize, mem.line_count());
        }
    }
}
