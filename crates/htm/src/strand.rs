//! [`Strand`]: a simulated thread's view of shared memory, with the
//! transaction machinery (begin / commit / abort, read & write sets,
//! write buffering, HLE elision) layered on top.
//!
//! The same critical-section code runs speculatively or non-speculatively
//! depending on whether a transaction is active — mirroring how identical
//! machine code runs under real HLE. Every access returns
//! [`TxResult`]; outside a transaction operations never fail, inside one
//! they return `Err(Abort)` once the transaction has been doomed, after
//! unwinding it (clearing conflict bitmaps and charging the abort
//! penalty).

use crate::abort::{codes, Abort, AbortStatus, TxResult, TxnStats};
use crate::config::HtmConfig;
use crate::lineset::{LineSet, WriteBuf};
use crate::memory::{HwSubscription, LineId, Memory, VarId};
use crate::sanitize::SanAccess;
use elision_sim::{
    AbortCause, CauseSlotRecorder, ConflictLineHistogram, DetRng, OpCounters, SimHandle,
    TraceEvent, TraceRing,
};
use std::sync::Arc;

/// State of one in-flight transaction.
///
/// The containers are capacity-bounded sorted vectors (see
/// [`crate::lineset`]) sized by the configured set budgets; the whole
/// descriptor is stashed as scratch on commit/abort and reused by the
/// next `begin()`, so attempts allocate nothing in steady state.
#[derive(Debug)]
struct Txn {
    epoch: u64,
    read_lines: LineSet,
    write_lines: LineSet,
    /// Speculative write buffer: values invisible to peers until commit.
    wbuf: WriteBuf,
    /// Elided (XACQUIRE'd) variables: their buffered value is a local
    /// illusion, never published, and must be restored by commit time.
    elided: Vec<(VarId, u64)>,
    /// Remaining accesses until an injected spurious abort fires.
    spurious_fuse: Option<u32>,
    /// The transaction declared lazy subscription (arXiv 1407.6968's
    /// proposed mode bit): hardware dangerous-instruction screening
    /// applies when [`HtmConfig::dangerous_abort`] is also set.
    lazy_subscribed: bool,
    /// Registered hardware commit-time subscription: commit evaluates
    /// the descriptor against committed state, atomically with
    /// publication, and refuses to commit while the lock is held.
    hw_sub: Option<HwSubscription>,
    /// Lines an unfenced subscription probe sampled. Pure model-checker
    /// instrumentation: the commit's *findings* (who holds the lock when
    /// it publishes) depend on these lines even though its outcome does
    /// not, so they join the commit step's footprint — without them the
    /// explorer's dependence relation would never reorder a peer's lock
    /// acquisition into the probe-to-commit window, hiding exactly the
    /// race this probe exists to exhibit.
    probed_lines: Vec<u32>,
}

impl Txn {
    fn is_elided(&self, var: VarId) -> bool {
        self.elided.iter().any(|&(v, _)| v == var)
    }
}

/// A simulated thread's handle onto shared memory and the HTM.
///
/// One `Strand` per simulated thread; it owns the thread's transaction
/// descriptor, its deterministic RNG streams and its statistics. All
/// simulated work — including pure compute and busy-wait iterations — must
/// go through a `Strand` (or directly through [`SimHandle::advance`]) so
/// logical time advances.
#[derive(Debug)]
pub struct Strand {
    mem: Arc<Memory>,
    sim: SimHandle,
    tid: usize,
    cfg: HtmConfig,
    txn: Option<Txn>,
    /// Scratch arena: the previous attempt's (cleared) transaction
    /// descriptor, reused by the next `begin()` so the per-attempt cost is
    /// four `clear()`s instead of four allocations.
    spare: Option<Txn>,
    last_abort: AbortStatus,
    htm_rng: DetRng,
    /// Deterministic RNG stream for workload decisions (key choices,
    /// operation mixes). Separate from the internal spurious-abort stream
    /// so workloads draw identical sequences across schemes.
    pub rng: DetRng,
    /// Deterministic RNG stream reserved for retry/backoff jitter in the
    /// elision schemes. Separate from both the workload and HTM streams so
    /// enabling backoff never perturbs workload draws or abort injection.
    pub retry_rng: DetRng,
    /// Transaction event statistics.
    pub stats: TxnStats,
    /// The paper's S/A/N operation counters, recorded by elision schemes.
    pub counters: OpCounters,
    /// Optional bounded execution trace (see [`Strand::enable_trace`]).
    pub trace: Option<TraceRing>,
    /// Optional per-time-slot abort-cause series (see
    /// [`Strand::enable_cause_slots`]); complements the aggregate
    /// histogram in `counters.causes`.
    pub cause_slots: Option<CauseSlotRecorder>,
    /// Optional histogram of conflict-abort cache lines (see
    /// [`Strand::enable_conflict_lines`]); the dynamic side of the static
    /// advisor's hot-line cross-validation.
    pub conflict_lines: Option<ConflictLineHistogram>,
}

impl Strand {
    /// Create the strand for the simulated thread behind `sim`.
    ///
    /// `seed` drives both the workload RNG stream and the (independent)
    /// spurious-abort stream.
    ///
    /// # Panics
    ///
    /// Panics if the handle's thread id is out of range for `mem`.
    pub fn new(mem: Arc<Memory>, sim: SimHandle, cfg: HtmConfig, seed: u64) -> Self {
        let tid = sim.id();
        assert!(tid < mem.threads(), "thread id {tid} out of range for memory");
        Strand {
            mem,
            sim,
            tid,
            cfg,
            txn: None,
            spare: None,
            last_abort: AbortStatus::conflict(),
            htm_rng: DetRng::new(seed, 1_000_000 + tid as u64),
            rng: DetRng::new(seed, tid as u64),
            retry_rng: DetRng::new(seed, 2_000_000 + tid as u64),
            stats: TxnStats::default(),
            counters: OpCounters::new(),
            trace: None,
            cause_slots: None,
            conflict_lines: None,
        }
    }

    /// Start recording transaction events into a bounded ring of
    /// `capacity` entries (see [`TraceRing`]); any previous trace is
    /// replaced.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(TraceRing::new(capacity));
    }

    /// Start bucketing abort causes by logical-time slots of
    /// `slot_cycles` cycles (see [`CauseSlotRecorder`]); any previous
    /// recorder is replaced.
    ///
    /// # Panics
    ///
    /// Panics if `slot_cycles` is zero.
    pub fn enable_cause_slots(&mut self, slot_cycles: u64) {
        self.cause_slots = Some(CauseSlotRecorder::new(slot_cycles));
    }

    /// Start recording the cache line of every abort that carries a
    /// conflict-line attribution (see [`ConflictLineHistogram`]); any
    /// previous histogram is replaced.
    pub fn enable_conflict_lines(&mut self) {
        self.conflict_lines = Some(ConflictLineHistogram::new());
    }

    fn trace_event(&mut self, ev: TraceEvent) {
        if let Some(ring) = self.trace.as_mut() {
            // Lint passes order the merged trace by timestamp. Per-thread
            // cycle clocks only agree with execution order under the
            // default min-clock schedule; in a controlled run an
            // adversarial schedule runs threads "in the past", so stamp
            // with the global decision-step counter instead — each step
            // belongs to exactly one thread, and the stable merge keeps
            // same-step (same-thread) events in ring order.
            let t = if self.sim.controlled() { self.sim.steps_taken() } else { self.sim.now() };
            ring.record(t, ev);
        }
    }

    /// Append to the memory's sanitizer log, if one is attached. Never
    /// advances the clock or draws RNG state, so sanitized runs replay
    /// the exact schedule of unsanitized ones.
    fn san(&self, access: SanAccess) {
        if let Some(log) = self.mem.san_log() {
            log.push(self.tid, self.sim.now(), access);
        }
    }

    /// Record a non-speculative lock acquisition (called by lock
    /// implementations once the lock is held). `word` is the lock's
    /// primary word — its identity for the trace and sanitizer layers.
    pub fn note_lock_acquire(&mut self, word: VarId) {
        self.trace_event(TraceEvent::LockAcquire(word.index()));
        self.san(SanAccess::LockAcquire { word });
    }

    /// Record a non-speculative lock release (called by lock
    /// implementations after the lock is released).
    pub fn note_lock_release(&mut self, word: VarId) {
        self.trace_event(TraceEvent::LockRelease(word.index()));
        self.san(SanAccess::LockRelease { word });
    }

    /// Record a protocol marker (e.g. the elision schemes' `subscribe`
    /// marker) into both the trace ring and the sanitizer log.
    pub fn note(&mut self, label: &'static str, value: u64) {
        self.trace_event(TraceEvent::Custom(label, value));
        self.san(SanAccess::Marker { label, value });
    }

    /// The simulated thread id.
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Number of simulated threads in the run.
    pub fn threads(&self) -> usize {
        self.mem.threads()
    }

    /// The thread's logical clock.
    pub fn now(&self) -> u64 {
        self.sim.now()
    }

    /// The scheduler handle backing this strand. The model checker uses it
    /// to read controlled-run step counts for history timestamps.
    pub fn sim(&self) -> &SimHandle {
        &self.sim
    }

    /// The shared memory.
    pub fn memory(&self) -> &Arc<Memory> {
        &self.mem
    }

    /// The HTM configuration.
    pub fn config(&self) -> &HtmConfig {
        &self.cfg
    }

    /// Whether a transaction is currently active (the `XTEST` of the
    /// paper's pseudo-code).
    pub fn in_txn(&self) -> bool {
        self.txn.is_some()
    }

    /// The status of the most recent abort.
    pub fn last_abort(&self) -> AbortStatus {
        self.last_abort
    }

    // ------------------------------------------------------------------
    // transaction lifecycle
    // ------------------------------------------------------------------

    /// Begin a transaction (`XBEGIN`).
    ///
    /// # Panics
    ///
    /// Panics if a transaction is already active (the schemes never nest
    /// `XBEGIN`; HLE-in-RTM nesting is expressed via [`Strand::elide_rmw`]
    /// inside one transaction, matching TSX's flat nesting).
    pub fn begin(&mut self) {
        assert!(self.txn.is_none(), "flat nesting: begin inside a transaction");
        self.sim.advance(self.cfg.cost.txn_begin);
        let epoch = self.mem.begin_epoch(self.tid);
        let spurious_fuse = if self.htm_rng.chance(self.cfg.spurious_begin) {
            Some(1 + self.htm_rng.below(24) as u32)
        } else {
            None
        };
        self.stats.begins += 1;
        self.trace_event(TraceEvent::TxnBegin);
        self.san(SanAccess::TxnBegin);
        // Reuse the scratch descriptor (its containers were cleared when
        // stashed); the first attempt of a strand's life allocates it.
        let mut txn = self.spare.take().unwrap_or_else(|| Txn {
            epoch: 0,
            read_lines: LineSet::with_capacity(self.cfg.read_set_lines),
            write_lines: LineSet::with_capacity(self.cfg.write_set_lines),
            wbuf: WriteBuf::default(),
            elided: Vec::new(),
            spurious_fuse: None,
            lazy_subscribed: false,
            hw_sub: None,
            probed_lines: Vec::new(),
        });
        txn.epoch = epoch;
        txn.spurious_fuse = spurious_fuse;
        self.txn = Some(txn);
    }

    /// Return a finished transaction descriptor to the scratch arena,
    /// clearing its containers but keeping their allocations.
    fn stash(&mut self, mut txn: Txn) {
        txn.read_lines.clear();
        txn.write_lines.clear();
        txn.wbuf.clear();
        txn.elided.clear();
        txn.lazy_subscribed = false;
        txn.hw_sub = None;
        txn.probed_lines.clear();
        self.spare = Some(txn);
    }

    /// Commit the active transaction (`XEND`), publishing buffered writes.
    ///
    /// # Errors
    ///
    /// Returns the abort status if the transaction was doomed by a
    /// conflict, hit an injected spurious abort, or failed the HLE
    /// restore check. The transaction is fully unwound in that case.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is active.
    pub fn commit(&mut self) -> Result<(), AbortStatus> {
        assert!(self.txn.is_some(), "commit outside a transaction");
        self.sim.advance(self.cfg.cost.txn_commit);
        if self.sim.controlled() {
            // Model-checker footprint: the commit outcome depends on the
            // doom flag, which a peer write to *any* read- or write-set
            // line flips, and publication writes every write-set line —
            // so the whole sets are part of this step's footprint. Line
            // sets iterate in ascending order, matching the sort the old
            // hash containers needed here.
            let txn = self.txn.as_ref().expect("checked above");
            for &l in txn.read_lines.as_slice() {
                self.sim.note_access(l, false);
            }
            for &l in txn.write_lines.as_slice() {
                self.sim.note_access(l, true);
            }
            // A registered hardware subscription makes the commit verdict
            // depend on the monitored lock words too: without this note
            // the explorer would never reorder a commit against a peer's
            // lock acquisition.
            if let Some(sub) = txn.hw_sub.as_ref() {
                for line in self.mem.subscription_lines(sub) {
                    self.sim.note_access(line.0, false);
                }
            }
            // Unfenced probes likewise: whether the commit publishes
            // while the lock is held is a property of these lines, so
            // reorderings against them must be explored (see
            // `Txn::probed_lines`).
            for &l in &txn.probed_lines {
                self.sim.note_access(l, false);
            }
        }
        if let Err(Abort) = self.health_check() {
            return Err(self.last_abort);
        }
        // HLE restore check: every elided variable must have been restored
        // to its pre-acquire value, else the hardware cannot elide.
        let restore_ok = {
            let txn = self.txn.as_ref().expect("checked above");
            txn.elided.iter().all(|&(var, original)| txn.wbuf.get(var) == Some(original))
        };
        if !restore_ok {
            self.unwind(AbortStatus::hle_restore());
            return Err(self.last_abort);
        }
        // Elided values are an illusion: drop them instead of publishing.
        {
            let txn = self.txn.as_mut().expect("checked above");
            for i in 0..txn.elided.len() {
                let var = txn.elided[i].0;
                txn.wbuf.remove(var);
            }
        }
        // Publication must be ordered against non-transactional writes and
        // other commits: take the engine lock, re-check the doom flag, then
        // make all buffered writes visible, aborting every peer that read
        // or speculatively wrote the published lines.
        let mut subscription_held = false;
        let doomed_at_last_moment = {
            let _guard = self.mem.engine_lock();
            let txn = self.txn.as_ref().expect("checked above");
            if self.mem.is_doomed(self.tid, txn.epoch) {
                true
            } else if txn.hw_sub.as_ref().is_some_and(|sub| !self.mem.subscription_free(sub)) {
                // The hardware commit-time subscription (arXiv 1407.6968)
                // found the lock held. Evaluated on committed state under
                // the engine lock, the verdict is atomic with publication:
                // there is no check-to-commit window, and a zombie's
                // buffered wild store cannot fool it.
                subscription_held = true;
                false
            } else {
                if let Some(sub) = txn.hw_sub.as_ref() {
                    // The free verdict was computed from these words
                    // under the engine lock: log the reads so the
                    // ordering they establish (the holder's release
                    // happens-before this commit) is visible to the
                    // analysis passes, exactly as the software
                    // subscription's read-set load would be.
                    match sub {
                        HwSubscription::ValueIs { word, .. }
                        | HwSubscription::IndirectValueIs { ptr: word, .. } => {
                            let v = self.mem.raw_load(*word);
                            self.san(SanAccess::Read { var: *word, value: v, txn: true });
                        }
                        HwSubscription::WordsEqual { a, b } => {
                            let va = self.mem.raw_load(*a);
                            self.san(SanAccess::Read { var: *a, value: va, txn: true });
                            let vb = self.mem.raw_load(*b);
                            self.san(SanAccess::Read { var: *b, value: vb, txn: true });
                        }
                    }
                }
                // Publication happens in VarId order — the write buffer is
                // sorted by variable index — keeping the peer-dooming
                // order (hence the best-effort conflict-line attribution)
                // and the sanitizer log order deterministic.
                for (var, val) in txn.wbuf.iter() {
                    self.mem.raw_store(var, val);
                    let line = self.mem.line_of(var);
                    let peers = self.mem.readers_of(line) | self.mem.writers_of(line);
                    self.mem.doom_bitmap(peers, self.tid, line);
                    self.san(SanAccess::Write { var, value: val, txn: true });
                }
                self.san(SanAccess::TxnCommit);
                false
            }
        };
        if doomed_at_last_moment {
            self.unwind(AbortStatus::conflict());
            return Err(self.last_abort);
        }
        if subscription_held {
            self.unwind(AbortStatus::explicit(codes::SUBSCRIPTION, true));
            return Err(self.last_abort);
        }
        // Success: retire the epoch first so stale dooms become no-ops,
        // then clear the conflict bitmaps.
        self.mem.end_epoch(self.tid);
        let txn = self.txn.take().expect("checked above");
        for &l in txn.read_lines.as_slice() {
            self.mem.clear_reader(LineId(l), self.tid);
        }
        for &l in txn.write_lines.as_slice() {
            self.mem.clear_writer(LineId(l), self.tid);
        }
        self.stash(txn);
        self.stats.commits += 1;
        self.trace_event(TraceEvent::TxnCommit);
        Ok(())
    }

    /// Explicitly abort the active transaction (`XABORT code`), unwinding
    /// it. `retry` is the hint placed in the abort status.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is active.
    pub fn xabort(&mut self, code: u8, retry: bool) -> Abort {
        assert!(self.txn.is_some(), "xabort outside a transaction");
        self.unwind(AbortStatus::explicit(code, retry));
        Abort
    }

    /// Declare the active transaction lazily subscribed — the mode bit of
    /// arXiv 1407.6968. With [`HtmConfig::dangerous_abort`] set, any
    /// subsequent non-elided transactional store to a lock-marked line
    /// aborts at the offending access (the "dangerous instruction"
    /// screen). A pure register write: no clock, RNG or log effects.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is active.
    pub fn mark_lazy_subscription(&mut self) {
        self.txn.as_mut().expect("mark_lazy_subscription outside a transaction").lazy_subscribed =
            true;
    }

    /// Register a hardware commit-time subscription: commit will evaluate
    /// `sub` against *committed* state — immune to the transaction's own
    /// write buffer — atomically with publication, and abort with
    /// [`codes::SUBSCRIPTION`] if the lock is held. Implies
    /// [`Strand::mark_lazy_subscription`]. A pure register write.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is active.
    pub fn hw_subscribe(&mut self, sub: HwSubscription) {
        let txn = self.txn.as_mut().expect("hw_subscribe outside a transaction");
        txn.lazy_subscribed = true;
        txn.hw_sub = Some(sub);
    }

    /// Sample a subscription descriptor against committed state *without*
    /// joining the read set — the unfenced commit-time check real lazy
    /// subscription performs on stock hardware. Because the sampled lines
    /// are never tracked, a lock acquisition between this probe and
    /// `commit` goes unnoticed: this is the racy window of
    /// arXiv 1407.6968 §3, modelled faithfully so the explorer can
    /// exhibit it. Returns `true` iff the lock was observed free.
    ///
    /// # Errors
    ///
    /// `Err(Abort)` if the enclosing transaction was doomed meanwhile.
    pub fn probe_subscription(&mut self, sub: &HwSubscription) -> TxResult<bool> {
        self.sim.advance(self.cfg.cost.load);
        if self.txn.is_some() {
            self.health_check()?;
        }
        // The sample reads real lines: give the model checker the honest
        // footprint, and the sanitizer the observed values (a stale
        // sample is exactly what the opacity pass must catch).
        for line in self.mem.subscription_lines(sub) {
            self.sim.note_access(line.0, false);
            if let Some(txn) = self.txn.as_mut() {
                if !txn.probed_lines.contains(&line.0) {
                    txn.probed_lines.push(line.0);
                }
            }
        }
        let in_txn = self.in_txn();
        match sub {
            HwSubscription::ValueIs { word, .. }
            | HwSubscription::IndirectValueIs { ptr: word, .. } => {
                let v = self.mem.raw_load(*word);
                self.san(SanAccess::Read { var: *word, value: v, txn: in_txn });
            }
            HwSubscription::WordsEqual { a, b } => {
                let va = self.mem.raw_load(*a);
                self.san(SanAccess::Read { var: *a, value: va, txn: in_txn });
                let vb = self.mem.raw_load(*b);
                self.san(SanAccess::Read { var: *b, value: vb, txn: in_txn });
            }
        }
        Ok(self.mem.subscription_free(sub))
    }

    /// Run one speculative attempt: begin, execute `body`, commit.
    ///
    /// If `body` returns `Err(Abort)` the transaction has already been
    /// unwound and the abort status is returned. A committed body's value
    /// is returned as `Ok`.
    ///
    /// # Errors
    ///
    /// The abort status of whatever ended the attempt.
    ///
    /// # Panics
    ///
    /// Panics if `body` swallows an abort (returns `Ok` while the
    /// transaction is gone) — critical sections must propagate `Abort`.
    pub fn attempt<R>(
        &mut self,
        body: impl FnOnce(&mut Strand) -> TxResult<R>,
    ) -> Result<R, AbortStatus> {
        self.begin();
        match body(self) {
            Ok(v) => {
                assert!(
                    self.txn.is_some(),
                    "critical section swallowed an abort instead of propagating it"
                );
                self.commit().map(|()| v)
            }
            Err(Abort) => {
                debug_assert!(self.txn.is_none(), "Err(Abort) without unwinding");
                Err(self.last_abort)
            }
        }
    }

    fn unwind(&mut self, status: AbortStatus) {
        let txn = self.txn.take().expect("unwind without a transaction");
        self.mem.end_epoch(self.tid);
        for &l in txn.read_lines.as_slice() {
            self.mem.clear_reader(LineId(l), self.tid);
        }
        for &l in txn.write_lines.as_slice() {
            self.mem.clear_writer(LineId(l), self.tid);
        }
        self.stash(txn);
        self.stats.count_abort(status.reason);
        let cause = self.classify_abort(&status);
        self.counters.causes.record(cause);
        if let Some(rec) = self.cause_slots.as_mut() {
            rec.record(self.sim.now(), cause);
        }
        if let Some(rec) = self.conflict_lines.as_mut() {
            if let Some(line) = status.conflict_line {
                rec.record(line);
            }
        }
        self.trace_event(TraceEvent::TxnAbort(cause));
        self.san(SanAccess::TxnAbort { cause });
        self.last_abort = status;
        self.sim.advance(self.cfg.cost.txn_abort);
    }

    /// Map a raw abort status onto the telemetry taxonomy. The only
    /// refinement over [`crate::AbortReason`] is splitting conflicts by
    /// whether the dooming access hit a cache line holding a lock word
    /// (best-effort: a conflict with no recorded line counts as data).
    fn classify_abort(&self, status: &AbortStatus) -> AbortCause {
        match status.reason {
            crate::abort::AbortReason::Conflict => match status.conflict_line {
                Some(line) if self.mem.is_lock_line(line) => AbortCause::LockWordConflict,
                _ => AbortCause::DataConflict,
            },
            crate::abort::AbortReason::Capacity => AbortCause::Capacity,
            crate::abort::AbortReason::Explicit => AbortCause::Explicit,
            crate::abort::AbortReason::Spurious => AbortCause::FaultInjected,
            crate::abort::AbortReason::HleRestore => AbortCause::HleRestore,
            crate::abort::AbortReason::DangerousInstruction => AbortCause::DangerousInstruction,
        }
    }

    /// Check doom flag and spurious-abort injection; unwinds on failure.
    fn health_check(&mut self) -> TxResult<()> {
        let Some(txn) = self.txn.as_mut() else { return Ok(()) };
        if self.mem.is_doomed(self.tid, txn.epoch) {
            let status = match self.mem.doom_line(self.tid) {
                Some(line) => AbortStatus::conflict_at(line),
                None => AbortStatus::conflict(),
            };
            self.unwind(status);
            return Err(Abort);
        }
        if let Some(fuse) = txn.spurious_fuse.as_mut() {
            *fuse -= 1;
            if *fuse == 0 {
                self.unwind(AbortStatus::spurious());
                return Err(Abort);
            }
        }
        // Injected abort storm: inside its window, transactional accesses
        // abort spuriously at the configured rate. The draw only happens
        // while the window is open, so fault-free runs (and quiet phases
        // of faulted runs) consume no extra RNG state.
        if let Some(storm) = self.cfg.faults.storm {
            if storm.active(self.sim.now()) && self.htm_rng.below(1000) < u64::from(storm.permille)
            {
                self.unwind(AbortStatus::spurious());
                return Err(Abort);
            }
        }
        if self.cfg.spurious_access > 0.0 && self.htm_rng.chance(self.cfg.spurious_access) {
            self.unwind(AbortStatus::spurious());
            return Err(Abort);
        }
        Ok(())
    }

    /// The read-set line budget currently in force (the configured budget,
    /// shrunk while an injected capacity squeeze's window is open).
    fn read_budget(&self) -> usize {
        match self.cfg.faults.squeeze {
            Some(sq) if sq.active(self.sim.now()) => self.cfg.read_set_lines.min(sq.read_lines),
            _ => self.cfg.read_set_lines,
        }
    }

    /// The write-set line budget currently in force.
    fn write_budget(&self) -> usize {
        match self.cfg.faults.squeeze {
            Some(sq) if sq.active(self.sim.now()) => self.cfg.write_set_lines.min(sq.write_lines),
            _ => self.cfg.write_set_lines,
        }
    }

    /// Injected hot line: registering it conflicts with the configured
    /// probability, modelling a line that keeps bouncing between cores.
    /// Returns `true` when the access must abort.
    fn hot_line_conflict(&mut self, line: LineId) -> bool {
        match self.cfg.faults.hot {
            Some(hot) if hot.line == line.0 && hot.permille > 0 => {
                self.htm_rng.below(1000) < u64::from(hot.permille)
            }
            _ => false,
        }
    }

    // ------------------------------------------------------------------
    // memory accesses
    // ------------------------------------------------------------------

    /// Register `line` in the read set (requestor wins: dooms speculative
    /// writers). Unwinds with a capacity abort when the read set is full.
    ///
    /// One [`LineSet::probe`] serves both the membership test and the
    /// insert position (previously `contains` + `insert` hashed the line
    /// twice); the budget — a config constant per attempt, unless a
    /// capacity-squeeze fault is configured, whose window must be sampled
    /// at access time — is only resolved on first touch.
    fn track_read(&mut self, line: LineId) -> TxResult<()> {
        let txn = self.txn.as_ref().expect("track_read outside txn");
        let Err(pos) = txn.read_lines.probe(line.0) else { return Ok(()) };
        if txn.read_lines.len() >= self.read_budget() {
            self.unwind(AbortStatus::capacity());
            return Err(Abort);
        }
        if self.hot_line_conflict(line) {
            self.unwind(AbortStatus::conflict_at(line.0));
            return Err(Abort);
        }
        self.txn.as_mut().expect("in txn").read_lines.insert_at(pos, line.0);
        self.mem.set_reader(line, self.tid);
        let writers = self.mem.writers_of(line);
        self.mem.doom_bitmap(writers, self.tid, line);
        Ok(())
    }

    /// Register `line` in the write set (dooming peer readers *and*
    /// writers). Unwinds with a capacity abort when the write set is full.
    /// Structured like [`Strand::track_read`].
    fn track_write(&mut self, line: LineId) -> TxResult<()> {
        let txn = self.txn.as_ref().expect("track_write outside txn");
        // Dangerous-instruction detection (arXiv 1407.6968): a lazily
        // subscribed transaction writing a lock-marked line is a zombie
        // wild store — no legitimate lazy critical section ever stores to
        // lock metadata non-elided. Screened before the set probe so a
        // re-write of an already tracked line is caught too.
        if self.cfg.dangerous_abort && txn.lazy_subscribed && self.mem.is_lock_line(line.0) {
            self.unwind(AbortStatus::dangerous(line.0));
            return Err(Abort);
        }
        let Err(pos) = txn.write_lines.probe(line.0) else { return Ok(()) };
        if txn.write_lines.len() >= self.write_budget() {
            self.unwind(AbortStatus::capacity());
            return Err(Abort);
        }
        if self.hot_line_conflict(line) {
            self.unwind(AbortStatus::conflict_at(line.0));
            return Err(Abort);
        }
        self.txn.as_mut().expect("in txn").write_lines.insert_at(pos, line.0);
        self.mem.set_writer(line, self.tid);
        let peers = self.mem.readers_of(line) | self.mem.writers_of(line);
        self.mem.doom_bitmap(peers, self.tid, line);
        Ok(())
    }

    /// Load a word.
    ///
    /// # Errors
    ///
    /// `Err(Abort)` if the enclosing transaction aborted (it has been
    /// unwound). Never fails outside a transaction.
    pub fn load(&mut self, var: VarId) -> TxResult<u64> {
        self.sim.advance(self.cfg.cost.load);
        if self.txn.is_some() {
            self.health_check()?;
            if let Some(v) = self.txn.as_ref().expect("in txn").wbuf.get(var) {
                return Ok(v);
            }
            let line = self.mem.line_of(var);
            self.track_read(line)?;
            // Every transactional raw load is footprint-relevant, not just
            // the first touch: a re-read of a tracked line is still
            // order-sensitive against peer writes (zombie reads).
            self.sim.note_access(line.0, false);
            let v = self.mem.raw_load(var);
            // Re-check after reading so a value published concurrently
            // with our registration is never returned to a live
            // transaction (keeps undoomed transactions opaque).
            self.health_check()?;
            self.san(SanAccess::Read { var, value: v, txn: true });
            Ok(v)
        } else {
            let v = self.mem.raw_load(var);
            // A non-transactional read of a line in a peer's speculative
            // write set aborts that peer (requestor wins).
            let line = self.mem.line_of(var);
            let writers = self.mem.writers_of(line);
            if writers != 0 {
                self.mem.doom_bitmap(writers, self.tid, line);
            }
            self.sim.note_access(line.0, false);
            self.san(SanAccess::Read { var, value: v, txn: false });
            Ok(v)
        }
    }

    /// Store a word.
    ///
    /// # Errors
    ///
    /// `Err(Abort)` if the enclosing transaction aborted. Never fails
    /// outside a transaction.
    pub fn store(&mut self, var: VarId, value: u64) -> TxResult<()> {
        self.sim.advance(self.cfg.cost.store);
        if self.txn.is_some() {
            self.health_check()?;
            let elided = self.txn.as_ref().expect("in txn").is_elided(var);
            if !elided {
                let line = self.mem.line_of(var);
                self.track_write(line)?;
                // Elided stores, by contrast, are purely local illusions:
                // noting them would manufacture false dependences between
                // concurrent eliders of the same lock.
                self.sim.note_access(line.0, true);
            }
            self.txn.as_mut().expect("in txn").wbuf.insert(var, value);
            Ok(())
        } else {
            let _guard = self.mem.engine_lock();
            self.mem.raw_store(var, value);
            let line = self.mem.line_of(var);
            let peers = self.mem.readers_of(line) | self.mem.writers_of(line);
            self.mem.doom_bitmap(peers, self.tid, line);
            self.sim.note_access(line.0, true);
            self.san(SanAccess::Write { var, value, txn: false });
            Ok(())
        }
    }

    /// Generic atomic read-modify-write; returns the prior value.
    fn rmw(&mut self, var: VarId, f: impl FnOnce(u64) -> u64) -> TxResult<u64> {
        self.sim.advance(self.cfg.cost.rmw);
        if self.txn.is_some() {
            self.health_check()?;
            let (elided, buffered) = {
                let txn = self.txn.as_ref().expect("in txn");
                (txn.is_elided(var), txn.wbuf.get(var))
            };
            let old = match buffered {
                Some(v) => v,
                None => {
                    let line = self.mem.line_of(var);
                    self.track_read(line)?;
                    self.sim.note_access(line.0, false);
                    let v = self.mem.raw_load(var);
                    self.health_check()?;
                    self.san(SanAccess::Read { var, value: v, txn: true });
                    v
                }
            };
            if !elided {
                let line = self.mem.line_of(var);
                self.track_write(line)?;
                self.sim.note_access(line.0, true);
            }
            self.txn.as_mut().expect("in txn").wbuf.insert(var, f(old));
            Ok(old)
        } else {
            let _guard = self.mem.engine_lock();
            let old = self.mem.raw_load(var);
            let new = f(old);
            self.mem.raw_store(var, new);
            let line = self.mem.line_of(var);
            let peers = self.mem.readers_of(line) | self.mem.writers_of(line);
            self.mem.doom_bitmap(peers, self.tid, line);
            self.sim.note_access(line.0, true);
            self.san(SanAccess::Read { var, value: old, txn: false });
            self.san(SanAccess::Write { var, value: new, txn: false });
            Ok(old)
        }
    }

    /// Compare-and-swap; returns the observed prior value (success iff it
    /// equals `expected`).
    ///
    /// # Errors
    ///
    /// `Err(Abort)` if the enclosing transaction aborted.
    pub fn cas(&mut self, var: VarId, expected: u64, new: u64) -> TxResult<u64> {
        self.rmw(var, |old| if old == expected { new } else { old })
    }

    /// Atomic swap; returns the prior value.
    ///
    /// # Errors
    ///
    /// `Err(Abort)` if the enclosing transaction aborted.
    pub fn swap(&mut self, var: VarId, new: u64) -> TxResult<u64> {
        self.rmw(var, |_| new)
    }

    /// Atomic fetch-add (wrapping); returns the prior value.
    ///
    /// # Errors
    ///
    /// `Err(Abort)` if the enclosing transaction aborted.
    pub fn fetch_add(&mut self, var: VarId, delta: u64) -> TxResult<u64> {
        self.rmw(var, |old| old.wrapping_add(delta))
    }

    /// An elided (XACQUIRE) read-modify-write: the line enters the *read*
    /// set only, the new value is a thread-local illusion, and commit will
    /// verify the variable was restored to the value observed here.
    /// Returns the observed (pre-illusion) value.
    ///
    /// This is how a lock is "taken without taking it": concurrent elided
    /// acquisitions of the same lock do not conflict, while any real write
    /// to the lock dooms every eliding transaction — the root cause of the
    /// lemming effect.
    ///
    /// # Errors
    ///
    /// `Err(Abort)` if the enclosing transaction aborted.
    ///
    /// # Panics
    ///
    /// Panics outside a transaction: the scheme must `begin()` first (our
    /// simulated `XACQUIRE` does not itself start the transaction).
    pub fn elide_rmw(&mut self, var: VarId, f: impl FnOnce(u64) -> u64) -> TxResult<u64> {
        assert!(self.txn.is_some(), "elide_rmw outside a transaction");
        self.sim.advance(self.cfg.cost.rmw);
        self.health_check()?;
        let buffered = self.txn.as_ref().expect("in txn").wbuf.get(var);
        let old = match buffered {
            Some(v) => v,
            None => {
                let line = self.mem.line_of(var);
                self.track_read(line)?;
                // Read-set only: the elided "write" is a local illusion,
                // so the model-checker footprint is a plain read.
                self.sim.note_access(line.0, false);
                let v = self.mem.raw_load(var);
                self.health_check()?;
                self.san(SanAccess::Read { var, value: v, txn: true });
                v
            }
        };
        let txn = self.txn.as_mut().expect("in txn");
        if !txn.is_elided(var) {
            txn.elided.push((var, old));
        }
        txn.wbuf.insert(var, f(old));
        Ok(old)
    }

    /// Charge `units` of pure compute.
    ///
    /// # Errors
    ///
    /// `Err(Abort)` if the enclosing transaction was doomed meanwhile.
    pub fn work(&mut self, units: u64) -> TxResult<()> {
        self.sim.advance(units.saturating_mul(self.cfg.cost.work_unit));
        self.health_check()
    }

    /// Charge one busy-wait (PAUSE) iteration.
    ///
    /// # Errors
    ///
    /// `Err(Abort)` if the enclosing transaction was doomed meanwhile.
    pub fn spin(&mut self) -> TxResult<()> {
        self.sim.advance(self.cfg.cost.spin);
        self.health_check()
    }

    /// Busy-wait until `cond` holds over the given variable's value.
    ///
    /// Outside a transaction this loops indefinitely. Inside a transaction
    /// the wait is bounded: after `max_txn_spins` iterations the
    /// transaction aborts itself with [`codes::SPIN_EXPIRED`], modelling
    /// the timer/interrupt aborts that terminate transactions stuck
    /// waiting on real hardware.
    ///
    /// # Errors
    ///
    /// `Err(Abort)` if the enclosing transaction aborts (conflict or spin
    /// expiry).
    pub fn spin_until(
        &mut self,
        var: VarId,
        max_txn_spins: u32,
        cond: impl Fn(u64) -> bool,
    ) -> TxResult<()> {
        let mut iters = 0u32;
        loop {
            let v = self.load(var)?;
            if cond(v) {
                return Ok(());
            }
            self.spin()?;
            if self.txn.is_some() {
                iters += 1;
                if iters >= max_txn_spins {
                    return Err(self.xabort(codes::SPIN_EXPIRED, true));
                }
            }
        }
    }
}
