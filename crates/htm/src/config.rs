//! Configuration of the simulated HTM.

use crate::fault::HtmFaults;
use elision_sim::CostModel;
use std::fmt;

/// A rejected [`HtmConfig`]: some probability or permille knob is out of
/// its domain. Out-of-range values previously slipped through silently —
/// a probability above 1.0 (or a permille above 1000) just saturates the
/// abort rate, which reads like a legitimate "always aborts" measurement
/// instead of the configuration bug it is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HtmConfigError {
    /// A probability knob is outside `[0, 1]` (or NaN).
    Probability {
        /// Which knob (e.g. `"spurious_begin"`).
        knob: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A permille knob exceeds 1000.
    Permille {
        /// Which knob (e.g. `"faults.storm.permille"`).
        knob: &'static str,
        /// The offending value.
        value: u32,
    },
}

impl fmt::Display for HtmConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HtmConfigError::Probability { knob, value } => {
                write!(f, "{knob} = {value} is not a probability in [0, 1]")
            }
            HtmConfigError::Permille { knob, value } => {
                write!(f, "{knob} = {value} exceeds 1000 permille")
            }
        }
    }
}

impl std::error::Error for HtmConfigError {}

fn check_probability(knob: &'static str, value: f64) -> Result<(), HtmConfigError> {
    // `!(..)` so NaN is rejected too.
    if !(0.0..=1.0).contains(&value) {
        return Err(HtmConfigError::Probability { knob, value });
    }
    Ok(())
}

fn check_permille(knob: &'static str, value: u32) -> Result<(), HtmConfigError> {
    if value > 1000 {
        return Err(HtmConfigError::Permille { knob, value });
    }
    Ok(())
}

/// Tunables of the simulated transactional memory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HtmConfig {
    /// Maximum number of distinct cache lines a transaction may read
    /// (models the L1/L2-backed read-set tracking capacity).
    pub read_set_lines: usize,
    /// Maximum number of distinct cache lines a transaction may write
    /// (models L1 write buffering; Haswell: 32 KiB / 64 B = 512 lines).
    pub write_set_lines: usize,
    /// Probability that a freshly begun transaction is fated to abort
    /// spuriously after a few accesses (paper §3.1: real TSX transactions
    /// abort even in conflict-free workloads).
    pub spurious_begin: f64,
    /// Per-access probability of an immediate spurious abort.
    pub spurious_access: f64,
    /// Cycle costs for simulated events.
    pub cost: CostModel,
    /// Injected HTM-level faults (storms, squeezes, hot lines). The
    /// default injects nothing; see [`HtmFaults`].
    pub faults: HtmFaults,
    /// Hardware dangerous-instruction detection (arXiv 1407.6968): in a
    /// transaction that declared lazy subscription, a non-elided
    /// transactional store to a lock-marked line aborts at the offending
    /// access instead of entering the write buffer. Off by default —
    /// stock Haswell has no such extension, which is exactly why lazy
    /// subscription is unsafe on it.
    pub dangerous_abort: bool,
}

impl HtmConfig {
    /// The default Haswell-flavoured configuration, including a small
    /// spurious-abort rate.
    pub fn haswell() -> Self {
        HtmConfig {
            read_set_lines: 2048,
            write_set_lines: 512,
            spurious_begin: 0.002,
            spurious_access: 0.00002,
            cost: CostModel::haswell(),
            faults: HtmFaults::none(),
            dangerous_abort: false,
        }
    }

    /// A configuration with no spurious aborts; combined with a
    /// zero-window scheduler this makes runs fully deterministic.
    pub fn deterministic() -> Self {
        HtmConfig { spurious_begin: 0.0, spurious_access: 0.0, ..Self::haswell() }
    }

    /// Override the spurious-abort rates.
    pub fn with_spurious(mut self, per_begin: f64, per_access: f64) -> Self {
        self.spurious_begin = per_begin;
        self.spurious_access = per_access;
        self
    }

    /// Override the capacity limits (in cache lines).
    pub fn with_capacity(mut self, read_lines: usize, write_lines: usize) -> Self {
        self.read_set_lines = read_lines;
        self.write_set_lines = write_lines;
        self
    }

    /// Override the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Attach HTM-level fault injection (see [`HtmFaults`]).
    pub fn with_faults(mut self, faults: HtmFaults) -> Self {
        self.faults = faults;
        self
    }

    /// Enable or disable hardware dangerous-instruction detection.
    pub fn with_dangerous_abort(mut self, enabled: bool) -> Self {
        self.dangerous_abort = enabled;
        self
    }

    /// Check every probability/permille knob against its domain. The
    /// harness entry points run this before spawning simulated threads,
    /// so a malformed configuration fails fast instead of silently
    /// saturating the abort rate mid-run.
    ///
    /// # Errors
    ///
    /// The first out-of-domain knob found (see [`HtmConfigError`]).
    pub fn validate(&self) -> Result<(), HtmConfigError> {
        check_probability("spurious_begin", self.spurious_begin)?;
        check_probability("spurious_access", self.spurious_access)?;
        if let Some(storm) = self.faults.storm {
            check_permille("faults.storm.permille", storm.permille)?;
        }
        if let Some(hot) = self.faults.hot {
            check_permille("faults.hot.permille", hot.permille)?;
        }
        Ok(())
    }
}

impl Default for HtmConfig {
    fn default() -> Self {
        HtmConfig::haswell()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_disables_spurious() {
        let c = HtmConfig::deterministic();
        assert_eq!(c.spurious_begin, 0.0);
        assert_eq!(c.spurious_access, 0.0);
    }

    #[test]
    fn builders_override() {
        let c = HtmConfig::haswell().with_capacity(8, 4).with_spurious(0.5, 0.1);
        assert_eq!(c.read_set_lines, 8);
        assert_eq!(c.write_set_lines, 4);
        assert_eq!(c.spurious_begin, 0.5);
    }

    #[test]
    fn presets_validate() {
        assert_eq!(HtmConfig::haswell().validate(), Ok(()));
        assert_eq!(HtmConfig::deterministic().validate(), Ok(()));
    }

    #[test]
    fn out_of_range_probabilities_rejected() {
        let e = HtmConfig::haswell().with_spurious(1.5, 0.0).validate();
        assert_eq!(e, Err(HtmConfigError::Probability { knob: "spurious_begin", value: 1.5 }));
        let e = HtmConfig::haswell().with_spurious(0.0, -0.1).validate();
        assert_eq!(e, Err(HtmConfigError::Probability { knob: "spurious_access", value: -0.1 }));
        let e = HtmConfig::haswell().with_spurious(f64::NAN, 0.0).validate();
        assert!(matches!(e, Err(HtmConfigError::Probability { knob: "spurious_begin", .. })));
        // Boundary values are fine.
        assert_eq!(HtmConfig::haswell().with_spurious(1.0, 0.0).validate(), Ok(()));
    }

    #[test]
    fn oversized_permille_rejected() {
        let c = HtmConfig::deterministic().with_faults(HtmFaults::none().with_storm(100, 10, 1001));
        assert_eq!(
            c.validate(),
            Err(HtmConfigError::Permille { knob: "faults.storm.permille", value: 1001 })
        );
        let c = HtmConfig::deterministic().with_faults(HtmFaults::none().with_hot_line(0, 2000));
        assert_eq!(
            c.validate(),
            Err(HtmConfigError::Permille { knob: "faults.hot.permille", value: 2000 })
        );
        // 1000 permille (always) is the inclusive maximum.
        let c = HtmConfig::deterministic().with_faults(HtmFaults::none().with_storm(100, 10, 1000));
        assert_eq!(c.validate(), Ok(()));
    }
}
