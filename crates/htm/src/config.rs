//! Configuration of the simulated HTM.

use crate::fault::HtmFaults;
use elision_sim::CostModel;

/// Tunables of the simulated transactional memory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HtmConfig {
    /// Maximum number of distinct cache lines a transaction may read
    /// (models the L1/L2-backed read-set tracking capacity).
    pub read_set_lines: usize,
    /// Maximum number of distinct cache lines a transaction may write
    /// (models L1 write buffering; Haswell: 32 KiB / 64 B = 512 lines).
    pub write_set_lines: usize,
    /// Probability that a freshly begun transaction is fated to abort
    /// spuriously after a few accesses (paper §3.1: real TSX transactions
    /// abort even in conflict-free workloads).
    pub spurious_begin: f64,
    /// Per-access probability of an immediate spurious abort.
    pub spurious_access: f64,
    /// Cycle costs for simulated events.
    pub cost: CostModel,
    /// Injected HTM-level faults (storms, squeezes, hot lines). The
    /// default injects nothing; see [`HtmFaults`].
    pub faults: HtmFaults,
}

impl HtmConfig {
    /// The default Haswell-flavoured configuration, including a small
    /// spurious-abort rate.
    pub fn haswell() -> Self {
        HtmConfig {
            read_set_lines: 2048,
            write_set_lines: 512,
            spurious_begin: 0.002,
            spurious_access: 0.00002,
            cost: CostModel::haswell(),
            faults: HtmFaults::none(),
        }
    }

    /// A configuration with no spurious aborts; combined with a
    /// zero-window scheduler this makes runs fully deterministic.
    pub fn deterministic() -> Self {
        HtmConfig { spurious_begin: 0.0, spurious_access: 0.0, ..Self::haswell() }
    }

    /// Override the spurious-abort rates.
    pub fn with_spurious(mut self, per_begin: f64, per_access: f64) -> Self {
        self.spurious_begin = per_begin;
        self.spurious_access = per_access;
        self
    }

    /// Override the capacity limits (in cache lines).
    pub fn with_capacity(mut self, read_lines: usize, write_lines: usize) -> Self {
        self.read_set_lines = read_lines;
        self.write_set_lines = write_lines;
        self
    }

    /// Override the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Attach HTM-level fault injection (see [`HtmFaults`]).
    pub fn with_faults(mut self, faults: HtmFaults) -> Self {
        self.faults = faults;
        self
    }
}

impl Default for HtmConfig {
    fn default() -> Self {
        HtmConfig::haswell()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_disables_spurious() {
        let c = HtmConfig::deterministic();
        assert_eq!(c.spurious_begin, 0.0);
        assert_eq!(c.spurious_access, 0.0);
    }

    #[test]
    fn builders_override() {
        let c = HtmConfig::haswell().with_capacity(8, 4).with_spurious(0.5, 0.1);
        assert_eq!(c.read_set_lines, 8);
        assert_eq!(c.write_set_lines, 4);
        assert_eq!(c.spurious_begin, 0.5);
    }
}
