//! Sanitizer instrumentation: a global, totally ordered log of every
//! simulated memory access and transaction lifecycle event.
//!
//! When a [`crate::Memory`] is built with
//! [`crate::MemoryBuilder::enable_sanitizer`], every `Strand` access —
//! speculative loads, commit-time publications, non-transactional
//! reads/writes/RMWs — appends a [`SanEvent`] to the memory's [`SanLog`].
//! The `elision-analysis` crate post-processes this log into
//! happens-before race detection and opacity/sandboxing checks.
//!
//! Soundness of the log's *order* relies on the simulator's strict
//! scheduling window (window 0): everything a thread executes between two
//! `SimHandle::advance` calls is atomic with respect to the simulated
//! interleaving, and all commit publications and non-transactional
//! writes additionally serialize on the memory's engine mutex. Under
//! those two facts the log's append order is the execution order, so the
//! event's index in the log is its global sequence number. Sanitized
//! runs must therefore use window 0; relaxed windows give a log whose
//! order is only approximate.
//!
//! Recording an event never advances a logical clock and never draws
//! from an RNG stream, so enabling the sanitizer cannot perturb the
//! schedule: a sanitized run executes the exact interleaving of the
//! corresponding unsanitized run.

use crate::memory::VarId;
use elision_sim::AbortCause;
use parking_lot::Mutex;

/// What happened, from the sanitizer's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SanAccess {
    /// A value was read from simulated memory. `txn` distinguishes a
    /// speculative (transactional) read from a plain one. Speculative
    /// reads served from the write buffer are *not* logged (they observe
    /// the transaction's own tentative state, which is private).
    Read {
        /// The word read.
        var: VarId,
        /// The value observed.
        value: u64,
        /// Whether the read happened inside a live transaction.
        txn: bool,
    },
    /// A value became globally visible in simulated memory. For
    /// transactions this happens at commit-time publication (one event
    /// per buffered write, immediately before [`SanAccess::TxnCommit`]);
    /// speculative buffering itself is invisible to peers and not logged.
    Write {
        /// The word written.
        var: VarId,
        /// The value published.
        value: u64,
        /// Whether the write is a transactional commit publication.
        txn: bool,
    },
    /// A transaction began (`XBEGIN`).
    TxnBegin,
    /// A transaction committed (`XEND`); its publications directly
    /// precede this event in the log.
    TxnCommit,
    /// A transaction aborted, with the telemetry-taxonomy cause.
    TxnAbort {
        /// Why the transaction aborted.
        cause: AbortCause,
    },
    /// A lock was acquired non-speculatively (reported by the lock
    /// implementation via [`crate::Strand::note_lock_acquire`]).
    LockAcquire {
        /// The lock's primary word (its identity).
        word: VarId,
    },
    /// A lock was released non-speculatively.
    LockRelease {
        /// The lock's primary word.
        word: VarId,
    },
    /// A protocol marker (e.g. the elision schemes' `subscribe` marker
    /// recorded when a transaction subscribes to the main lock).
    Marker {
        /// Marker label.
        label: &'static str,
        /// Marker value (typically a lock word index).
        value: u64,
    },
}

/// One sanitizer log entry. The entry's position in the log is its
/// global sequence number (see the module docs for why that is sound).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SanEvent {
    /// The simulated thread that performed the access.
    pub tid: usize,
    /// The thread's logical clock when the access was recorded.
    pub time: u64,
    /// The access itself.
    pub access: SanAccess,
}

/// The shared sanitizer event log, plus the initial memory snapshot the
/// opacity checker replays state from.
#[derive(Debug)]
pub struct SanLog {
    events: Mutex<Vec<SanEvent>>,
    initial: Vec<u64>,
}

impl SanLog {
    pub(crate) fn new(initial: Vec<u64>) -> Self {
        SanLog { events: Mutex::new(Vec::new()), initial }
    }

    pub(crate) fn push(&self, tid: usize, time: u64, access: SanAccess) {
        self.events.lock().push(SanEvent { tid, time, access });
    }

    /// A copy of the log, in global execution order.
    pub fn snapshot(&self) -> Vec<SanEvent> {
        self.events.lock().clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// The word values at freeze time, indexed by raw [`VarId`] index.
    /// Together with the logged [`SanAccess::Write`] events this fully
    /// determines the globally visible memory state at any log position.
    pub fn initial_values(&self) -> &[u64] {
        &self.initial
    }
}
