//! Capacity-bounded transaction-set containers.
//!
//! Real HTMs track read/write sets in fixed hardware structures (L1
//! lines, a bounded store buffer), so a simulated transaction's sets are
//! *small* — bounded by `read_set_lines`/`write_set_lines`, typically a
//! handful of entries for tree operations. At that size a sorted inline
//! vector beats a `HashSet`/`HashMap` on every axis that matters here:
//! one binary search per probe instead of hashing, no per-attempt heap
//! churn (the backing storage is reused across attempts via the strand's
//! scratch arena), and — crucially for artifact determinism — iteration
//! is always in ascending order, which the commit path previously had to
//! recreate by collecting and sorting the hash containers.
//!
//! Both containers are pinned to the semantics of the `HashSet<u32>` /
//! `HashMap<VarId, u64>` they replaced by differential proptests below.

use crate::memory::VarId;

/// A transaction's read- or write-set: a sorted vector of line ids.
///
/// Capacity is allocated once (at the configured set budget) and reused;
/// the strand's budget check keeps `len()` within it, so inserts never
/// reallocate on the hot path.
#[derive(Debug)]
pub(crate) struct LineSet {
    lines: Vec<u32>,
}

impl LineSet {
    pub fn with_capacity(cap: usize) -> Self {
        LineSet { lines: Vec::with_capacity(cap) }
    }

    /// One binary search serving both the membership test and the insert:
    /// `Ok(idx)` when `line` is already tracked, `Err(pos)` with the
    /// insertion position otherwise (hand `pos` to [`LineSet::insert_at`]
    /// after the budget/fault checks pass).
    pub fn probe(&self, line: u32) -> Result<usize, usize> {
        self.lines.binary_search(&line)
    }

    /// Insert `line` at the position a [`LineSet::probe`] miss returned.
    pub fn insert_at(&mut self, pos: usize, line: u32) {
        debug_assert!(self.probe(line) == Err(pos), "stale insertion position");
        self.lines.insert(pos, line);
    }

    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// The tracked lines in ascending order.
    pub fn as_slice(&self) -> &[u32] {
        &self.lines
    }

    /// Drop all entries, keeping the allocation for the next attempt.
    pub fn clear(&mut self) {
        self.lines.clear();
    }
}

/// The speculative write buffer: `(var, value)` pairs sorted by variable
/// index, so commit publishes in `VarId` order by plain iteration.
#[derive(Debug, Default)]
pub(crate) struct WriteBuf {
    entries: Vec<(VarId, u64)>,
}

impl WriteBuf {
    fn probe(&self, var: VarId) -> Result<usize, usize> {
        self.entries.binary_search_by_key(&var.index(), |&(v, _)| v.index())
    }

    pub fn get(&self, var: VarId) -> Option<u64> {
        self.probe(var).ok().map(|i| self.entries[i].1)
    }

    /// Insert or overwrite the buffered value for `var`.
    pub fn insert(&mut self, var: VarId, value: u64) {
        match self.probe(var) {
            Ok(i) => self.entries[i].1 = value,
            Err(i) => self.entries.insert(i, (var, value)),
        }
    }

    /// Drop the entry for `var` (used to discard elided illusions before
    /// publication), returning the removed value.
    pub fn remove(&mut self, var: VarId) -> Option<u64> {
        self.probe(var).ok().map(|i| self.entries.remove(i).1)
    }

    /// Buffered writes in ascending `VarId` order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, u64)> + '_ {
        self.entries.iter().copied()
    }

    /// Drop all entries, keeping the allocation for the next attempt.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::{HashMap, HashSet};

    // Differential proptests: random operation sequences against the
    // HashSet/HashMap models the containers replaced. Line ids are drawn
    // from a small domain so sequences collide often.

    proptest! {
        #[test]
        fn line_set_matches_hash_set_model(ops in proptest::collection::vec(0u32..32, 0..64)) {
            let mut ls = LineSet::with_capacity(8);
            let mut model: HashSet<u32> = HashSet::new();
            for line in ops {
                match ls.probe(line) {
                    Ok(_) => prop_assert!(model.contains(&line)),
                    Err(pos) => {
                        prop_assert!(!model.contains(&line));
                        ls.insert_at(pos, line);
                        model.insert(line);
                    }
                }
                prop_assert_eq!(ls.len(), model.len());
            }
            // Iteration is the model's contents in ascending order.
            let mut want: Vec<u32> = model.into_iter().collect();
            want.sort_unstable();
            prop_assert_eq!(ls.as_slice(), want.as_slice());
            ls.clear();
            prop_assert_eq!(ls.len(), 0);
        }

        #[test]
        fn write_buf_matches_hash_map_model(
            ops in proptest::collection::vec((0u32..24, 0u64..1000, any::<bool>()), 0..64)
        ) {
            let mut wb = WriteBuf::default();
            let mut model: HashMap<VarId, u64> = HashMap::new();
            for (raw, val, is_remove) in ops {
                let var = VarId(raw);
                if is_remove {
                    prop_assert_eq!(wb.remove(var), model.remove(&var));
                } else {
                    prop_assert_eq!(wb.get(var), model.get(&var).copied());
                    wb.insert(var, val);
                    model.insert(var, val);
                }
                prop_assert_eq!(wb.get(var), model.get(&var).copied());
            }
            // Iteration is the model's entries in ascending VarId order —
            // exactly what commit's publication loop previously obtained
            // by collecting the HashMap and sorting.
            let mut want: Vec<(VarId, u64)> = model.into_iter().collect();
            want.sort_unstable_by_key(|&(var, _)| var.index());
            let got: Vec<(VarId, u64)> = wb.iter().collect();
            prop_assert_eq!(got, want);
        }
    }
}
