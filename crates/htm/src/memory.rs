//! Simulated shared memory: words grouped into cache lines, with per-line
//! reader/writer bitmaps driving the requestor-wins conflict engine.
//!
//! All shared state that simulated threads may race on lives here as
//! 64-bit words addressed by [`VarId`]. Words are grouped into cache
//! lines ([`Memory::words_per_line`] words each); conflict detection is
//! line-granular, exactly like the coherency-protocol-based detection of
//! real HTMs — including false sharing between unrelated words on one
//! line.
//!
//! Memory is built single-threaded through a [`MemoryBuilder`] and then
//! frozen; the word *set* is immutable during a run while the word
//! *values* are updated through `Strand` accesses. Dynamic structures
//! (tree nodes, queue links) manage free-lists over pre-allocated regions.

use crate::sanitize::SanLog;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifies one 64-bit word of simulated shared memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// Sentinel used by pointer-like fields ("null").
    pub const NULL: VarId = VarId(u32::MAX);

    /// Encode this id as a word value (for storing links in memory).
    /// `NULL` maps to `u64::MAX`.
    pub fn to_word(self) -> u64 {
        if self == VarId::NULL {
            u64::MAX
        } else {
            self.0 as u64
        }
    }

    /// Decode a word value previously produced by [`VarId::to_word`].
    pub fn from_word(w: u64) -> VarId {
        if w == u64::MAX {
            VarId::NULL
        } else {
            VarId(u32::try_from(w).expect("word does not encode a VarId"))
        }
    }

    /// The raw index (for arena arithmetic). `NULL` has index `u32::MAX`.
    pub fn index(self) -> u32 {
        self.0
    }

    /// Construct from a raw index produced by [`VarId::index`].
    pub fn from_index(i: u32) -> VarId {
        VarId(i)
    }
}

/// Identifies a cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineId(pub(crate) u32);

impl LineId {
    /// The raw line index (matches [`crate::AbortStatus::conflict_line`]).
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// What the hardware commit-time subscription extension (arXiv 1407.6968)
/// monitors: a descriptor, registered by the lock implementation via
/// [`crate::Strand::hw_subscribe`], that the commit stage evaluates
/// against *globally committed* state — never the transaction's own write
/// buffer — atomically with publication under the conflict engine's lock.
/// The three shapes cover every lock family in `elision-locks`: a
/// free-value word (TTAS state, MCS tail), a two-word equality (ticket
/// `next == owner`), and one level of indirection (CLH: the `locked` flag
/// of the node the tail points at).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HwSubscription {
    /// Free iff `mem[word] == free`.
    ValueIs {
        /// The monitored lock word.
        word: VarId,
        /// The value meaning "unlocked".
        free: u64,
    },
    /// Free iff `mem[a] == mem[b]`.
    WordsEqual {
        /// First monitored word (e.g. the ticket dispenser).
        a: VarId,
        /// Second monitored word (e.g. the now-serving counter).
        b: VarId,
    },
    /// Free iff `mem[table[mem[ptr]]] == free`; an out-of-range pointer
    /// value counts as "not free" (garbage can never pass the check).
    IndirectValueIs {
        /// The pointer word (e.g. the CLH tail, holding a node index).
        ptr: VarId,
        /// Node-index-to-word translation table.
        table: Vec<VarId>,
        /// The value of the resolved word meaning "unlocked".
        free: u64,
    },
}

#[derive(Debug)]
struct LineMeta {
    /// Bit `t` set: simulated thread `t` has this line in its read set.
    readers: AtomicU64,
    /// Bit `t` set: simulated thread `t` has this line in its write set.
    writers: AtomicU64,
}

impl LineMeta {
    fn new() -> Self {
        LineMeta { readers: AtomicU64::new(0), writers: AtomicU64::new(0) }
    }
}

/// Builder for [`Memory`]; allocation is only possible before freezing.
#[derive(Debug, Default)]
pub struct MemoryBuilder {
    values: Vec<u64>,
    words_per_line: usize,
    /// Words registered as lock words (lock constructors mark their
    /// allocations); frozen into the per-line lock map that lets the HTM
    /// classify conflict aborts as lock-word vs data conflicts.
    lock_words: Vec<VarId>,
    /// Whether the frozen memory carries a sanitizer event log.
    sanitize: bool,
    /// When set, [`MemoryBuilder::alloc_isolated`],
    /// [`MemoryBuilder::alloc_lock_word`] and
    /// [`MemoryBuilder::pad_to_line`] stop padding: "isolated" words land
    /// wherever the cursor is, co-resident with neighbouring data. The
    /// placement layer uses this to seed the classic HLE self-abort
    /// layout (lock word sharing a line with data) on purpose.
    pack_isolated: bool,
}

impl MemoryBuilder {
    /// Create a builder with the default line width of 8 words (64 bytes).
    pub fn new() -> Self {
        MemoryBuilder {
            values: Vec::new(),
            words_per_line: 8,
            lock_words: Vec::new(),
            sanitize: false,
            pack_isolated: false,
        }
    }

    /// Attach a sanitizer event log ([`SanLog`]) to the frozen memory:
    /// every strand access will be recorded for the analysis passes.
    /// Sanitized runs must use the strict scheduler window (window 0) so
    /// the log order equals the execution order.
    pub fn enable_sanitizer(&mut self) {
        self.sanitize = true;
    }

    /// Override the number of words per cache line.
    ///
    /// # Panics
    ///
    /// Panics if `wpl` is zero or if words were already allocated.
    pub fn words_per_line(mut self, wpl: usize) -> Self {
        assert!(wpl > 0, "a line must hold at least one word");
        assert!(self.values.is_empty(), "set words_per_line before allocating");
        self.words_per_line = wpl;
        self
    }

    /// Allocate one word initialized to `init`.
    pub fn alloc(&mut self, init: u64) -> VarId {
        let id = VarId(u32::try_from(self.values.len()).expect("memory too large"));
        self.values.push(init);
        id
    }

    /// Allocate `n` contiguous words, all initialized to `init`; returns
    /// the id of the first. Subsequent words are `first.index() + k`.
    pub fn alloc_array(&mut self, n: usize, init: u64) -> VarId {
        assert!(n > 0, "empty arrays have no id");
        let first = self.alloc(init);
        for _ in 1..n {
            self.alloc(init);
        }
        first
    }

    /// Disable (or re-enable) the padding that isolation-requesting
    /// allocations normally get. With packing on, lock words and
    /// "isolated" metadata land co-resident with adjacent data — the
    /// seeded-bad layout the static advisor must flag.
    pub fn set_pack_isolated(&mut self, pack: bool) {
        self.pack_isolated = pack;
    }

    /// Allocate one word on its *own* cache line (padding around it), so
    /// that no unrelated word ever false-shares with it. Used for locks.
    /// Under [`MemoryBuilder::set_pack_isolated`] the padding is skipped.
    pub fn alloc_isolated(&mut self, init: u64) -> VarId {
        self.pad_to_line();
        let id = self.alloc(init);
        self.pad_to_line();
        id
    }

    /// Register `var` as a lock word. Conflict aborts whose dooming
    /// access hit a line containing a lock word are classified as
    /// lock-word conflicts (the lemming-effect signature) by the
    /// abort-cause telemetry; every lock constructor marks the words it
    /// allocates.
    ///
    /// # Panics
    ///
    /// Panics if `var` was not allocated by this builder.
    pub fn mark_lock_word(&mut self, var: VarId) {
        assert!((var.0 as usize) < self.values.len(), "marking an unallocated word as a lock word");
        self.lock_words.push(var);
    }

    /// Allocate one isolated word (own cache line) already marked as a
    /// lock word — the common shape of a lock-state allocation.
    pub fn alloc_lock_word(&mut self, init: u64) -> VarId {
        let id = self.alloc_isolated(init);
        self.mark_lock_word(id);
        id
    }

    /// Pad the allocation cursor to the next line boundary, so the next
    /// allocation starts a fresh line. A no-op under
    /// [`MemoryBuilder::set_pack_isolated`].
    pub fn pad_to_line(&mut self) {
        if self.pack_isolated {
            return;
        }
        while !self.values.len().is_multiple_of(self.words_per_line) {
            self.values.push(0);
        }
    }

    /// Number of words allocated so far.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// The configured line width in words (the builder-side counterpart
    /// of [`Memory::words_per_line`]).
    pub fn line_width(&self) -> usize {
        self.words_per_line
    }

    /// The words registered as lock words so far (allocation order).
    pub fn registered_lock_words(&self) -> &[VarId] {
        &self.lock_words
    }

    /// Whether nothing has been allocated.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Freeze into an immutable-shape [`Memory`] usable by `threads`
    /// simulated threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or exceeds 64 (the conflict-bitmap
    /// width).
    pub fn freeze(self, threads: usize) -> Memory {
        assert!((1..=64).contains(&threads), "1..=64 simulated threads supported");
        let wpl = self.words_per_line;
        let n_lines = self.values.len().div_ceil(wpl).max(1);
        let mut lock_lines = vec![false; n_lines];
        for var in &self.lock_words {
            lock_lines[var.0 as usize / wpl] = true;
        }
        let san = if self.sanitize { Some(SanLog::new(self.values.clone())) } else { None };
        Memory {
            words: self.values.into_iter().map(AtomicU64::new).collect(),
            lines: (0..n_lines).map(|_| LineMeta::new()).collect(),
            lock_lines,
            dooms: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            doom_lines: (0..threads).map(|_| AtomicU64::new(u64::MAX)).collect(),
            epochs: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            engine: Mutex::new(()),
            words_per_line: wpl,
            line_shift: if wpl.is_power_of_two() { Some(wpl.trailing_zeros()) } else { None },
            san,
        }
    }
}

/// The frozen simulated memory plus the conflict engine's shared state.
#[derive(Debug)]
pub struct Memory {
    words: Vec<AtomicU64>,
    lines: Vec<LineMeta>,
    /// `lock_lines[l]`: line `l` contains at least one lock word.
    lock_lines: Vec<bool>,
    /// Per-thread doom word: `(epoch << 8) | reason_code`, meaningful only
    /// while it matches the victim's current (odd) epoch.
    dooms: Vec<AtomicU64>,
    /// Per-thread best-effort record of the line the dooming conflict
    /// touched (written just before the doom word; `u64::MAX` = unknown).
    doom_lines: Vec<AtomicU64>,
    /// Per-thread transaction epoch: odd while inside a transaction.
    epochs: Vec<AtomicU64>,
    /// Serializes commit publication and non-transactional writes/RMWs so
    /// a lock acquisition and a transaction commit are totally ordered.
    engine: Mutex<()>,
    words_per_line: usize,
    /// `log2(words_per_line)` when the width is a power of two (it is for
    /// every preset), turning the per-access `line_of` division into a
    /// shift on the hot path.
    line_shift: Option<u32>,
    /// The sanitizer event log, if enabled at build time.
    san: Option<SanLog>,
}

pub(crate) const REASON_CONFLICT: u64 = 1;

impl Memory {
    /// Number of words.
    pub fn words(&self) -> usize {
        self.words.len()
    }

    /// Number of cache lines.
    pub fn line_count(&self) -> usize {
        self.lines.len()
    }

    /// Words per cache line.
    pub fn words_per_line(&self) -> usize {
        self.words_per_line
    }

    /// Number of simulated threads this memory supports.
    pub fn threads(&self) -> usize {
        self.dooms.len()
    }

    /// The cache line containing `var`.
    pub fn line_of(&self, var: VarId) -> LineId {
        debug_assert!(var != VarId::NULL, "dereferencing NULL");
        match self.line_shift {
            Some(s) => LineId(var.0 >> s),
            None => LineId(var.0 / self.words_per_line as u32),
        }
    }

    /// Whether the raw line index holds a lock word (see
    /// [`MemoryBuilder::mark_lock_word`]). Out-of-range indices report
    /// `false`.
    pub fn is_lock_line(&self, line: u32) -> bool {
        self.lock_lines.get(line as usize).copied().unwrap_or(false)
    }

    /// Read a word without any simulation bookkeeping. For setup,
    /// validation and post-run assertions only — never call this from a
    /// simulated thread during a run.
    pub fn read_direct(&self, var: VarId) -> u64 {
        self.words[var.0 as usize].load(Ordering::SeqCst)
    }

    /// Write a word without any simulation bookkeeping (see
    /// [`Memory::read_direct`] for the usage restriction).
    pub fn write_direct(&self, var: VarId, value: u64) {
        self.words[var.0 as usize].store(value, Ordering::SeqCst);
    }

    // ---- conflict-engine internals (crate-visible for Strand) ----

    pub(crate) fn raw_load(&self, var: VarId) -> u64 {
        self.words[var.0 as usize].load(Ordering::SeqCst)
    }

    pub(crate) fn raw_store(&self, var: VarId, value: u64) {
        self.words[var.0 as usize].store(value, Ordering::SeqCst);
    }

    pub(crate) fn engine_lock(&self) -> parking_lot::MutexGuard<'_, ()> {
        self.engine.lock()
    }

    pub(crate) fn set_reader(&self, line: LineId, tid: usize) {
        self.lines[line.0 as usize].readers.fetch_or(1 << tid, Ordering::SeqCst);
    }

    pub(crate) fn set_writer(&self, line: LineId, tid: usize) {
        self.lines[line.0 as usize].writers.fetch_or(1 << tid, Ordering::SeqCst);
    }

    pub(crate) fn clear_reader(&self, line: LineId, tid: usize) {
        self.lines[line.0 as usize].readers.fetch_and(!(1 << tid), Ordering::SeqCst);
    }

    pub(crate) fn clear_writer(&self, line: LineId, tid: usize) {
        self.lines[line.0 as usize].writers.fetch_and(!(1 << tid), Ordering::SeqCst);
    }

    pub(crate) fn readers_of(&self, line: LineId) -> u64 {
        self.lines[line.0 as usize].readers.load(Ordering::SeqCst)
    }

    pub(crate) fn writers_of(&self, line: LineId) -> u64 {
        self.lines[line.0 as usize].writers.load(Ordering::SeqCst)
    }

    /// Doom every thread in `bitmap` except `except` (requestor wins),
    /// recording `line` as the conflict location.
    pub(crate) fn doom_bitmap(&self, bitmap: u64, except: usize, line: LineId) {
        let mut bits = bitmap & !(1u64 << except);
        while bits != 0 {
            let victim = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            self.doom_thread(victim, line);
        }
    }

    /// Mark `victim`'s current transaction (if any) as conflict-aborted at
    /// `line`. A store of `(epoch << 8) | reason` suffices: the victim
    /// only honours the doom while its epoch matches, so late dooms aimed
    /// at an already finished transaction are ignored. The conflict line
    /// is best-effort (a concurrent doom may overwrite it) — like the
    /// abort-address hints real hardware could provide.
    pub(crate) fn doom_thread(&self, victim: usize, line: LineId) {
        let e = self.epochs[victim].load(Ordering::SeqCst);
        if e & 1 == 1 {
            self.doom_lines[victim].store(line.0 as u64, Ordering::SeqCst);
            self.dooms[victim].store((e << 8) | REASON_CONFLICT, Ordering::SeqCst);
        }
    }

    /// The best-effort conflict location recorded with `tid`'s doom.
    pub(crate) fn doom_line(&self, tid: usize) -> Option<u32> {
        let v = self.doom_lines[tid].load(Ordering::SeqCst);
        u32::try_from(v).ok()
    }

    pub(crate) fn begin_epoch(&self, tid: usize) -> u64 {
        // 0 -> 1, 2 -> 3, ...: the new odd value marks "in transaction".
        let e = self.epochs[tid].load(Ordering::SeqCst) + 1;
        debug_assert!(e & 1 == 1, "begin inside a transaction");
        self.epochs[tid].store(e, Ordering::SeqCst);
        e
    }

    pub(crate) fn end_epoch(&self, tid: usize) {
        let e = self.epochs[tid].load(Ordering::SeqCst) + 1;
        debug_assert!(e & 1 == 0, "end outside a transaction");
        self.epochs[tid].store(e, Ordering::SeqCst);
    }

    /// Whether `tid`'s transaction at `epoch` has been doomed by a peer.
    pub(crate) fn is_doomed(&self, tid: usize, epoch: u64) -> bool {
        self.dooms[tid].load(Ordering::SeqCst) >> 8 == epoch
    }

    /// Evaluate a hardware subscription descriptor against committed
    /// state: `true` iff the monitored lock is free. The commit stage
    /// calls this while holding the engine lock, making the verdict
    /// atomic with publication; it deliberately bypasses any write
    /// buffer, so a zombie's wild store can never fool it.
    pub fn subscription_free(&self, sub: &HwSubscription) -> bool {
        match sub {
            HwSubscription::ValueIs { word, free } => self.raw_load(*word) == *free,
            HwSubscription::WordsEqual { a, b } => self.raw_load(*a) == self.raw_load(*b),
            HwSubscription::IndirectValueIs { ptr, table, free } => {
                let idx = self.raw_load(*ptr);
                match usize::try_from(idx).ok().and_then(|i| table.get(i)) {
                    Some(word) => self.raw_load(*word) == *free,
                    None => false,
                }
            }
        }
    }

    /// The cache lines a subscription descriptor's evaluation reads —
    /// the commit step's extra footprint for the model checker (the
    /// hardware check makes commit order-dependent on lock-word writes).
    pub fn subscription_lines(&self, sub: &HwSubscription) -> Vec<LineId> {
        match sub {
            HwSubscription::ValueIs { word, .. } => vec![self.line_of(*word)],
            HwSubscription::WordsEqual { a, b } => vec![self.line_of(*a), self.line_of(*b)],
            HwSubscription::IndirectValueIs { ptr, table, .. } => {
                let mut lines = vec![self.line_of(*ptr)];
                let idx = self.raw_load(*ptr);
                if let Some(word) = usize::try_from(idx).ok().and_then(|i| table.get(i)) {
                    lines.push(self.line_of(*word));
                }
                lines
            }
        }
    }

    /// The sanitizer event log, if [`MemoryBuilder::enable_sanitizer`]
    /// was called before freezing.
    pub fn san_log(&self) -> Option<&SanLog> {
        self.san.as_ref()
    }

    /// The cache lines whose reader/writer bitmaps are still set. After a
    /// quiescent point (no live transactions) this must be empty: every
    /// commit and abort clears its transaction's bits, so a leftover bit
    /// is a conflict-engine state leak. The sanitizer's post-run check
    /// reports each offending line.
    pub fn residual_lines(&self) -> Vec<LineId> {
        self.lines
            .iter()
            .enumerate()
            .filter(|(_, l)| {
                l.readers.load(Ordering::SeqCst) != 0 || l.writers.load(Ordering::SeqCst) != 0
            })
            .map(|(i, _)| LineId(i as u32))
            .collect()
    }

    /// Test-visible: true if any reader/writer bits remain set anywhere
    /// (see [`Memory::residual_lines`] for the diagnostic list).
    pub fn any_residual_bits(&self) -> bool {
        !self.residual_lines().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varid_word_roundtrip() {
        assert_eq!(VarId::from_word(VarId(5).to_word()), VarId(5));
        assert_eq!(VarId::from_word(VarId::NULL.to_word()), VarId::NULL);
        assert_eq!(VarId::NULL.to_word(), u64::MAX);
    }

    #[test]
    fn lines_group_words() {
        let mut b = MemoryBuilder::new().words_per_line(4);
        let a = b.alloc(0);
        let _ = b.alloc_array(3, 0);
        let c = b.alloc(0); // word 4 -> line 1
        let m = b.freeze(2);
        assert_eq!(m.line_of(a), LineId(0));
        assert_eq!(m.line_of(c), LineId(1));
        assert_eq!(m.line_count(), 2);
    }

    #[test]
    fn non_power_of_two_line_width_falls_back_to_division() {
        let mut b = MemoryBuilder::new().words_per_line(3);
        let a = b.alloc(0);
        let _ = b.alloc_array(3, 0);
        let m = b.freeze(1);
        assert_eq!(m.line_of(a), LineId(0));
        assert_eq!(m.line_of(VarId(2)), LineId(0));
        assert_eq!(m.line_of(VarId(3)), LineId(1));
    }

    #[test]
    fn isolated_allocation_owns_its_line() {
        let mut b = MemoryBuilder::new().words_per_line(4);
        let _x = b.alloc(0);
        let lock = b.alloc_isolated(7);
        let y = b.alloc(0);
        let m = b.freeze(1);
        assert_ne!(m.line_of(lock), m.line_of(y));
        assert_eq!(m.read_direct(lock), 7);
        // The isolated word starts a fresh line and nothing follows it on
        // that line.
        assert_eq!(lock.index() % 4, 0);
        assert_eq!(y.index() % 4, 0);
    }

    #[test]
    fn dooms_respect_epochs() {
        let mut b = MemoryBuilder::new();
        let _ = b.alloc(0);
        let m = b.freeze(2);
        // Not in a transaction: dooming is a no-op.
        m.doom_thread(0, LineId(0));
        assert!(!m.is_doomed(0, 1));
        // In a transaction: doom lands.
        let e = m.begin_epoch(0);
        m.doom_thread(0, LineId(3));
        assert!(m.is_doomed(0, e));
        assert_eq!(m.doom_line(0), Some(3));
        m.end_epoch(0);
        // A new transaction is unaffected by the stale doom.
        let e2 = m.begin_epoch(0);
        assert!(!m.is_doomed(0, e2));
        m.end_epoch(0);
    }

    #[test]
    fn doom_bitmap_skips_self() {
        let mut b = MemoryBuilder::new();
        let _ = b.alloc(0);
        let m = b.freeze(3);
        let e0 = m.begin_epoch(0);
        let e2 = m.begin_epoch(2);
        m.doom_bitmap(0b101, 0, LineId(1));
        assert!(!m.is_doomed(0, e0), "requestor must not doom itself");
        assert!(m.is_doomed(2, e2));
    }

    #[test]
    fn bitmap_set_clear() {
        let mut b = MemoryBuilder::new();
        let v = b.alloc(0);
        let m = b.freeze(4);
        let line = m.line_of(v);
        m.set_reader(line, 1);
        m.set_writer(line, 3);
        assert_eq!(m.readers_of(line), 0b10);
        assert_eq!(m.writers_of(line), 0b1000);
        assert!(m.any_residual_bits());
        assert_eq!(m.residual_lines(), vec![line]);
        m.clear_reader(line, 1);
        m.clear_writer(line, 3);
        assert!(!m.any_residual_bits());
        assert!(m.residual_lines().is_empty());
    }

    #[test]
    fn sanitizer_log_is_opt_in() {
        let mut b = MemoryBuilder::new();
        let _ = b.alloc(0);
        assert!(b.freeze(1).san_log().is_none());

        let mut b = MemoryBuilder::new();
        let v = b.alloc(42);
        b.enable_sanitizer();
        let m = b.freeze(1);
        let log = m.san_log().expect("sanitizer enabled");
        assert!(log.is_empty());
        assert_eq!(log.initial_values()[v.index() as usize], 42);
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn too_many_threads_rejected() {
        MemoryBuilder::new().freeze(65);
    }

    #[test]
    fn lock_lines_survive_freeze() {
        let mut b = MemoryBuilder::new().words_per_line(4);
        let data = b.alloc(0);
        let lock = b.alloc_lock_word(0);
        let marked = b.alloc(0);
        b.mark_lock_word(marked);
        let m = b.freeze(1);
        assert!(!m.is_lock_line(m.line_of(data).raw()));
        assert!(m.is_lock_line(m.line_of(lock).raw()));
        assert!(m.is_lock_line(m.line_of(marked).raw()));
        assert!(!m.is_lock_line(u32::MAX), "out of range is not a lock line");
    }

    #[test]
    fn packed_isolation_makes_lock_words_co_resident() {
        let mut b = MemoryBuilder::new().words_per_line(4);
        b.set_pack_isolated(true);
        let data = b.alloc(3);
        let lock = b.alloc_lock_word(0);
        let m = b.freeze(1);
        assert_eq!(m.line_of(data), m.line_of(lock), "packing skips isolation padding");
        assert!(m.is_lock_line(m.line_of(data).raw()), "data line inherits the lock mark");
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn marking_unallocated_word_rejected() {
        let mut b = MemoryBuilder::new();
        b.mark_lock_word(VarId(3));
    }

    #[test]
    fn subscription_forms_evaluate_committed_state() {
        let mut b = MemoryBuilder::new();
        let word = b.alloc(0);
        let a = b.alloc(3);
        let bb = b.alloc(3);
        let ptr = b.alloc(1);
        let n0 = b.alloc(1);
        let n1 = b.alloc(0);
        let m = b.freeze(1);

        let value = HwSubscription::ValueIs { word, free: 0 };
        assert!(m.subscription_free(&value));
        m.write_direct(word, 1);
        assert!(!m.subscription_free(&value));

        let eq = HwSubscription::WordsEqual { a, b: bb };
        assert!(m.subscription_free(&eq));
        m.write_direct(a, 4);
        assert!(!m.subscription_free(&eq));

        let ind = HwSubscription::IndirectValueIs { ptr, table: vec![n0, n1], free: 0 };
        assert!(m.subscription_free(&ind), "node 1 is unlocked");
        m.write_direct(ptr, 0);
        assert!(!m.subscription_free(&ind), "node 0 is locked");
        m.write_direct(ptr, 99);
        assert!(!m.subscription_free(&ind), "garbage pointer is never free");
        assert_eq!(m.subscription_lines(&ind).len(), 1, "garbage resolves no second line");
    }
}
