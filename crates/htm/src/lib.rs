//! A software-simulated best-effort hardware transactional memory.
//!
//! This crate models the TSX-style HTM that the PODC'14 paper
//! *Software-Improved Hardware Lock Elision* builds on, precisely enough
//! to reproduce its phenomena on hardware without TSX:
//!
//! * **Cache-line-granular conflict detection** with a *requestor-wins*
//!   policy: any incoming access (transactional or plain) that conflicts
//!   with a peer transaction's read/write set aborts the *peer* — the
//!   policy Haswell appears to use, which is prone to livelock and makes
//!   naive lock removal unsafe (paper §3.1, §5).
//! * **Write buffering / sandboxing**: speculative writes are invisible
//!   until commit; doomed transactions may observe inconsistent committed
//!   state but can never commit (the opacity discussion of §5).
//! * **HLE elision** ([`Strand::elide_rmw`]): an elided lock acquisition
//!   puts the lock's line in the *read set*, maintains a thread-local
//!   illusion that the lock is held, and requires the release to restore
//!   the lock's original value (§3). A real (non-transactional) lock
//!   acquisition therefore dooms every eliding transaction at once — the
//!   *lemming effect* (§4).
//! * **RTM** ([`Strand::begin`] / [`Strand::commit`] / [`Strand::xabort`])
//!   with an abort-status register ([`AbortStatus`]) distinguishing
//!   conflict, capacity, explicit and spurious aborts.
//! * **Capacity and spurious aborts**, both configurable via
//!   [`HtmConfig`].
//!
//! Time is logical: every operation advances the owning simulated
//! thread's clock through [`elision_sim`].
//!
//! # Example: a transactional increment with fallback
//!
//! ```
//! use elision_htm::{harness, HtmConfig, MemoryBuilder};
//!
//! let mut b = MemoryBuilder::new();
//! let counter = b.alloc(0);
//! let mem = b.freeze(2);
//! let (_, mem, _) = harness::run(2, 0, HtmConfig::deterministic(), 42, mem, move |s| {
//!     for _ in 0..100 {
//!         loop {
//!             let done = s.attempt(|s| {
//!                 let v = s.load(counter)?;
//!                 s.store(counter, v + 1)
//!             });
//!             if done.is_ok() {
//!                 break;
//!             }
//!         }
//!     }
//! });
//! assert_eq!(mem.read_direct(counter), 200);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod abort;
mod config;
mod fault;
mod lineset;
mod memory;
pub mod placement;
mod sanitize;
mod strand;

pub use abort::{codes, Abort, AbortReason, AbortStatus, TxResult, TxnStats};
pub use config::{HtmConfig, HtmConfigError};
pub use fault::{AbortStorm, CapacitySqueeze, HotLine, HtmFaults};
pub use memory::{HwSubscription, LineId, Memory, MemoryBuilder, VarId};
pub use placement::{
    LayoutMap, PlacementConfig, PlacementPolicy, Placer, RecordArena, Region, ResolvedVar, VarRole,
};
pub use sanitize::{SanAccess, SanEvent, SanLog};
pub use strand::Strand;

/// Convenience harness: spawn `threads` simulated threads, each with a
/// [`Strand`] over the same memory, and run `body` on all of them.
pub mod harness {
    use crate::{HtmConfig, Memory, Strand};
    use elision_sim::{FaultPlan, FaultStats, ScheduleControl, SimBuilder};
    use std::sync::Arc;

    /// Run `body` on `threads` simulated strands sharing `mem`.
    ///
    /// Returns the per-thread results, the (now quiescent) memory for
    /// post-run assertions, and the simulated makespan in cycles.
    pub fn run<R, F>(
        threads: usize,
        window: u64,
        cfg: HtmConfig,
        seed: u64,
        mem: Memory,
        body: F,
    ) -> (Vec<R>, Arc<Memory>, u64)
    where
        R: Send + 'static,
        F: Fn(&mut Strand) -> R + Clone + Send + Sync + 'static,
    {
        let mem = Arc::new(mem);
        let (results, makespan) = run_arc(threads, window, cfg, seed, Arc::clone(&mem), body);
        (results, mem, makespan)
    }

    /// Like [`run`], but over an already shared memory — used to run a
    /// separate single-threaded setup phase (e.g. pre-filling a tree)
    /// before the measured multi-threaded phase on the same memory.
    pub fn run_arc<R, F>(
        threads: usize,
        window: u64,
        cfg: HtmConfig,
        seed: u64,
        mem: Arc<Memory>,
        body: F,
    ) -> (Vec<R>, u64)
    where
        R: Send + 'static,
        F: Fn(&mut Strand) -> R + Clone + Send + Sync + 'static,
    {
        let (results, makespan, _) =
            run_arc_faulted(threads, window, cfg, seed, FaultPlan::none(), mem, body);
        (results, makespan)
    }

    /// Like [`run_arc`], but with a scheduler-level [`FaultPlan`] attached
    /// (simulated preemption and clock jitter). Also returns the
    /// per-thread injected-fault statistics (empty for an inactive plan).
    pub fn run_arc_faulted<R, F>(
        threads: usize,
        window: u64,
        cfg: HtmConfig,
        seed: u64,
        plan: FaultPlan,
        mem: Arc<Memory>,
        body: F,
    ) -> (Vec<R>, u64, Vec<FaultStats>)
    where
        R: Send + 'static,
        F: Fn(&mut Strand) -> R + Clone + Send + Sync + 'static,
    {
        if let Err(e) = cfg.validate() {
            panic!("invalid HtmConfig: {e}");
        }
        let out = SimBuilder::new(threads).window(window).faults(plan).run(move |ctx| {
            let mut strand = Strand::new(Arc::clone(&mem), ctx.handle, cfg, seed);
            body(&mut strand)
        });
        (out.results, out.makespan, out.fault_stats)
    }

    /// Like [`run_arc`], but serialized under a model-checker
    /// [`ScheduleControl`]: every costed event becomes a decision point
    /// replayed from the control's schedule (always window 0, no faults).
    /// Read the recorded steps back from the control after the run.
    pub fn run_arc_controlled<R, F>(
        threads: usize,
        cfg: HtmConfig,
        seed: u64,
        control: Arc<ScheduleControl>,
        mem: Arc<Memory>,
        body: F,
    ) -> (Vec<R>, u64)
    where
        R: Send + 'static,
        F: Fn(&mut Strand) -> R + Clone + Send + Sync + 'static,
    {
        if let Err(e) = cfg.validate() {
            panic!("invalid HtmConfig: {e}");
        }
        let out = SimBuilder::new(threads).control(control).run(move |ctx| {
            let mut strand = Strand::new(Arc::clone(&mem), ctx.handle, cfg, seed);
            body(&mut strand)
        });
        (out.results, out.makespan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abort::codes;

    fn one_var_mem(threads: usize, init: u64) -> (Memory, VarId) {
        let mut b = MemoryBuilder::new();
        let v = b.alloc_isolated(init);
        (b.freeze(threads), v)
    }

    #[test]
    #[should_panic(expected = "invalid HtmConfig")]
    fn harness_rejects_out_of_range_config() {
        let (mem, _) = one_var_mem(1, 0);
        // 1500 permille storm: would silently mean "always abort".
        let cfg =
            HtmConfig::deterministic().with_faults(HtmFaults::none().with_storm(100, 10, 1500));
        harness::run(1, 0, cfg, 1, mem, |_| ());
    }

    #[test]
    fn buffered_writes_publish_only_on_commit() {
        let mut b = MemoryBuilder::new();
        let x = b.alloc(10);
        let mem = b.freeze(1);
        let (_, mem, _) = harness::run(1, 0, HtmConfig::deterministic(), 1, mem, move |s| {
            s.begin();
            s.store(x, 99).unwrap();
            // Speculative value visible to self...
            assert_eq!(s.load(x).unwrap(), 99);
            // ...but not in committed memory.
            assert_eq!(s.memory().read_direct(x), 10);
            s.commit().unwrap();
            assert_eq!(s.memory().read_direct(x), 99);
        });
        assert!(!mem.any_residual_bits());
    }

    #[test]
    fn xabort_discards_buffered_writes() {
        let mut b = MemoryBuilder::new();
        let x = b.alloc(10);
        let mem = b.freeze(1);
        let (_, mem, _) = harness::run(1, 0, HtmConfig::deterministic(), 1, mem, move |s| {
            s.begin();
            s.store(x, 99).unwrap();
            let _ = s.xabort(7, false);
            assert!(!s.in_txn());
            assert!(s.last_abort().is_explicit(7));
            assert_eq!(s.memory().read_direct(x), 10);
        });
        assert!(!mem.any_residual_bits());
    }

    #[test]
    fn nontransactional_write_dooms_reader() {
        let (mem, x) = one_var_mem(2, 0);
        let (results, ..) = harness::run(2, 0, HtmConfig::deterministic(), 1, mem, move |s| {
            if s.tid() == 0 {
                s.begin();
                s.load(x).unwrap();
                // Loop until the conflict dooms us.
                for _ in 0..10_000 {
                    if s.work(1).is_err() {
                        return Some(s.last_abort().reason);
                    }
                }
                None
            } else {
                // Give thread 0 time to begin and read, then clobber x.
                s.work(200).unwrap();
                s.store(x, 5).unwrap();
                None
            }
        });
        assert_eq!(results[0], Some(AbortReason::Conflict));
    }

    #[test]
    fn nontransactional_read_dooms_speculative_writer() {
        let (mem, x) = one_var_mem(2, 0);
        let (results, mem, _) = harness::run(2, 0, HtmConfig::deterministic(), 1, mem, move |s| {
            if s.tid() == 0 {
                s.begin();
                s.store(x, 42).unwrap();
                for _ in 0..10_000 {
                    if s.work(1).is_err() {
                        return Some(s.last_abort().reason);
                    }
                }
                None
            } else {
                s.work(200).unwrap();
                let v = s.load(x).unwrap();
                assert_eq!(v, 0, "speculative write must not be visible");
                None
            }
        });
        assert_eq!(results[0], Some(AbortReason::Conflict));
        assert_eq!(mem.read_direct(x), 0, "doomed writer must not publish");
    }

    #[test]
    fn transactional_read_dooms_speculative_writer() {
        let (mem, x) = one_var_mem(2, 0);
        let (results, ..) = harness::run(2, 0, HtmConfig::deterministic(), 1, mem, move |s| {
            if s.tid() == 0 {
                s.begin();
                s.store(x, 42).unwrap();
                for _ in 0..10_000 {
                    if s.work(1).is_err() {
                        return Some(s.last_abort().reason);
                    }
                }
                None
            } else {
                s.work(200).unwrap();
                s.begin();
                let v = s.load(x).unwrap();
                assert_eq!(v, 0);
                s.commit().unwrap();
                None
            }
        });
        assert_eq!(results[0], Some(AbortReason::Conflict));
    }

    #[test]
    fn commit_dooms_concurrent_reader_of_published_line() {
        let (mem, x) = one_var_mem(2, 0);
        let (results, mem, _) = harness::run(2, 0, HtmConfig::deterministic(), 1, mem, move |s| {
            if s.tid() == 0 {
                s.begin();
                let v = s.load(x).unwrap();
                assert_eq!(v, 0);
                for _ in 0..10_000 {
                    if s.work(1).is_err() {
                        return Some(s.last_abort().reason);
                    }
                }
                None
            } else {
                s.work(200).unwrap();
                s.begin();
                s.store(x, 7).unwrap();
                s.commit().unwrap();
                None
            }
        });
        assert_eq!(results[0], Some(AbortReason::Conflict));
        assert_eq!(mem.read_direct(x), 7);
    }

    #[test]
    fn hle_elision_restores_and_commits() {
        let (mem, lock) = one_var_mem(1, 0);
        let (_, mem, _) = harness::run(1, 0, HtmConfig::deterministic(), 1, mem, move |s| {
            s.begin();
            let old = s.elide_rmw(lock, |_| 1).unwrap();
            assert_eq!(old, 0);
            // The illusion: our own reads see the lock as taken...
            assert_eq!(s.load(lock).unwrap(), 1);
            // ...while committed memory still shows it free.
            assert_eq!(s.memory().read_direct(lock), 0);
            // XRELEASE: restore the original value.
            s.store(lock, 0).unwrap();
            s.commit().unwrap();
        });
        assert_eq!(mem.read_direct(lock), 0);
        assert!(!mem.any_residual_bits());
    }

    #[test]
    fn hle_commit_fails_without_restore() {
        let (mem, lock) = one_var_mem(1, 0);
        harness::run(1, 0, HtmConfig::deterministic(), 1, mem, move |s| {
            s.begin();
            s.elide_rmw(lock, |_| 1).unwrap();
            let err = s.commit().unwrap_err();
            assert_eq!(err.reason, AbortReason::HleRestore);
            assert!(!s.in_txn());
        });
    }

    #[test]
    fn concurrent_elision_of_same_lock_does_not_conflict() {
        let mut b = MemoryBuilder::new();
        let lock = b.alloc_isolated(0);
        let data = b.alloc_array(16, 0);
        b.pad_to_line();
        let mem = b.freeze(2);
        let (results, mem, _) = harness::run(2, 0, HtmConfig::deterministic(), 1, mem, move |s| {
            let tid = s.tid() as u32;
            // Each thread writes to its own line.
            let my = VarId::from_index(data.index() + tid * 8);
            let mut commits = 0;
            for _ in 0..50 {
                let r = s.attempt(|s| {
                    s.elide_rmw(lock, |_| 1)?;
                    let v = s.load(my)?;
                    s.store(my, v + 1)?;
                    s.store(lock, 0)?;
                    Ok(())
                });
                if r.is_ok() {
                    commits += 1;
                }
            }
            commits
        });
        // Disjoint data + elided lock: every attempt must commit.
        assert_eq!(results, vec![50, 50]);
        assert_eq!(mem.read_direct(data), 50);
    }

    #[test]
    fn real_lock_write_dooms_all_eliders_at_once() {
        let mut b = MemoryBuilder::new();
        let lock = b.alloc_isolated(0);
        let mem = b.freeze(3);
        let (results, ..) = harness::run(3, 0, HtmConfig::deterministic(), 1, mem, move |s| {
            if s.tid() < 2 {
                s.begin();
                s.elide_rmw(lock, |_| 1).unwrap();
                for _ in 0..10_000 {
                    if s.work(1).is_err() {
                        return Some(s.last_abort().reason);
                    }
                }
                None
            } else {
                s.work(300).unwrap();
                // The lemming trigger: a real test-and-set on the lock.
                let old = s.swap(lock, 1).unwrap();
                assert_eq!(old, 0);
                None
            }
        });
        assert_eq!(results[0], Some(AbortReason::Conflict));
        assert_eq!(results[1], Some(AbortReason::Conflict));
    }

    #[test]
    fn write_capacity_abort() {
        let mut b = MemoryBuilder::new().words_per_line(1);
        let vars = b.alloc_array(8, 0);
        let mem = b.freeze(1);
        let cfg = HtmConfig::deterministic().with_capacity(64, 4);
        harness::run(1, 0, cfg, 1, mem, move |s| {
            s.begin();
            for k in 0..4 {
                s.store(VarId::from_index(vars.index() + k), 1).unwrap();
            }
            let err = s.store(VarId::from_index(vars.index() + 4), 1).unwrap_err();
            assert_eq!(err, Abort);
            assert_eq!(s.last_abort().reason, AbortReason::Capacity);
            assert!(!s.last_abort().retry_recommended);
        });
    }

    #[test]
    fn read_capacity_abort() {
        let mut b = MemoryBuilder::new().words_per_line(1);
        let vars = b.alloc_array(8, 0);
        let mem = b.freeze(1);
        let cfg = HtmConfig::deterministic().with_capacity(3, 64);
        harness::run(1, 0, cfg, 1, mem, move |s| {
            s.begin();
            for k in 0..3 {
                s.load(VarId::from_index(vars.index() + k)).unwrap();
            }
            s.load(VarId::from_index(vars.index() + 3)).unwrap_err();
            assert_eq!(s.last_abort().reason, AbortReason::Capacity);
        });
    }

    #[test]
    fn spurious_aborts_fire_with_probability_one() {
        let (mem, x) = one_var_mem(1, 0);
        let cfg = HtmConfig::deterministic().with_spurious(1.0, 0.0);
        harness::run(1, 0, cfg, 1, mem, move |s| {
            s.begin();
            let mut aborted = false;
            for _ in 0..200 {
                if s.load(x).is_err() {
                    aborted = true;
                    break;
                }
            }
            assert!(aborted, "spurious fuse never fired");
            assert_eq!(s.last_abort().reason, AbortReason::Spurious);
            assert!(s.last_abort().retry_recommended);
        });
    }

    #[test]
    fn attempt_returns_value_on_commit() {
        let (mem, x) = one_var_mem(1, 5);
        harness::run(1, 0, HtmConfig::deterministic(), 1, mem, move |s| {
            let got = s.attempt(|s| {
                let v = s.load(x)?;
                s.store(x, v * 2)?;
                Ok(v)
            });
            assert_eq!(got.unwrap(), 5);
            assert_eq!(s.memory().read_direct(x), 10);
            assert_eq!(s.stats.commits, 1);
        });
    }

    #[test]
    #[should_panic(expected = "simulated thread panicked")]
    fn attempt_detects_swallowed_abort() {
        let (mem, x) = one_var_mem(1, 0);
        harness::run(1, 0, HtmConfig::deterministic(), 1, mem, move |s| {
            let _ = s.attempt(|s| {
                let _ = s.xabort(1, false);
                // Misuse: carry on as if nothing happened.
                let _ = x;
                Ok(())
            });
        });
    }

    #[test]
    fn rmw_primitives_in_and_out_of_txn() {
        let (mem, x) = one_var_mem(1, 10);
        harness::run(1, 0, HtmConfig::deterministic(), 1, mem, move |s| {
            // Non-transactional.
            assert_eq!(s.fetch_add(x, 5).unwrap(), 10);
            assert_eq!(s.swap(x, 100).unwrap(), 15);
            assert_eq!(s.cas(x, 100, 1).unwrap(), 100); // success
            assert_eq!(s.cas(x, 99, 2).unwrap(), 1); // failure
            assert_eq!(s.memory().read_direct(x), 1);
            // Transactional.
            s.begin();
            assert_eq!(s.fetch_add(x, 1).unwrap(), 1);
            assert_eq!(s.cas(x, 2, 50).unwrap(), 2);
            s.commit().unwrap();
            assert_eq!(s.memory().read_direct(x), 50);
        });
    }

    #[test]
    fn nontxn_rmw_is_atomic_across_threads() {
        let (mem, x) = one_var_mem(4, 0);
        let (_, mem, _) = harness::run(4, 32, HtmConfig::deterministic(), 1, mem, move |s| {
            for _ in 0..500 {
                s.fetch_add(x, 1).unwrap();
            }
        });
        assert_eq!(mem.read_direct(x), 2000);
    }

    #[test]
    fn spin_until_expires_inside_txn() {
        let (mem, x) = one_var_mem(1, 0);
        harness::run(1, 0, HtmConfig::deterministic(), 1, mem, move |s| {
            s.begin();
            let err = s.spin_until(x, 10, |v| v == 1).unwrap_err();
            assert_eq!(err, Abort);
            assert!(s.last_abort().is_explicit(codes::SPIN_EXPIRED));
        });
    }

    #[test]
    fn doomed_transaction_never_commits_inconsistent_state() {
        // SLR-style scenario from the paper's "erroneous example": T1 reads
        // X then Y while T2 non-transactionally writes Y then X between the
        // two reads. T1 may *observe* the inconsistency but must abort.
        let mut b = MemoryBuilder::new();
        let x = b.alloc_isolated(0);
        let y = b.alloc_isolated(0);
        let mem = b.freeze(2);
        let (results, ..) = harness::run(2, 0, HtmConfig::deterministic(), 1, mem, move |s| {
            if s.tid() == 0 {
                s.begin();
                let vx = match s.load(x) {
                    Ok(v) => v,
                    Err(_) => return "aborted-early",
                };
                // Wait long enough for T2 to write both.
                for _ in 0..60 {
                    if s.work(10).is_err() {
                        return "aborted-mid";
                    }
                }
                let vy = match s.load(y) {
                    Ok(v) => v,
                    Err(_) => return "aborted-on-y",
                };
                if vx == 0 && vy == 1 {
                    // Inconsistent snapshot observed; commit must fail.
                    assert!(s.commit().is_err());
                    return "observed-inconsistent-but-aborted";
                }
                match s.commit() {
                    Ok(()) => "committed-consistent",
                    Err(_) => "aborted-late",
                }
            } else {
                s.work(150).unwrap();
                s.store(y, 1).unwrap();
                s.store(x, 1).unwrap();
                "writer"
            }
        });
        // Whatever interleaving resulted, T1 never committed X=0,Y=1.
        assert_ne!(results[0], "committed-consistent-inconsistent");
        assert!(
            results[0].starts_with("aborted") || results[0] == "observed-inconsistent-but-aborted",
            "got {}",
            results[0]
        );
    }

    #[test]
    fn stats_count_events() {
        let (mem, x) = one_var_mem(1, 0);
        harness::run(1, 0, HtmConfig::deterministic(), 1, mem, move |s| {
            let _ = s.attempt(|s| s.store(x, 1));
            s.begin();
            let _ = s.xabort(3, true);
            assert_eq!(s.stats.begins, 2);
            assert_eq!(s.stats.commits, 1);
            assert_eq!(s.stats.aborts_explicit, 1);
            assert_eq!(s.stats.aborts(), 1);
        });
    }

    #[test]
    fn false_sharing_conflicts_on_same_line() {
        // Two words on one line: writing one dooms a reader of the other.
        let mut b = MemoryBuilder::new().words_per_line(8);
        b.pad_to_line();
        let a = b.alloc(0);
        let c = b.alloc(0);
        let mem = b.freeze(2);
        let (results, ..) = harness::run(2, 0, HtmConfig::deterministic(), 1, mem, move |s| {
            if s.tid() == 0 {
                s.begin();
                s.load(a).unwrap();
                for _ in 0..10_000 {
                    if s.work(1).is_err() {
                        return Some(s.last_abort().reason);
                    }
                }
                None
            } else {
                s.work(200).unwrap();
                s.store(c, 1).unwrap(); // same line as `a`
                None
            }
        });
        assert_eq!(results[0], Some(AbortReason::Conflict));
    }

    #[test]
    fn abort_storm_fires_only_inside_window() {
        let (mem, x) = one_var_mem(1, 0);
        // Storm covering all of time at rate 1000/1000: every access aborts.
        let cfg = HtmConfig::deterministic().with_faults(HtmFaults::none().with_storm(
            u64::MAX,
            u64::MAX,
            1000,
        ));
        harness::run(1, 0, cfg, 1, mem, move |s| {
            s.begin();
            s.load(x).unwrap_err();
            assert_eq!(s.last_abort().reason, AbortReason::Spurious);
            assert!(s.last_abort().retry_recommended);
        });

        // Zero-duration storm: never fires, behaves like the baseline.
        let (mem, x) = one_var_mem(1, 0);
        let cfg =
            HtmConfig::deterministic().with_faults(HtmFaults::none().with_storm(u64::MAX, 0, 1000));
        harness::run(1, 0, cfg, 1, mem, move |s| {
            s.begin();
            for _ in 0..50 {
                s.load(x).unwrap();
            }
            s.commit().unwrap();
        });
    }

    #[test]
    fn capacity_squeeze_shrinks_budget_inside_window() {
        let mut b = MemoryBuilder::new().words_per_line(1);
        let vars = b.alloc_array(8, 0);
        let mem = b.freeze(1);
        // Configured budget is generous; the (always-open) squeeze caps
        // reads at two lines.
        let cfg = HtmConfig::deterministic()
            .with_capacity(64, 64)
            .with_faults(HtmFaults::none().with_squeeze(u64::MAX, u64::MAX, 2, 2));
        harness::run(1, 0, cfg, 1, mem, move |s| {
            s.begin();
            s.load(VarId::from_index(vars.index())).unwrap();
            s.load(VarId::from_index(vars.index() + 1)).unwrap();
            s.load(VarId::from_index(vars.index() + 2)).unwrap_err();
            assert_eq!(s.last_abort().reason, AbortReason::Capacity);
        });
    }

    #[test]
    fn hot_line_injects_persistent_conflicts() {
        let (mem, x) = one_var_mem(1, 0);
        let hot = mem.line_of(x).0;
        let cfg =
            HtmConfig::deterministic().with_faults(HtmFaults::none().with_hot_line(hot, 1000));
        harness::run(1, 0, cfg, 1, mem, move |s| {
            s.begin();
            s.load(x).unwrap_err();
            assert_eq!(s.last_abort().reason, AbortReason::Conflict);
            assert_eq!(s.last_abort().conflict_line, Some(hot));
            assert!(s.last_abort().retry_recommended);
        });
    }

    #[test]
    fn abort_causes_classified_by_lock_line() {
        use elision_sim::AbortCause;
        let mut b = MemoryBuilder::new();
        let lock = b.alloc_lock_word(0);
        let data = b.alloc_isolated(0);
        let mem = b.freeze(1);
        let cfg = HtmConfig::deterministic().with_capacity(1, 64);
        harness::run(1, 0, cfg, 1, mem, move |s| {
            s.enable_cause_slots(1_000_000);
            // Conflict on the lock word's line -> lock-word conflict.
            s.begin();
            s.load(lock).unwrap();
            let line = s.memory().line_of(lock);
            s.memory().doom_thread(0, line);
            s.load(lock).unwrap_err();
            assert_eq!(s.counters.causes.get(AbortCause::LockWordConflict), 1);
            // Conflict on a data line -> data conflict.
            s.begin();
            s.load(data).unwrap();
            let line = s.memory().line_of(data);
            s.memory().doom_thread(0, line);
            s.load(data).unwrap_err();
            assert_eq!(s.counters.causes.get(AbortCause::DataConflict), 1);
            // Read-set overflow -> capacity.
            s.begin();
            s.load(data).unwrap();
            s.load(lock).unwrap_err();
            assert_eq!(s.last_abort().reason, AbortReason::Capacity);
            assert_eq!(s.counters.causes.get(AbortCause::Capacity), 1);
            // XABORT -> explicit.
            s.begin();
            let _ = s.xabort(7, false);
            assert_eq!(s.counters.causes.get(AbortCause::Explicit), 1);
            // The taxonomy total matches the raw abort count, and the
            // slot series buckets every abort.
            assert_eq!(s.counters.causes.total(), s.stats.aborts());
            let slots = s.cause_slots.take().expect("enabled").into_series();
            assert_eq!(slots.totals(), s.counters.causes);
        });
    }

    #[test]
    fn injected_spurious_aborts_classify_as_fault_injected() {
        use elision_sim::AbortCause;
        let (mem, x) = one_var_mem(1, 0);
        let cfg = HtmConfig::deterministic().with_faults(HtmFaults::none().with_storm(
            u64::MAX,
            u64::MAX,
            1000,
        ));
        harness::run(1, 0, cfg, 1, mem, move |s| {
            s.begin();
            s.load(x).unwrap_err();
            assert_eq!(s.counters.causes.get(AbortCause::FaultInjected), 1);
            assert_eq!(s.counters.causes.total(), 1);
        });
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        let run_once = || {
            let mut b = MemoryBuilder::new();
            let counter = b.alloc(0);
            let mem = b.freeze(2);
            let cfg = HtmConfig::deterministic()
                .with_faults(HtmFaults::none().with_storm(5_000, 500, 400).with_hot_line(0, 50));
            let (results, mem, makespan) = harness::run(2, 0, cfg, 42, mem, move |s| {
                let mut commits = 0u64;
                for _ in 0..50 {
                    loop {
                        let done = s.attempt(|s| {
                            let v = s.load(counter)?;
                            s.store(counter, v + 1)
                        });
                        if done.is_ok() {
                            commits += 1;
                            break;
                        }
                    }
                }
                (commits, s.stats.aborts())
            });
            (results, mem.read_direct(counter), makespan)
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a, b, "same seeds must replay the same faulted run");
        assert_eq!(a.1, 100, "all increments must land despite faults");
        assert!(a.0.iter().any(|&(_, aborts)| aborts > 0), "faults must bite");
    }
}
