//! Abort signalling: the in-band marker that unwinds a speculative
//! critical section, and the abort-status register the fallback path
//! inspects (mirroring Haswell's `EAX` abort status).

/// Zero-sized marker propagated through a speculative critical section via
/// `Result`/`?` when the enclosing transaction has aborted.
///
/// By the time an operation returns `Err(Abort)`, the transaction has
/// already been unwound (read/write sets cleared, abort penalty charged);
/// the body must simply propagate the error outward to the scheme's
/// fallback logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Abort;

/// Result of a single simulated memory operation.
pub type TxResult<T> = Result<T, Abort>;

/// Why a transaction aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// A conflicting access by another thread (data conflict or a
    /// non-transactional write to a line in this transaction's read set —
    /// the lemming-effect trigger).
    Conflict,
    /// The read or write set exceeded the simulated buffering capacity.
    Capacity,
    /// The transaction aborted itself (`XABORT`) with a code.
    Explicit,
    /// A spurious abort (the paper's Section 3.1: aborts not explained by
    /// conflicts or capacity, injected here with a seeded RNG).
    Spurious,
    /// An HLE commit failed because the release did not restore the elided
    /// lock to its original value.
    HleRestore,
    /// Hardware dangerous-instruction detection (arXiv 1407.6968) caught a
    /// lazily subscribed transaction writing a lock-marked line — the
    /// "wild store" a zombie performs after reading inconsistent state.
    /// Only raised when [`crate::HtmConfig::dangerous_abort`] is enabled.
    DangerousInstruction,
}

/// The simulated abort-status register, handed to fallback code.
///
/// Beyond Haswell's actual status bits, the simulator also reports *where*
/// a conflict occurred ([`AbortStatus::conflict_line`]) — the abort
/// information the paper's conclusion names as a promising direction for
/// refined conflict management, exploited by the grouped-SCM extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbortStatus {
    /// Why the transaction aborted.
    pub reason: AbortReason,
    /// The `XABORT` code, when [`AbortReason::Explicit`].
    pub explicit_code: Option<u8>,
    /// Haswell's "retry" hint: set when the abort cause is transient
    /// (conflicts, spurious aborts) and clear when retrying is unlikely to
    /// help (capacity, restore violations). Explicit aborts carry the hint
    /// the aborting code chose.
    pub retry_recommended: bool,
    /// The cache line on which the dooming conflict occurred, when known
    /// (conflict aborts only; best-effort under races).
    pub conflict_line: Option<u32>,
}

impl AbortStatus {
    /// Status for a data-conflict abort.
    pub fn conflict() -> Self {
        AbortStatus {
            reason: AbortReason::Conflict,
            explicit_code: None,
            retry_recommended: true,
            conflict_line: None,
        }
    }

    /// Status for a data-conflict abort at a known line.
    pub fn conflict_at(line: u32) -> Self {
        AbortStatus { conflict_line: Some(line), ..Self::conflict() }
    }

    /// Status for a capacity abort.
    pub fn capacity() -> Self {
        AbortStatus {
            reason: AbortReason::Capacity,
            explicit_code: None,
            retry_recommended: false,
            conflict_line: None,
        }
    }

    /// Status for a spurious abort.
    pub fn spurious() -> Self {
        AbortStatus {
            reason: AbortReason::Spurious,
            explicit_code: None,
            retry_recommended: true,
            conflict_line: None,
        }
    }

    /// Status for an HLE restore-check failure.
    pub fn hle_restore() -> Self {
        AbortStatus {
            reason: AbortReason::HleRestore,
            explicit_code: None,
            retry_recommended: false,
            conflict_line: None,
        }
    }

    /// Status for a hardware dangerous-instruction abort at the offending
    /// line. Retry is recommended: the wild access came from a transient
    /// inconsistent snapshot, and a re-execution usually reads consistent
    /// state (or falls back to the lock).
    pub fn dangerous(line: u32) -> Self {
        AbortStatus {
            reason: AbortReason::DangerousInstruction,
            explicit_code: None,
            retry_recommended: true,
            conflict_line: Some(line),
        }
    }

    /// Status for an explicit `XABORT` with `code`; `retry` is the hint the
    /// aborting code wants the fallback to see.
    pub fn explicit(code: u8, retry: bool) -> Self {
        AbortStatus {
            reason: AbortReason::Explicit,
            explicit_code: Some(code),
            retry_recommended: retry,
            conflict_line: None,
        }
    }

    /// Whether this is an explicit abort carrying `code`.
    pub fn is_explicit(&self, code: u8) -> bool {
        self.reason == AbortReason::Explicit && self.explicit_code == Some(code)
    }
}

/// Well-known `XABORT` codes used by the elision schemes.
pub mod codes {
    /// The lock was observed held (SLR commit-time check, SCM begin-time
    /// subscription, or an elided acquire finding the lock busy).
    pub const LOCK_BUSY: u8 = 0xA0;
    /// A queue-lock elision attempt observed a predecessor in the queue.
    pub const QUEUE_BUSY: u8 = 0xA1;
    /// A bounded speculative spin expired (models timer-induced aborts of
    /// transactions stuck waiting in-flight).
    pub const SPIN_EXPIRED: u8 = 0xA2;
    /// The hardware commit-time subscription found the lock held: the
    /// commit-stage check of arXiv 1407.6968 fired, atomically with the
    /// (refused) publication. Explicit-class so fallback code can treat it
    /// exactly like a software `LOCK_BUSY`, but distinguishable in traces.
    pub const SUBSCRIPTION: u8 = 0xA3;
}

/// Per-thread transaction event statistics (begins/commits/aborts by
/// cause); complementary to the paper's S/A/N operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxnStats {
    /// Transactions started.
    pub begins: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Aborts caused by conflicts.
    pub aborts_conflict: u64,
    /// Aborts caused by capacity overflow.
    pub aborts_capacity: u64,
    /// Explicit (`XABORT`) aborts.
    pub aborts_explicit: u64,
    /// Injected spurious aborts.
    pub aborts_spurious: u64,
    /// HLE restore-check failures.
    pub aborts_restore: u64,
    /// Hardware dangerous-instruction aborts.
    pub aborts_dangerous: u64,
}

impl TxnStats {
    /// Total aborts of any cause.
    pub fn aborts(&self) -> u64 {
        self.aborts_conflict
            + self.aborts_capacity
            + self.aborts_explicit
            + self.aborts_spurious
            + self.aborts_restore
            + self.aborts_dangerous
    }

    pub(crate) fn count_abort(&mut self, reason: AbortReason) {
        match reason {
            AbortReason::Conflict => self.aborts_conflict += 1,
            AbortReason::Capacity => self.aborts_capacity += 1,
            AbortReason::Explicit => self.aborts_explicit += 1,
            AbortReason::Spurious => self.aborts_spurious += 1,
            AbortReason::HleRestore => self.aborts_restore += 1,
            AbortReason::DangerousInstruction => self.aborts_dangerous += 1,
        }
    }

    /// Merge another stats block into this one.
    pub fn merge(&mut self, other: &TxnStats) {
        self.begins += other.begins;
        self.commits += other.commits;
        self.aborts_conflict += other.aborts_conflict;
        self.aborts_capacity += other.aborts_capacity;
        self.aborts_explicit += other.aborts_explicit;
        self.aborts_spurious += other.aborts_spurious;
        self.aborts_restore += other.aborts_restore;
        self.aborts_dangerous += other.aborts_dangerous;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_hints_match_causes() {
        assert!(AbortStatus::conflict().retry_recommended);
        assert!(AbortStatus::spurious().retry_recommended);
        assert!(!AbortStatus::capacity().retry_recommended);
        assert!(!AbortStatus::hle_restore().retry_recommended);
    }

    #[test]
    fn explicit_codes_roundtrip() {
        let st = AbortStatus::explicit(codes::LOCK_BUSY, false);
        assert!(st.is_explicit(codes::LOCK_BUSY));
        assert!(!st.is_explicit(codes::QUEUE_BUSY));
        assert!(!st.retry_recommended);
    }

    #[test]
    fn stats_tally_by_reason() {
        let mut s = TxnStats::default();
        s.count_abort(AbortReason::Conflict);
        s.count_abort(AbortReason::Conflict);
        s.count_abort(AbortReason::Capacity);
        s.count_abort(AbortReason::Spurious);
        s.count_abort(AbortReason::Explicit);
        s.count_abort(AbortReason::HleRestore);
        s.count_abort(AbortReason::DangerousInstruction);
        assert_eq!(s.aborts(), 7);
        assert_eq!(s.aborts_conflict, 2);
        assert_eq!(s.aborts_dangerous, 1);
        let mut t = TxnStats::default();
        t.merge(&s);
        t.merge(&s);
        assert_eq!(t.aborts(), 14);
    }

    #[test]
    fn dangerous_status_carries_line_and_retry_hint() {
        let st = AbortStatus::dangerous(17);
        assert_eq!(st.reason, AbortReason::DangerousInstruction);
        assert_eq!(st.conflict_line, Some(17));
        assert!(st.retry_recommended);
    }
}
