//! Deterministic fault injection for the simulated HTM.
//!
//! [`HtmFaults`] extends the baseline spurious-abort model of
//! [`HtmConfig`](crate::HtmConfig) with the *bursty, adversarial* failure
//! modes that break naive elision in practice:
//!
//! * **Abort storms** ([`AbortStorm`]): time-windowed bursts during which
//!   transactional accesses spuriously abort at a high rate — modelling
//!   interrupt storms, SMM excursions or cache-pressure episodes that make
//!   real TSX abort in waves rather than uniformly.
//! * **Capacity squeezes** ([`CapacitySqueeze`]): windows during which the
//!   effective read/write-set line budgets shrink, modelling competing
//!   cache occupancy from other workloads on the core.
//! * **Hot lines** ([`HotLine`]): a designated cache line that behaves as a
//!   persistent conflict source — transactional accesses to it abort with
//!   a configured probability, modelling a line bouncing between cores.
//!
//! Windows are evaluated against the *accessing thread's own* logical
//! clock (`now % period < duration`), and all probabilistic draws come from
//! the strand's deterministic HTM RNG stream and are only taken while the
//! corresponding fault is configured **and** its window is active. Baseline
//! runs (no faults) therefore draw the exact same RNG sequence as before
//! this module existed, and a faulted run with `window == 0` is exactly
//! reproducible from its seeds.

/// A time-windowed burst of spurious aborts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbortStorm {
    /// Cycle period of the storm pattern on each thread's clock.
    pub period: u64,
    /// Cycles at the start of each period during which the storm rages.
    pub duration: u64,
    /// Probability, in permille, that a transactional access inside the
    /// window aborts spuriously.
    pub permille: u32,
}

/// A time-windowed shrink of the transactional capacity budgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacitySqueeze {
    /// Cycle period of the squeeze pattern on each thread's clock.
    pub period: u64,
    /// Cycles at the start of each period during which budgets shrink.
    pub duration: u64,
    /// Read-set budget (lines) while squeezed; the effective budget is the
    /// minimum of this and the configured budget.
    pub read_lines: usize,
    /// Write-set budget (lines) while squeezed.
    pub write_lines: usize,
}

/// A cache line behaving as a persistent conflict source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotLine {
    /// The line index (see `Memory::line_of`) that is hot.
    pub line: u32,
    /// Probability, in permille, that registering the hot line in a
    /// transaction's read or write set aborts with a conflict on it.
    pub permille: u32,
}

/// The complete HTM-level fault-injection configuration.
///
/// The default injects nothing and adds no RNG draws to any code path.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HtmFaults {
    /// Bursty spurious-abort storms, if enabled.
    pub storm: Option<AbortStorm>,
    /// Temporary capacity squeezes, if enabled.
    pub squeeze: Option<CapacitySqueeze>,
    /// Persistent-conflict hot line, if enabled.
    pub hot: Option<HotLine>,
}

/// Whether a `(period, duration)` window is open at thread-clock `now`.
fn window_active(period: u64, duration: u64, now: u64) -> bool {
    period > 0 && duration > 0 && now % period < duration
}

impl AbortStorm {
    /// Whether the storm window is open at thread-clock `now`.
    pub fn active(&self, now: u64) -> bool {
        window_active(self.period, self.duration, now) && self.permille > 0
    }
}

impl CapacitySqueeze {
    /// Whether the squeeze window is open at thread-clock `now`.
    pub fn active(&self, now: u64) -> bool {
        window_active(self.period, self.duration, now)
    }
}

impl HtmFaults {
    /// A configuration injecting nothing.
    pub fn none() -> Self {
        HtmFaults::default()
    }

    /// Enable storms: for `duration` cycles out of every `period`,
    /// transactional accesses abort spuriously with probability
    /// `permille`/1000.
    pub fn with_storm(mut self, period: u64, duration: u64, permille: u32) -> Self {
        self.storm = Some(AbortStorm { period, duration, permille });
        self
    }

    /// Enable squeezes: for `duration` cycles out of every `period`, the
    /// read/write-set budgets shrink to at most `read_lines`/`write_lines`.
    pub fn with_squeeze(
        mut self,
        period: u64,
        duration: u64,
        read_lines: usize,
        write_lines: usize,
    ) -> Self {
        self.squeeze = Some(CapacitySqueeze { period, duration, read_lines, write_lines });
        self
    }

    /// Enable a hot line: transactional registration of `line` aborts with
    /// a conflict with probability `permille`/1000.
    pub fn with_hot_line(mut self, line: u32, permille: u32) -> Self {
        self.hot = Some(HotLine { line, permille });
        self
    }

    /// Whether any fault source is enabled.
    pub fn is_active(&self) -> bool {
        self.storm.is_some() || self.squeeze.is_some() || self.hot.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_follow_thread_clock() {
        let f = HtmFaults::none().with_storm(1000, 100, 500);
        let storm = f.storm.unwrap();
        assert!(storm.active(0));
        assert!(storm.active(99));
        assert!(!storm.active(100));
        assert!(!storm.active(999));
        assert!(storm.active(1000));
        assert!(storm.active(2050));
    }

    #[test]
    fn degenerate_windows_never_fire() {
        assert!(!AbortStorm { period: 0, duration: 10, permille: 500 }.active(0));
        assert!(!AbortStorm { period: 100, duration: 0, permille: 500 }.active(0));
        assert!(!AbortStorm { period: 100, duration: 10, permille: 0 }.active(5));
        assert!(
            !CapacitySqueeze { period: 0, duration: 1, read_lines: 1, write_lines: 1 }.active(0)
        );
    }

    #[test]
    fn activity_detection() {
        assert!(!HtmFaults::none().is_active());
        assert!(HtmFaults::none().with_storm(100, 10, 100).is_active());
        assert!(HtmFaults::none().with_squeeze(100, 10, 4, 2).is_active());
        assert!(HtmFaults::none().with_hot_line(3, 200).is_active());
    }
}
