//! Property-based tests of the HTM substrate.

use elision_htm::{
    harness, HtmConfig, MemoryBuilder, PlacementConfig, PlacementPolicy, Placer, VarId, VarRole,
};
use proptest::prelude::*;

/// One step of a random single-threaded transactional program.
#[derive(Debug, Clone)]
enum Step {
    Load(u8),
    Store(u8, u64),
    Cas(u8, u64, u64),
    FetchAdd(u8, u64),
    Swap(u8, u64),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        any::<u8>().prop_map(Step::Load),
        (any::<u8>(), 0u64..100).prop_map(|(v, x)| Step::Store(v, x)),
        (any::<u8>(), 0u64..100, 0u64..100).prop_map(|(v, e, n)| Step::Cas(v, e, n)),
        (any::<u8>(), 1u64..10).prop_map(|(v, d)| Step::FetchAdd(v, d)),
        (any::<u8>(), 0u64..100).prop_map(|(v, x)| Step::Swap(v, x)),
    ]
}

const VARS: usize = 16;

fn var(i: u8) -> VarId {
    VarId::from_index((i as usize % VARS) as u32)
}

fn apply_model(model: &mut [u64; VARS], step: &Step) {
    match *step {
        Step::Load(_) => {}
        Step::Store(v, x) => model[v as usize % VARS] = x,
        Step::Cas(v, e, n) => {
            let slot = &mut model[v as usize % VARS];
            if *slot == e {
                *slot = n;
            }
        }
        Step::FetchAdd(v, d) => {
            let slot = &mut model[v as usize % VARS];
            *slot = slot.wrapping_add(d);
        }
        Step::Swap(v, x) => model[v as usize % VARS] = x,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A committed transaction's effects equal a sequential model's; an
    /// aborted transaction's effects are invisible.
    #[test]
    fn committed_txns_match_model_aborted_txns_vanish(
        steps in prop::collection::vec(step_strategy(), 1..40),
        commit in any::<bool>(),
    ) {
        let mut b = MemoryBuilder::new().words_per_line(4);
        b.alloc_array(VARS, 0);
        let mem = b.freeze(1);
        let steps2 = steps.clone();
        let (_, mem, _) = harness::run(1, 0, HtmConfig::deterministic(), 1, mem, move |s| {
            s.begin();
            for st in &steps2 {
                match *st {
                    Step::Load(v) => { s.load(var(v)).unwrap(); }
                    Step::Store(v, x) => s.store(var(v), x).unwrap(),
                    Step::Cas(v, e, n) => { s.cas(var(v), e, n).unwrap(); }
                    Step::FetchAdd(v, d) => { s.fetch_add(var(v), d).unwrap(); }
                    Step::Swap(v, x) => { s.swap(var(v), x).unwrap(); }
                }
            }
            if commit {
                s.commit().unwrap();
            } else {
                let _ = s.xabort(1, false);
            }
        });
        let mut model = [0u64; VARS];
        if commit {
            for st in &steps {
                apply_model(&mut model, st);
            }
        }
        for (i, &expected) in model.iter().enumerate() {
            prop_assert_eq!(mem.read_direct(VarId::from_index(i as u32)), expected);
        }
        prop_assert!(!mem.any_residual_bits());
    }

    /// Transactional reads observe the transaction's own earlier writes
    /// (read-your-writes) for arbitrary programs.
    #[test]
    fn read_your_writes(steps in prop::collection::vec(step_strategy(), 1..40)) {
        let mut b = MemoryBuilder::new().words_per_line(4);
        b.alloc_array(VARS, 0);
        let mem = b.freeze(1);
        let steps2 = steps.clone();
        harness::run(1, 0, HtmConfig::deterministic(), 1, mem, move |s| {
            let mut model = [0u64; VARS];
            s.begin();
            for st in &steps2 {
                match *st {
                    Step::Load(v) => {
                        assert_eq!(s.load(var(v)).unwrap(), model[v as usize % VARS]);
                    }
                    Step::Store(v, x) => s.store(var(v), x).unwrap(),
                    Step::Cas(v, e, n) => {
                        let old = s.cas(var(v), e, n).unwrap();
                        assert_eq!(old, model[v as usize % VARS]);
                    }
                    Step::FetchAdd(v, d) => {
                        let old = s.fetch_add(var(v), d).unwrap();
                        assert_eq!(old, model[v as usize % VARS]);
                    }
                    Step::Swap(v, x) => {
                        let old = s.swap(var(v), x).unwrap();
                        assert_eq!(old, model[v as usize % VARS]);
                    }
                }
                apply_model(&mut model, st);
            }
            s.commit().unwrap();
        });
    }

    /// Under any spurious-abort rate, a retry loop still completes every
    /// operation exactly once (no lost or duplicated updates), and all
    /// conflict bitmaps drain.
    #[test]
    fn retry_loops_survive_any_spurious_rate(
        rate in 0.0f64..0.9,
        per_access in 0.0f64..0.05,
        threads in 1usize..5,
    ) {
        let mut b = MemoryBuilder::new();
        let counter = b.alloc_isolated(0);
        let mem = b.freeze(threads);
        let cfg = HtmConfig::deterministic().with_spurious(rate, per_access);
        let ops = 30u64;
        let (_, mem, _) = harness::run(threads, 0, cfg, 11, mem, move |s| {
            for _ in 0..ops {
                loop {
                    let r = s.attempt(|s| {
                        let v = s.load(counter)?;
                        s.store(counter, v + 1)
                    });
                    if r.is_ok() {
                        break;
                    }
                }
            }
        });
        prop_assert_eq!(mem.read_direct(counter), threads as u64 * ops);
        prop_assert!(!mem.any_residual_bits());
    }
}

fn policy_strategy() -> impl Strategy<Value = PlacementPolicy> {
    prop_oneof![
        Just(PlacementPolicy::Packed),
        Just(PlacementPolicy::Padded),
        Just(PlacementPolicy::IndexAware),
        any::<u64>().prop_map(PlacementPolicy::Randomized),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Differential check of the two line-assignment implementations:
    /// the static [`LayoutMap`] the placement layer hands to the
    /// analysis code, and the memory's own hot-path [`Memory::line_of`]
    /// (a shift for power-of-two line widths, a division otherwise).
    /// They must agree for every allocated word under every policy,
    /// stride, and line width — including non-power-of-two widths.
    #[test]
    fn layout_map_matches_memory_line_of(
        wpl in 1usize..17,
        policy in policy_strategy(),
        lockco in any::<bool>(),
        regions in prop::collection::vec((1u32..7, 1usize..10), 1..4),
        metas in 0usize..3,
    ) {
        let b = MemoryBuilder::new().words_per_line(wpl);
        let cfg = PlacementConfig::new(policy).with_coresident_locks(lockco);
        let mut p = Placer::new(b, cfg);
        let mut meta_vars = Vec::new();
        for m in 0..metas {
            meta_vars.push(p.meta(&format!("meta{m}"), 0));
        }
        let mut arenas = Vec::new();
        for (i, &(stride, count)) in regions.iter().enumerate() {
            arenas.push((p.records(&format!("r{i}"), VarRole::Data, count, stride, 0), count, stride));
        }
        let (b, layout) = p.finish();
        prop_assert_eq!(layout.words_per_line(), wpl as u32);
        let mem = b.freeze(1);
        // Every word: the static map and the hot path agree.
        for w in 0..layout.words() {
            prop_assert_eq!(
                mem.line_of(VarId::from_index(w)).raw(),
                layout.line_of_word(w),
                "word {} under wpl {}", w, wpl
            );
        }
        // Every placed variable resolves back to its own line.
        for v in &meta_vars {
            prop_assert_eq!(mem.line_of(*v).raw(), layout.line_of(*v));
        }
        for (arena, count, stride) in &arenas {
            for r in 0..*count as u64 {
                for f in 0..*stride {
                    let v = arena.word(r, f);
                    prop_assert_eq!(mem.line_of(v).raw(), layout.line_of(v));
                }
            }
        }
    }
}
