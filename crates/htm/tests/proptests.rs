//! Property-based tests of the HTM substrate.

use elision_htm::{harness, HtmConfig, MemoryBuilder, VarId};
use proptest::prelude::*;

/// One step of a random single-threaded transactional program.
#[derive(Debug, Clone)]
enum Step {
    Load(u8),
    Store(u8, u64),
    Cas(u8, u64, u64),
    FetchAdd(u8, u64),
    Swap(u8, u64),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        any::<u8>().prop_map(Step::Load),
        (any::<u8>(), 0u64..100).prop_map(|(v, x)| Step::Store(v, x)),
        (any::<u8>(), 0u64..100, 0u64..100).prop_map(|(v, e, n)| Step::Cas(v, e, n)),
        (any::<u8>(), 1u64..10).prop_map(|(v, d)| Step::FetchAdd(v, d)),
        (any::<u8>(), 0u64..100).prop_map(|(v, x)| Step::Swap(v, x)),
    ]
}

const VARS: usize = 16;

fn var(i: u8) -> VarId {
    VarId::from_index((i as usize % VARS) as u32)
}

fn apply_model(model: &mut [u64; VARS], step: &Step) {
    match *step {
        Step::Load(_) => {}
        Step::Store(v, x) => model[v as usize % VARS] = x,
        Step::Cas(v, e, n) => {
            let slot = &mut model[v as usize % VARS];
            if *slot == e {
                *slot = n;
            }
        }
        Step::FetchAdd(v, d) => {
            let slot = &mut model[v as usize % VARS];
            *slot = slot.wrapping_add(d);
        }
        Step::Swap(v, x) => model[v as usize % VARS] = x,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A committed transaction's effects equal a sequential model's; an
    /// aborted transaction's effects are invisible.
    #[test]
    fn committed_txns_match_model_aborted_txns_vanish(
        steps in prop::collection::vec(step_strategy(), 1..40),
        commit in any::<bool>(),
    ) {
        let mut b = MemoryBuilder::new().words_per_line(4);
        b.alloc_array(VARS, 0);
        let mem = b.freeze(1);
        let steps2 = steps.clone();
        let (_, mem, _) = harness::run(1, 0, HtmConfig::deterministic(), 1, mem, move |s| {
            s.begin();
            for st in &steps2 {
                match *st {
                    Step::Load(v) => { s.load(var(v)).unwrap(); }
                    Step::Store(v, x) => s.store(var(v), x).unwrap(),
                    Step::Cas(v, e, n) => { s.cas(var(v), e, n).unwrap(); }
                    Step::FetchAdd(v, d) => { s.fetch_add(var(v), d).unwrap(); }
                    Step::Swap(v, x) => { s.swap(var(v), x).unwrap(); }
                }
            }
            if commit {
                s.commit().unwrap();
            } else {
                let _ = s.xabort(1, false);
            }
        });
        let mut model = [0u64; VARS];
        if commit {
            for st in &steps {
                apply_model(&mut model, st);
            }
        }
        for (i, &expected) in model.iter().enumerate() {
            prop_assert_eq!(mem.read_direct(VarId::from_index(i as u32)), expected);
        }
        prop_assert!(!mem.any_residual_bits());
    }

    /// Transactional reads observe the transaction's own earlier writes
    /// (read-your-writes) for arbitrary programs.
    #[test]
    fn read_your_writes(steps in prop::collection::vec(step_strategy(), 1..40)) {
        let mut b = MemoryBuilder::new().words_per_line(4);
        b.alloc_array(VARS, 0);
        let mem = b.freeze(1);
        let steps2 = steps.clone();
        harness::run(1, 0, HtmConfig::deterministic(), 1, mem, move |s| {
            let mut model = [0u64; VARS];
            s.begin();
            for st in &steps2 {
                match *st {
                    Step::Load(v) => {
                        assert_eq!(s.load(var(v)).unwrap(), model[v as usize % VARS]);
                    }
                    Step::Store(v, x) => s.store(var(v), x).unwrap(),
                    Step::Cas(v, e, n) => {
                        let old = s.cas(var(v), e, n).unwrap();
                        assert_eq!(old, model[v as usize % VARS]);
                    }
                    Step::FetchAdd(v, d) => {
                        let old = s.fetch_add(var(v), d).unwrap();
                        assert_eq!(old, model[v as usize % VARS]);
                    }
                    Step::Swap(v, x) => {
                        let old = s.swap(var(v), x).unwrap();
                        assert_eq!(old, model[v as usize % VARS]);
                    }
                }
                apply_model(&mut model, st);
            }
            s.commit().unwrap();
        });
    }

    /// Under any spurious-abort rate, a retry loop still completes every
    /// operation exactly once (no lost or duplicated updates), and all
    /// conflict bitmaps drain.
    #[test]
    fn retry_loops_survive_any_spurious_rate(
        rate in 0.0f64..0.9,
        per_access in 0.0f64..0.05,
        threads in 1usize..5,
    ) {
        let mut b = MemoryBuilder::new();
        let counter = b.alloc_isolated(0);
        let mem = b.freeze(threads);
        let cfg = HtmConfig::deterministic().with_spurious(rate, per_access);
        let ops = 30u64;
        let (_, mem, _) = harness::run(threads, 0, cfg, 11, mem, move |s| {
            for _ in 0..ops {
                loop {
                    let r = s.attempt(|s| {
                        let v = s.load(counter)?;
                        s.store(counter, v + 1)
                    });
                    if r.is_ok() {
                        break;
                    }
                }
            }
        });
        prop_assert_eq!(mem.read_direct(counter), threads as u64 * ops);
        prop_assert!(!mem.any_residual_bits());
    }
}
