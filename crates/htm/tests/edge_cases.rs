//! Edge cases of the transaction machinery that the scheme and lock
//! layers depend on but exercise only indirectly.

use elision_htm::{harness, AbortReason, HtmConfig, MemoryBuilder};

#[test]
fn empty_transaction_commits() {
    let mut b = MemoryBuilder::new();
    let _ = b.alloc(0);
    let mem = b.freeze(1);
    harness::run(1, 0, HtmConfig::deterministic(), 1, mem, move |s| {
        s.begin();
        s.commit().unwrap();
        assert_eq!(s.stats.commits, 1);
    });
}

#[test]
fn two_elided_locks_in_one_transaction() {
    // The true-nesting SCM variant can elide the main lock while the
    // (never-elided) aux lock stays untouched; more generally several
    // XACQUIREs may nest flatly. Both must be restored for commit.
    let mut b = MemoryBuilder::new();
    let lock_a = b.alloc_isolated(0);
    let lock_b = b.alloc_isolated(0);
    let mem = b.freeze(1);
    harness::run(1, 0, HtmConfig::deterministic(), 1, mem, move |s| {
        // Both restored: commits.
        s.begin();
        s.elide_rmw(lock_a, |_| 1).unwrap();
        s.elide_rmw(lock_b, |_| 1).unwrap();
        s.store(lock_b, 0).unwrap();
        s.store(lock_a, 0).unwrap();
        s.commit().unwrap();
        // Only one restored: restore check fails.
        s.begin();
        s.elide_rmw(lock_a, |_| 1).unwrap();
        s.elide_rmw(lock_b, |_| 1).unwrap();
        s.store(lock_a, 0).unwrap();
        let err = s.commit().unwrap_err();
        assert_eq!(err.reason, AbortReason::HleRestore);
        assert_eq!(s.memory().read_direct(lock_a), 0);
        assert_eq!(s.memory().read_direct(lock_b), 0);
    });
}

#[test]
fn rmw_on_elided_var_stays_an_illusion() {
    // The adapted ticket/CLH releases CAS the elided lock word back; the
    // CAS must operate on the illusion and must not promote the line into
    // the write set (which would make concurrent eliders conflict).
    let mut b = MemoryBuilder::new();
    let lock = b.alloc_isolated(7);
    let mem = b.freeze(2);
    let (results, mem, _) = harness::run(2, 0, HtmConfig::deterministic(), 1, mem, move |s| {
        let r = s.attempt(|s| {
            let old = s.elide_rmw(lock, |v| v + 1)?;
            assert_eq!(old, 7);
            // Illusion visible to self...
            assert_eq!(s.load(lock)?, 8);
            // ...CAS it back on the illusion.
            let prev = s.cas(lock, 8, 7)?;
            assert_eq!(prev, 8);
            Ok(())
        });
        r.is_ok()
    });
    assert_eq!(results, vec![true, true], "concurrent elided CAS must not conflict");
    assert_eq!(mem.read_direct(lock), 7);
}

#[test]
fn nontransactional_read_does_not_doom_elider() {
    // An elided lock lives in the READ set only: a plain read of the lock
    // word (e.g. a TTAS arrival testing the lock) must not abort eliders.
    let mut b = MemoryBuilder::new();
    let lock = b.alloc_isolated(0);
    let mem = b.freeze(2);
    let (results, ..) = harness::run(2, 0, HtmConfig::deterministic(), 1, mem, move |s| {
        if s.tid() == 0 {
            s.begin();
            s.elide_rmw(lock, |_| 1).unwrap();
            for _ in 0..100 {
                if s.work(5).is_err() {
                    return false;
                }
            }
            s.store(lock, 0).unwrap();
            s.commit().is_ok()
        } else {
            for _ in 0..40 {
                let v = s.load(lock).unwrap();
                assert_eq!(v, 0, "elided acquisition must stay invisible");
                s.work(10).unwrap();
            }
            true
        }
    });
    assert!(results[0], "plain reads of the lock doomed the elider");
}

#[test]
fn failed_nontxn_cas_still_dooms_speculative_writers() {
    // Even a CAS that loses still issued a coherence request for the
    // line: a speculative writer of that line must abort.
    let mut b = MemoryBuilder::new();
    let x = b.alloc_isolated(5);
    let mem = b.freeze(2);
    let (results, ..) = harness::run(2, 0, HtmConfig::deterministic(), 1, mem, move |s| {
        if s.tid() == 0 {
            s.begin();
            s.store(x, 9).unwrap();
            for _ in 0..10_000 {
                if s.work(1).is_err() {
                    return Some(s.last_abort().reason);
                }
            }
            None
        } else {
            s.work(200).unwrap();
            let old = s.cas(x, 42, 43).unwrap(); // fails: x == 5
            assert_eq!(old, 5);
            None
        }
    });
    assert_eq!(results[0], Some(AbortReason::Conflict));
}

#[test]
fn stale_doom_does_not_kill_next_transaction() {
    // T1 aborts T0's transaction; T0's *next* transaction must be
    // unaffected by the stale doom word.
    let mut b = MemoryBuilder::new();
    let x = b.alloc_isolated(0);
    let y = b.alloc_isolated(0);
    let mem = b.freeze(2);
    let (results, ..) = harness::run(2, 0, HtmConfig::deterministic(), 1, mem, move |s| {
        if s.tid() == 0 {
            // First transaction: gets doomed.
            s.begin();
            s.load(x).unwrap();
            let mut doomed = false;
            for _ in 0..10_000 {
                if s.work(1).is_err() {
                    doomed = true;
                    break;
                }
            }
            assert!(doomed, "setup: first transaction should have been doomed");
            // Second transaction on unrelated data: must commit cleanly.
            let r = s.attempt(|s| {
                let v = s.load(y)?;
                s.store(y, v + 1)
            });
            r.is_ok()
        } else {
            s.work(200).unwrap();
            s.store(x, 1).unwrap();
            true
        }
    });
    assert!(results[0], "stale doom leaked into the next transaction");
}

#[test]
fn conflict_line_is_reported_in_abort_status() {
    let mut b = MemoryBuilder::new();
    let x = b.alloc_isolated(0);
    let mem = b.freeze(2);
    let (results, mem, _) = harness::run(2, 0, HtmConfig::deterministic(), 1, mem, move |s| {
        if s.tid() == 0 {
            s.begin();
            s.load(x).unwrap();
            for _ in 0..10_000 {
                if s.work(1).is_err() {
                    return s.last_abort().conflict_line;
                }
            }
            None
        } else {
            s.work(200).unwrap();
            s.store(x, 1).unwrap();
            None
        }
    });
    let expected = mem.line_of(x);
    assert_eq!(results[0], Some(expected.raw()), "abort status must name the conflicting line");
}

#[test]
fn work_and_spin_never_fail_outside_transactions() {
    let mut b = MemoryBuilder::new();
    let _ = b.alloc(0);
    let mem = b.freeze(1);
    harness::run(1, 0, HtmConfig::deterministic().with_spurious(1.0, 1.0), 1, mem, move |s| {
        // Even with maximal spurious-abort settings, non-transactional
        // bookkeeping operations cannot fail.
        for _ in 0..100 {
            s.work(3).unwrap();
            s.spin().unwrap();
        }
    });
}
