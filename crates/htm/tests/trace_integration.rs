//! Tests of the execution-trace facility wired through the HTM layer.

use elision_htm::{harness, HtmConfig, MemoryBuilder};
use elision_sim::{AbortCause, TraceEvent};

#[test]
fn trace_records_txn_lifecycle() {
    let mut b = MemoryBuilder::new();
    let x = b.alloc_isolated(0);
    let mem = b.freeze(1);
    harness::run(1, 0, HtmConfig::deterministic(), 1, mem, move |s| {
        s.enable_trace(64);
        // One committed transaction.
        s.begin();
        s.store(x, 1).unwrap();
        s.commit().unwrap();
        // One explicit abort.
        s.begin();
        let _ = s.xabort(7, false);
        let ring = s.trace.as_ref().expect("trace enabled");
        let kinds: Vec<TraceEvent> = ring.events().map(|&(_, e)| e).collect();
        assert_eq!(
            kinds,
            vec![
                TraceEvent::TxnBegin,
                TraceEvent::TxnCommit,
                TraceEvent::TxnBegin,
                TraceEvent::TxnAbort(AbortCause::Explicit),
            ]
        );
        // Timestamps are non-decreasing.
        let times: Vec<u64> = ring.events().map(|&(t, _)| t).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    });
}

#[test]
fn trace_distinguishes_abort_causes() {
    let mut b = MemoryBuilder::new().words_per_line(1);
    let vars = b.alloc_array(8, 0);
    let mem = b.freeze(1);
    let cfg = HtmConfig::deterministic().with_capacity(64, 2);
    harness::run(1, 0, cfg, 1, mem, move |s| {
        s.enable_trace(64);
        s.begin();
        for k in 0.. {
            if s.store(elision_htm::VarId::from_index(vars.index() + k), 1).is_err() {
                break;
            }
        }
        let ring = s.trace.as_ref().expect("trace enabled");
        assert_eq!(
            ring.count(|e| matches!(e, TraceEvent::TxnAbort(AbortCause::Capacity))),
            1,
            "capacity cause"
        );
    });
}

#[test]
fn trace_is_bounded() {
    let mut b = MemoryBuilder::new();
    let x = b.alloc_isolated(0);
    let mem = b.freeze(1);
    harness::run(1, 0, HtmConfig::deterministic(), 1, mem, move |s| {
        s.enable_trace(4);
        for _ in 0..10 {
            s.begin();
            s.store(x, 1).unwrap();
            s.commit().unwrap();
        }
        let ring = s.trace.as_ref().expect("trace enabled");
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 16);
        assert!(!ring.dump().is_empty());
    });
}
