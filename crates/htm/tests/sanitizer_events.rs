//! Tests of the sanitizer event log wired through the HTM layer.

use elision_htm::{harness, HtmConfig, MemoryBuilder, SanAccess};
use elision_sim::AbortCause;

#[test]
fn strand_records_txn_lifecycle_in_order() {
    let mut b = MemoryBuilder::new();
    let x = b.alloc_isolated(7);
    b.enable_sanitizer();
    let mem = b.freeze(1);
    let (_, mem, _) = harness::run(1, 0, HtmConfig::deterministic(), 1, mem, move |s| {
        s.begin();
        let v = s.load(x).unwrap();
        s.store(x, v + 1).unwrap();
        s.commit().unwrap();
    });
    let log = mem.san_log().expect("sanitizer enabled");
    let accesses: Vec<SanAccess> = log.snapshot().iter().map(|e| e.access).collect();
    assert_eq!(
        accesses,
        vec![
            SanAccess::TxnBegin,
            SanAccess::Read { var: x, value: 7, txn: true },
            SanAccess::Write { var: x, value: 8, txn: true },
            SanAccess::TxnCommit,
        ]
    );
    assert_eq!(log.initial_values()[x.index() as usize], 7);
}

#[test]
fn aborts_and_plain_accesses_are_logged() {
    let mut b = MemoryBuilder::new();
    let x = b.alloc_isolated(0);
    b.enable_sanitizer();
    let mem = b.freeze(1);
    let (_, mem, _) = harness::run(1, 0, HtmConfig::deterministic(), 1, mem, move |s| {
        s.begin();
        let _ = s.xabort(7, false);
        s.store(x, 3).unwrap();
        assert_eq!(s.fetch_add(x, 2).unwrap(), 3);
    });
    let log = mem.san_log().expect("sanitizer enabled");
    let accesses: Vec<SanAccess> = log.snapshot().iter().map(|e| e.access).collect();
    assert_eq!(
        accesses,
        vec![
            SanAccess::TxnBegin,
            SanAccess::TxnAbort { cause: AbortCause::Explicit },
            SanAccess::Write { var: x, value: 3, txn: false },
            SanAccess::Read { var: x, value: 3, txn: false },
            SanAccess::Write { var: x, value: 5, txn: false },
        ]
    );
}

#[test]
fn doomed_transactions_publish_nothing() {
    let mut b = MemoryBuilder::new();
    let x = b.alloc_isolated(0);
    b.enable_sanitizer();
    let mem = b.freeze(2);
    let (_, mem, _) = harness::run(2, 0, HtmConfig::deterministic(), 1, mem, move |s| {
        if s.tid() == 0 {
            s.begin();
            let _ = s.store(x, 42);
            for _ in 0..10_000 {
                if s.work(1).is_err() {
                    return;
                }
            }
        } else {
            s.work(200).unwrap();
            s.store(x, 5).unwrap();
        }
    });
    let log = mem.san_log().expect("sanitizer enabled");
    // The doomed transaction's buffered write of 42 never appears.
    assert!(log.snapshot().iter().all(|e| !matches!(e.access, SanAccess::Write { value: 42, .. })));
    // The plain write of 5 does.
    assert!(log
        .snapshot()
        .iter()
        .any(|e| e.access == SanAccess::Write { var: x, value: 5, txn: false }));
}
