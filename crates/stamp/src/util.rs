//! Small shared utilities for the kernels.

use elision_htm::{Strand, VarId};

/// A sense-free counting barrier over a simulated word.
///
/// `phase` counts from 1; each thread increments the counter once per
/// phase and spins (in logical time) until all `threads` arrivals of that
/// phase are in.
pub(crate) fn sim_barrier(s: &mut Strand, var: VarId, threads: usize, phase: u64) {
    s.fetch_add(var, 1).expect("barrier increment is non-transactional");
    let target = phase * threads as u64;
    loop {
        let v = s.load(var).expect("barrier read is non-transactional");
        if v >= target {
            return;
        }
        s.spin().expect("barrier spin is non-transactional");
    }
}

/// Splits `total` items into a strided share for thread `tid` of
/// `threads`: yields the item indices `tid, tid + threads, ...`.
pub(crate) fn strided(total: usize, tid: usize, threads: usize) -> impl Iterator<Item = usize> {
    (tid..total).step_by(threads.max(1))
}
