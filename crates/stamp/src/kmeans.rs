//! `kmeans` — partition-based clustering.
//!
//! STAMP's kmeans assigns points to their nearest centroid (pure
//! computation plus reads of the centroid array) and then updates the
//! chosen cluster's accumulator inside a transaction. The transaction is
//! short — a handful of adds — and the contention level is set by the
//! number of clusters: STAMP's "high" configuration uses few clusters
//! (every thread hammers the same accumulators), "low" uses many.

use crate::runner::{Kernel, StampParams};
use crate::util::strided;
use elision_core::Scheme;
use elision_htm::{Memory, MemoryBuilder, Strand, VarId};
use elision_sim::DetRng;

/// Point dimensionality.
const DIM: usize = 2;
/// Coordinate range.
const COORD: u64 = 1024;

pub(crate) struct Kmeans {
    /// Host-side input points (thread-private, as in STAMP).
    points: Vec<[u64; DIM]>,
    k: usize,
    /// Initial centroid positions (read via plain loads during
    /// assignment).
    centroids: VarId,
    /// Per-cluster accumulators: `k * (DIM sums + 1 count)`.
    sums: VarId,
}

impl Kmeans {
    pub(crate) fn new(
        b: &mut MemoryBuilder,
        _threads: usize,
        params: &StampParams,
        high: bool,
    ) -> Self {
        let n_points = if params.quick { 320 } else { 2400 };
        let k = if high { 6 } else { 24 };
        let mut rng = DetRng::new(params.seed, if high { 0x4EA1 } else { 0x4EA2 });
        let points: Vec<[u64; DIM]> =
            (0..n_points).map(|_| std::array::from_fn(|_| rng.below(COORD))).collect();
        b.pad_to_line();
        let centroids = b.alloc_array(k * DIM, 0);
        b.pad_to_line();
        let sums = b.alloc_array(k * (DIM + 1), 0);
        b.pad_to_line();
        Kmeans { points, k, centroids, sums }
    }

    fn centroid_var(&self, c: usize, d: usize) -> VarId {
        VarId::from_index(self.centroids.index() + (c * DIM + d) as u32)
    }

    fn sum_var(&self, c: usize, d: usize) -> VarId {
        VarId::from_index(self.sums.index() + (c * (DIM + 1) + d) as u32)
    }

    fn count_var(&self, c: usize) -> VarId {
        self.sum_var(c, DIM)
    }
}

impl Kernel for Kmeans {
    fn init(&self, mem: &Memory) {
        // Spread initial centroids deterministically over the coordinate
        // space.
        for c in 0..self.k {
            for d in 0..DIM {
                let v = (c as u64 * 2 + d as u64 + 1) * COORD / (2 * self.k as u64 + DIM as u64);
                mem.write_direct(self.centroid_var(c, d), v);
            }
        }
    }

    fn run_thread(&self, s: &mut Strand, scheme: &Scheme, threads: usize) {
        let tid = s.tid();
        for i in strided(self.points.len(), tid, threads) {
            let p = self.points[i];
            // Assignment: plain reads of the centroid array plus distance
            // arithmetic (charged as work).
            let mut best = 0usize;
            let mut best_d = u64::MAX;
            for c in 0..self.k {
                let mut dist = 0u64;
                for (d, &coord) in p.iter().enumerate() {
                    let cv = s.load(self.centroid_var(c, d)).expect("plain centroid read");
                    let delta = coord.abs_diff(cv);
                    dist += delta * delta;
                }
                s.work(12).expect("distance computation");
                if dist < best_d {
                    best_d = dist;
                    best = c;
                }
            }
            // Update: the transactional accumulator bump.
            scheme.execute(s, |s| {
                for (d, &coord) in p.iter().enumerate() {
                    let v = s.load(self.sum_var(best, d))?;
                    s.store(self.sum_var(best, d), v + coord)?;
                }
                let n = s.load(self.count_var(best))?;
                s.store(self.count_var(best), n + 1)
            });
        }
    }

    fn verify(&self, mem: &Memory) -> Result<(), String> {
        let mut total_count = 0u64;
        let mut total_sums = [0u64; DIM];
        for c in 0..self.k {
            total_count += mem.read_direct(self.count_var(c));
            for (d, slot) in total_sums.iter_mut().enumerate() {
                *slot += mem.read_direct(self.sum_var(c, d));
            }
        }
        if total_count != self.points.len() as u64 {
            return Err(format!(
                "accumulated {total_count} points, expected {}",
                self.points.len()
            ));
        }
        for (d, &got) in total_sums.iter().enumerate() {
            let expected: u64 = self.points.iter().map(|p| p[d]).sum();
            if got != expected {
                return Err(format!("dimension {d} sums to {got}, expected {expected}"));
            }
        }
        Ok(())
    }
}
