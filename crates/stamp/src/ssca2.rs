//! `ssca2` — scalable synthetic compact applications, kernel 1.
//!
//! STAMP's ssca2 builds a large directed multigraph: each transaction
//! appends one edge to a node's adjacency array. Transactions are tiny
//! (three accesses) and contention is very low — two threads conflict
//! only when inserting edges at the same source node simultaneously.

use crate::runner::{Kernel, StampParams};
use crate::util::strided;
use elision_core::Scheme;
use elision_htm::{Memory, MemoryBuilder, Strand, VarId};
use elision_sim::DetRng;

pub(crate) struct Ssca2 {
    /// Edge list (host-side input, as in STAMP's generated tuples).
    edges: Vec<(u64, u64)>,
    n_nodes: usize,
    max_degree: usize,
    /// Per-node out-degree counters.
    deg: VarId,
    /// Flattened adjacency storage: node * max_degree + slot.
    adj: VarId,
}

impl Ssca2 {
    pub(crate) fn new(b: &mut MemoryBuilder, _threads: usize, params: &StampParams) -> Self {
        let (n_nodes, n_edges, max_degree) =
            if params.quick { (64, 300, 12) } else { (256, 2400, 16) };
        let mut rng = DetRng::new(params.seed, 0x55CA2);
        // Cap per-node degree during generation so the arena never
        // overflows.
        let mut degree = vec![0usize; n_nodes];
        let mut edges = Vec::with_capacity(n_edges);
        while edges.len() < n_edges {
            let u = rng.below(n_nodes as u64);
            if degree[u as usize] >= max_degree {
                continue;
            }
            degree[u as usize] += 1;
            let v = rng.below(n_nodes as u64);
            edges.push((u, v));
        }
        b.pad_to_line();
        let deg = b.alloc_array(n_nodes, 0);
        b.pad_to_line();
        let adj = b.alloc_array(n_nodes * max_degree, u64::MAX);
        b.pad_to_line();
        Ssca2 { edges, n_nodes, max_degree, deg, adj }
    }

    fn deg_var(&self, node: u64) -> VarId {
        VarId::from_index(self.deg.index() + node as u32)
    }

    fn adj_var(&self, node: u64, slot: u64) -> VarId {
        VarId::from_index(self.adj.index() + (node as u32 * self.max_degree as u32) + slot as u32)
    }
}

impl Kernel for Ssca2 {
    fn init(&self, _mem: &Memory) {}

    fn run_thread(&self, s: &mut Strand, scheme: &Scheme, threads: usize) {
        let tid = s.tid();
        for i in strided(self.edges.len(), tid, threads) {
            let (u, v) = self.edges[i];
            s.work(2).expect("host-side tuple decode");
            scheme.execute(s, |s| {
                let d = s.load(self.deg_var(u))?;
                s.store(self.adj_var(u, d), v)?;
                s.store(self.deg_var(u), d + 1)
            });
        }
    }

    fn verify(&self, mem: &Memory) -> Result<(), String> {
        let mut total = 0u64;
        for n in 0..self.n_nodes as u64 {
            let d = mem.read_direct(self.deg_var(n));
            if d > self.max_degree as u64 {
                return Err(format!("node {n} overflowed its adjacency array ({d})"));
            }
            for slot in 0..d {
                let v = mem.read_direct(self.adj_var(n, slot));
                if v >= self.n_nodes as u64 {
                    return Err(format!("node {n} slot {slot} holds bogus target {v}"));
                }
            }
            total += d;
        }
        if total != self.edges.len() as u64 {
            return Err(format!("inserted {total} edges, expected {}", self.edges.len()));
        }
        // Cross-check per-node degrees against the input.
        for n in 0..self.n_nodes as u64 {
            let expected = self.edges.iter().filter(|&&(u, _)| u == n).count() as u64;
            let got = mem.read_direct(self.deg_var(n));
            if got != expected {
                return Err(format!("node {n} has degree {got}, expected {expected}"));
            }
        }
        Ok(())
    }
}
