//! `vacation` — an in-memory travel reservation system.
//!
//! STAMP's vacation runs client transactions against four tables (cars,
//! flights, rooms, customers). Each reservation transaction performs
//! several queries (table lookups) and then books the cheapest available
//! resource, updating both the resource's availability and the customer's
//! bill. The "high" configuration issues more queries per transaction
//! over a smaller key range (longer transactions, more overlap) than
//! "low".

use crate::runner::{Kernel, StampParams};
use elision_core::Scheme;
use elision_htm::{Memory, MemoryBuilder, Strand, VarId};
use elision_structures::HashTable;

const N_TABLES: usize = 3; // cars, flights, rooms
const INIT_AVAIL: u64 = 12;

fn price(table: usize, resource: u64) -> u64 {
    50 + (resource * 7 + table as u64 * 13) % 100
}

pub(crate) struct Vacation {
    /// Resource tables: key -> remaining availability.
    tables: [HashTable; N_TABLES],
    /// Customer bills: customer -> accumulated price.
    customers: HashTable,
    /// Per-thread bookkeeping (each on its own line, transactional but
    /// conflict-free): reservations made, price billed, availability
    /// units added by update operations.
    reserved: Vec<VarId>,
    billed: Vec<VarId>,
    added: Vec<VarId>,
    resources: u64,
    n_customers: u64,
    queries: usize,
    ops_per_thread: usize,
}

impl Vacation {
    pub(crate) fn new(
        b: &mut MemoryBuilder,
        threads: usize,
        params: &StampParams,
        high: bool,
    ) -> Self {
        let resources: u64 = if high { 48 } else { 192 };
        let queries = if high { 6 } else { 2 };
        let ops_per_thread = if params.quick { 60 } else { 350 };
        let n_customers = 64;
        let cap = resources as usize + 8;
        let tables = std::array::from_fn(|_| {
            HashTable::new(b, (resources as usize / 4).max(8), cap, threads)
        });
        let customers = HashTable::new(b, 16, n_customers as usize + 8, threads);
        Vacation {
            tables,
            customers,
            reserved: (0..threads).map(|_| b.alloc_isolated(0)).collect(),
            billed: (0..threads).map(|_| b.alloc_isolated(0)).collect(),
            added: (0..threads).map(|_| b.alloc_isolated(0)).collect(),
            resources,
            n_customers,
            queries,
            ops_per_thread,
        }
    }
}

impl Kernel for Vacation {
    fn init(&self, mem: &Memory) {
        for t in &self.tables {
            t.init(mem);
        }
        self.customers.init(mem);
        // Populate tables directly (pre-run): go through a throwaway
        // free-list-compatible path by writing the collected layout via
        // direct ops is fragile; instead run the put()s through direct
        // writes is not possible for a chained table — so tables start
        // empty and we record initial availability lazily: a missing key
        // means INIT_AVAIL remaining.
        let _ = mem;
    }

    fn run_thread(&self, s: &mut Strand, scheme: &Scheme, _threads: usize) {
        let tid = s.tid();
        for _ in 0..self.ops_per_thread {
            let action = s.rng.below(100);
            if action < 90 {
                // Reservation: query `queries` random resources, book the
                // cheapest available one for a random customer.
                let customer = s.rng.below(self.n_customers);
                let picks: Vec<(usize, u64)> = (0..self.queries)
                    .map(|_| (s.rng.below(N_TABLES as u64) as usize, s.rng.below(self.resources)))
                    .collect();
                let reserved_var = self.reserved[tid];
                let billed_var = self.billed[tid];
                scheme.execute(s, |s| {
                    let mut best: Option<(usize, u64, u64)> = None;
                    for &(t, r) in &picks {
                        let avail = self.tables[t].get(s, r)?.unwrap_or(INIT_AVAIL);
                        if avail > 0 {
                            let p = price(t, r);
                            if best.is_none_or(|(_, _, bp)| p < bp) {
                                best = Some((t, r, p));
                            }
                        }
                    }
                    if let Some((t, r, p)) = best {
                        let avail = self.tables[t].get(s, r)?.unwrap_or(INIT_AVAIL);
                        self.tables[t].put(s, r, avail - 1)?;
                        let bill = self.customers.get(s, customer)?.unwrap_or(0);
                        self.customers.put(s, customer, bill + p)?;
                        let n = s.load(reserved_var)?;
                        s.store(reserved_var, n + 1)?;
                        let b = s.load(billed_var)?;
                        s.store(billed_var, b + p)?;
                    }
                    Ok(())
                });
            } else {
                // Management operation: restock a random resource.
                let t = s.rng.below(N_TABLES as u64) as usize;
                let r = s.rng.below(self.resources);
                let added_var = self.added[tid];
                scheme.execute(s, |s| {
                    let avail = self.tables[t].get(s, r)?.unwrap_or(INIT_AVAIL);
                    self.tables[t].put(s, r, avail + 1)?;
                    let a = s.load(added_var)?;
                    s.store(added_var, a + 1)
                });
            }
            s.work(8).expect("client think time");
        }
    }

    fn verify(&self, mem: &Memory) -> Result<(), String> {
        let reserved: u64 = self.reserved.iter().map(|&v| mem.read_direct(v)).sum();
        let billed: u64 = self.billed.iter().map(|&v| mem.read_direct(v)).sum();
        let added: u64 = self.added.iter().map(|&v| mem.read_direct(v)).sum();
        // Availability conservation: every explicitly stored entry
        // deviates from INIT_AVAIL by (restocks - reservations) for that
        // key; untouched keys are implicitly at INIT_AVAIL.
        let mut delta_sum: i64 = 0;
        for t in &self.tables {
            for (_k, avail) in t.collect(mem) {
                delta_sum += avail as i64 - INIT_AVAIL as i64;
            }
        }
        let expected_delta = added as i64 - reserved as i64;
        if delta_sum != expected_delta {
            return Err(format!(
                "availability delta {delta_sum} != restocks - reservations ({expected_delta})"
            ));
        }
        // Billing conservation: customer bills must sum to the recorded
        // total.
        let bills: u64 = self.customers.collect(mem).into_iter().map(|(_, b)| b).sum();
        if bills != billed {
            return Err(format!("customer bills sum to {bills}, expected {billed}"));
        }
        Ok(())
    }
}
