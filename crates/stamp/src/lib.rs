//! STAMP-style application kernels over the simulated HTM.
//!
//! The paper's Figure 11 evaluates the elision schemes on the STAMP
//! benchmark suite with every transaction replaced by a critical section
//! under one global lock. This crate re-implements the eight evaluated
//! applications (bayes is excluded, as in the paper) as Rust kernels over
//! the simulated transactional memory. Each kernel preserves the original
//! application's *transaction profile* — length, read/write-set size and
//! contention level — which is what Figure 11's relative numbers depend
//! on:
//!
//! | kernel | txn length | r/w set | contention |
//! |---|---|---|---|
//! | genome | short | small | moderate (hash buckets) |
//! | intruder | short | small | high (shared queues) |
//! | kmeans-high | short | small | high (few centroids) |
//! | kmeans-low | short | small | low (many centroids) |
//! | labyrinth | very long | large | low-moderate (path overlap) |
//! | yada | long | medium | moderate (cavity overlap) |
//! | ssca2 | tiny | tiny | very low |
//! | vacation-high | medium | medium | moderate |
//! | vacation-low | medium | small | low |
//!
//! Every kernel ships a cheap `verify` that checks a conservation
//! property of the final state against the generated input, so the whole
//! Figure 11 pipeline is self-checking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod genome;
mod intruder;
mod kmeans;
mod labyrinth;
mod runner;
mod ssca2;
mod util;
mod vacation;
mod yada;

pub use runner::{build_kernel, run_kernel, Kernel, KernelKind, StampParams, StampRun};

#[cfg(test)]
mod tests {
    use super::*;
    use elision_core::{LockKind, SchemeKind};
    use elision_htm::HtmConfig;

    fn quick_run(kind: KernelKind, scheme: SchemeKind, lock: LockKind, threads: usize) -> StampRun {
        run_kernel(
            kind,
            scheme,
            lock,
            threads,
            &StampParams::quick(),
            0,
            HtmConfig::deterministic(),
        )
    }

    #[test]
    fn every_kernel_verifies_single_threaded_standard() {
        for kind in KernelKind::ALL {
            let run = quick_run(kind, SchemeKind::Standard, LockKind::Ttas, 1);
            assert!(run.makespan > 0, "{kind} did no work");
            assert_eq!(run.counters.speculative, 0);
        }
    }

    #[test]
    fn every_kernel_verifies_under_hle_scm_mcs() {
        for kind in KernelKind::ALL {
            let run = quick_run(kind, SchemeKind::HleScm, LockKind::Mcs, 4);
            assert!(run.counters.completed() > 0, "{kind} completed nothing");
        }
    }

    #[test]
    fn every_kernel_verifies_under_opt_slr_ttas() {
        for kind in KernelKind::ALL {
            let run = quick_run(kind, SchemeKind::OptSlr, LockKind::Ttas, 4);
            assert!(run.counters.completed() > 0, "{kind} completed nothing");
        }
    }

    #[test]
    fn every_kernel_verifies_under_plain_hle() {
        for kind in KernelKind::ALL {
            for lock in [LockKind::Ttas, LockKind::Mcs] {
                let run = quick_run(kind, SchemeKind::Hle, lock, 2);
                assert!(run.counters.completed() > 0, "{kind}/{lock} completed nothing");
            }
        }
    }

    #[test]
    fn kmeans_contention_profiles_differ() {
        // High contention (few clusters) must abort more than low
        // contention (many clusters) under the same scheme.
        let high = quick_run(KernelKind::KmeansHigh, SchemeKind::OptSlr, LockKind::Ttas, 4);
        let low = quick_run(KernelKind::KmeansLow, SchemeKind::OptSlr, LockKind::Ttas, 4);
        assert!(
            high.counters.aborted >= low.counters.aborted,
            "kmeans_high aborted {} < kmeans_low {}",
            high.counters.aborted,
            low.counters.aborted
        );
    }

    #[test]
    fn ssca2_is_mostly_conflict_free() {
        let run = quick_run(KernelKind::Ssca2, SchemeKind::OptSlr, LockKind::Ttas, 4);
        assert!(
            run.counters.frac_nonspeculative() < 0.1,
            "ssca2 should run speculatively (frac_nonspec {})",
            run.counters.frac_nonspeculative()
        );
    }

    #[test]
    fn labyrinth_has_long_transactions() {
        // Routing transactions read large grid regions: per-completed-op
        // simulated time must dwarf ssca2's tiny transactions.
        let lab = quick_run(KernelKind::Labyrinth, SchemeKind::Standard, LockKind::Ttas, 2);
        let ssca = quick_run(KernelKind::Ssca2, SchemeKind::Standard, LockKind::Ttas, 2);
        let per_op = |r: &StampRun| r.makespan as f64 / r.counters.completed() as f64;
        assert!(per_op(&lab) > 5.0 * per_op(&ssca));
    }

    #[test]
    fn runs_are_deterministic_in_strict_mode() {
        let a = quick_run(KernelKind::Genome, SchemeKind::HleScm, LockKind::Mcs, 3);
        let b = quick_run(KernelKind::Genome, SchemeKind::HleScm, LockKind::Mcs, 3);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.counters, b.counters);
    }
}
