//! `genome` — gene sequencing.
//!
//! STAMP's genome runs three phases: deduplicate DNA segments in a shared
//! hash set, match overlapping segments into links, and walk the links to
//! assemble the sequence. The first two phases are short transactions
//! over hash buckets with moderate contention; assembly is read-dominated
//! walks. Here segments are 64-bit ids drawn (with duplicates) from a
//! contiguous pool; phase 2 links each present id to its successor id and
//! phase 3 walks maximal link chains ("contigs").

use crate::runner::{Kernel, StampParams};
use crate::util::{sim_barrier, strided};
use elision_core::Scheme;
use elision_htm::{Memory, MemoryBuilder, Strand, VarId};
use elision_sim::DetRng;
use elision_structures::HashTable;
use std::collections::BTreeSet;

pub(crate) struct Genome {
    /// Input segments (thread-private reads; host-side like STAMP's
    /// per-thread input buffers).
    segments: Vec<u64>,
    /// Distinct segment ids (reference for verification).
    unique: BTreeSet<u64>,
    /// Shared dedup set.
    table: HashTable,
    /// Shared successor links.
    links: HashTable,
    barrier: VarId,
    /// Per-thread contig tally (own cache line each; written inside the
    /// assembly transactions without cross-thread conflicts).
    contigs: Vec<VarId>,
    domain: u64,
}

impl Genome {
    pub(crate) fn new(b: &mut MemoryBuilder, threads: usize, params: &StampParams) -> Self {
        let (n_segments, domain) = if params.quick { (240, 96) } else { (1600, 512) };
        let mut rng = DetRng::new(params.seed, 0xF00D);
        let segments: Vec<u64> = (0..n_segments).map(|_| rng.below(domain)).collect();
        let unique: BTreeSet<u64> = segments.iter().copied().collect();
        let cap = domain as usize + 8;
        Genome {
            segments,
            unique,
            table: HashTable::new(b, (domain as usize / 4).max(8), cap, threads),
            links: HashTable::new(b, (domain as usize / 4).max(8), cap, threads),
            barrier: b.alloc_isolated(0),
            contigs: (0..threads).map(|_| b.alloc_isolated(0)).collect(),
            domain,
        }
    }

    fn expected_links(&self) -> usize {
        self.unique.iter().filter(|&&v| self.unique.contains(&(v + 1))).count()
    }

    /// Number of maximal runs of consecutive ids in the unique set — the
    /// contigs phase 3 must assemble.
    fn expected_contigs(&self) -> u64 {
        self.unique.iter().filter(|&&v| v == 0 || !self.unique.contains(&(v - 1))).count() as u64
    }
}

impl Kernel for Genome {
    fn init(&self, mem: &Memory) {
        self.table.init(mem);
        self.links.init(mem);
    }

    fn run_thread(&self, s: &mut Strand, scheme: &Scheme, threads: usize) {
        let tid = s.tid();
        // Phase 1: deduplicate segments into the shared set.
        for i in strided(self.segments.len(), tid, threads) {
            let seg = self.segments[i];
            s.work(4).expect("host-side segment parsing");
            scheme.execute(s, |s| self.table.put(s, seg, 1));
        }
        sim_barrier(s, self.barrier, threads, 1);
        // Phase 2: link each present segment to its successor.
        for v in strided(self.domain as usize, tid, threads) {
            let v = v as u64;
            s.work(2).expect("host-side overlap scoring");
            scheme.execute(s, |s| {
                if self.table.get(s, v)?.is_some() && self.table.get(s, v + 1)?.is_some() {
                    self.links.put(s, v, v + 1)?;
                }
                Ok(())
            });
        }
        sim_barrier(s, self.barrier, threads, 2);
        // Phase 3: assemble contigs — walk each maximal link chain from
        // its start (read-dominated transactions).
        let tally = self.contigs[tid];
        for v in strided(self.domain as usize, tid, threads) {
            let v = v as u64;
            scheme.execute(s, |s| {
                let is_start = self.table.get(s, v)?.is_some()
                    && (v == 0 || self.table.get(s, v - 1)?.is_none());
                if !is_start {
                    return Ok(());
                }
                let mut cur = v;
                while let Some(next) = self.links.get(s, cur)? {
                    cur = next;
                }
                s.work(3)?; // emit the assembled contig
                let n = s.load(tally)?;
                s.store(tally, n + 1)
            });
        }
    }

    fn verify(&self, mem: &Memory) -> Result<(), String> {
        let present: Vec<u64> = self.table.collect(mem).into_iter().map(|(k, _)| k).collect();
        let expected: Vec<u64> = self.unique.iter().copied().collect();
        if present != expected {
            return Err(format!(
                "dedup set has {} entries, expected {}",
                present.len(),
                expected.len()
            ));
        }
        let links = self.links.collect(mem);
        if links.len() != self.expected_links() {
            return Err(format!("found {} links, expected {}", links.len(), self.expected_links()));
        }
        for (v, succ) in links {
            if succ != v + 1 || !self.unique.contains(&v) || !self.unique.contains(&succ) {
                return Err(format!("bogus link {v} -> {succ}"));
            }
        }
        let contigs: u64 = self.contigs.iter().map(|&c| mem.read_direct(c)).sum();
        if contigs != self.expected_contigs() {
            return Err(format!(
                "assembled {contigs} contigs, expected {}",
                self.expected_contigs()
            ));
        }
        Ok(())
    }
}
