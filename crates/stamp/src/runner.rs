//! The kernel registry and the shared run pipeline used by Figure 11.

use crate::{genome, intruder, kmeans, labyrinth, ssca2, vacation, yada};
use elision_core::{make_scheme, LockKind, Scheme, SchemeConfig, SchemeKind};
use elision_htm::{harness, HtmConfig, Memory, MemoryBuilder, Strand, TxnStats};
use elision_sim::OpCounters;
use std::fmt;
use std::sync::Arc;

/// The nine STAMP workloads of Figure 11 (eight applications; kmeans and
/// vacation each come in a high- and low-contention configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Gene sequencing: segment deduplication + overlap chaining.
    Genome,
    /// Network intrusion detection: packet reassembly pipeline.
    Intruder,
    /// K-means clustering, few clusters (high contention).
    KmeansHigh,
    /// K-means clustering, many clusters (low contention).
    KmeansLow,
    /// Maze routing with privatized grid copies (very long transactions).
    Labyrinth,
    /// Delaunay-style mesh refinement.
    Yada,
    /// Graph kernel: tiny adjacency-insertion transactions.
    Ssca2,
    /// Travel reservations, many queries per transaction.
    VacationHigh,
    /// Travel reservations, few queries per transaction.
    VacationLow,
}

impl KernelKind {
    /// All workloads, in the paper's Figure 11 order.
    pub const ALL: [KernelKind; 9] = [
        KernelKind::Genome,
        KernelKind::Intruder,
        KernelKind::KmeansHigh,
        KernelKind::KmeansLow,
        KernelKind::Labyrinth,
        KernelKind::Yada,
        KernelKind::Ssca2,
        KernelKind::VacationHigh,
        KernelKind::VacationLow,
    ];

    /// The label used in Figure 11.
    pub fn label(&self) -> &'static str {
        match self {
            KernelKind::Genome => "genome",
            KernelKind::Intruder => "intruder",
            KernelKind::KmeansHigh => "kmeans_high",
            KernelKind::KmeansLow => "kmeans_low",
            KernelKind::Labyrinth => "labyrinth",
            KernelKind::Yada => "yada",
            KernelKind::Ssca2 => "ssca2",
            KernelKind::VacationHigh => "vacation_high",
            KernelKind::VacationLow => "vacation_low",
        }
    }
}

impl fmt::Display for KernelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Workload scaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StampParams {
    /// Use the small, fast configurations (tests / `--quick`).
    pub quick: bool,
    /// Seed for input generation.
    pub seed: u64,
}

impl StampParams {
    /// Quick (test-sized) inputs.
    pub fn quick() -> Self {
        StampParams { quick: true, seed: 12345 }
    }

    /// Benchmark-sized inputs.
    pub fn full() -> Self {
        StampParams { quick: false, seed: 12345 }
    }
}

/// A built kernel instance: shared state handles plus the thread body.
pub trait Kernel: Send + Sync {
    /// Post-freeze data initialization (direct writes; runs once,
    /// single-threaded, before the simulation).
    fn init(&self, mem: &Memory);

    /// One simulated thread's share of the work. Every critical section
    /// must go through `scheme.execute`.
    fn run_thread(&self, s: &mut Strand, scheme: &Scheme, threads: usize);

    /// Check conservation properties of the final state.
    ///
    /// # Errors
    ///
    /// A description of the violated property.
    fn verify(&self, mem: &Memory) -> Result<(), String>;
}

/// Build (but do not run) a kernel, for custom pipelines.
pub fn build_kernel(
    kind: KernelKind,
    b: &mut MemoryBuilder,
    threads: usize,
    params: &StampParams,
) -> Arc<dyn Kernel> {
    match kind {
        KernelKind::Genome => Arc::new(genome::Genome::new(b, threads, params)),
        KernelKind::Intruder => Arc::new(intruder::Intruder::new(b, threads, params)),
        KernelKind::KmeansHigh => Arc::new(kmeans::Kmeans::new(b, threads, params, true)),
        KernelKind::KmeansLow => Arc::new(kmeans::Kmeans::new(b, threads, params, false)),
        KernelKind::Labyrinth => Arc::new(labyrinth::Labyrinth::new(b, threads, params)),
        KernelKind::Yada => Arc::new(yada::Yada::new(b, threads, params)),
        KernelKind::Ssca2 => Arc::new(ssca2::Ssca2::new(b, threads, params)),
        KernelKind::VacationHigh => Arc::new(vacation::Vacation::new(b, threads, params, true)),
        KernelKind::VacationLow => Arc::new(vacation::Vacation::new(b, threads, params, false)),
    }
}

/// The outcome of one kernel × scheme × lock run.
#[derive(Debug, Clone)]
pub struct StampRun {
    /// Which kernel ran.
    pub kernel: KernelKind,
    /// The elision scheme used.
    pub scheme: SchemeKind,
    /// The main-lock family.
    pub lock: LockKind,
    /// Simulated threads.
    pub threads: usize,
    /// Simulated runtime in cycles (Figure 11's y-axis, before
    /// normalization to the Standard scheme).
    pub makespan: u64,
    /// Summed S/A/N counters.
    pub counters: OpCounters,
    /// Summed transaction statistics.
    pub txn_stats: TxnStats,
}

/// Build and run one kernel under one scheme/lock combination, verifying
/// the final state.
///
/// # Panics
///
/// Panics if the kernel's verification fails — a run that produces wrong
/// results must never contribute a timing.
pub fn run_kernel(
    kind: KernelKind,
    scheme_kind: SchemeKind,
    lock: LockKind,
    threads: usize,
    params: &StampParams,
    window: u64,
    htm: HtmConfig,
) -> StampRun {
    let mut b = MemoryBuilder::new();
    let kernel = build_kernel(kind, &mut b, threads, params);
    let scheme = make_scheme(scheme_kind, lock, SchemeConfig::paper(), &mut b, threads);
    let mem = b.freeze(threads);
    kernel.init(&mem);
    let kernel2 = Arc::clone(&kernel);
    let (results, mem, makespan) = harness::run(threads, window, htm, params.seed, mem, {
        move |s| {
            kernel2.run_thread(s, &scheme, threads);
            (s.counters, s.stats)
        }
    });
    kernel
        .verify(&mem)
        .unwrap_or_else(|e| panic!("{kind} under {scheme_kind}/{lock}: verification failed: {e}"));
    let mut counters = OpCounters::new();
    let mut txn_stats = TxnStats::default();
    for (c, t) in &results {
        counters.merge(c);
        txn_stats.merge(t);
    }
    StampRun { kernel: kind, scheme: scheme_kind, lock, threads, makespan, counters, txn_stats }
}
