//! `labyrinth` — maze routing.
//!
//! STAMP's labyrinth routes point-to-point paths through a shared grid
//! with Lee's algorithm: each transaction reads a large region of the
//! grid (STAMP privatizes a full copy), computes a shortest path, and
//! writes the path's cells. Transactions are the longest in the suite,
//! with read sets that stress HTM capacity; conflicts occur when
//! concurrently routed paths cross.

use crate::runner::{Kernel, StampParams};
use crate::util::strided;
use elision_core::Scheme;
use elision_htm::{Memory, MemoryBuilder, Strand, TxResult, VarId};
use elision_sim::DetRng;
use std::collections::VecDeque;

const FREE: u64 = 0;

pub(crate) struct Labyrinth {
    width: usize,
    height: usize,
    /// Grid cells: 0 = free, otherwise the owning path id (1-based).
    grid: VarId,
    /// Routing requests `(src, dst)` as cell indices.
    requests: Vec<(usize, usize)>,
    /// Per-path result slot: 0 = unrouted/failed, else number of cells
    /// the path claimed (written in the routing transaction itself).
    routed: VarId,
}

impl Labyrinth {
    pub(crate) fn new(b: &mut MemoryBuilder, _threads: usize, params: &StampParams) -> Self {
        let (width, height, n_paths) = if params.quick { (24, 24, 12) } else { (48, 48, 40) };
        let mut rng = DetRng::new(params.seed, 0x1AB);
        let mut requests = Vec::with_capacity(n_paths);
        for _ in 0..n_paths {
            // Sources on the left edge, destinations on the right edge:
            // paths span the grid and genuinely overlap.
            let src = rng.below(height as u64) as usize * width;
            let dst = rng.below(height as u64) as usize * width + (width - 1);
            requests.push((src, dst));
        }
        b.pad_to_line();
        let grid = b.alloc_array(width * height, FREE);
        b.pad_to_line();
        let routed = b.alloc_array(n_paths, 0);
        b.pad_to_line();
        Labyrinth { width, height, grid, requests, routed }
    }

    fn cell(&self, idx: usize) -> VarId {
        VarId::from_index(self.grid.index() + idx as u32)
    }

    fn routed_var(&self, path: usize) -> VarId {
        VarId::from_index(self.routed.index() + path as u32)
    }

    fn neighbors(&self, idx: usize) -> impl Iterator<Item = usize> {
        let (w, h) = (self.width, self.height);
        let (x, y) = (idx % w, idx / w);
        let mut out = Vec::with_capacity(4);
        if x > 0 {
            out.push(idx - 1);
        }
        if x + 1 < w {
            out.push(idx + 1);
        }
        if y > 0 {
            out.push(idx - w);
        }
        if y + 1 < h {
            out.push(idx + w);
        }
        out.into_iter()
    }

    /// Lee's algorithm over transactional reads: BFS from `src` to `dst`
    /// through free cells, then claim the path. Returns the number of
    /// cells claimed, or 0 if no route exists.
    fn route(&self, s: &mut Strand, src: usize, dst: usize, id: u64) -> TxResult<u64> {
        let mut prev = vec![usize::MAX; self.width * self.height];
        let mut seen = vec![false; self.width * self.height];
        let mut q = VecDeque::new();
        // Endpoints may start occupied (by a previous path's terminal);
        // STAMP treats that as unroutable.
        if s.load(self.cell(src))? != FREE || s.load(self.cell(dst))? != FREE {
            return Ok(0);
        }
        seen[src] = true;
        q.push_back(src);
        let mut found = false;
        while let Some(c) = q.pop_front() {
            if c == dst {
                found = true;
                break;
            }
            s.work(1)?; // expansion bookkeeping
            for n in self.neighbors(c) {
                if !seen[n] && s.load(self.cell(n))? == FREE {
                    seen[n] = true;
                    prev[n] = c;
                    q.push_back(n);
                }
            }
        }
        if !found {
            return Ok(0);
        }
        // Claim the path.
        let mut len = 0u64;
        let mut c = dst;
        loop {
            s.store(self.cell(c), id)?;
            len += 1;
            if c == src {
                break;
            }
            c = prev[c];
        }
        Ok(len)
    }
}

impl Kernel for Labyrinth {
    fn init(&self, _mem: &Memory) {}

    fn run_thread(&self, s: &mut Strand, scheme: &Scheme, threads: usize) {
        let tid = s.tid();
        for p in strided(self.requests.len(), tid, threads) {
            let (src, dst) = self.requests[p];
            let id = p as u64 + 1;
            scheme.execute(s, |s| {
                let len = self.route(s, src, dst, id)?;
                s.store(self.routed_var(p), len)
            });
        }
    }

    fn verify(&self, mem: &Memory) -> Result<(), String> {
        // Each claimed cell's path id must correspond to a routed request,
        // and every routed request must own exactly the number of cells it
        // recorded.
        let mut owned = vec![0u64; self.requests.len() + 1];
        for idx in 0..self.width * self.height {
            let v = mem.read_direct(self.cell(idx));
            if v != FREE {
                if v as usize > self.requests.len() {
                    return Err(format!("cell {idx} owned by bogus path {v}"));
                }
                owned[v as usize] += 1;
            }
        }
        let mut routed_count = 0;
        for (p, &(src, dst)) in self.requests.iter().enumerate() {
            let len = mem.read_direct(self.routed_var(p));
            if len != owned[p + 1] {
                return Err(format!("path {p} recorded {len} cells but owns {}", owned[p + 1]));
            }
            if len > 0 {
                routed_count += 1;
                for endpoint in [src, dst] {
                    if mem.read_direct(self.cell(endpoint)) != p as u64 + 1 {
                        return Err(format!("path {p} does not own its endpoint {endpoint}"));
                    }
                }
            }
        }
        if routed_count == 0 {
            return Err("no path routed at all".into());
        }
        Ok(())
    }
}
