//! `yada` — "yet another Delaunay application" (mesh refinement).
//!
//! STAMP's yada repeatedly picks a "bad" triangle, computes its cavity
//! (reading a neighborhood of elements) and retriangulates it (writing
//! several elements), possibly creating new bad elements. Transactions
//! are long, with medium read/write sets, and conflict when cavities
//! overlap. This kernel models the same dynamics on a 2-D mesh of
//! quality-tagged regions: refining a bad region fixes it and may degrade
//! budget-limited neighbors, so the work pool shrinks to empty and the
//! run terminates.

use crate::runner::{Kernel, StampParams};
use elision_core::Scheme;
use elision_htm::{Memory, MemoryBuilder, Strand, TxResult, VarId};
use elision_sim::DetRng;

const GOOD: u64 = 0;
const BAD: u64 = 1;

pub(crate) struct Yada {
    side: usize,
    /// Per-region quality flag.
    quality: VarId,
    /// Per-region remaining degradation budget.
    budget: VarId,
    /// Count of currently bad regions (maintained transactionally).
    bad_count: VarId,
    initial_bad: Vec<usize>,
}

impl Yada {
    pub(crate) fn new(b: &mut MemoryBuilder, _threads: usize, params: &StampParams) -> Self {
        let (side, n_bad, _) = if params.quick { (16, 24, ()) } else { (32, 120, ()) };
        let n = side * side;
        let mut rng = DetRng::new(params.seed, 0xDADA);
        let mut initial_bad: Vec<usize> = Vec::new();
        while initial_bad.len() < n_bad {
            let r = rng.below(n as u64) as usize;
            if !initial_bad.contains(&r) {
                initial_bad.push(r);
            }
        }
        b.pad_to_line();
        let quality = b.alloc_array(n, GOOD);
        b.pad_to_line();
        let budget = b.alloc_array(n, 0);
        let bad_count = b.alloc_isolated(0);
        Yada { side, quality, budget, bad_count, initial_bad }
    }

    fn q(&self, i: usize) -> VarId {
        VarId::from_index(self.quality.index() + i as u32)
    }

    fn b(&self, i: usize) -> VarId {
        VarId::from_index(self.budget.index() + i as u32)
    }

    fn neighbors(&self, i: usize) -> Vec<usize> {
        let (w, n) = (self.side, self.side * self.side);
        let mut out = Vec::with_capacity(4);
        if !i.is_multiple_of(w) {
            out.push(i - 1);
        }
        if i % w + 1 < w {
            out.push(i + 1);
        }
        if i >= w {
            out.push(i - w);
        }
        if i + w < n {
            out.push(i + w);
        }
        out
    }

    /// One refinement transaction: scan for a bad region from `start`,
    /// fix it, degrade budgeted neighbors. Returns whether a region was
    /// refined.
    fn refine(&self, s: &mut Strand, start: usize) -> TxResult<bool> {
        let n = self.side * self.side;
        // Cavity search: bounded wrap-around scan.
        let mut found = None;
        for k in 0..64.min(n) {
            let i = (start + k) % n;
            if s.load(self.q(i))? == BAD {
                found = Some(i);
                break;
            }
        }
        let Some(i) = found else { return Ok(false) };
        // Retriangulate: fix the region...
        s.store(self.q(i), GOOD)?;
        let mut delta: i64 = -1;
        s.work(12)?; // geometric computation
                     // ...and degrade budget-carrying neighbors (new skinny triangles).
        for nb in self.neighbors(i) {
            let budget = s.load(self.b(nb))?;
            if budget > 0 && s.load(self.q(nb))? == GOOD {
                s.store(self.b(nb), budget - 1)?;
                s.store(self.q(nb), BAD)?;
                delta += 1;
            }
        }
        let c = s.load(self.bad_count)?;
        s.store(self.bad_count, (c as i64 + delta) as u64)?;
        Ok(true)
    }
}

impl Kernel for Yada {
    fn init(&self, mem: &Memory) {
        for &r in &self.initial_bad {
            mem.write_direct(self.q(r), BAD);
        }
        // Budgets let a refinement cascade a couple of steps before the
        // pool provably drains.
        let n = self.side * self.side;
        for i in 0..n {
            mem.write_direct(self.b(i), if i % 3 == 0 { 1 } else { 0 });
        }
        mem.write_direct(self.bad_count, self.initial_bad.len() as u64);
    }

    fn run_thread(&self, s: &mut Strand, scheme: &Scheme, _threads: usize) {
        let n = self.side * self.side;
        loop {
            // Work remaining? (plain read between transactions)
            let remaining = s.load(self.bad_count).expect("plain read");
            if remaining == 0 {
                break;
            }
            let start = s.rng.below(n as u64) as usize;
            scheme.execute(s, |s| self.refine(s, start));
        }
    }

    fn verify(&self, mem: &Memory) -> Result<(), String> {
        if mem.read_direct(self.bad_count) != 0 {
            return Err(format!("bad count is {}, expected 0", mem.read_direct(self.bad_count)));
        }
        let n = self.side * self.side;
        for i in 0..n {
            if mem.read_direct(self.q(i)) == BAD {
                return Err(format!("region {i} is still bad"));
            }
        }
        Ok(())
    }
}
