//! `intruder` — signature-based network intrusion detection.
//!
//! STAMP's intruder runs a three-stage pipeline per packet: capture (pop
//! from a shared queue), reassembly (insert the fragment into a shared
//! session map; when a flow completes, hand it to detection), and
//! detection (thread-private). The capture and reassembly transactions
//! are short but *every* thread contends on the queue heads, making this
//! the high-contention STAMP workload.

use crate::runner::{Kernel, StampParams};
use elision_core::Scheme;
use elision_htm::{Memory, MemoryBuilder, Strand};
use elision_sim::DetRng;
use elision_structures::{HashTable, SimQueue};

/// Packet encoding: `flow << 16 | frag << 8 | nfrags`.
fn encode(flow: u64, frag: u64, nfrags: u64) -> u64 {
    flow << 16 | frag << 8 | nfrags
}

fn decode(pkt: u64) -> (u64, u64, u64) {
    (pkt >> 16, (pkt >> 8) & 0xFF, pkt & 0xFF)
}

pub(crate) struct Intruder {
    /// Pre-generated shuffled packet trace.
    packets: Vec<u64>,
    n_flows: usize,
    input: SimQueue,
    /// Per-flow received-fragment counters.
    sessions: HashTable,
    /// Completed flows, ready for detection.
    done: SimQueue,
}

impl Intruder {
    pub(crate) fn new(b: &mut MemoryBuilder, threads: usize, params: &StampParams) -> Self {
        let n_flows = if params.quick { 48 } else { 320 };
        let mut rng = DetRng::new(params.seed, 0x1D5);
        let mut packets = Vec::new();
        for flow in 0..n_flows as u64 {
            let nfrags = 2 + rng.below(5);
            for frag in 0..nfrags {
                packets.push(encode(flow, frag, nfrags));
            }
        }
        // Fisher-Yates shuffle: fragments arrive interleaved and out of
        // order, as on a real link.
        for i in (1..packets.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            packets.swap(i, j);
        }
        let cap = packets.len() + 8;
        Intruder {
            n_flows,
            input: SimQueue::new(b, cap),
            sessions: HashTable::new(b, (n_flows / 2).max(8), n_flows + 8, threads),
            done: SimQueue::new(b, n_flows + 8),
            packets,
        }
    }
}

impl Kernel for Intruder {
    fn init(&self, mem: &Memory) {
        self.sessions.init(mem);
        self.input.fill_direct(mem, self.packets.iter().copied());
    }

    fn run_thread(&self, s: &mut Strand, scheme: &Scheme, _threads: usize) {
        loop {
            // Stage 1: capture.
            let pkt = scheme.execute(s, |s| self.input.pop(s)).value;
            let Some(pkt) = pkt else { break };
            let (flow, _frag, nfrags) = decode(pkt);
            // Per-packet decoding is thread-private compute (STAMP's
            // decoder dominates the pipeline).
            s.work(40).expect("packet decode");
            // Stage 2: reassembly.
            let completed = scheme
                .execute(s, |s| {
                    let seen = self.sessions.get(s, flow)?.unwrap_or(0) + 1;
                    self.sessions.put(s, flow, seen)?;
                    if seen == nfrags {
                        self.done.push(s, flow)?;
                        Ok(true)
                    } else {
                        Ok(false)
                    }
                })
                .value;
            // Stage 3: detection (thread-private signature matching).
            if completed {
                s.work(120).expect("detection is host-side work");
            }
        }
    }

    fn verify(&self, mem: &Memory) -> Result<(), String> {
        if self.input.len_direct(mem) != 0 {
            return Err(format!("{} packets left unprocessed", self.input.len_direct(mem)));
        }
        let done = self.done.len_direct(mem);
        if done != self.n_flows as u64 {
            return Err(format!("{done} flows completed, expected {}", self.n_flows));
        }
        // Every session counter must equal its flow's fragment count.
        let sessions = self.sessions.collect(mem);
        if sessions.len() != self.n_flows {
            return Err(format!("{} sessions, expected {}", sessions.len(), self.n_flows));
        }
        let mut expected = vec![0u64; self.n_flows];
        for &p in &self.packets {
            let (flow, _, _) = decode(p);
            expected[flow as usize] += 1;
        }
        for (flow, seen) in sessions {
            if seen != expected[flow as usize] {
                return Err(format!(
                    "flow {flow} assembled {seen} fragments, expected {}",
                    expected[flow as usize]
                ));
            }
        }
        Ok(())
    }
}
