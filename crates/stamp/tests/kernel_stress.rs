//! Stress and robustness tests for the STAMP kernels: every kernel must
//! verify under hostile HTM configurations, odd thread counts, and the
//! extension scheme.

use elision_core::{LockKind, SchemeKind};
use elision_htm::HtmConfig;
use elision_stamp::{run_kernel, KernelKind, StampParams};

#[test]
fn kernels_verify_with_odd_thread_counts() {
    for kind in [KernelKind::Genome, KernelKind::Intruder, KernelKind::VacationLow] {
        for threads in [1usize, 3, 5, 7] {
            let run = run_kernel(
                kind,
                SchemeKind::HleScm,
                LockKind::Mcs,
                threads,
                &StampParams::quick(),
                0,
                HtmConfig::deterministic(),
            );
            assert!(run.makespan > 0, "{kind} with {threads} threads");
        }
    }
}

#[test]
fn kernels_verify_under_spurious_storm() {
    let storm = HtmConfig::deterministic().with_spurious(0.25, 0.001);
    for kind in KernelKind::ALL {
        let run = run_kernel(
            kind,
            SchemeKind::OptSlr,
            LockKind::Ttas,
            4,
            &StampParams::quick(),
            0,
            storm,
        );
        assert!(run.txn_stats.aborts_spurious > 0, "{kind}: storm did not fire");
    }
}

#[test]
fn kernels_verify_under_tight_capacity() {
    // Labyrinth's big transactions must overflow and fall back; everything
    // still verifies.
    let tight = HtmConfig::deterministic().with_capacity(48, 16);
    for kind in [KernelKind::Labyrinth, KernelKind::Yada, KernelKind::VacationHigh] {
        let run = run_kernel(
            kind,
            SchemeKind::OptSlr,
            LockKind::Ttas,
            4,
            &StampParams::quick(),
            0,
            tight,
        );
        if kind == KernelKind::Labyrinth {
            assert!(run.txn_stats.aborts_capacity > 0, "labyrinth should hit the capacity limit");
            assert!(
                run.counters.frac_nonspeculative() > 0.3,
                "capacity-bound labyrinth should mostly fall back, got {:.3}",
                run.counters.frac_nonspeculative()
            );
        }
    }
}

#[test]
fn kernels_verify_with_bounded_lag_window() {
    for kind in [KernelKind::Ssca2, KernelKind::KmeansLow, KernelKind::Yada] {
        let run = run_kernel(
            kind,
            SchemeKind::SlrScm,
            LockKind::Clh,
            4,
            &StampParams::quick(),
            32,
            HtmConfig::deterministic(),
        );
        assert!(run.counters.completed() > 0, "{kind}");
    }
}

#[test]
fn stamp_contention_ordering_holds() {
    // vacation-high (more queries over a smaller key space) must abort
    // more than vacation-low under the same scheme.
    let high = run_kernel(
        KernelKind::VacationHigh,
        SchemeKind::OptSlr,
        LockKind::Ttas,
        6,
        &StampParams::quick(),
        0,
        HtmConfig::deterministic(),
    );
    let low = run_kernel(
        KernelKind::VacationLow,
        SchemeKind::OptSlr,
        LockKind::Ttas,
        6,
        &StampParams::quick(),
        0,
        HtmConfig::deterministic(),
    );
    let rate = |r: &elision_stamp::StampRun| {
        r.counters.aborted as f64 / r.counters.completed().max(1) as f64
    };
    assert!(
        rate(&high) > rate(&low),
        "vacation_high should conflict more ({:.3} vs {:.3})",
        rate(&high),
        rate(&low)
    );
}

#[test]
fn intruder_queue_contention_shows_up() {
    // Intruder's shared queues make it the high-contention kernel: its
    // abort rate under SLR should exceed ssca2's by a wide margin.
    let intruder = run_kernel(
        KernelKind::Intruder,
        SchemeKind::OptSlr,
        LockKind::Ttas,
        6,
        &StampParams::quick(),
        0,
        HtmConfig::deterministic(),
    );
    let ssca2 = run_kernel(
        KernelKind::Ssca2,
        SchemeKind::OptSlr,
        LockKind::Ttas,
        6,
        &StampParams::quick(),
        0,
        HtmConfig::deterministic(),
    );
    let rate = |r: &elision_stamp::StampRun| {
        r.counters.aborted as f64 / r.counters.completed().max(1) as f64
    };
    assert!(rate(&intruder) > 2.0 * rate(&ssca2));
}
