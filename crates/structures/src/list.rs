//! A transactional sorted singly-linked list. Linear-time operations make
//! its critical sections long and heavily overlapping — a stress case for
//! elision schemes (every writer conflicts with every reader that passed
//! the same prefix).

use elision_htm::{Memory, MemoryBuilder, Placer, RecordArena, Strand, TxResult, VarId, VarRole};

const KEY: u32 = 0;
const NEXT: u32 = 1;
const STRIDE: u32 = 2;

const NONE: u64 = u64::MAX;

/// A sorted (ascending, unique keys) singly-linked list of `u64` keys.
#[derive(Debug, Clone)]
pub struct SortedList {
    head: VarId,
    free: Vec<VarId>,
    arena: RecordArena,
    cap: usize,
}

impl SortedList {
    /// Allocate a list arena for `capacity` keys, free-lists partitioned
    /// across `threads`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `threads` is zero.
    pub fn new(b: &mut MemoryBuilder, capacity: usize, threads: usize) -> Self {
        assert!(capacity > 0 && threads > 0);
        let head = b.alloc_isolated(NONE);
        b.pad_to_line();
        let base = b.len() as u32;
        b.alloc_array(capacity * STRIDE as usize, 0);
        let free: Vec<VarId> = (0..threads).map(|_| b.alloc_isolated(NONE)).collect();
        SortedList { head, free, arena: RecordArena::contiguous(base, STRIDE), cap: capacity }
    }

    /// Like [`SortedList::new`], but allocated through `p`'s placement
    /// policy: the head as `"list.head"` metadata, nodes as a
    /// `"list.node"` record region and the per-thread free-list heads as
    /// one `"list.free"` region.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `threads` is zero.
    pub fn new_placed(p: &mut Placer, capacity: usize, threads: usize) -> Self {
        assert!(capacity > 0 && threads > 0);
        let head = p.meta("list.head", NONE);
        let arena = p.records("list.node", VarRole::Data, capacity, STRIDE, 0);
        let free_arena = p.records("list.free", VarRole::Meta, threads, 1, NONE);
        let free = (0..threads as u64).map(|t| free_arena.word(t, 0)).collect();
        SortedList { head, free, arena, cap: capacity }
    }

    /// Chain the free lists; call once after freezing, before use.
    pub fn init(&self, mem: &Memory) {
        let threads = self.free.len();
        let mut heads = vec![NONE; threads];
        for n in (0..self.cap as u64).rev() {
            let pool = (n as usize) % threads;
            mem.write_direct(self.field(n, NEXT), heads[pool]);
            heads[pool] = n;
        }
        for (t, &h) in heads.iter().enumerate() {
            mem.write_direct(self.free[t], h);
        }
    }

    fn field(&self, node: u64, f: u32) -> VarId {
        self.arena.word(node, f)
    }

    fn alloc_node(&self, s: &mut Strand, key: u64) -> TxResult<u64> {
        let me = s.tid() % self.free.len();
        let pools = self.free.len();
        for k in 0..pools {
            let pool = self.free[(me + k) % pools];
            let head = s.load(pool)?;
            if head == NONE {
                continue;
            }
            let next = s.load(self.field(head, NEXT))?;
            s.store(pool, next)?;
            s.store(self.field(head, KEY), key)?;
            s.store(self.field(head, NEXT), NONE)?;
            return Ok(head);
        }
        panic!("sorted-list arena exhausted (capacity {})", self.cap);
    }

    fn free_node(&self, s: &mut Strand, node: u64) -> TxResult<()> {
        let pool = self.free[s.tid() % self.free.len()];
        let head = s.load(pool)?;
        s.store(self.field(node, NEXT), head)?;
        s.store(pool, node)
    }

    /// Whether `key` is present.
    ///
    /// # Errors
    ///
    /// `Err(Abort)` if the enclosing transaction aborted.
    pub fn contains(&self, s: &mut Strand, key: u64) -> TxResult<bool> {
        let mut n = s.load(self.head)?;
        while n != NONE {
            let k = s.load(self.field(n, KEY))?;
            if k == key {
                return Ok(true);
            }
            if k > key {
                return Ok(false);
            }
            n = s.load(self.field(n, NEXT))?;
        }
        Ok(false)
    }

    /// Insert `key`; returns `false` if already present.
    ///
    /// # Errors
    ///
    /// `Err(Abort)` if the enclosing transaction aborted.
    pub fn insert(&self, s: &mut Strand, key: u64) -> TxResult<bool> {
        let mut prev = NONE;
        let mut n = s.load(self.head)?;
        while n != NONE {
            let k = s.load(self.field(n, KEY))?;
            if k == key {
                return Ok(false);
            }
            if k > key {
                break;
            }
            prev = n;
            n = s.load(self.field(n, NEXT))?;
        }
        let node = self.alloc_node(s, key)?;
        s.store(self.field(node, NEXT), n)?;
        if prev == NONE {
            s.store(self.head, node)?;
        } else {
            s.store(self.field(prev, NEXT), node)?;
        }
        Ok(true)
    }

    /// Remove `key`; returns `false` if absent.
    ///
    /// # Errors
    ///
    /// `Err(Abort)` if the enclosing transaction aborted.
    pub fn remove(&self, s: &mut Strand, key: u64) -> TxResult<bool> {
        let mut prev = NONE;
        let mut n = s.load(self.head)?;
        while n != NONE {
            let k = s.load(self.field(n, KEY))?;
            if k == key {
                let next = s.load(self.field(n, NEXT))?;
                if prev == NONE {
                    s.store(self.head, next)?;
                } else {
                    s.store(self.field(prev, NEXT), next)?;
                }
                self.free_node(s, n)?;
                return Ok(true);
            }
            if k > key {
                return Ok(false);
            }
            prev = n;
            n = s.load(self.field(n, NEXT))?;
        }
        Ok(false)
    }

    /// Collect all keys in order via direct reads (quiescent only).
    pub fn collect(&self, mem: &Memory) -> Vec<u64> {
        let mut out = Vec::new();
        let mut n = mem.read_direct(self.head);
        while n != NONE {
            out.push(mem.read_direct(self.field(n, KEY)));
            n = mem.read_direct(self.field(n, NEXT));
        }
        out
    }
}
