//! Operation-history recording and sequential reference models.
//!
//! The model checker validates concurrent executions of the benchmark
//! structures against *linearizability*: every completed operation must
//! appear to take effect atomically at some point between its invocation
//! and its response. To check that, workload bodies record an [`OpRecord`]
//! per operation (action, observed response, and invocation/response
//! timestamps in scheduler decision steps), and the checker replays
//! candidate orderings against the [`SeqModel`] — a plain sequential
//! `BTreeMap`/`BTreeSet`/bounded-FIFO reference that defines what each
//! structure is *supposed* to do.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Which benchmark structure a history exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StructureKind {
    /// [`crate::HashTable`]: a `u64 -> u64` map.
    HashTable,
    /// [`crate::SortedList`]: a sorted set of `u64` keys.
    List,
    /// [`crate::SimQueue`]: a bounded FIFO of `u64` values.
    Queue,
    /// [`crate::RbTree`]: a set of `u64` keys.
    RbTree,
}

impl StructureKind {
    /// Every structure kind, in canonical order.
    pub const ALL: [StructureKind; 4] = [
        StructureKind::HashTable,
        StructureKind::List,
        StructureKind::Queue,
        StructureKind::RbTree,
    ];

    /// Stable lower-case label used in reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            StructureKind::HashTable => "hashtable",
            StructureKind::List => "list",
            StructureKind::Queue => "queue",
            StructureKind::RbTree => "rbtree",
        }
    }
}

impl fmt::Display for StructureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One abstract operation against a structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpAction {
    /// Map lookup (`HashTable::get`).
    MapGet(u64),
    /// Map insert-or-update returning the previous value (`HashTable::put`).
    MapPut(u64, u64),
    /// Map removal returning the previous value (`HashTable::remove`).
    MapRemove(u64),
    /// Set insert returning whether the key was new (list/rbtree `insert`).
    SetInsert(u64),
    /// Set removal returning whether the key was present (`remove`).
    SetRemove(u64),
    /// Set membership test (`contains`).
    SetContains(u64),
    /// Bounded-FIFO append returning whether it fit (`SimQueue::push`).
    Push(u64),
    /// FIFO pop returning the head, if any (`SimQueue::pop`).
    Pop,
}

impl fmt::Display for OpAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpAction::MapGet(k) => write!(f, "get({k})"),
            OpAction::MapPut(k, v) => write!(f, "put({k},{v})"),
            OpAction::MapRemove(k) => write!(f, "remove({k})"),
            OpAction::SetInsert(k) => write!(f, "insert({k})"),
            OpAction::SetRemove(k) => write!(f, "remove({k})"),
            OpAction::SetContains(k) => write!(f, "contains({k})"),
            OpAction::Push(v) => write!(f, "push({v})"),
            OpAction::Pop => write!(f, "pop()"),
        }
    }
}

/// The response an operation observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpResponse {
    /// A boolean outcome (set ops, queue push).
    Flag(bool),
    /// An optional value (map ops, queue pop).
    Value(Option<u64>),
}

impl fmt::Display for OpResponse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpResponse::Flag(b) => write!(f, "{b}"),
            OpResponse::Value(None) => write!(f, "none"),
            OpResponse::Value(Some(v)) => write!(f, "{v}"),
        }
    }
}

/// One completed operation in a concurrent history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpRecord {
    /// Simulated thread that performed the operation.
    pub tid: usize,
    /// Per-thread program-order index.
    pub seq: usize,
    /// What was asked.
    pub action: OpAction,
    /// What was observed.
    pub response: OpResponse,
    /// Scheduler decision-step count at invocation.
    pub invoked: u64,
    /// Scheduler decision-step count at response.
    pub responded: u64,
}

impl fmt::Display for OpRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t{}#{} {} -> {} [{}..{}]",
            self.tid, self.seq, self.action, self.response, self.invoked, self.responded
        )
    }
}

/// Per-thread history recorder: assigns program-order sequence numbers.
#[derive(Debug, Clone)]
pub struct HistoryRecorder {
    tid: usize,
    records: Vec<OpRecord>,
}

impl HistoryRecorder {
    /// New empty history for simulated thread `tid`.
    pub fn new(tid: usize) -> Self {
        HistoryRecorder { tid, records: Vec::new() }
    }

    /// Record one completed operation; `invoked`/`responded` are scheduler
    /// decision-step counts taken just before and after the operation.
    pub fn record(&mut self, action: OpAction, response: OpResponse, invoked: u64, responded: u64) {
        let seq = self.records.len();
        self.records.push(OpRecord { tid: self.tid, seq, action, response, invoked, responded });
    }

    /// The recorded operations, in program order.
    pub fn into_records(self) -> Vec<OpRecord> {
        self.records
    }
}

/// Sequential reference model the linearizability checker replays against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeqModel {
    /// Reference for [`StructureKind::HashTable`].
    Map(BTreeMap<u64, u64>),
    /// Reference for [`StructureKind::List`] and [`StructureKind::RbTree`].
    Set(BTreeSet<u64>),
    /// Reference for [`StructureKind::Queue`] with its capacity bound.
    Fifo {
        /// Current queue contents, head first.
        items: VecDeque<u64>,
        /// Maximum number of elements (`push` returns `false` beyond it).
        cap: usize,
    },
}

impl SeqModel {
    /// Empty model for `kind`. `queue_capacity` is only consulted for the
    /// queue (it bounds when `push` must report `false`).
    pub fn for_kind(kind: StructureKind, queue_capacity: usize) -> Self {
        match kind {
            StructureKind::HashTable => SeqModel::Map(BTreeMap::new()),
            StructureKind::List | StructureKind::RbTree => SeqModel::Set(BTreeSet::new()),
            StructureKind::Queue => SeqModel::Fifo { items: VecDeque::new(), cap: queue_capacity },
        }
    }

    /// Apply `action` sequentially and return the model's response.
    ///
    /// # Panics
    ///
    /// Panics if `action` does not belong to this model's structure (a
    /// malformed history, which is a harness bug rather than a finding).
    pub fn apply(&mut self, action: OpAction) -> OpResponse {
        match (self, action) {
            (SeqModel::Map(m), OpAction::MapGet(k)) => OpResponse::Value(m.get(&k).copied()),
            (SeqModel::Map(m), OpAction::MapPut(k, v)) => OpResponse::Value(m.insert(k, v)),
            (SeqModel::Map(m), OpAction::MapRemove(k)) => OpResponse::Value(m.remove(&k)),
            (SeqModel::Set(s), OpAction::SetInsert(k)) => OpResponse::Flag(s.insert(k)),
            (SeqModel::Set(s), OpAction::SetRemove(k)) => OpResponse::Flag(s.remove(&k)),
            (SeqModel::Set(s), OpAction::SetContains(k)) => OpResponse::Flag(s.contains(&k)),
            (SeqModel::Fifo { items, cap }, OpAction::Push(v)) => {
                if items.len() < *cap {
                    items.push_back(v);
                    OpResponse::Flag(true)
                } else {
                    OpResponse::Flag(false)
                }
            }
            (SeqModel::Fifo { items, .. }, OpAction::Pop) => OpResponse::Value(items.pop_front()),
            (model, action) => panic!("action {action} does not fit model {model:?}"),
        }
    }

    /// Deterministic digest of the model state (FNV-1a), used by the
    /// linearizability search to memoize visited `(ops-done, state)`
    /// configurations.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        match self {
            SeqModel::Map(m) => {
                eat(1);
                for (&k, &v) in m {
                    eat(k);
                    eat(v);
                }
            }
            SeqModel::Set(s) => {
                eat(2);
                for &k in s {
                    eat(k);
                }
            }
            SeqModel::Fifo { items, cap } => {
                eat(3);
                eat(*cap as u64);
                for &v in items {
                    eat(v);
                }
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_model_reports_previous_values() {
        let mut m = SeqModel::for_kind(StructureKind::HashTable, 0);
        assert_eq!(m.apply(OpAction::MapGet(1)), OpResponse::Value(None));
        assert_eq!(m.apply(OpAction::MapPut(1, 10)), OpResponse::Value(None));
        assert_eq!(m.apply(OpAction::MapPut(1, 20)), OpResponse::Value(Some(10)));
        assert_eq!(m.apply(OpAction::MapRemove(1)), OpResponse::Value(Some(20)));
        assert_eq!(m.apply(OpAction::MapRemove(1)), OpResponse::Value(None));
    }

    #[test]
    fn set_model_tracks_membership() {
        let mut m = SeqModel::for_kind(StructureKind::RbTree, 0);
        assert_eq!(m.apply(OpAction::SetInsert(5)), OpResponse::Flag(true));
        assert_eq!(m.apply(OpAction::SetInsert(5)), OpResponse::Flag(false));
        assert_eq!(m.apply(OpAction::SetContains(5)), OpResponse::Flag(true));
        assert_eq!(m.apply(OpAction::SetRemove(5)), OpResponse::Flag(true));
        assert_eq!(m.apply(OpAction::SetContains(5)), OpResponse::Flag(false));
    }

    #[test]
    fn fifo_model_respects_capacity_and_order() {
        let mut m = SeqModel::for_kind(StructureKind::Queue, 2);
        assert_eq!(m.apply(OpAction::Push(1)), OpResponse::Flag(true));
        assert_eq!(m.apply(OpAction::Push(2)), OpResponse::Flag(true));
        assert_eq!(m.apply(OpAction::Push(3)), OpResponse::Flag(false));
        assert_eq!(m.apply(OpAction::Pop), OpResponse::Value(Some(1)));
        assert_eq!(m.apply(OpAction::Pop), OpResponse::Value(Some(2)));
        assert_eq!(m.apply(OpAction::Pop), OpResponse::Value(None));
    }

    #[test]
    fn digest_distinguishes_states_and_is_stable() {
        let mut a = SeqModel::for_kind(StructureKind::List, 0);
        let mut b = SeqModel::for_kind(StructureKind::List, 0);
        assert_eq!(a.digest(), b.digest());
        a.apply(OpAction::SetInsert(7));
        assert_ne!(a.digest(), b.digest());
        b.apply(OpAction::SetInsert(7));
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn recorder_assigns_program_order() {
        let mut r = HistoryRecorder::new(3);
        r.record(OpAction::Push(1), OpResponse::Flag(true), 0, 2);
        r.record(OpAction::Pop, OpResponse::Value(Some(1)), 2, 5);
        let ops = r.into_records();
        assert_eq!(ops.len(), 2);
        assert_eq!((ops[0].tid, ops[0].seq), (3, 0));
        assert_eq!((ops[1].tid, ops[1].seq), (3, 1));
        assert_eq!(format!("{}", ops[1]), "t3#1 pop() -> 1 [2..5]");
    }
}
