//! A transactional bounded FIFO queue (ring buffer), used by the
//! STAMP-style `intruder` kernel's packet pipeline.

use elision_htm::{Memory, MemoryBuilder, Placer, RecordArena, Strand, TxResult, VarId, VarRole};

/// A bounded FIFO of `u64` values over simulated memory.
///
/// Head/tail counters increase monotonically; the slot of position `p` is
/// `p % capacity`. All operations are intended to run inside a critical
/// section (single global lock in the benchmarks), so no internal
/// synchronization beyond transactional accesses is needed.
#[derive(Debug, Clone)]
pub struct SimQueue {
    head: VarId,
    tail: VarId,
    slots: RecordArena,
    cap: usize,
}

impl SimQueue {
    /// Allocate a queue with room for `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(b: &mut MemoryBuilder, capacity: usize) -> Self {
        assert!(capacity > 0);
        let head = b.alloc_isolated(0);
        let tail = b.alloc_isolated(0);
        b.pad_to_line();
        let slots = RecordArena::contiguous(b.alloc_array(capacity, 0).index(), 1);
        b.pad_to_line();
        SimQueue { head, tail, slots, cap: capacity }
    }

    /// Like [`SimQueue::new`], but allocated through `p`'s placement
    /// policy: head/tail as `"queue.head"`/`"queue.tail"` metadata and
    /// the ring slots as a `"queue.slot"` record region (one word per
    /// record).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new_placed(p: &mut Placer, capacity: usize) -> Self {
        assert!(capacity > 0);
        let head = p.meta("queue.head", 0);
        let tail = p.meta("queue.tail", 0);
        let slots = p.records("queue.slot", VarRole::Data, capacity, 1, 0);
        SimQueue { head, tail, slots, cap: capacity }
    }

    fn slot(&self, pos: u64) -> VarId {
        self.slots.word(pos % self.cap as u64, 0)
    }

    /// Append `value`; returns `false` when full.
    ///
    /// # Errors
    ///
    /// `Err(Abort)` if the enclosing transaction aborted.
    ///
    /// # Examples
    ///
    /// ```
    /// use elision_htm::{harness, HtmConfig, MemoryBuilder};
    /// use elision_structures::SimQueue;
    ///
    /// let mut b = MemoryBuilder::new();
    /// let q = SimQueue::new(&mut b, 4);
    /// let mem = b.freeze(1);
    /// let qq = q.clone();
    /// harness::run(1, 0, HtmConfig::deterministic(), 1, mem, move |s| {
    ///     assert!(qq.push(s, 1).unwrap());
    ///     assert_eq!(qq.pop(s).unwrap(), Some(1));
    ///     assert_eq!(qq.pop(s).unwrap(), None);
    /// });
    /// ```
    pub fn push(&self, s: &mut Strand, value: u64) -> TxResult<bool> {
        let h = s.load(self.head)?;
        let t = s.load(self.tail)?;
        if t - h >= self.cap as u64 {
            return Ok(false);
        }
        s.store(self.slot(t), value)?;
        s.store(self.tail, t + 1)?;
        Ok(true)
    }

    /// Pop the oldest value, if any.
    ///
    /// # Errors
    ///
    /// `Err(Abort)` if the enclosing transaction aborted.
    pub fn pop(&self, s: &mut Strand) -> TxResult<Option<u64>> {
        let h = s.load(self.head)?;
        let t = s.load(self.tail)?;
        if h == t {
            return Ok(None);
        }
        let v = s.load(self.slot(h))?;
        s.store(self.head, h + 1)?;
        Ok(Some(v))
    }

    /// Current length.
    ///
    /// # Errors
    ///
    /// `Err(Abort)` if the enclosing transaction aborted.
    pub fn len(&self, s: &mut Strand) -> TxResult<u64> {
        let h = s.load(self.head)?;
        let t = s.load(self.tail)?;
        Ok(t - h)
    }

    /// Whether the queue is empty.
    ///
    /// # Errors
    ///
    /// `Err(Abort)` if the enclosing transaction aborted.
    pub fn is_empty(&self, s: &mut Strand) -> TxResult<bool> {
        Ok(self.len(s)? == 0)
    }

    /// Direct (quiescent) length.
    pub fn len_direct(&self, mem: &Memory) -> u64 {
        mem.read_direct(self.tail) - mem.read_direct(self.head)
    }

    /// Fill with `values` directly (pre-run setup).
    pub fn fill_direct(&self, mem: &Memory, values: impl IntoIterator<Item = u64>) {
        let mut t = mem.read_direct(self.tail);
        for v in values {
            assert!(t - mem.read_direct(self.head) < self.cap as u64, "queue overflow in setup");
            mem.write_direct(self.slot(t), v);
            t += 1;
        }
        mem.write_direct(self.tail, t);
    }
}
