//! A transactional red-black tree (the paper's main data-structure
//! benchmark, Section 4).
//!
//! The tree is a textbook CLRS red-black tree with parent pointers and a
//! real sentinel node, laid out in an arena of one-cache-line nodes in
//! simulated memory. All operations go through a [`Strand`], so every
//! node visit is a costed, conflict-tracked access — a critical section
//! traversing the tree has exactly the read/write-set footprint the paper
//! reasons about (larger trees → longer critical sections → lower
//! conflict probability, §4).
//!
//! Nodes are recycled through *per-thread free lists* (with stealing on
//! exhaustion), mirroring the thread-cached allocator (jemalloc) the
//! paper runs under — a single shared free list would serialize all
//! speculative inserts on the allocator and mask the effects being
//! measured.

use elision_htm::{Memory, MemoryBuilder, Placer, RecordArena, Strand, TxResult, VarId, VarRole};

const KEY: u32 = 0;
const LEFT: u32 = 1;
const RIGHT: u32 = 2;
const PARENT: u32 = 3;
const COLOR: u32 = 4;
/// Words per node; one default cache line.
const STRIDE: u32 = 8;

const BLACK: u64 = 0;
const RED: u64 = 1;

/// A transactional red-black tree storing `u64` keys.
#[derive(Debug, Clone)]
pub struct RbTree {
    /// Var holding the root node index (or the sentinel).
    root: VarId,
    /// Per-thread free-list heads.
    free: Vec<VarId>,
    /// The node arena (contiguous for [`RbTree::new`]; placement-policy
    /// controlled for [`RbTree::new_placed`]).
    arena: RecordArena,
    /// Number of usable nodes (the sentinel is node `cap`).
    cap: usize,
    /// Sentinel node index.
    nil: u64,
}

impl RbTree {
    /// Allocate a tree arena able to hold `capacity` keys, with free
    /// lists partitioned across `threads` simulated threads.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `threads` is zero.
    pub fn new(b: &mut MemoryBuilder, capacity: usize, threads: usize) -> Self {
        assert!(capacity > 0 && threads > 0);
        b.pad_to_line();
        let base = b.len() as u32;
        // capacity nodes + 1 sentinel.
        b.alloc_array((capacity + 1) * STRIDE as usize, 0);
        let root = b.alloc_isolated(capacity as u64);
        let free: Vec<VarId> = (0..threads).map(|_| b.alloc_isolated(u64::MAX)).collect();
        let arena = RecordArena::contiguous(base, STRIDE);
        let tree = RbTree { root, free, arena, cap: capacity, nil: capacity as u64 };
        // Build the initial free lists directly (pre-run setup):
        // round-robin nodes across the per-thread pools, chained via LEFT.
        // We cannot use a Strand yet, so thread the lists through the
        // builder-initialized values by writing after freeze — instead we
        // record the chain in the node KEY/LEFT initial values here.
        // MemoryBuilder has no post-alloc writes, so the chain is encoded
        // by `init_freelists` after freezing.
        tree
    }

    /// Like [`RbTree::new`], but every allocation goes through `p`'s
    /// placement policy: nodes as a `"rbtree.node"` record region, the
    /// root as `"rbtree.root"` metadata and the per-thread free-list
    /// heads as one `"rbtree.free"` record region (so the static advisor
    /// can reason about pool heads collectively — which thread's pool an
    /// allocation hits is scheduling-dependent).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `threads` is zero.
    pub fn new_placed(p: &mut Placer, capacity: usize, threads: usize) -> Self {
        assert!(capacity > 0 && threads > 0);
        let arena = p.records("rbtree.node", VarRole::Data, capacity + 1, STRIDE, 0);
        let root = p.meta("rbtree.root", capacity as u64);
        let free_arena = p.records("rbtree.free", VarRole::Meta, threads, 1, u64::MAX);
        let free = (0..threads as u64).map(|t| free_arena.word(t, 0)).collect();
        RbTree { root, free, arena, cap: capacity, nil: capacity as u64 }
    }

    /// Finish setup after the memory is frozen: chain the free lists and
    /// paint the sentinel black. Must be called exactly once, before any
    /// simulated thread touches the tree.
    pub fn init(&self, mem: &Memory) {
        let threads = self.free.len();
        let mut heads = vec![u64::MAX; threads];
        for n in (0..self.cap as u64).rev() {
            let pool = (n as usize) % threads;
            mem.write_direct(self.field(n, LEFT), heads[pool]);
            heads[pool] = n;
        }
        for (t, &h) in heads.iter().enumerate() {
            mem.write_direct(self.free[t], h);
        }
        mem.write_direct(self.root, self.nil);
        mem.write_direct(self.field(self.nil, COLOR), BLACK);
    }

    /// The sentinel ("null") node index.
    pub fn nil(&self) -> u64 {
        self.nil
    }

    /// Maximum number of keys the arena can hold.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    fn field(&self, node: u64, f: u32) -> VarId {
        debug_assert!(node <= self.nil, "node index out of range");
        self.arena.word(node, f)
    }

    fn get(&self, s: &mut Strand, node: u64, f: u32) -> TxResult<u64> {
        s.load(self.field(node, f))
    }

    fn set(&self, s: &mut Strand, node: u64, f: u32, v: u64) -> TxResult<()> {
        s.store(self.field(node, f), v)
    }

    // ------------------------------------------------------------------
    // allocation
    // ------------------------------------------------------------------

    fn alloc_node(&self, s: &mut Strand, key: u64) -> TxResult<u64> {
        let me = s.tid() % self.free.len();
        let pools = self.free.len();
        for k in 0..pools {
            let pool = self.free[(me + k) % pools];
            let head = s.load(pool)?;
            if head == u64::MAX {
                continue; // empty pool: steal from the next one
            }
            let next = self.get(s, head, LEFT)?;
            s.store(pool, next)?;
            self.set(s, head, KEY, key)?;
            self.set(s, head, LEFT, self.nil)?;
            self.set(s, head, RIGHT, self.nil)?;
            self.set(s, head, PARENT, self.nil)?;
            self.set(s, head, COLOR, RED)?;
            return Ok(head);
        }
        panic!("red-black tree arena exhausted (capacity {})", self.cap);
    }

    fn free_node(&self, s: &mut Strand, node: u64) -> TxResult<()> {
        let pool = self.free[s.tid() % self.free.len()];
        let head = s.load(pool)?;
        self.set(s, node, LEFT, head)?;
        s.store(pool, node)
    }

    /// Redistribute all free nodes evenly across the per-thread pools via
    /// direct writes. Call at a quiescent point (e.g. after a
    /// single-threaded fill phase, which drains the pools unevenly and
    /// would otherwise force runtime threads onto the conflict-prone
    /// steal path).
    pub fn rebalance_freelists(&self, mem: &Memory) {
        let threads = self.free.len();
        let mut nodes = Vec::new();
        for &pool in &self.free {
            let mut n = mem.read_direct(pool);
            while n != u64::MAX {
                nodes.push(n);
                n = mem.read_direct(self.field(n, LEFT));
            }
        }
        let mut heads = vec![u64::MAX; threads];
        for (i, &n) in nodes.iter().enumerate() {
            let pool = i % threads;
            mem.write_direct(self.field(n, LEFT), heads[pool]);
            heads[pool] = n;
        }
        for (t, &h) in heads.iter().enumerate() {
            mem.write_direct(self.free[t], h);
        }
    }

    // ------------------------------------------------------------------
    // queries
    // ------------------------------------------------------------------

    /// Whether `key` is present.
    ///
    /// # Errors
    ///
    /// `Err(Abort)` if the enclosing transaction aborted.
    pub fn contains(&self, s: &mut Strand, key: u64) -> TxResult<bool> {
        let mut x = s.load(self.root)?;
        while x != self.nil {
            let k = self.get(s, x, KEY)?;
            if key == k {
                return Ok(true);
            }
            x = self.get(s, x, if key < k { LEFT } else { RIGHT })?;
        }
        Ok(false)
    }

    fn find(&self, s: &mut Strand, key: u64) -> TxResult<u64> {
        let mut x = s.load(self.root)?;
        while x != self.nil {
            let k = self.get(s, x, KEY)?;
            if key == k {
                return Ok(x);
            }
            x = self.get(s, x, if key < k { LEFT } else { RIGHT })?;
        }
        Ok(self.nil)
    }

    // ------------------------------------------------------------------
    // insertion
    // ------------------------------------------------------------------

    /// Insert `key`; returns `false` if it was already present.
    ///
    /// # Errors
    ///
    /// `Err(Abort)` if the enclosing transaction aborted.
    ///
    /// # Examples
    ///
    /// ```
    /// use elision_htm::{harness, HtmConfig, MemoryBuilder};
    /// use elision_structures::RbTree;
    ///
    /// let mut b = MemoryBuilder::new();
    /// let tree = RbTree::new(&mut b, 16, 1);
    /// let mem = b.freeze(1);
    /// tree.init(&mem);
    /// let t = tree.clone();
    /// let (results, ..) = harness::run(1, 0, HtmConfig::deterministic(), 1, mem, move |s| {
    ///     let fresh = t.insert(s, 7)?;
    ///     let dup = t.insert(s, 7)?;
    ///     Ok::<_, elision_htm::Abort>((fresh, dup))
    /// });
    /// assert_eq!(results[0], Ok((true, false)));
    /// ```
    pub fn insert(&self, s: &mut Strand, key: u64) -> TxResult<bool> {
        let mut y = self.nil;
        let mut x = s.load(self.root)?;
        while x != self.nil {
            y = x;
            let k = self.get(s, x, KEY)?;
            if key == k {
                return Ok(false);
            }
            x = self.get(s, x, if key < k { LEFT } else { RIGHT })?;
        }
        let z = self.alloc_node(s, key)?;
        self.set(s, z, PARENT, y)?;
        if y == self.nil {
            s.store(self.root, z)?;
        } else {
            let yk = self.get(s, y, KEY)?;
            self.set(s, y, if key < yk { LEFT } else { RIGHT }, z)?;
        }
        self.insert_fixup(s, z)?;
        Ok(true)
    }

    fn insert_fixup(&self, s: &mut Strand, mut z: u64) -> TxResult<()> {
        loop {
            let p = self.get(s, z, PARENT)?;
            if p == self.nil || self.get(s, p, COLOR)? == BLACK {
                break;
            }
            let pp = self.get(s, p, PARENT)?;
            if p == self.get(s, pp, LEFT)? {
                let uncle = self.get(s, pp, RIGHT)?;
                if uncle != self.nil && self.get(s, uncle, COLOR)? == RED {
                    self.set(s, p, COLOR, BLACK)?;
                    self.set(s, uncle, COLOR, BLACK)?;
                    self.set(s, pp, COLOR, RED)?;
                    z = pp;
                } else {
                    if z == self.get(s, p, RIGHT)? {
                        z = p;
                        self.rotate_left(s, z)?;
                    }
                    let p = self.get(s, z, PARENT)?;
                    let pp = self.get(s, p, PARENT)?;
                    self.set(s, p, COLOR, BLACK)?;
                    self.set(s, pp, COLOR, RED)?;
                    self.rotate_right(s, pp)?;
                }
            } else {
                let uncle = self.get(s, pp, LEFT)?;
                if uncle != self.nil && self.get(s, uncle, COLOR)? == RED {
                    self.set(s, p, COLOR, BLACK)?;
                    self.set(s, uncle, COLOR, BLACK)?;
                    self.set(s, pp, COLOR, RED)?;
                    z = pp;
                } else {
                    if z == self.get(s, p, LEFT)? {
                        z = p;
                        self.rotate_right(s, z)?;
                    }
                    let p = self.get(s, z, PARENT)?;
                    let pp = self.get(s, p, PARENT)?;
                    self.set(s, p, COLOR, BLACK)?;
                    self.set(s, pp, COLOR, RED)?;
                    self.rotate_left(s, pp)?;
                }
            }
        }
        let r = s.load(self.root)?;
        // Blacken the root only when needed: an unconditional write here
        // would put the root's line in every inserter's write set and doom
        // all concurrent readers.
        if self.get(s, r, COLOR)? != BLACK {
            self.set(s, r, COLOR, BLACK)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // removal
    // ------------------------------------------------------------------

    /// Remove `key`; returns `false` if it was absent.
    ///
    /// # Errors
    ///
    /// `Err(Abort)` if the enclosing transaction aborted.
    pub fn remove(&self, s: &mut Strand, key: u64) -> TxResult<bool> {
        let z = self.find(s, key)?;
        if z == self.nil {
            return Ok(false);
        }
        // CLRS delete, adjusted so the sentinel is never *written*: the
        // fixup's parent-of-x is threaded explicitly instead of being
        // stored into the sentinel's parent field, which would otherwise
        // make every pair of concurrent deletions conflict.
        let mut y = z;
        let mut y_color = self.get(s, y, COLOR)?;
        let x;
        let x_parent;
        let zl = self.get(s, z, LEFT)?;
        let zr = self.get(s, z, RIGHT)?;
        if zl == self.nil {
            x = zr;
            x_parent = self.get(s, z, PARENT)?;
            self.transplant(s, z, zr)?;
        } else if zr == self.nil {
            x = zl;
            x_parent = self.get(s, z, PARENT)?;
            self.transplant(s, z, zl)?;
        } else {
            y = self.minimum(s, zr)?;
            y_color = self.get(s, y, COLOR)?;
            x = self.get(s, y, RIGHT)?;
            if self.get(s, y, PARENT)? == z {
                x_parent = y;
                if x != self.nil {
                    self.set(s, x, PARENT, y)?;
                }
            } else {
                x_parent = self.get(s, y, PARENT)?;
                let yr = self.get(s, y, RIGHT)?;
                self.transplant(s, y, yr)?;
                let zr = self.get(s, z, RIGHT)?;
                self.set(s, y, RIGHT, zr)?;
                self.set(s, zr, PARENT, y)?;
            }
            self.transplant(s, z, y)?;
            let zl = self.get(s, z, LEFT)?;
            self.set(s, y, LEFT, zl)?;
            self.set(s, zl, PARENT, y)?;
            let zc = self.get(s, z, COLOR)?;
            if self.get(s, y, COLOR)? != zc {
                self.set(s, y, COLOR, zc)?;
            }
        }
        self.free_node(s, z)?;
        if y_color == BLACK {
            self.delete_fixup(s, x, x_parent)?;
        }
        Ok(true)
    }

    fn transplant(&self, s: &mut Strand, u: u64, v: u64) -> TxResult<()> {
        let up = self.get(s, u, PARENT)?;
        if up == self.nil {
            s.store(self.root, v)?;
        } else if u == self.get(s, up, LEFT)? {
            self.set(s, up, LEFT, v)?;
        } else {
            self.set(s, up, RIGHT, v)?;
        }
        if v != self.nil {
            self.set(s, v, PARENT, up)?;
        }
        Ok(())
    }

    fn minimum(&self, s: &mut Strand, mut x: u64) -> TxResult<u64> {
        loop {
            let l = self.get(s, x, LEFT)?;
            if l == self.nil {
                return Ok(x);
            }
            x = l;
        }
    }

    /// `x` may be the sentinel; `p` is always `x`'s (real) parent, threaded
    /// explicitly so the sentinel's fields are never written or read.
    fn delete_fixup(&self, s: &mut Strand, mut x: u64, mut p: u64) -> TxResult<()> {
        loop {
            let root = s.load(self.root)?;
            if x == root || (x != self.nil && self.get(s, x, COLOR)? == RED) {
                break;
            }
            if x == self.get(s, p, LEFT)? {
                let mut w = self.get(s, p, RIGHT)?;
                if self.get(s, w, COLOR)? == RED {
                    self.set(s, w, COLOR, BLACK)?;
                    self.set(s, p, COLOR, RED)?;
                    self.rotate_left(s, p)?;
                    w = self.get(s, p, RIGHT)?;
                }
                let wl = self.get(s, w, LEFT)?;
                let wr = self.get(s, w, RIGHT)?;
                let wl_black = wl == self.nil || self.get(s, wl, COLOR)? == BLACK;
                let wr_black = wr == self.nil || self.get(s, wr, COLOR)? == BLACK;
                if wl_black && wr_black {
                    self.set(s, w, COLOR, RED)?;
                    x = p;
                    p = self.get(s, x, PARENT)?;
                } else {
                    if wr_black {
                        if wl != self.nil {
                            self.set(s, wl, COLOR, BLACK)?;
                        }
                        self.set(s, w, COLOR, RED)?;
                        self.rotate_right(s, w)?;
                        w = self.get(s, p, RIGHT)?;
                    }
                    let pc = self.get(s, p, COLOR)?;
                    self.set(s, w, COLOR, pc)?;
                    self.set(s, p, COLOR, BLACK)?;
                    let wr = self.get(s, w, RIGHT)?;
                    if wr != self.nil {
                        self.set(s, wr, COLOR, BLACK)?;
                    }
                    self.rotate_left(s, p)?;
                    x = s.load(self.root)?;
                }
            } else {
                let mut w = self.get(s, p, LEFT)?;
                if self.get(s, w, COLOR)? == RED {
                    self.set(s, w, COLOR, BLACK)?;
                    self.set(s, p, COLOR, RED)?;
                    self.rotate_right(s, p)?;
                    w = self.get(s, p, LEFT)?;
                }
                let wl = self.get(s, w, LEFT)?;
                let wr = self.get(s, w, RIGHT)?;
                let wl_black = wl == self.nil || self.get(s, wl, COLOR)? == BLACK;
                let wr_black = wr == self.nil || self.get(s, wr, COLOR)? == BLACK;
                if wl_black && wr_black {
                    self.set(s, w, COLOR, RED)?;
                    x = p;
                    p = self.get(s, x, PARENT)?;
                } else {
                    if wl_black {
                        if wr != self.nil {
                            self.set(s, wr, COLOR, BLACK)?;
                        }
                        self.set(s, w, COLOR, RED)?;
                        self.rotate_left(s, w)?;
                        w = self.get(s, p, LEFT)?;
                    }
                    let pc = self.get(s, p, COLOR)?;
                    self.set(s, w, COLOR, pc)?;
                    self.set(s, p, COLOR, BLACK)?;
                    let wl = self.get(s, w, LEFT)?;
                    if wl != self.nil {
                        self.set(s, wl, COLOR, BLACK)?;
                    }
                    self.rotate_right(s, p)?;
                    x = s.load(self.root)?;
                }
            }
        }
        if x != self.nil && self.get(s, x, COLOR)? != BLACK {
            self.set(s, x, COLOR, BLACK)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // rotations
    // ------------------------------------------------------------------

    fn rotate_left(&self, s: &mut Strand, x: u64) -> TxResult<()> {
        let y = self.get(s, x, RIGHT)?;
        let yl = self.get(s, y, LEFT)?;
        self.set(s, x, RIGHT, yl)?;
        if yl != self.nil {
            self.set(s, yl, PARENT, x)?;
        }
        let xp = self.get(s, x, PARENT)?;
        self.set(s, y, PARENT, xp)?;
        if xp == self.nil {
            s.store(self.root, y)?;
        } else if x == self.get(s, xp, LEFT)? {
            self.set(s, xp, LEFT, y)?;
        } else {
            self.set(s, xp, RIGHT, y)?;
        }
        self.set(s, y, LEFT, x)?;
        self.set(s, x, PARENT, y)
    }

    fn rotate_right(&self, s: &mut Strand, x: u64) -> TxResult<()> {
        let y = self.get(s, x, LEFT)?;
        let yr = self.get(s, y, RIGHT)?;
        self.set(s, x, LEFT, yr)?;
        if yr != self.nil {
            self.set(s, yr, PARENT, x)?;
        }
        let xp = self.get(s, x, PARENT)?;
        self.set(s, y, PARENT, xp)?;
        if xp == self.nil {
            s.store(self.root, y)?;
        } else if x == self.get(s, xp, RIGHT)? {
            self.set(s, xp, RIGHT, y)?;
        } else {
            self.set(s, xp, LEFT, y)?;
        }
        self.set(s, y, RIGHT, x)?;
        self.set(s, x, PARENT, y)
    }

    // ------------------------------------------------------------------
    // validation (direct reads; quiescent memory only)
    // ------------------------------------------------------------------

    /// In-order key listing, via direct (non-simulated) reads.
    pub fn collect(&self, mem: &Memory) -> Vec<u64> {
        let mut out = Vec::new();
        self.collect_rec(mem, mem.read_direct(self.root), &mut out);
        out
    }

    fn collect_rec(&self, mem: &Memory, n: u64, out: &mut Vec<u64>) {
        if n == self.nil {
            return;
        }
        self.collect_rec(mem, mem.read_direct(self.field(n, LEFT)), out);
        out.push(mem.read_direct(self.field(n, KEY)));
        self.collect_rec(mem, mem.read_direct(self.field(n, RIGHT)), out);
    }

    /// Check every red-black invariant via direct reads. Returns the
    /// number of keys on success.
    ///
    /// # Errors
    ///
    /// A description of the first violated invariant.
    pub fn validate(&self, mem: &Memory) -> Result<usize, String> {
        let root = mem.read_direct(self.root);
        if root != self.nil {
            if mem.read_direct(self.field(root, COLOR)) != BLACK {
                return Err("root is not black".into());
            }
            if mem.read_direct(self.field(root, PARENT)) != self.nil {
                return Err("root has a parent".into());
            }
        }
        let mut count = 0;
        self.validate_rec(mem, root, None, None, &mut count)?;
        Ok(count)
    }

    /// Returns the black height of the subtree.
    fn validate_rec(
        &self,
        mem: &Memory,
        n: u64,
        lo: Option<u64>,
        hi: Option<u64>,
        count: &mut usize,
    ) -> Result<usize, String> {
        if n == self.nil {
            return Ok(1);
        }
        *count += 1;
        let key = mem.read_direct(self.field(n, KEY));
        if let Some(lo) = lo {
            if key <= lo {
                return Err(format!("BST order violated at key {key}"));
            }
        }
        if let Some(hi) = hi {
            if key >= hi {
                return Err(format!("BST order violated at key {key}"));
            }
        }
        let color = mem.read_direct(self.field(n, COLOR));
        let l = mem.read_direct(self.field(n, LEFT));
        let r = mem.read_direct(self.field(n, RIGHT));
        for child in [l, r] {
            if child != self.nil {
                if mem.read_direct(self.field(child, PARENT)) != n {
                    return Err(format!("broken parent link under key {key}"));
                }
                if color == RED && mem.read_direct(self.field(child, COLOR)) == RED {
                    return Err(format!("red-red violation at key {key}"));
                }
            }
        }
        let lh = self.validate_rec(mem, l, lo, Some(key), count)?;
        let rh = self.validate_rec(mem, r, Some(key), hi, count)?;
        if lh != rh {
            return Err(format!("black-height mismatch at key {key}: {lh} vs {rh}"));
        }
        Ok(lh + usize::from(color == BLACK))
    }
}
