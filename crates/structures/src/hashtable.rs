//! A transactional chained hash table (the paper's second data-structure
//! benchmark; its transactions are always short, "zooming in" on the
//! short-transaction end of the red-black-tree workload spectrum).

use elision_htm::{Memory, MemoryBuilder, Placer, RecordArena, Strand, TxResult, VarId, VarRole};

const KEY: u32 = 0;
const VALUE: u32 = 1;
const NEXT: u32 = 2;
const STRIDE: u32 = 4;

const NONE: u64 = u64::MAX;

/// A fixed-bucket chained hash table mapping `u64` keys to `u64` values.
#[derive(Debug, Clone)]
pub struct HashTable {
    /// Bucket heads (node index or `NONE`), one single-word record per
    /// bucket (contiguous under [`HashTable::new`], placement-policy
    /// controlled under [`HashTable::new_placed`]).
    buckets: RecordArena,
    n_buckets: usize,
    /// Per-thread free-list heads.
    free: Vec<VarId>,
    /// The node arena.
    arena: RecordArena,
    cap: usize,
}

impl HashTable {
    /// Allocate a table with `n_buckets` buckets and room for `capacity`
    /// entries, free-lists partitioned across `threads`.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn new(b: &mut MemoryBuilder, n_buckets: usize, capacity: usize, threads: usize) -> Self {
        assert!(n_buckets > 0 && capacity > 0 && threads > 0);
        b.pad_to_line();
        let buckets = RecordArena::contiguous(b.alloc_array(n_buckets, NONE).index(), 1);
        b.pad_to_line();
        let base = b.len() as u32;
        b.alloc_array(capacity * STRIDE as usize, 0);
        let free: Vec<VarId> = (0..threads).map(|_| b.alloc_isolated(NONE)).collect();
        HashTable {
            buckets,
            n_buckets,
            free,
            arena: RecordArena::contiguous(base, STRIDE),
            cap: capacity,
        }
    }

    /// Like [`HashTable::new`], but every allocation goes through `p`'s
    /// placement policy: bucket heads as a `"hash.bucket"` record region
    /// (one word per record — packed policies co-locate many buckets per
    /// line, padded isolates each), nodes as `"hash.node"`, and the
    /// per-thread free-list heads as one `"hash.free"` region.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn new_placed(p: &mut Placer, n_buckets: usize, capacity: usize, threads: usize) -> Self {
        assert!(n_buckets > 0 && capacity > 0 && threads > 0);
        let buckets = p.records("hash.bucket", VarRole::Data, n_buckets, 1, NONE);
        let arena = p.records("hash.node", VarRole::Data, capacity, STRIDE, 0);
        let free_arena = p.records("hash.free", VarRole::Meta, threads, 1, NONE);
        let free = (0..threads as u64).map(|t| free_arena.word(t, 0)).collect();
        HashTable { buckets, n_buckets, free, arena, cap: capacity }
    }

    /// Chain the free lists; call once after freezing, before use.
    pub fn init(&self, mem: &Memory) {
        let threads = self.free.len();
        let mut heads = vec![NONE; threads];
        for n in (0..self.cap as u64).rev() {
            let pool = (n as usize) % threads;
            mem.write_direct(self.field(n, NEXT), heads[pool]);
            heads[pool] = n;
        }
        for (t, &h) in heads.iter().enumerate() {
            mem.write_direct(self.free[t], h);
        }
    }

    /// Number of buckets.
    pub fn n_buckets(&self) -> usize {
        self.n_buckets
    }

    fn field(&self, node: u64, f: u32) -> VarId {
        self.arena.word(node, f)
    }

    /// The bucket index `key` hashes to (Fibonacci hashing spreads
    /// sequential keys across buckets). Public so workload generators
    /// can construct bucket-disjoint key sets.
    pub fn bucket_of(&self, key: u64) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.n_buckets
    }

    fn bucket_var(&self, key: u64) -> VarId {
        self.buckets.word(self.bucket_of(key) as u64, 0)
    }

    fn alloc_node(&self, s: &mut Strand, key: u64, value: u64) -> TxResult<u64> {
        let me = s.tid() % self.free.len();
        let pools = self.free.len();
        for k in 0..pools {
            let pool = self.free[(me + k) % pools];
            let head = s.load(pool)?;
            if head == NONE {
                continue;
            }
            let next = s.load(self.field(head, NEXT))?;
            s.store(pool, next)?;
            s.store(self.field(head, KEY), key)?;
            s.store(self.field(head, VALUE), value)?;
            s.store(self.field(head, NEXT), NONE)?;
            return Ok(head);
        }
        panic!("hash-table arena exhausted (capacity {})", self.cap);
    }

    fn free_node(&self, s: &mut Strand, node: u64) -> TxResult<()> {
        let pool = self.free[s.tid() % self.free.len()];
        let head = s.load(pool)?;
        s.store(self.field(node, NEXT), head)?;
        s.store(pool, node)
    }

    /// Redistribute free nodes evenly across the per-thread pools via
    /// direct writes (see `RbTree::rebalance_freelists`). Quiescent use
    /// only.
    pub fn rebalance_freelists(&self, mem: &Memory) {
        let threads = self.free.len();
        let mut nodes = Vec::new();
        for &pool in &self.free {
            let mut n = mem.read_direct(pool);
            while n != NONE {
                nodes.push(n);
                n = mem.read_direct(self.field(n, NEXT));
            }
        }
        let mut heads = vec![NONE; threads];
        for (i, &n) in nodes.iter().enumerate() {
            let pool = i % threads;
            mem.write_direct(self.field(n, NEXT), heads[pool]);
            heads[pool] = n;
        }
        for (t, &h) in heads.iter().enumerate() {
            mem.write_direct(self.free[t], h);
        }
    }

    /// Look up `key`.
    ///
    /// # Errors
    ///
    /// `Err(Abort)` if the enclosing transaction aborted.
    pub fn get(&self, s: &mut Strand, key: u64) -> TxResult<Option<u64>> {
        let mut n = s.load(self.bucket_var(key))?;
        while n != NONE {
            if s.load(self.field(n, KEY))? == key {
                return Ok(Some(s.load(self.field(n, VALUE))?));
            }
            n = s.load(self.field(n, NEXT))?;
        }
        Ok(None)
    }

    /// Insert or update `key`; returns the previous value if any.
    ///
    /// # Errors
    ///
    /// `Err(Abort)` if the enclosing transaction aborted.
    ///
    /// # Examples
    ///
    /// ```
    /// use elision_htm::{harness, HtmConfig, MemoryBuilder};
    /// use elision_structures::HashTable;
    ///
    /// let mut b = MemoryBuilder::new();
    /// let table = HashTable::new(&mut b, 8, 16, 1);
    /// let mem = b.freeze(1);
    /// table.init(&mem);
    /// let t = table.clone();
    /// harness::run(1, 0, HtmConfig::deterministic(), 1, mem, move |s| {
    ///     assert_eq!(t.put(s, 3, 30).unwrap(), None);
    ///     assert_eq!(t.put(s, 3, 33).unwrap(), Some(30));
    ///     assert_eq!(t.get(s, 3).unwrap(), Some(33));
    /// });
    /// ```
    pub fn put(&self, s: &mut Strand, key: u64, value: u64) -> TxResult<Option<u64>> {
        let bucket = self.bucket_var(key);
        let mut n = s.load(bucket)?;
        while n != NONE {
            if s.load(self.field(n, KEY))? == key {
                let old = s.load(self.field(n, VALUE))?;
                s.store(self.field(n, VALUE), value)?;
                return Ok(Some(old));
            }
            n = s.load(self.field(n, NEXT))?;
        }
        let node = self.alloc_node(s, key, value)?;
        let head = s.load(bucket)?;
        s.store(self.field(node, NEXT), head)?;
        s.store(bucket, node)?;
        Ok(None)
    }

    /// Remove `key`; returns its value if it was present.
    ///
    /// # Errors
    ///
    /// `Err(Abort)` if the enclosing transaction aborted.
    pub fn remove(&self, s: &mut Strand, key: u64) -> TxResult<Option<u64>> {
        let bucket = self.bucket_var(key);
        let mut prev = NONE;
        let mut n = s.load(bucket)?;
        while n != NONE {
            if s.load(self.field(n, KEY))? == key {
                let next = s.load(self.field(n, NEXT))?;
                if prev == NONE {
                    s.store(bucket, next)?;
                } else {
                    s.store(self.field(prev, NEXT), next)?;
                }
                let val = s.load(self.field(n, VALUE))?;
                self.free_node(s, n)?;
                return Ok(Some(val));
            }
            prev = n;
            n = s.load(self.field(n, NEXT))?;
        }
        Ok(None)
    }

    /// Collect all `(key, value)` pairs via direct reads (quiescent only).
    pub fn collect(&self, mem: &Memory) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for bkt in 0..self.n_buckets as u64 {
            let mut n = mem.read_direct(self.buckets.word(bkt, 0));
            while n != NONE {
                out.push((
                    mem.read_direct(self.field(n, KEY)),
                    mem.read_direct(self.field(n, VALUE)),
                ));
                n = mem.read_direct(self.field(n, NEXT));
            }
        }
        out.sort_unstable();
        out
    }
}
