//! Transactional data structures used by the paper's evaluation: the
//! red-black tree and hash table of §4/§7.1, plus the queue and sorted
//! list used by the STAMP-style kernels and extension benchmarks.
//!
//! All structures live in simulated memory and are accessed through a
//! [`elision_htm::Strand`], so they can be used inside elided critical
//! sections: traversals populate the transaction's read set, mutations
//! its write set, and aborts roll everything back.
//!
//! # Example
//!
//! ```
//! use elision_htm::{harness, HtmConfig, MemoryBuilder};
//! use elision_structures::RbTree;
//!
//! let mut b = MemoryBuilder::new();
//! let tree = RbTree::new(&mut b, 64, 1);
//! let mem = b.freeze(1);
//! tree.init(&mem);
//! let t = tree.clone();
//! let (_, mem, _) = harness::run(1, 0, HtmConfig::deterministic(), 1, mem, move |s| {
//!     for k in [5, 1, 9, 3] {
//!         t.insert(s, k).unwrap();
//!     }
//!     t.remove(s, 1).unwrap();
//! });
//! assert_eq!(tree.collect(&mem), vec![3, 5, 9]);
//! assert_eq!(tree.validate(&mem).unwrap(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hashtable;
pub mod history;
mod list;
mod queue;
mod rbtree;
mod workload;

pub use hashtable::HashTable;
pub use history::{HistoryRecorder, OpAction, OpRecord, OpResponse, SeqModel, StructureKind};
pub use list::SortedList;
pub use queue::SimQueue;
pub use rbtree::RbTree;
pub use workload::{key_domain, OpMix, TreeOp};

#[cfg(test)]
mod tests {
    use super::*;
    use elision_core::{make_scheme, LockKind, SchemeConfig, SchemeKind};
    use elision_htm::{harness, HtmConfig, MemoryBuilder};
    use elision_sim::DetRng;
    use std::collections::BTreeSet;

    #[test]
    fn rbtree_sequential_ops_match_model() {
        let mut b = MemoryBuilder::new();
        let tree = RbTree::new(&mut b, 256, 1);
        let mem = b.freeze(1);
        tree.init(&mem);
        let t = tree.clone();
        let (results, mem, _) = harness::run(1, 0, HtmConfig::deterministic(), 11, mem, move |s| {
            let mut model = BTreeSet::new();
            let mut rng = DetRng::new(99, 0);
            for _ in 0..2000 {
                let key = rng.below(128);
                match rng.below(3) {
                    0 => {
                        let added = t.insert(s, key).unwrap();
                        assert_eq!(added, model.insert(key), "insert({key}) diverged");
                    }
                    1 => {
                        let removed = t.remove(s, key).unwrap();
                        assert_eq!(removed, model.remove(&key), "remove({key}) diverged");
                    }
                    _ => {
                        let found = t.contains(s, key).unwrap();
                        assert_eq!(found, model.contains(&key), "contains({key}) diverged");
                    }
                }
            }
            model.into_iter().collect::<Vec<_>>()
        });
        let model_keys = &results[0];
        assert_eq!(&tree.collect(&mem), model_keys);
        assert_eq!(tree.validate(&mem).unwrap(), model_keys.len());
    }

    #[test]
    fn rbtree_concurrent_ops_keep_invariants() {
        let threads = 4;
        let mut b = MemoryBuilder::new();
        let tree = RbTree::new(&mut b, 512, threads);
        let scheme =
            make_scheme(SchemeKind::HleScm, LockKind::Mcs, SchemeConfig::paper(), &mut b, threads);
        let mem = b.freeze(threads);
        tree.init(&mem);
        let t = tree.clone();
        let (results, mem, _) =
            harness::run(threads, 0, HtmConfig::deterministic(), 5, mem, move |s| {
                let mut delta = 0i64;
                for _ in 0..150 {
                    let key = s.rng.below(64);
                    let op = s.rng.below(2);
                    let out = scheme.execute(s, |s| {
                        if op == 0 {
                            t.insert(s, key)
                        } else {
                            t.remove(s, key)
                        }
                    });
                    if out.value {
                        delta += if op == 0 { 1 } else { -1 };
                    }
                }
                delta
            });
        let expected: i64 = results.iter().sum();
        let n = tree.validate(&mem).unwrap_or_else(|e| panic!("invariant broken: {e}"));
        assert_eq!(n as i64, expected, "size conservation violated");
    }

    #[test]
    fn rbtree_concurrent_under_every_scheme() {
        for kind in
            [SchemeKind::Hle, SchemeKind::HleRetries, SchemeKind::OptSlr, SchemeKind::SlrScm]
        {
            let threads = 3;
            let mut b = MemoryBuilder::new();
            let tree = RbTree::new(&mut b, 256, threads);
            let scheme = make_scheme(kind, LockKind::Ttas, SchemeConfig::paper(), &mut b, threads);
            let mem = b.freeze(threads);
            tree.init(&mem);
            let t = tree.clone();
            let (results, mem, _) =
                harness::run(threads, 0, HtmConfig::deterministic(), 5, mem, move |s| {
                    let mut delta = 0i64;
                    for _ in 0..80 {
                        let key = s.rng.below(32);
                        let op = s.rng.below(2);
                        let out = scheme.execute(s, |s| {
                            if op == 0 {
                                t.insert(s, key)
                            } else {
                                t.remove(s, key)
                            }
                        });
                        if out.value {
                            delta += if op == 0 { 1 } else { -1 };
                        }
                    }
                    delta
                });
            let expected: i64 = results.iter().sum();
            let n = tree.validate(&mem).unwrap_or_else(|e| panic!("{kind}: invariant broken: {e}"));
            assert_eq!(n as i64, expected, "{kind}: size conservation violated");
        }
    }

    #[test]
    fn hashtable_matches_model() {
        let mut b = MemoryBuilder::new();
        let table = HashTable::new(&mut b, 16, 128, 1);
        let mem = b.freeze(1);
        table.init(&mem);
        let t = table.clone();
        harness::run(1, 0, HtmConfig::deterministic(), 11, mem, move |s| {
            let mut model = std::collections::HashMap::new();
            let mut rng = DetRng::new(7, 3);
            for _ in 0..1500 {
                let key = rng.below(96);
                match rng.below(3) {
                    0 => {
                        let v = rng.below(1000);
                        assert_eq!(t.put(s, key, v).unwrap(), model.insert(key, v));
                    }
                    1 => {
                        assert_eq!(t.remove(s, key).unwrap(), model.remove(&key));
                    }
                    _ => {
                        assert_eq!(t.get(s, key).unwrap(), model.get(&key).copied());
                    }
                }
            }
        });
    }

    #[test]
    fn hashtable_concurrent_conservation() {
        let threads = 4;
        let mut b = MemoryBuilder::new();
        let table = HashTable::new(&mut b, 64, 512, threads);
        let scheme =
            make_scheme(SchemeKind::OptSlr, LockKind::Ttas, SchemeConfig::paper(), &mut b, threads);
        let mem = b.freeze(threads);
        table.init(&mem);
        let t = table.clone();
        let (results, mem, _) =
            harness::run(threads, 0, HtmConfig::deterministic(), 5, mem, move |s| {
                let mut delta = 0i64;
                for _ in 0..150 {
                    let key = s.rng.below(128);
                    let op = s.rng.below(2);
                    let out = scheme.execute(s, |s| {
                        if op == 0 {
                            t.put(s, key, key * 10).map(|prev| prev.is_none())
                        } else {
                            t.remove(s, key).map(|prev| prev.is_some())
                        }
                    });
                    if out.value {
                        delta += if op == 0 { 1 } else { -1 };
                    }
                }
                delta
            });
        let expected: i64 = results.iter().sum();
        let pairs = table.collect(&mem);
        assert_eq!(pairs.len() as i64, expected);
        for (k, v) in pairs {
            assert_eq!(v, k * 10);
        }
    }

    #[test]
    fn queue_is_fifo() {
        let mut b = MemoryBuilder::new();
        let q = SimQueue::new(&mut b, 8);
        let mem = b.freeze(1);
        let qq = q.clone();
        harness::run(1, 0, HtmConfig::deterministic(), 1, mem, move |s| {
            assert!(qq.is_empty(s).unwrap());
            for v in 10..15 {
                assert!(qq.push(s, v).unwrap());
            }
            assert_eq!(qq.len(s).unwrap(), 5);
            for v in 10..15 {
                assert_eq!(qq.pop(s).unwrap(), Some(v));
            }
            assert_eq!(qq.pop(s).unwrap(), None);
        });
    }

    #[test]
    fn queue_rejects_overflow_and_wraps() {
        let mut b = MemoryBuilder::new();
        let q = SimQueue::new(&mut b, 4);
        let mem = b.freeze(1);
        let qq = q.clone();
        harness::run(1, 0, HtmConfig::deterministic(), 1, mem, move |s| {
            for v in 0..4 {
                assert!(qq.push(s, v).unwrap());
            }
            assert!(!qq.push(s, 99).unwrap(), "push into a full queue must fail");
            assert_eq!(qq.pop(s).unwrap(), Some(0));
            assert!(qq.push(s, 4).unwrap(), "slot must be reusable after pop");
            let drained: Vec<_> = (0..4).map(|_| qq.pop(s).unwrap().unwrap()).collect();
            assert_eq!(drained, vec![1, 2, 3, 4]);
        });
    }

    #[test]
    fn queue_concurrent_producers_consumers() {
        let threads = 4;
        let per = 100u64;
        let mut b = MemoryBuilder::new();
        let q = SimQueue::new(&mut b, 1024);
        let scheme =
            make_scheme(SchemeKind::HleScm, LockKind::Ttas, SchemeConfig::paper(), &mut b, threads);
        let mem = b.freeze(threads);
        let qq = q.clone();
        let (results, mem, _) =
            harness::run(threads, 0, HtmConfig::deterministic(), 5, mem, move |s| {
                let mut popped = 0u64;
                if s.tid() % 2 == 0 {
                    for i in 0..per {
                        let v = (s.tid() as u64) << 32 | i;
                        scheme.execute(s, |s| qq.push(s, v));
                    }
                } else {
                    for _ in 0..per {
                        let out = scheme.execute(s, |s| qq.pop(s));
                        if out.value.is_some() {
                            popped += 1;
                        }
                    }
                }
                popped
            });
        let total_popped: u64 = results.iter().sum();
        assert_eq!(q.len_direct(&mem), 2 * per - total_popped);
    }

    #[test]
    fn sorted_list_matches_model() {
        let mut b = MemoryBuilder::new();
        let list = SortedList::new(&mut b, 64, 1);
        let mem = b.freeze(1);
        list.init(&mem);
        let l = list.clone();
        let (_, mem, _) = harness::run(1, 0, HtmConfig::deterministic(), 1, mem, move |s| {
            let mut model = BTreeSet::new();
            let mut rng = DetRng::new(31, 0);
            for _ in 0..800 {
                let key = rng.below(48);
                match rng.below(3) {
                    0 => assert_eq!(l.insert(s, key).unwrap(), model.insert(key)),
                    1 => assert_eq!(l.remove(s, key).unwrap(), model.remove(&key)),
                    _ => assert_eq!(l.contains(s, key).unwrap(), model.contains(&key)),
                }
            }
            assert_eq!(l.collect(s.memory()), model.iter().copied().collect::<Vec<_>>());
        });
        drop(mem);
    }

    #[test]
    fn placed_structures_behave_under_every_policy() {
        use elision_htm::{PlacementConfig, PlacementPolicy, Placer};
        for policy in PlacementPolicy::ALL {
            for lockco in [false, true] {
                let cfg = PlacementConfig::new(policy).with_coresident_locks(lockco);
                let mut p = Placer::new(MemoryBuilder::new(), cfg);
                let tree = RbTree::new_placed(&mut p, 64, 2);
                let list = SortedList::new_placed(&mut p, 32, 2);
                let table = HashTable::new_placed(&mut p, 8, 64, 2);
                let q = SimQueue::new_placed(&mut p, 8);
                let scheme = make_scheme(
                    SchemeKind::Hle,
                    LockKind::Ttas,
                    SchemeConfig::paper(),
                    p.builder_mut(),
                    2,
                );
                let (b, layout) = p.finish();
                let mem = b.freeze(2);
                assert_eq!(layout.words() as usize, mem.words(), "{policy:?}");
                tree.init(&mem);
                list.init(&mem);
                table.init(&mem);
                let (t, l, h, qq) = (tree.clone(), list.clone(), table.clone(), q.clone());
                let (results, mem, _) =
                    harness::run(2, 0, HtmConfig::deterministic(), 9, mem, move |s| {
                        let mut delta = 0i64;
                        for _ in 0..60 {
                            let key = s.rng.below(48);
                            let grow = key % 2 == 0;
                            let out = scheme.execute(s, |s| {
                                if grow {
                                    t.insert(s, key)
                                } else {
                                    t.remove(s, key)
                                }
                            });
                            if out.value {
                                delta += if grow { 1 } else { -1 };
                            }
                            scheme.execute(s, |s| {
                                let _ = l.insert(s, key % 16)?;
                                let _ = h.put(s, key, key + 1)?;
                                let _ = qq.push(s, key)?;
                                let _ = qq.pop(s)?;
                                Ok::<_, elision_htm::Abort>(())
                            });
                        }
                        delta
                    });
                let expected: i64 = results.iter().sum();
                let n = tree
                    .validate(&mem)
                    .unwrap_or_else(|e| panic!("{policy:?} lockco={lockco}: {e}"));
                assert_eq!(n as i64, expected, "{policy:?} lockco={lockco}");
                for (k, v) in table.collect(&mem) {
                    assert_eq!(v, k + 1, "{policy:?} lockco={lockco}");
                }
                let lock_lines = layout.lock_lines();
                assert!(!lock_lines.is_empty(), "scheme lock must appear in the layout");
                assert!(
                    lock_lines.iter().all(|&line| mem.is_lock_line(line)),
                    "{policy:?}: layout lock lines must agree with the frozen memory"
                );
            }
        }
    }

    #[test]
    fn doomed_traversal_unwinds_cleanly() {
        // Failure injection: dooming a transaction mid-traversal must not
        // corrupt the tree or hang the traverser.
        let threads = 2;
        let mut b = MemoryBuilder::new();
        let tree = RbTree::new(&mut b, 128, threads);
        let mem = b.freeze(threads);
        tree.init(&mem);
        let t = tree.clone();
        let (_, mem, _) = harness::run(threads, 0, HtmConfig::deterministic(), 5, mem, move |s| {
            if s.tid() == 0 {
                // Speculative traversals, racing the writer.
                let mut aborted = 0;
                for k in 0..60u64 {
                    s.begin();
                    let r = t.contains(s, k % 32);
                    if r.is_err() || s.commit().is_err() {
                        aborted += 1;
                    }
                }
                aborted
            } else {
                // Non-speculative writer mutating the tree.
                for k in 0..30u64 {
                    t.insert(s, k).unwrap();
                    s.work(5).unwrap();
                }
                0
            }
        });
        assert_eq!(tree.validate(&mem).unwrap(), 30);
    }
}
