//! The paper's data-structure workload definitions (§4): a key domain of
//! twice the target size, an operation mix with equal insert/delete rates
//! (so the structure's size is stable in expectation), and three named
//! contention levels.

use elision_sim::DetRng;

/// One structure operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeOp {
    /// Insert a key.
    Insert,
    /// Delete a key.
    Delete,
    /// Look a key up.
    Lookup,
}

/// An operation mix (percentages; the remainder are lookups).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMix {
    /// Percent of operations that insert.
    pub insert_pct: u8,
    /// Percent of operations that delete.
    pub delete_pct: u8,
}

impl OpMix {
    /// "No contention": lookups only (paper Figure 4 left).
    pub const LOOKUP_ONLY: OpMix = OpMix { insert_pct: 0, delete_pct: 0 };
    /// "Moderate contention": 10% insert, 10% delete, 80% lookups.
    pub const MODERATE: OpMix = OpMix { insert_pct: 10, delete_pct: 10 };
    /// "Extensive contention": 50% insert, 50% delete.
    pub const EXTENSIVE: OpMix = OpMix { insert_pct: 50, delete_pct: 50 };

    /// The paper's three contention levels with their figure captions.
    pub const LEVELS: [(&'static str, OpMix); 3] = [
        ("Lookups-Only", OpMix::LOOKUP_ONLY),
        ("10% insertion 10% deletion 80% lookups", OpMix::MODERATE),
        ("50% insertion 50% deletion", OpMix::EXTENSIVE),
    ];

    /// Draw the next operation.
    ///
    /// # Panics
    ///
    /// Panics if the percentages sum past 100.
    pub fn draw(&self, rng: &mut DetRng) -> TreeOp {
        let total = self.insert_pct as u64 + self.delete_pct as u64;
        assert!(total <= 100, "op mix exceeds 100%");
        let roll = rng.below(100);
        if roll < self.insert_pct as u64 {
            TreeOp::Insert
        } else if roll < total {
            TreeOp::Delete
        } else {
            TreeOp::Lookup
        }
    }

    /// Fraction of mutating operations.
    pub fn update_fraction(&self) -> f64 {
        (self.insert_pct + self.delete_pct) as f64 / 100.0
    }
}

/// The paper's key-domain rule: keys are drawn uniformly from `[0, 2s)`
/// for a structure of target size `s`.
pub fn key_domain(size: usize) -> u64 {
    (size as u64).saturating_mul(2).max(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_draws_respect_percentages() {
        let mut rng = DetRng::new(1, 0);
        let mix = OpMix::MODERATE;
        let mut counts = [0u64; 3];
        for _ in 0..20_000 {
            match mix.draw(&mut rng) {
                TreeOp::Insert => counts[0] += 1,
                TreeOp::Delete => counts[1] += 1,
                TreeOp::Lookup => counts[2] += 1,
            }
        }
        let frac = |c: u64| c as f64 / 20_000.0;
        assert!((frac(counts[0]) - 0.10).abs() < 0.02);
        assert!((frac(counts[1]) - 0.10).abs() < 0.02);
        assert!((frac(counts[2]) - 0.80).abs() < 0.02);
    }

    #[test]
    fn lookup_only_never_mutates() {
        let mut rng = DetRng::new(2, 0);
        for _ in 0..1000 {
            assert_eq!(OpMix::LOOKUP_ONLY.draw(&mut rng), TreeOp::Lookup);
        }
    }

    #[test]
    fn domain_is_twice_size() {
        assert_eq!(key_domain(128), 256);
        assert_eq!(key_domain(1), 2);
        assert_eq!(key_domain(0), 2);
    }

    #[test]
    fn update_fraction() {
        assert_eq!(OpMix::EXTENSIVE.update_fraction(), 1.0);
        assert_eq!(OpMix::LOOKUP_ONLY.update_fraction(), 0.0);
    }
}
