//! Property-based tests: the transactional structures against
//! std-library models, under arbitrary operation sequences.

use elision_htm::{harness, HtmConfig, MemoryBuilder};
use elision_structures::{HashTable, RbTree, SortedList};
use proptest::prelude::*;
use std::collections::{BTreeSet, HashMap};

#[derive(Debug, Clone, Copy)]
enum SetOp {
    Insert(u64),
    Remove(u64),
    Contains(u64),
}

fn set_op() -> impl Strategy<Value = SetOp> {
    prop_oneof![
        (0u64..64).prop_map(SetOp::Insert),
        (0u64..64).prop_map(SetOp::Remove),
        (0u64..64).prop_map(SetOp::Contains),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The red-black tree behaves exactly like `BTreeSet` and keeps every
    /// red-black invariant after every prefix of any operation sequence.
    #[test]
    fn rbtree_equals_btreeset(ops in prop::collection::vec(set_op(), 1..120)) {
        let mut b = MemoryBuilder::new();
        let tree = RbTree::new(&mut b, 80, 1);
        let mem = b.freeze(1);
        tree.init(&mem);
        let t = tree.clone();
        let ops2 = ops.clone();
        let (results, mem, _) = harness::run(1, 0, HtmConfig::deterministic(), 1, mem, move |s| {
            let mut model = BTreeSet::new();
            for op in &ops2 {
                match *op {
                    SetOp::Insert(k) => assert_eq!(t.insert(s, k).unwrap(), model.insert(k)),
                    SetOp::Remove(k) => assert_eq!(t.remove(s, k).unwrap(), model.remove(&k)),
                    SetOp::Contains(k) => {
                        assert_eq!(t.contains(s, k).unwrap(), model.contains(&k))
                    }
                }
            }
            model.into_iter().collect::<Vec<_>>()
        });
        prop_assert_eq!(&tree.collect(&mem), &results[0]);
        let n = tree.validate(&mem).map_err(TestCaseError::fail)?;
        prop_assert_eq!(n, results[0].len());
    }

    /// The hash table behaves exactly like `HashMap`.
    #[test]
    fn hashtable_equals_hashmap(
        ops in prop::collection::vec((0u64..48, 0u64..1000, 0u8..3), 1..120),
        buckets in 1usize..24,
    ) {
        let mut b = MemoryBuilder::new();
        let table = HashTable::new(&mut b, buckets, 64, 1);
        let mem = b.freeze(1);
        table.init(&mem);
        let t = table.clone();
        harness::run(1, 0, HtmConfig::deterministic(), 1, mem, move |s| {
            let mut model: HashMap<u64, u64> = HashMap::new();
            for &(k, v, kind) in &ops {
                match kind {
                    0 => assert_eq!(t.put(s, k, v).unwrap(), model.insert(k, v)),
                    1 => assert_eq!(t.remove(s, k).unwrap(), model.remove(&k)),
                    _ => assert_eq!(t.get(s, k).unwrap(), model.get(&k).copied()),
                }
            }
            let mut expected: Vec<(u64, u64)> = model.into_iter().collect();
            expected.sort_unstable();
            assert_eq!(t.collect(s.memory()), expected);
        });
    }

    /// The sorted list stays sorted, unique and model-equal.
    #[test]
    fn sorted_list_equals_btreeset(ops in prop::collection::vec(set_op(), 1..80)) {
        let mut b = MemoryBuilder::new();
        let list = SortedList::new(&mut b, 72, 1);
        let mem = b.freeze(1);
        list.init(&mem);
        let l = list.clone();
        harness::run(1, 0, HtmConfig::deterministic(), 1, mem, move |s| {
            let mut model = BTreeSet::new();
            for op in &ops {
                match *op {
                    SetOp::Insert(k) => assert_eq!(l.insert(s, k).unwrap(), model.insert(k)),
                    SetOp::Remove(k) => assert_eq!(l.remove(s, k).unwrap(), model.remove(&k)),
                    SetOp::Contains(k) => {
                        assert_eq!(l.contains(s, k).unwrap(), model.contains(&k))
                    }
                }
            }
            let got = l.collect(s.memory());
            let expected: Vec<u64> = model.into_iter().collect();
            assert_eq!(got, expected);
        });
    }

    /// Aborted structure operations leave no trace: run a random op
    /// sequence inside one transaction, abort, and the structure must be
    /// byte-identical to before.
    #[test]
    fn aborted_tree_ops_roll_back(
        warm in prop::collection::vec(0u64..64, 0..30),
        ops in prop::collection::vec(set_op(), 1..40),
    ) {
        let mut b = MemoryBuilder::new();
        let tree = RbTree::new(&mut b, 128, 1);
        let mem = b.freeze(1);
        tree.init(&mem);
        let t = tree.clone();
        let warm2 = warm.clone();
        let (_, mem, _) = harness::run(1, 0, HtmConfig::deterministic(), 1, mem, move |s| {
            for &k in &warm2 {
                t.insert(s, k).unwrap();
            }
            let before = t.collect(s.memory());
            s.begin();
            for op in &ops {
                match *op {
                    SetOp::Insert(k) => { t.insert(s, k).unwrap(); }
                    SetOp::Remove(k) => { t.remove(s, k).unwrap(); }
                    SetOp::Contains(k) => { t.contains(s, k).unwrap(); }
                }
            }
            let _ = s.xabort(9, false);
            assert_eq!(t.collect(s.memory()), before, "abort leaked structure changes");
        });
        tree.validate(&mem).map_err(TestCaseError::fail)?;
    }
}
