//! Property tests for the model checker's two trust anchors.
//!
//! * **Bounds actually bound.** Whatever limits the explorer is given —
//!   down to a single schedule, a single run, a handful of steps — it
//!   terminates promptly, never panics, respects every cap it reports,
//!   and only claims a complete (non-truncated) search when enlarging
//!   the budget could not change the verdict.
//! * **Minimization is sound.** Shrinking a failing forced schedule may
//!   drop incidental decisions, but the minimized schedule must still
//!   reproduce the lint it was minimized for — a "minimal
//!   counterexample" that no longer fails would poison the golden
//!   corpus.
//!
//! Both properties run against the lazy-subscription fixtures the
//! `lazy_safety` sweep gates on, so the explorer is exercised exactly
//! where its counterexamples carry the most weight.

use elision_analysis::explore::{explore_and_minimize, minimize, Bounds, Mode};
use elision_analysis::testkit::{lazy_race_explore, lazy_zombie_explore, LazyFixes};
use elision_analysis::LintId;
use elision_core::LockKind;
use proptest::prelude::*;
use std::collections::{BTreeMap, HashSet};

proptest! {
    // Each case runs a full (bounded) model-checking search; keep the
    // case count modest so the suite stays fast.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary tight bounds: the search must terminate within its
    /// caps, and a non-truncated verdict must be stable under a larger
    /// budget (a complete search has nothing left to discover).
    #[test]
    fn tight_bounds_truncate_and_never_hang(
        max_schedules in 1usize..12,
        max_runs in 1usize..24,
        max_steps in 1usize..64,
        divergence in 0u32..5,
        fixes_idx in 0usize..4,
    ) {
        let fixes = LazyFixes::ALL[fixes_idx];
        let bounds = Bounds {
            divergence: Some(divergence),
            max_schedules,
            max_runs,
            max_steps,
        };
        let runner = |ov: &BTreeMap<usize, usize>| {
            lazy_race_explore(LockKind::Ttas, fixes, ov)
        };
        let (stats, findings) = explore_and_minimize(Mode::Dpor, &bounds, runner);
        prop_assert!(stats.executions >= 1, "the default schedule always runs");
        prop_assert!(
            stats.executions <= max_schedules,
            "executions {} exceed the schedule cap {max_schedules}",
            stats.executions
        );
        prop_assert!(
            stats.runs <= max_runs.max(1),
            "runs {} exceed the run cap {max_runs}",
            stats.runs
        );

        if !stats.truncated {
            // Complete search: every budget increase must reproduce the
            // same verdict, finding for finding.
            let bigger = Bounds {
                divergence: Some(divergence + 1),
                max_schedules: max_schedules + 16,
                max_runs: max_runs + 32,
                max_steps: max_steps + 128,
            };
            let (_, more) = explore_and_minimize(Mode::Dpor, &bigger, runner);
            let lints: HashSet<LintId> = findings.iter().map(|f| f.finding.lint).collect();
            let more_lints: HashSet<LintId> = more.iter().map(|f| f.finding.lint).collect();
            prop_assert_eq!(
                lints,
                more_lints,
                "a complete search's verdict changed when the budget grew"
            );
        }
    }

    /// Arbitrary dense forced prefixes: whenever a schedule trips any
    /// lints, minimizing it for one of them must succeed, and replaying
    /// the minimized schedule must still trip at least one of the
    /// original lints.
    #[test]
    fn minimization_preserves_an_original_lint(
        choices in proptest::collection::vec(0usize..2, 1..14),
        use_zombie in any::<bool>(),
    ) {
        let runner = move |ov: &BTreeMap<usize, usize>| {
            if use_zombie {
                lazy_zombie_explore(LockKind::Ttas, LazyFixes::default(), ov)
            } else {
                lazy_race_explore(LockKind::Ttas, LazyFixes::default(), ov)
            }
        };
        let overrides: BTreeMap<usize, usize> =
            choices.iter().copied().enumerate().collect();
        let (_, findings) = runner(&overrides);
        if let Some(first) = findings.first() {
            let original: HashSet<LintId> = findings.iter().map(|f| f.lint).collect();
            let (minimized, _, witness) = minimize(runner, &overrides, first.lint)
                .expect("the schedule just tripped this lint; minimization must reproduce it");
            prop_assert_eq!(witness.lint, first.lint);
            prop_assert!(
                minimized.len() <= overrides.len(),
                "minimization grew the schedule: {} -> {}",
                overrides.len(),
                minimized.len()
            );
            let (_, replayed) = runner(&minimized);
            prop_assert!(
                replayed.iter().any(|f| original.contains(&f.lint)),
                "minimized schedule trips none of the original lints \
                 {original:?}: {replayed:#?}"
            );
        }
    }
}

/// The random-prefix property above is opportunistic (most prefixes are
/// clean); this deterministic companion guarantees the minimizer is
/// exercised on real counterexamples of both unsafe classes every run.
#[test]
fn minimization_is_sound_on_both_unsafe_classes() {
    type Runner = fn(&BTreeMap<usize, usize>) -> elision_analysis::testkit::ExploreRun;
    let cases: [(&str, Runner, LintId); 2] = [
        (
            "zombie",
            |ov: &BTreeMap<usize, usize>| {
                lazy_zombie_explore(LockKind::Ttas, LazyFixes::default(), ov)
            },
            LintId::LazyDangerousInstruction,
        ),
        (
            "subscription race",
            |ov: &BTreeMap<usize, usize>| {
                lazy_race_explore(LockKind::Ttas, LazyFixes::default(), ov)
            },
            LintId::ZombieCommit,
        ),
    ];
    for (name, runner, marker) in cases {
        let (_, findings) = explore_and_minimize(Mode::Dpor, &Bounds::lazy_safety(), runner);
        let hit = findings
            .iter()
            .find(|f| f.finding.lint == marker)
            .unwrap_or_else(|| panic!("{name}: {marker} not found: {findings:#?}"));

        // Bloat the witness with every decision the run actually took,
        // then demand the minimizer strip it back down without losing
        // the lint.
        let mut bloated: BTreeMap<usize, usize> = hit.forced.iter().copied().collect();
        let (steps, _) = runner(&bloated);
        for (i, s) in steps.iter().enumerate() {
            bloated.entry(i).or_insert(s.chosen);
        }
        let (minimized, _, witness) =
            minimize(runner, &bloated, marker).expect("bloated witness must reproduce");
        assert_eq!(witness.lint, marker, "{name}: minimizer returned the wrong lint");
        assert!(
            minimized.len() <= hit.forced.len(),
            "{name}: minimizing a bloated schedule ({} overrides) produced more forced \
             steps ({}) than the search's own minimized witness ({})",
            bloated.len(),
            minimized.len(),
            hit.forced.len()
        );
        let (_, replayed) = runner(&minimized);
        assert!(
            replayed.iter().any(|f| f.lint == marker),
            "{name}: minimized schedule no longer trips {marker}: {replayed:#?}"
        );
    }
}
