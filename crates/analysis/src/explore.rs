//! Bounded exhaustive-interleaving model checker over the controlled
//! scheduler.
//!
//! The sampling passes in [`crate::driver`] check *one* schedule per
//! cell. This module instead drives [`elision_sim::ScheduleControl`]
//! through *every* interleaving of a small configuration (2–4 threads,
//! a handful of critical sections), replaying each schedule
//! deterministically and feeding each execution through the full
//! sanitizer pipeline (races, opacity, lock lints, residual bits) plus
//! the [`crate::linearize`] history oracle.
//!
//! # Schedules as override prefixes
//!
//! A schedule is identified by a *dense prefix of forced choices*:
//! overrides `{0: c0, 1: c1, ..., k: ck}` pin the first `k + 1`
//! scheduling decisions and every later decision follows the default
//! `(clock, id)`-minimal rule (so the empty prefix is exactly the
//! standard window-0 run). Re-executing the same prefix reproduces the
//! same execution bit for bit, which is what makes stateless search and
//! counterexample minimization possible.
//!
//! # Enumeration modes
//!
//! * [`Mode::Exhaustive`] — classic stateless DFS: after executing a
//!   prefix, branch at every decision point on every other enabled
//!   thread. Visits every interleaving of the configuration (feasible
//!   only for toys; it is also the ground truth the DPOR mode is tested
//!   against).
//! * [`Mode::Dpor`] — dynamic partial-order reduction: two scheduling
//!   steps are *dependent* when they touch a common cache line with at
//!   least one write (the [`StepRecord::accesses`] footprints the
//!   instrumented stack reports) or belong to the same thread. For each
//!   executed trace, each racing pair `(j, i)` of dependent steps of
//!   different threads generates one child prefix that runs `i`'s thread
//!   up to the race *before* `j` — the standard race-reversal rule. Steps
//!   with disjoint footprints never generate children, which is where the
//!   (often exponential) savings come from; a visited-prefix set makes
//!   the redundancy of over-approximate reversal harmless.
//!
//! The context-switch bound in [`Bounds::divergence`] limits how many
//! decisions may differ from the default rule before an execution stops
//! spawning children, bounding search depth the way a preemption bound
//! does in CHESS-style checkers.
//!
//! # Counterexample minimization
//!
//! A failing schedule found by search usually carries many incidental
//! forced choices. [`minimize`] first drops every override that agreed
//! with the default decision anyway, then greedily re-runs with each
//! remaining override removed until a fixed point: what survives is a
//! minimal set of forced decisions that still reproduces the finding,
//! rendered by [`render_diagram`] as a step-by-step interleaving.

use crate::driver::{lint_config_for, policy_for};
use crate::linearize::check_linearizable;
use crate::lint::lint_trace;
use crate::opacity::{check_opacity, OpacityConfig};
use crate::race::detect_races;
use crate::testkit::race_cfg;
use crate::{AccessSite, Finding, LintId};
use elision_core::{make_scheme, LockKind, Scheme, SchemeConfig, SchemeKind};
use elision_htm::{harness, HtmConfig, MemoryBuilder, Strand};
use elision_sim::{GlobalTrace, ScheduleControl, StepRecord};
use elision_structures::{
    HashTable, HistoryRecorder, OpAction, OpRecord, OpResponse, RbTree, SeqModel, SimQueue,
    SortedList, StructureKind,
};
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

/// How the explorer enumerates schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Branch on every enabled thread at every decision point.
    Exhaustive,
    /// Branch only to reverse dependent (racing) step pairs.
    Dpor,
}

/// Exploration limits. Every bound is a *truncation*, reported via
/// [`ExploreStats::truncated`] — never a silent claim of full coverage.
#[derive(Debug, Clone)]
pub struct Bounds {
    /// Maximum scheduling decisions differing from the default rule an
    /// execution may contain and still spawn children (`None` =
    /// unbounded). This is the context-switch bound.
    pub divergence: Option<u32>,
    /// Maximum unique executions to analyze.
    pub max_schedules: usize,
    /// Maximum runner invocations. Distinct forced prefixes can replay
    /// to the same execution (deduplicated, so they do not count towards
    /// `max_schedules`); this caps that redundancy so the search always
    /// terminates promptly.
    pub max_runs: usize,
    /// Executions longer than this many decisions are analyzed but not
    /// branched from.
    pub max_steps: usize,
}

impl Bounds {
    /// The small-bound configuration the CI `model_check` job uses.
    pub fn quick() -> Self {
        Bounds { divergence: Some(12), max_schedules: 1_500, max_runs: 6_000, max_steps: 2_000 }
    }

    /// The per-cell configuration the `lazy_safety` sweep uses for
    /// *every* cell, fixed and unfixed alike — the comparison "unfixed
    /// produces a counterexample, fixed verifies clean" is only
    /// meaningful under identical bounds. The context-switch bound is
    /// deep enough to reach both unsafe classes of arXiv 1407.6968 with
    /// headroom; the search is still truncated (and reported as such),
    /// so a clean cell means "no counterexample within these bounds",
    /// not total verification.
    pub fn lazy_safety() -> Self {
        Bounds { divergence: Some(12), max_schedules: 2_000, max_runs: 8_000, max_steps: 800 }
    }
}

/// Aggregate statistics from one exploration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Unique executions analyzed.
    pub executions: usize,
    /// Total runner invocations, including replays that deduplicated to
    /// an already-analyzed execution.
    pub runs: usize,
    /// True when some bound in [`Bounds`] cut the search short.
    pub truncated: bool,
}

/// Drive `runner` through the interleaving space.
///
/// `runner` executes the workload once under the given forced-choice
/// overrides and returns the recorded schedule plus an arbitrary
/// payload; `on_exec` receives every *unique* execution (its steps, the
/// forced prefix that produced it, and the payload). The search is
/// depth-first over forced prefixes, deterministic, and single-threaded
/// at the search level (each run itself uses the serialized controlled
/// scheduler).
pub fn explore<T>(
    mode: Mode,
    bounds: &Bounds,
    runner: impl Fn(&BTreeMap<usize, usize>) -> (Vec<StepRecord>, T),
    mut on_exec: impl FnMut(&[StepRecord], &BTreeMap<usize, usize>, T),
) -> ExploreStats {
    let mut stats = ExploreStats::default();
    let mut queued: HashSet<Vec<usize>> = HashSet::new();
    let mut executed: HashSet<Vec<usize>> = HashSet::new();
    let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
    queued.insert(Vec::new());

    while let Some(prefix) = stack.pop() {
        if stats.executions >= bounds.max_schedules || stats.runs >= bounds.max_runs {
            stats.truncated = true;
            break;
        }
        let overrides: BTreeMap<usize, usize> = prefix.iter().copied().enumerate().collect();
        let (steps, payload) = runner(&overrides);
        stats.runs += 1;
        let choices: Vec<usize> = steps.iter().map(|s| s.chosen).collect();
        if !executed.insert(choices.clone()) {
            // A forced prefix can replay to an execution another prefix
            // already produced (e.g. after a forced-but-finished thread
            // fell back to the default); its children were generated then.
            continue;
        }
        stats.executions += 1;
        on_exec(&steps, &overrides, payload);

        if steps.len() > bounds.max_steps {
            stats.truncated = true;
            continue;
        }
        let divergences = steps.iter().filter(|s| s.chosen != s.default).count() as u32;
        if let Some(limit) = bounds.divergence {
            if divergences > limit {
                stats.truncated = true;
                continue;
            }
        }

        let children = match mode {
            Mode::Exhaustive => exhaustive_children(&steps, &choices),
            Mode::Dpor => dpor_children(&steps, &choices),
        };
        for child in children {
            if queued.insert(child.clone()) {
                stack.push(child);
            }
        }
    }
    stats
}

/// Every alternative enabled choice at every decision point.
fn exhaustive_children(steps: &[StepRecord], choices: &[usize]) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    for (i, step) in steps.iter().enumerate() {
        for &t in &step.enabled {
            if t != choices[i] {
                let mut child = choices[..i].to_vec();
                child.push(t);
                out.push(child);
            }
        }
    }
    out
}

/// Per-step footprint normalized to sorted unique `(line, write)` pairs
/// with the write flag OR-ed per line.
fn footprints(steps: &[StepRecord]) -> Vec<Vec<(u32, bool)>> {
    steps
        .iter()
        .map(|s| {
            let mut map: BTreeMap<u32, bool> = BTreeMap::new();
            for a in &s.accesses {
                *map.entry(a.line).or_insert(false) |= a.write;
            }
            map.into_iter().collect()
        })
        .collect()
}

/// Two footprints conflict when they share a line at least one side
/// writes. Empty footprints (pure computation segments) conflict with
/// nothing — that independence is DPOR's whole lever.
fn conflicting(a: &[(u32, bool)], b: &[(u32, bool)]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                if a[i].1 || b[j].1 {
                    return true;
                }
                i += 1;
                j += 1;
            }
        }
    }
    false
}

/// Race-reversal children: one alternative prefix per reversible racing
/// pair of the executed trace.
fn dpor_children(steps: &[StepRecord], choices: &[usize]) -> Vec<Vec<usize>> {
    let n = choices.len();
    let threads = steps
        .iter()
        .flat_map(|s| s.enabled.iter().copied())
        .max()
        .map_or(0, |t| t + 1)
        .max(choices.iter().copied().max().map_or(0, |t| t + 1));
    let fp = footprints(steps);

    // clocks[i][t] = 1 + the largest step index of thread t that
    // happens-before step i (0 when none), over the dependence relation
    // (same thread, or conflicting footprints). hb(j, i) for j < i is
    // then `clocks[i][choices[j]] > j`.
    let mut clocks: Vec<Vec<usize>> = Vec::with_capacity(n);
    for i in 0..n {
        let mut c = vec![0usize; threads];
        for j in 0..i {
            if choices[j] == choices[i] || conflicting(&fp[j], &fp[i]) {
                for (ct, &jt) in c.iter_mut().zip(&clocks[j]) {
                    *ct = (*ct).max(jt);
                }
                c[choices[j]] = c[choices[j]].max(j + 1);
            }
        }
        clocks.push(c);
    }
    let hb = |j: usize, i: usize| clocks[i][choices[j]] > j;

    let mut out = Vec::new();
    for i in 0..n {
        // For each peer thread, only its *last* conflicting step before i
        // forms the race frontier; earlier ones are ordered through it.
        let mut seen = vec![false; threads];
        for j in (0..i).rev() {
            let p = choices[j];
            if p == choices[i] || seen[p] {
                continue;
            }
            if !conflicting(&fp[j], &fp[i]) {
                continue;
            }
            seen[p] = true;
            // The race is reversible only when nothing in between is
            // ordered after j and before i (otherwise reversing that
            // intermediate race subsumes this one).
            if ((j + 1)..i).any(|k| hb(j, k) && hb(k, i)) {
                continue;
            }
            // Run everything not ordered after j, then i's thread, and
            // only then (by default continuation) j's — the reversal.
            let mut child = choices[..j].to_vec();
            for (k, &ck) in choices.iter().enumerate().take(i).skip(j + 1) {
                if !hb(j, k) {
                    child.push(ck);
                }
            }
            child.push(choices[i]);
            out.push(child);
        }
    }
    out
}

/// One schedule-dependent violation with its minimized reproduction.
#[derive(Debug, Clone)]
pub struct ExploreFinding {
    /// The violation, as produced on the minimized schedule.
    pub finding: Finding,
    /// Minimized forced decisions, `(step index, thread)` — replaying
    /// exactly these overrides reproduces the violation.
    pub forced: Vec<(usize, usize)>,
    /// Human-readable interleaving diagram of the minimized schedule.
    pub diagram: Vec<String>,
}

/// Shrink a failing forced schedule to a minimal one still exhibiting a
/// finding with lint `lint`.
///
/// Returns `None` if the schedule does not reproduce the finding at all
/// (callers pass schedules that just did, so this indicates
/// nondeterminism and is worth treating as a bug). Otherwise returns the
/// minimized overrides, the schedule they produce, and the surviving
/// finding.
pub fn minimize(
    runner: impl Fn(&BTreeMap<usize, usize>) -> (Vec<StepRecord>, Vec<Finding>),
    forced: &BTreeMap<usize, usize>,
    lint: LintId,
) -> Option<(BTreeMap<usize, usize>, Vec<StepRecord>, Finding)> {
    let reproduces = |f: &BTreeMap<usize, usize>| -> Option<(Vec<StepRecord>, Finding)> {
        let (steps, findings) = runner(f);
        findings.into_iter().find(|x| x.lint == lint).map(|x| (steps, x))
    };
    let (mut steps, mut witness) = reproduces(forced)?;
    let mut forced = forced.clone();

    // Pass 1: drop, in one shot, every override that was a no-op — it
    // agreed with the default decision or fell back to it (forced thread
    // already finished). The remaining run is decision-for-decision
    // identical, so the finding necessarily survives; re-run to get the
    // (identical) steps anyway and keep the code honest.
    let diverging: BTreeMap<usize, usize> = forced
        .iter()
        .filter(|&(&i, &t)| steps.get(i).is_some_and(|s| s.chosen == t && s.default != t))
        .map(|(&i, &t)| (i, t))
        .collect();
    if diverging.len() < forced.len() {
        if let Some((s, w)) = reproduces(&diverging) {
            forced = diverging;
            steps = s;
            witness = w;
        }
    }

    // Pass 2: greedy delta-debugging to a fixed point — try removing
    // each override; keep any removal under which the finding persists.
    loop {
        let mut progress = false;
        for key in forced.keys().copied().collect::<Vec<_>>() {
            let mut trial = forced.clone();
            trial.remove(&key);
            if let Some((s, w)) = reproduces(&trial) {
                forced = trial;
                steps = s;
                witness = w;
                progress = true;
            }
        }
        if !progress {
            break;
        }
    }
    Some((forced, steps, witness))
}

/// Render a schedule as one line per decision:
/// `step  12: t1* [rL3 wL5] (default t0) <- forced`, where `*` marks a
/// decision differing from the default rule. Long schedules elide their
/// middle.
pub fn render_diagram(steps: &[StepRecord], forced: &BTreeMap<usize, usize>) -> Vec<String> {
    const MAX_LINES: usize = 60;
    const HEAD: usize = 40;
    let mut lines: Vec<String> = steps
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let mark = if s.chosen != s.default { "*" } else { " " };
            let accesses = s
                .accesses
                .iter()
                .map(|a| format!("{}L{}", if a.write { "w" } else { "r" }, a.line))
                .collect::<Vec<_>>()
                .join(" ");
            let forced_note = if forced.contains_key(&i) { " <- forced" } else { "" };
            format!(
                "step {i:>3}: t{}{mark} [{accesses}] (default t{}){forced_note}",
                s.chosen, s.default
            )
        })
        .collect();
    if lines.len() > MAX_LINES {
        let tail = lines.len() - (MAX_LINES - 1 - HEAD);
        let elided = format!("  ... {} steps elided ...", tail - HEAD);
        lines.splice(HEAD..tail, [elided]);
    }
    lines
}

/// Explore and, for the first execution exhibiting each distinct lint,
/// minimize that schedule into an [`ExploreFinding`].
pub fn explore_and_minimize(
    mode: Mode,
    bounds: &Bounds,
    runner: impl Fn(&BTreeMap<usize, usize>) -> (Vec<StepRecord>, Vec<Finding>),
) -> (ExploreStats, Vec<ExploreFinding>) {
    let mut witnesses: Vec<(LintId, BTreeMap<usize, usize>)> = Vec::new();
    let mut seen: HashSet<LintId> = HashSet::new();
    let stats = explore(mode, bounds, &runner, |_steps, overrides, findings: Vec<Finding>| {
        for f in &findings {
            if seen.insert(f.lint) {
                witnesses.push((f.lint, overrides.clone()));
            }
        }
    });
    let mut out = Vec::new();
    for (lint, overrides) in witnesses {
        let (forced, steps, finding) = minimize(&runner, &overrides, lint)
            .expect("a finding observed during exploration must replay deterministically");
        let diagram = render_diagram(&steps, &forced);
        out.push(ExploreFinding { finding, forced: forced.into_iter().collect(), diagram });
    }
    (stats, out)
}

/// One scheme × lock × structure model-checking cell.
#[derive(Debug, Clone)]
pub struct ExploreSpec {
    /// The elision scheme under test.
    pub scheme: SchemeKind,
    /// The main lock family.
    pub lock: LockKind,
    /// Which data structure carries the operation history.
    pub structure: StructureKind,
    /// Simulated threads (2–4).
    pub threads: usize,
    /// Critical sections (structure operations) per thread.
    pub sections: usize,
    /// RNG seed for the HTM layer.
    pub seed: u64,
    /// Enumeration mode.
    pub mode: Mode,
    /// Exploration limits.
    pub bounds: Bounds,
}

impl ExploreSpec {
    /// The CI-sized cell: 2 threads × 3 sections under DPOR at
    /// [`Bounds::quick`].
    pub fn quick(scheme: SchemeKind, lock: LockKind, structure: StructureKind) -> Self {
        ExploreSpec {
            scheme,
            lock,
            structure,
            threads: 2,
            sections: 3,
            seed: 0xE11D,
            mode: Mode::Dpor,
            bounds: Bounds::quick(),
        }
    }
}

/// Outcome of model-checking one cell.
#[derive(Debug)]
pub struct CellReport {
    /// Unique executions analyzed.
    pub executions: usize,
    /// Total runner invocations.
    pub runs: usize,
    /// True when a bound cut the search short.
    pub truncated: bool,
    /// Minimized schedule-dependent violations (empty for correct cells).
    pub findings: Vec<ExploreFinding>,
}

/// Capacity of the queue structure cell (both the simulated queue and
/// its sequential reference model).
const QUEUE_CAP: usize = 8;

enum CellStructure {
    Map(HashTable),
    Set(SortedList),
    Tree(RbTree),
    Fifo(SimQueue),
}

/// The deterministic action thread `tid` performs in its section `k`.
/// Key ranges deliberately overlap across threads so histories contend.
fn action_for(kind: StructureKind, tid: usize, k: usize) -> OpAction {
    let key = 1 + ((tid + k) % 3) as u64;
    match kind {
        StructureKind::HashTable => match k % 3 {
            0 => OpAction::MapPut(key, (tid as u64) * 100 + k as u64),
            1 => OpAction::MapGet(key),
            _ => OpAction::MapRemove(key),
        },
        StructureKind::List | StructureKind::RbTree => match k % 3 {
            0 => OpAction::SetInsert(key),
            1 => OpAction::SetContains(key),
            _ => OpAction::SetRemove(key),
        },
        StructureKind::Queue => {
            if (tid + k).is_multiple_of(2) {
                OpAction::Push((tid as u64) * 10 + k as u64)
            } else {
                OpAction::Pop
            }
        }
    }
}

fn apply_action(
    scheme: &Scheme,
    st: &CellStructure,
    s: &mut Strand,
    action: OpAction,
) -> OpResponse {
    match (st, action) {
        (CellStructure::Map(h), OpAction::MapGet(k)) => {
            OpResponse::Value(scheme.execute(s, |s| h.get(s, k)).value)
        }
        (CellStructure::Map(h), OpAction::MapPut(k, v)) => {
            OpResponse::Value(scheme.execute(s, |s| h.put(s, k, v)).value)
        }
        (CellStructure::Map(h), OpAction::MapRemove(k)) => {
            OpResponse::Value(scheme.execute(s, |s| h.remove(s, k)).value)
        }
        (CellStructure::Set(l), OpAction::SetInsert(k)) => {
            OpResponse::Flag(scheme.execute(s, |s| l.insert(s, k)).value)
        }
        (CellStructure::Set(l), OpAction::SetContains(k)) => {
            OpResponse::Flag(scheme.execute(s, |s| l.contains(s, k)).value)
        }
        (CellStructure::Set(l), OpAction::SetRemove(k)) => {
            OpResponse::Flag(scheme.execute(s, |s| l.remove(s, k)).value)
        }
        (CellStructure::Tree(t), OpAction::SetInsert(k)) => {
            OpResponse::Flag(scheme.execute(s, |s| t.insert(s, k)).value)
        }
        (CellStructure::Tree(t), OpAction::SetContains(k)) => {
            OpResponse::Flag(scheme.execute(s, |s| t.contains(s, k)).value)
        }
        (CellStructure::Tree(t), OpAction::SetRemove(k)) => {
            OpResponse::Flag(scheme.execute(s, |s| t.remove(s, k)).value)
        }
        (CellStructure::Fifo(q), OpAction::Push(v)) => {
            OpResponse::Flag(scheme.execute(s, |s| q.push(s, v)).value)
        }
        (CellStructure::Fifo(q), OpAction::Pop) => {
            OpResponse::Value(scheme.execute(s, |s| q.pop(s)).value)
        }
        (_, a) => unreachable!("action {a} does not fit this cell's structure"),
    }
}

/// Execute one cell run under the given schedule overrides and analyze
/// it with every pass.
fn run_cell_once(
    spec: &ExploreSpec,
    overrides: &BTreeMap<usize, usize>,
) -> (Vec<StepRecord>, Vec<Finding>) {
    assert!(
        spec.scheme != SchemeKind::NoLock && spec.scheme != SchemeKind::GroupedScm,
        "{:?} is not explorable: see SchemeConfig::explore()",
        spec.scheme
    );
    let mut b = MemoryBuilder::new();
    b.enable_sanitizer();
    let scheme = make_scheme(spec.scheme, spec.lock, SchemeConfig::explore(), &mut b, spec.threads);
    let structure = match spec.structure {
        StructureKind::HashTable => CellStructure::Map(HashTable::new(&mut b, 4, 64, spec.threads)),
        StructureKind::List => CellStructure::Set(SortedList::new(&mut b, 64, spec.threads)),
        StructureKind::RbTree => CellStructure::Tree(RbTree::new(&mut b, 64, spec.threads)),
        StructureKind::Queue => CellStructure::Fifo(SimQueue::new(&mut b, QUEUE_CAP)),
    };
    let mem = Arc::new(b.freeze(spec.threads));
    match &structure {
        CellStructure::Map(h) => h.init(&mem),
        CellStructure::Set(l) => l.init(&mem),
        CellStructure::Tree(t) => t.init(&mem),
        CellStructure::Fifo(_) => {}
    }
    let structure = Arc::new(structure);
    let control = Arc::new(ScheduleControl::new(spec.threads, overrides.clone()));

    let (outs, makespan) = {
        let scheme = Arc::clone(&scheme);
        let structure = Arc::clone(&structure);
        let kind = spec.structure;
        let sections = spec.sections;
        harness::run_arc_controlled(
            spec.threads,
            HtmConfig::deterministic(),
            spec.seed,
            Arc::clone(&control),
            Arc::clone(&mem),
            move |s| {
                s.enable_trace(4096);
                let mut rec = HistoryRecorder::new(s.tid());
                for k in 0..sections {
                    let action = action_for(kind, s.tid(), k);
                    let invoked = s.sim().steps_taken();
                    let response = apply_action(&scheme, &structure, s, action);
                    let responded = s.sim().steps_taken();
                    rec.record(action, response, invoked, responded);
                }
                (s.trace.take().expect("trace enabled above"), rec.into_records())
            },
        )
    };

    let trace = GlobalTrace::merge(outs.iter().map(|(ring, _)| ring).enumerate());
    assert_eq!(trace.dropped(), 0, "trace ring overflowed; grow the ring capacity");
    let san = mem.san_log().expect("sanitizer enabled above");
    let events = san.snapshot();

    let mut findings = detect_races(&race_cfg(&mem, spec.threads), &events);
    findings.extend(check_opacity(
        &OpacityConfig {
            policy: policy_for(spec.scheme),
            main_lock: Some(scheme.main_lock().lock_word().index()),
        },
        san.initial_values(),
        &events,
    ));
    findings.extend(lint_trace(&lint_config_for(&scheme, spec.threads), &trace));
    for line in mem.residual_lines() {
        findings.push(Finding {
            lint: LintId::ResidualConflictBits,
            message: format!("line {} kept reader/writer bits after quiescence", line.raw()),
            sites: vec![AccessSite {
                tid: 0,
                var: None,
                line: Some(line.raw()),
                time: makespan,
                seq: events.len(),
            }],
        });
    }
    let ops: Vec<OpRecord> = outs.iter().flat_map(|(_, r)| r.iter().copied()).collect();
    let model = SeqModel::for_kind(spec.structure, QUEUE_CAP);
    findings.extend(check_linearizable(&model, &ops));

    (control.steps(), findings)
}

/// Model-check one scheme × lock × structure cell: explore all
/// interleavings within the spec's bounds, run every execution through
/// the full analysis pipeline, and minimize whatever fails.
pub fn explore_cell(spec: &ExploreSpec) -> CellReport {
    let (stats, findings) =
        explore_and_minimize(spec.mode, &spec.bounds, |ov| run_cell_once(spec, ov));
    CellReport {
        executions: stats.executions,
        runs: stats.runs,
        truncated: stats.truncated,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{
        broken_slr_explore, double_release_explore, lazy_race_explore, lazy_zombie_explore,
        LazyFixes,
    };

    /// Two threads, two pure-computation segments each: C(4,2) = 6
    /// interleavings, matching the hand-computed count.
    fn toy_runner(overrides: &BTreeMap<usize, usize>) -> (Vec<StepRecord>, ()) {
        let b = MemoryBuilder::new();
        let mem = Arc::new(b.freeze(2));
        let control = Arc::new(ScheduleControl::new(2, overrides.clone()));
        harness::run_arc_controlled(
            2,
            HtmConfig::deterministic(),
            1,
            Arc::clone(&control),
            mem,
            |s| {
                s.work(1).expect("non-transactional work");
                s.work(1).expect("non-transactional work");
            },
        );
        (control.steps(), ())
    }

    /// Two threads racing on one word (plus an independent work segment
    /// each): every interleaving contains the same data race.
    fn racy_runner(overrides: &BTreeMap<usize, usize>) -> (Vec<StepRecord>, Vec<Finding>) {
        let mut b = MemoryBuilder::new();
        b.enable_sanitizer();
        let x = b.alloc_isolated(0);
        let mem = Arc::new(b.freeze(2));
        let control = Arc::new(ScheduleControl::new(2, overrides.clone()));
        harness::run_arc_controlled(
            2,
            HtmConfig::deterministic(),
            1,
            Arc::clone(&control),
            Arc::clone(&mem),
            move |s| {
                s.work(1).expect("non-transactional work");
                if s.tid() == 0 {
                    s.store(x, 1).expect("plain store");
                } else {
                    s.load(x).expect("plain load");
                }
            },
        );
        let san = mem.san_log().expect("sanitizer enabled above");
        let findings = detect_races(&race_cfg(&mem, 2), &san.snapshot());
        (control.steps(), findings)
    }

    fn unbounded() -> Bounds {
        Bounds { divergence: None, max_schedules: 10_000, max_runs: 40_000, max_steps: 10_000 }
    }

    #[test]
    fn exhaustive_enumerates_all_toy_interleavings() {
        let mut seen = 0usize;
        let stats = explore(Mode::Exhaustive, &unbounded(), toy_runner, |steps, _, ()| {
            assert_eq!(steps.len(), 4, "two threads x two segments = four decisions");
            seen += 1;
        });
        assert_eq!(stats.executions, 6, "C(4,2) interleavings of 2x2 segments");
        assert_eq!(seen, 6);
        assert!(!stats.truncated);
    }

    #[test]
    fn dpor_explores_no_more_than_exhaustive_with_same_findings() {
        let collect = |mode| {
            let mut lints: HashSet<LintId> = HashSet::new();
            let stats = explore(mode, &unbounded(), racy_runner, |_, _, findings| {
                lints.extend(findings.iter().map(|f| f.lint));
            });
            (stats, lints)
        };
        let (ex_stats, ex_lints) = collect(Mode::Exhaustive);
        let (dp_stats, dp_lints) = collect(Mode::Dpor);
        assert_eq!(ex_stats.executions, 6, "same toy shape as above");
        assert!(
            dp_stats.executions <= ex_stats.executions,
            "DPOR ({}) must not exceed exhaustive ({})",
            dp_stats.executions,
            ex_stats.executions
        );
        assert!(dp_stats.executions < ex_stats.executions, "independent segments must prune");
        assert_eq!(ex_lints, dp_lints, "reduction must preserve findings");
        assert!(dp_lints.contains(&LintId::DataRace));
    }

    #[test]
    fn dpor_catches_schedule_dependent_broken_slr() {
        let (stats, findings) = explore_and_minimize(Mode::Dpor, &unbounded(), broken_slr_explore);
        assert!(stats.executions > 1, "must explore beyond the (clean) default schedule");
        let hit = findings
            .iter()
            .find(|f| matches!(f.finding.lint, LintId::CommitWhileLockHeld | LintId::DataRace))
            .unwrap_or_else(|| panic!("unsubscribed commit not caught: {findings:#?}"));
        assert!(hit.forced.len() <= 12, "minimized counterexample too large: {:?}", hit.forced);
        assert!(!hit.diagram.is_empty());
        assert!(hit.diagram.iter().any(|l| l.contains("<- forced")));
    }

    #[test]
    fn dpor_catches_schedule_dependent_double_release() {
        let (stats, findings) =
            explore_and_minimize(Mode::Dpor, &unbounded(), double_release_explore);
        assert!(stats.executions > 1);
        let hit = findings
            .iter()
            .find(|f| f.finding.lint == LintId::ReleaseWithoutAcquire)
            .unwrap_or_else(|| panic!("double release not caught: {findings:#?}"));
        assert!(hit.forced.len() <= 12, "minimized counterexample too large: {:?}", hit.forced);
        assert!(!hit.diagram.is_empty());
    }

    /// Diagnostic sweep over the full (class, lock, fixes) matrix —
    /// `cargo test -- --ignored debug_lazy_matrix --nocapture` prints
    /// the per-cell stats and lint sets the `lazy_safety` bench pins.
    #[test]
    #[ignore]
    fn debug_lazy_matrix() {
        let bounds = Bounds::lazy_safety();
        for fixes in LazyFixes::ALL {
            for lock in [LockKind::Ttas, LockKind::Ticket, LockKind::Clh] {
                let mut lints: HashSet<LintId> = HashSet::new();
                let mut max_len = 0usize;
                let stats = explore(
                    Mode::Dpor,
                    &bounds,
                    |ov| lazy_zombie_explore(lock, fixes, ov),
                    |steps, _, findings| {
                        max_len = max_len.max(steps.len());
                        lints.extend(findings.iter().map(|f| f.lint));
                    },
                );
                eprintln!(
                    "A {:>6}/{:<15} stats={stats:?} max_len={max_len} lints={lints:?}",
                    lock.label(),
                    fixes.label()
                );
            }
            for lock in [LockKind::Ttas, LockKind::Mcs, LockKind::Ticket, LockKind::Clh] {
                let mut lints: HashSet<LintId> = HashSet::new();
                let mut max_len = 0usize;
                let stats = explore(
                    Mode::Dpor,
                    &bounds,
                    |ov| lazy_race_explore(lock, fixes, ov),
                    |steps, _, findings| {
                        max_len = max_len.max(steps.len());
                        lints.extend(findings.iter().map(|f| f.lint));
                    },
                );
                eprintln!(
                    "B {:>6}/{:<15} stats={stats:?} max_len={max_len} lints={lints:?}",
                    lock.label(),
                    fixes.label()
                );
            }
        }
    }

    #[test]
    fn dpor_catches_lazy_zombie_dangerous_instruction() {
        // Class A of arXiv 1407.6968: unfixed lazy subscription lets a
        // zombie publish a wild store to the lock word itself.
        let (stats, findings) = explore_and_minimize(Mode::Dpor, &Bounds::lazy_safety(), |ov| {
            lazy_zombie_explore(LockKind::Ttas, LazyFixes::default(), ov)
        });
        assert!(stats.executions > 1, "must explore beyond the (clean) default schedule");
        let hit = findings
            .iter()
            .find(|f| f.finding.lint == LintId::LazyDangerousInstruction)
            .unwrap_or_else(|| panic!("zombie wild store not caught: {findings:#?}"));
        assert!(hit.forced.len() <= 15, "minimized counterexample too large: {:?}", hit.forced);
        assert!(!hit.diagram.is_empty());
        assert!(hit.diagram.iter().any(|l| l.contains("<- forced")));
        assert!(
            findings.iter().any(|f| f.finding.lint == LintId::CommitWhileLockHeld),
            "the zombie's commit lands inside the critical section: {findings:#?}"
        );
    }

    #[test]
    fn dpor_catches_lazy_subscription_commit_race() {
        // Class B of arXiv 1407.6968: the lock is acquired between the
        // unfenced subscription check and the commit.
        let (stats, findings) = explore_and_minimize(Mode::Dpor, &Bounds::lazy_safety(), |ov| {
            lazy_race_explore(LockKind::Ttas, LazyFixes::default(), ov)
        });
        assert!(stats.executions > 1, "must explore beyond the (clean) default schedule");
        let hit = findings
            .iter()
            .find(|f| matches!(f.finding.lint, LintId::ZombieCommit | LintId::CommitWhileLockHeld))
            .unwrap_or_else(|| panic!("subscription race not caught: {findings:#?}"));
        assert!(hit.forced.len() <= 15, "minimized counterexample too large: {:?}", hit.forced);
        assert!(!hit.diagram.is_empty());
    }

    #[test]
    fn hardware_fixes_verify_clean_under_identical_bounds() {
        // Both fixes together close both unsafe classes: the *same*
        // bounded search that finds the counterexamples above must come
        // back empty.
        let both = LazyFixes { dangerous_abort: true, hardware_commit: true };
        let (stats, findings) = explore_and_minimize(Mode::Dpor, &Bounds::lazy_safety(), |ov| {
            lazy_zombie_explore(LockKind::Ttas, both, ov)
        });
        assert!(stats.executions > 1, "the fixed cell must actually be searched");
        assert!(findings.is_empty(), "fixed zombie cell must verify clean: {findings:#?}");

        let (stats, findings) = explore_and_minimize(Mode::Dpor, &Bounds::lazy_safety(), |ov| {
            lazy_race_explore(LockKind::Ttas, both, ov)
        });
        assert!(stats.executions > 1, "the fixed cell must actually be searched");
        assert!(findings.is_empty(), "fixed race cell must verify clean: {findings:#?}");
    }

    #[test]
    fn dangerous_abort_alone_fixes_zombies_but_not_the_commit_race() {
        // The dangerous-instruction screen stops the wild store at the
        // offending access...
        let screen_only = LazyFixes { dangerous_abort: true, hardware_commit: false };
        let (stats, findings) = explore_and_minimize(Mode::Dpor, &Bounds::lazy_safety(), |ov| {
            lazy_zombie_explore(LockKind::Ttas, screen_only, ov)
        });
        assert!(stats.executions > 1, "the screened cell must actually be searched");
        assert!(findings.is_empty(), "screen must stop the wild store: {findings:#?}");

        // ...but is no help against the check-to-commit window, which
        // involves no dangerous instruction at all.
        let (_, findings) = explore_and_minimize(Mode::Dpor, &Bounds::lazy_safety(), |ov| {
            lazy_race_explore(LockKind::Ttas, screen_only, ov)
        });
        assert!(
            findings.iter().any(|f| matches!(
                f.finding.lint,
                LintId::ZombieCommit | LintId::CommitWhileLockHeld
            )),
            "the subscription race must survive the screen: {findings:#?}"
        );
    }

    #[test]
    fn minimizer_drops_noop_overrides() {
        // Seed the minimizer with a deliberately bloated override map:
        // whatever the search found plus a stack of no-op entries.
        let (_, findings) = explore_and_minimize(Mode::Dpor, &unbounded(), racy_runner);
        let witness = &findings[0];
        let mut bloated: BTreeMap<usize, usize> = witness.forced.iter().copied().collect();
        let (steps, _) = racy_runner(&bloated);
        for (i, s) in steps.iter().enumerate() {
            bloated.entry(i).or_insert(s.chosen); // agree with what ran
        }
        let (minimized, _, finding) =
            minimize(racy_runner, &bloated, LintId::DataRace).expect("race must reproduce");
        assert!(minimized.len() <= witness.forced.len());
        assert_eq!(finding.lint, LintId::DataRace);
    }

    #[test]
    fn diagram_marks_divergences_and_elides_long_schedules() {
        let steps: Vec<StepRecord> = (0..100)
            .map(|i| StepRecord {
                chosen: i % 2,
                default: 0,
                enabled: vec![0, 1],
                clock: i as u64,
                accesses: Vec::new(),
            })
            .collect();
        let forced: BTreeMap<usize, usize> = [(1usize, 1usize)].into_iter().collect();
        let lines = render_diagram(&steps, &forced);
        assert!(lines.len() <= 60, "diagram must stay readable: {}", lines.len());
        assert!(lines.iter().any(|l| l.contains("elided")));
        assert!(lines.iter().any(|l| l.contains("t1*")));
        assert!(lines.iter().any(|l| l.contains("<- forced")));
    }

    #[test]
    fn quick_cell_is_clean_for_a_correct_scheme() {
        let spec = ExploreSpec::quick(SchemeKind::Hle, LockKind::Ttas, StructureKind::Queue);
        let report = explore_cell(&spec);
        assert!(report.executions >= 1);
        assert!(
            report.findings.is_empty(),
            "correct HLE cell must verify clean: {:#?}",
            report.findings
        );
    }
}
