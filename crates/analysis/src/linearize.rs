//! Wing–Gong-style linearizability checking over operation histories.
//!
//! A concurrent history (one [`OpRecord`] per completed structure
//! operation) is *linearizable* iff there is a total order of the
//! operations that (a) respects real-time precedence — an operation that
//! responded before another was invoked comes first — and per-thread
//! program order, and (b) is legal for the sequential reference model:
//! replaying the order through [`SeqModel::apply`] reproduces every
//! recorded response.
//!
//! The checker runs the classic Wing–Gong search: repeatedly pick a
//! *minimal* pending operation (one not preceded by another pending
//! operation), apply it to the model, and backtrack when the model's
//! response disagrees with the recorded one. Visited `(done-set, model
//! state)` configurations are memoized, which keeps the search linear-ish
//! on the small histories the model checker produces (it is bounded to 64
//! operations total).
//!
//! Timestamps come from the controlled scheduler's decision-step counter
//! ([`elision_sim::ScheduleControl::steps_taken`]). Precedence uses strict
//! `responded < invoked`: two samples can only be equal when taken inside
//! the same scheduling segment, and dropping such edges merely adds
//! candidate orders — it can never produce a false "not linearizable".

use crate::{AccessSite, Finding, LintId};
use elision_structures::history::{OpRecord, SeqModel};
use std::collections::HashSet;

/// Check `ops` for linearizability against the sequential model whose
/// initial state is `initial`.
///
/// Returns `None` when a valid linearization exists, otherwise a
/// [`LintId::NotLinearizable`] finding whose sites list the history in
/// canonical (invocation) order.
///
/// # Panics
///
/// Panics if the history exceeds 64 operations (the checker's done-set is
/// a bitmask; the explorer's bounded configurations stay far below this).
pub fn check_linearizable(initial: &SeqModel, ops_in: &[OpRecord]) -> Option<Finding> {
    let mut ops: Vec<OpRecord> = ops_in.to_vec();
    ops.sort_by_key(|o| (o.invoked, o.tid, o.seq));
    let n = ops.len();
    assert!(n <= 64, "linearizability checker is bounded to 64 operations, got {n}");
    if n == 0 {
        return None;
    }
    let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    // preds[i]: bitmask of operations that must linearize before op i.
    let mut preds = vec![0u64; n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let (a, b) = (&ops[j], &ops[i]);
            if a.responded < b.invoked || (a.tid == b.tid && a.seq < b.seq) {
                preds[i] |= 1 << j;
            }
        }
    }
    let mut visited: HashSet<(u64, u64)> = HashSet::new();
    let mut stack: Vec<(u64, SeqModel)> = vec![(0, initial.clone())];
    while let Some((mask, model)) = stack.pop() {
        if mask == full {
            return None;
        }
        if !visited.insert((mask, model.digest())) {
            continue;
        }
        for i in 0..n {
            if mask & (1 << i) != 0 || preds[i] & !mask != 0 {
                continue;
            }
            let mut next = model.clone();
            if next.apply(ops[i].action) == ops[i].response {
                stack.push((mask | (1 << i), next));
            }
        }
    }
    let shown = ops.iter().take(16).map(OpRecord::to_string).collect::<Vec<_>>().join("; ");
    let ellipsis = if n > 16 { "; ..." } else { "" };
    Some(Finding {
        lint: LintId::NotLinearizable,
        message: format!(
            "history of {n} operation(s) admits no linearization consistent with \
             real-time order and the sequential model: {shown}{ellipsis}"
        ),
        sites: ops
            .iter()
            .enumerate()
            .map(|(idx, o)| AccessSite {
                tid: o.tid,
                var: None,
                line: None,
                time: o.invoked,
                seq: idx,
            })
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use elision_structures::history::{OpAction, OpResponse, StructureKind};

    fn op(
        tid: usize,
        seq: usize,
        action: OpAction,
        response: OpResponse,
        invoked: u64,
        responded: u64,
    ) -> OpRecord {
        OpRecord { tid, seq, action, response, invoked, responded }
    }

    #[test]
    fn empty_and_sequential_histories_linearize() {
        let model = SeqModel::for_kind(StructureKind::Queue, 4);
        assert!(check_linearizable(&model, &[]).is_none());
        let ops = [
            op(0, 0, OpAction::Push(1), OpResponse::Flag(true), 0, 1),
            op(0, 1, OpAction::Pop, OpResponse::Value(Some(1)), 2, 3),
            op(0, 2, OpAction::Pop, OpResponse::Value(None), 4, 5),
        ];
        assert!(check_linearizable(&model, &ops).is_none());
    }

    #[test]
    fn overlapping_ops_may_reorder() {
        // The pop overlaps the push in real time, so "push then pop" is a
        // valid linearization even though the pop was invoked first.
        let model = SeqModel::for_kind(StructureKind::Queue, 4);
        let ops = [
            op(0, 0, OpAction::Push(7), OpResponse::Flag(true), 2, 6),
            op(1, 0, OpAction::Pop, OpResponse::Value(Some(7)), 1, 8),
        ];
        assert!(check_linearizable(&model, &ops).is_none());
    }

    #[test]
    fn fifo_order_violation_is_caught() {
        // Two pushes strictly ordered in real time, then two pops strictly
        // ordered in real time that observe them in reverse: no valid
        // linearization of a FIFO.
        let model = SeqModel::for_kind(StructureKind::Queue, 4);
        let ops = [
            op(0, 0, OpAction::Push(1), OpResponse::Flag(true), 0, 1),
            op(0, 1, OpAction::Push(2), OpResponse::Flag(true), 2, 3),
            op(1, 0, OpAction::Pop, OpResponse::Value(Some(2)), 4, 5),
            op(1, 1, OpAction::Pop, OpResponse::Value(Some(1)), 6, 7),
        ];
        let f = check_linearizable(&model, &ops).expect("reversed pops must not linearize");
        assert_eq!(f.lint, LintId::NotLinearizable);
        assert_eq!(f.sites.len(), 4, "finding lists the whole history");
    }

    #[test]
    fn stale_read_is_caught() {
        // t1 reads the map *after* t0's put responded, yet observes the
        // old value: real-time order forbids linearizing the get first.
        let model = SeqModel::for_kind(StructureKind::HashTable, 0);
        let ops = [
            op(0, 0, OpAction::MapPut(1, 10), OpResponse::Value(None), 0, 1),
            op(1, 0, OpAction::MapGet(1), OpResponse::Value(None), 2, 3),
        ];
        assert!(check_linearizable(&model, &ops).is_some());
        // The same observation is fine if the two overlapped.
        let ops_overlap = [
            op(0, 0, OpAction::MapPut(1, 10), OpResponse::Value(None), 0, 4),
            op(1, 0, OpAction::MapGet(1), OpResponse::Value(None), 2, 3),
        ];
        assert!(check_linearizable(&model, &ops_overlap).is_none());
    }

    #[test]
    fn program_order_binds_same_thread_ops() {
        // Same thread, zero-width timestamps (uncontrolled run): program
        // order still forces push before pop, which matches FIFO, while a
        // pop observing a never-pushed value cannot linearize.
        let model = SeqModel::for_kind(StructureKind::Queue, 4);
        let ok = [
            op(0, 0, OpAction::Push(3), OpResponse::Flag(true), 0, 0),
            op(0, 1, OpAction::Pop, OpResponse::Value(Some(3)), 0, 0),
        ];
        assert!(check_linearizable(&model, &ok).is_none());
        let bad = [op(0, 0, OpAction::Pop, OpResponse::Value(Some(9)), 0, 0)];
        assert!(check_linearizable(&model, &bad).is_some());
    }
}
