//! Vector-clock happens-before data-race detection over the sanitizer
//! log.
//!
//! The happens-before model mirrors how ordering is actually established
//! in the simulated stack:
//!
//! * **Commit edges.** Every transaction commit publishes its vector
//!   clock into a global commit clock `C_E` (commit publication is
//!   serialized by the memory's engine mutex). Every later access —
//!   plain or the commit of a later transaction — joins `C_E`, so
//!   anything a committed transaction did happens-before everything
//!   that follows a commit. (Plain accesses join `C_E` but do *not*
//!   publish into it; a plain write is ordered only by lock edges.)
//! * **Lock edges.** Each lock-line word `v` carries a clock `C_v`.
//!   A plain *write* (or RMW) of `v` is a release: it joins and then
//!   publishes into `C_v` and ticks the thread's clock. A plain *read*
//!   of `v` is an acquire: it joins `C_v` only. A transactional read of
//!   `v` (the SLR/SCM/HLE subscription read) joins `C_v` at commit
//!   time; a transactional publish of `v` publishes into `C_v`.
//! * **Sandboxing.** Accesses of aborted transactions are discarded —
//!   they were never visible.
//!
//! Data (non-lock-line) accesses are race-checked: plain accesses
//! immediately after their `C_E` join; transactional reads/publishes at
//! commit time, after all joins. Lock-line words are synchronization,
//! never reported as races.
//!
//! Known conservatism: because plain accesses join `C_E`, a race where
//! the plain access *follows* an unrelated commit that raced with it is
//! masked. Plain-vs-plain races and plain-write-then-commit races are
//! caught; this asymmetry is the price of modelling the engine mutex
//! (which really does order commit publication) without logging it.

use crate::{AccessSite, Finding, LintId};
use elision_htm::{SanAccess, SanEvent};
use std::collections::{HashMap, HashSet};

/// Static facts the race detector needs about the run.
#[derive(Debug, Clone)]
pub struct RaceConfig {
    /// Number of simulated threads.
    pub threads: usize,
    /// Words per cache line (maps a word index to its line).
    pub words_per_line: u32,
    /// `lock_lines[line]` is true when the line holds lock words
    /// (synchronization state, exempt from race checking).
    pub lock_lines: Vec<bool>,
}

impl RaceConfig {
    fn is_lock_word(&self, var: u32) -> bool {
        let line = (var / self.words_per_line) as usize;
        self.lock_lines.get(line).copied().unwrap_or(false)
    }

    fn line_of(&self, var: u32) -> u32 {
        var / self.words_per_line
    }
}

type Vc = Vec<u64>;

fn join(into: &mut Vc, other: &Vc) {
    for (a, b) in into.iter_mut().zip(other) {
        *a = (*a).max(*b);
    }
}

/// Last-access state of one data word.
#[derive(Debug, Default)]
struct VarState {
    /// Last write: `(tid, writer clock, site)`.
    last_write: Option<(usize, u64, AccessSite)>,
    /// Reads since the last write: `tid -> (reader clock, site)`.
    reads: HashMap<usize, (u64, AccessSite)>,
}

/// One transaction's buffered accesses, held until commit (then ordered)
/// or abort (then discarded — the sandbox made them invisible).
#[derive(Debug, Default)]
struct TxnBuf {
    /// Data-word reads, in program order.
    reads: Vec<(u32, AccessSite)>,
    /// Lock-line words read (subscriptions): joined at commit.
    sub_reads: Vec<u32>,
}

struct Detector<'a> {
    cfg: &'a RaceConfig,
    /// Per-thread vector clock.
    vc: Vec<Vc>,
    /// Global commit clock.
    commit_clock: Vc,
    /// Per lock-line word clock.
    lock_clocks: HashMap<u32, Vc>,
    vars: HashMap<u32, VarState>,
    txn: Vec<Option<TxnBuf>>,
    findings: Vec<Finding>,
    /// Dedup: one report per (var, tid, tid) pair.
    seen: HashSet<(u32, usize, usize)>,
}

impl<'a> Detector<'a> {
    fn new(cfg: &'a RaceConfig) -> Self {
        let mut vc = vec![vec![0; cfg.threads]; cfg.threads];
        for (t, clock) in vc.iter_mut().enumerate() {
            clock[t] = 1;
        }
        Detector {
            cfg,
            vc,
            commit_clock: vec![0; cfg.threads],
            lock_clocks: HashMap::new(),
            vars: HashMap::new(),
            txn: (0..cfg.threads).map(|_| None).collect(),
            findings: Vec::new(),
            seen: HashSet::new(),
        }
    }

    fn report(&mut self, var: u32, kind: &str, a: AccessSite, b: AccessSite) {
        let key = (var, a.tid.min(b.tid), a.tid.max(b.tid));
        if self.seen.insert(key) {
            self.findings.push(Finding {
                lint: LintId::DataRace,
                message: format!(
                    "unordered {kind} on var {var} (line {}): t{} then t{}",
                    self.cfg.line_of(var),
                    a.tid,
                    b.tid
                ),
                sites: vec![a, b],
            });
        }
    }

    fn check_read(&mut self, tid: usize, var: u32, site: AccessSite) {
        let clock = self.vc[tid].clone();
        let state = self.vars.entry(var).or_default();
        let racy = state
            .last_write
            .as_ref()
            .filter(|&&(w, wclk, _)| w != tid && clock[w] < wclk)
            .map(|&(_, _, wsite)| wsite);
        state.reads.insert(tid, (clock[tid], site));
        if let Some(wsite) = racy {
            self.report(var, "write/read", wsite, site);
        }
    }

    fn check_write(&mut self, tid: usize, var: u32, site: AccessSite) {
        let clock = self.vc[tid].clone();
        let state = self.vars.entry(var).or_default();
        let mut racy: Vec<(AccessSite, &'static str)> = Vec::new();
        if let Some(&(w, wclk, wsite)) = state.last_write.as_ref() {
            if w != tid && clock[w] < wclk {
                racy.push((wsite, "write/write"));
            }
        }
        for (&r, &(rclk, rsite)) in &state.reads {
            if r != tid && clock[r] < rclk {
                racy.push((rsite, "read/write"));
            }
        }
        state.last_write = Some((tid, clock[tid], site));
        state.reads.clear();
        for (prev, kind) in racy {
            self.report(var, kind, prev, site);
        }
    }

    /// Plain access to a lock-line word: acquire on read, release on
    /// write (callers pass `write = true` for stores and RMW halves).
    fn lock_word_sync(&mut self, tid: usize, var: u32, write: bool) {
        let threads = self.cfg.threads;
        let clock = self.lock_clocks.entry(var).or_insert_with(|| vec![0; threads]);
        join(&mut self.vc[tid], clock);
        if write {
            join(clock, &self.vc[tid]);
            self.vc[tid][tid] += 1;
        }
    }

    fn commit(&mut self, tid: usize, publishes: &[(u32, u64, AccessSite)]) {
        let Some(buf) = self.txn[tid].take() else { return };
        join(&mut self.vc[tid], &self.commit_clock.clone());
        for var in &buf.sub_reads {
            if let Some(clock) = self.lock_clocks.get(var) {
                let clock = clock.clone();
                join(&mut self.vc[tid], &clock);
            }
        }
        for &(var, site) in &buf.reads {
            self.check_read(tid, var, site);
        }
        for &(var, _, site) in publishes {
            if self.cfg.is_lock_word(var) {
                let threads = self.cfg.threads;
                let clock = self.lock_clocks.entry(var).or_insert_with(|| vec![0; threads]);
                join(clock, &self.vc[tid]);
            } else {
                self.check_write(tid, var, site);
            }
        }
        let vc = self.vc[tid].clone();
        join(&mut self.commit_clock, &vc);
        self.vc[tid][tid] += 1;
    }
}

fn site_of(ev: &SanEvent, seq: usize, cfg: &RaceConfig, var: Option<u32>) -> AccessSite {
    AccessSite { tid: ev.tid, var, line: var.map(|v| cfg.line_of(v)), time: ev.time, seq }
}

/// Run happens-before race detection over a sanitizer log.
///
/// The log must come from a strict (window 0) run: the detector trusts
/// the log's order to be the execution order.
pub fn detect_races(cfg: &RaceConfig, events: &[SanEvent]) -> Vec<Finding> {
    let mut d = Detector::new(cfg);
    // A committing transaction's publishes directly precede its
    // TxnCommit event; gather them so commit() can order the whole
    // batch atomically (as the engine lock really does).
    let mut pending_pub: Vec<Vec<(u32, u64, AccessSite)>> =
        (0..cfg.threads).map(|_| Vec::new()).collect();
    for (seq, ev) in events.iter().enumerate() {
        let tid = ev.tid;
        match ev.access {
            SanAccess::TxnBegin => {
                d.txn[tid] = Some(TxnBuf::default());
                pending_pub[tid].clear();
            }
            SanAccess::TxnAbort { .. } => {
                // Sandboxed: nothing the transaction did was visible.
                d.txn[tid] = None;
                pending_pub[tid].clear();
            }
            SanAccess::TxnCommit => {
                let publishes = std::mem::take(&mut pending_pub[tid]);
                d.commit(tid, &publishes);
            }
            SanAccess::Read { var, txn, .. } => {
                let idx = var.index();
                let site = site_of(ev, seq, cfg, Some(idx));
                if txn {
                    if let Some(buf) = d.txn[tid].as_mut() {
                        if cfg.is_lock_word(idx) {
                            buf.sub_reads.push(idx);
                        } else {
                            buf.reads.push((idx, site));
                        }
                    }
                } else if cfg.is_lock_word(idx) {
                    d.lock_word_sync(tid, idx, false);
                } else {
                    join(&mut d.vc[tid], &d.commit_clock.clone());
                    d.check_read(tid, idx, site);
                }
            }
            SanAccess::Write { var, txn, value } => {
                let idx = var.index();
                let site = site_of(ev, seq, cfg, Some(idx));
                if txn {
                    pending_pub[tid].push((idx, value, site));
                } else if cfg.is_lock_word(idx) {
                    d.lock_word_sync(tid, idx, true);
                } else {
                    join(&mut d.vc[tid], &d.commit_clock.clone());
                    d.check_write(tid, idx, site);
                }
            }
            SanAccess::LockAcquire { .. }
            | SanAccess::LockRelease { .. }
            | SanAccess::Marker { .. } => {}
        }
    }
    d.findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use elision_htm::VarId;

    const LOCK: u32 = 0; // line 0 is the lock line
    const X: u32 = 8; // line 1 is data

    fn cfg() -> RaceConfig {
        RaceConfig { threads: 2, words_per_line: 8, lock_lines: vec![true, false] }
    }

    fn ev(tid: usize, time: u64, access: SanAccess) -> SanEvent {
        SanEvent { tid, time, access }
    }

    fn read(tid: usize, time: u64, var: u32, txn: bool) -> SanEvent {
        ev(tid, time, SanAccess::Read { var: VarId::from_index(var), value: 0, txn })
    }

    fn write(tid: usize, time: u64, var: u32, txn: bool) -> SanEvent {
        ev(tid, time, SanAccess::Write { var: VarId::from_index(var), value: 1, txn })
    }

    #[test]
    fn plain_unordered_write_read_races() {
        let events = vec![write(0, 10, X, false), read(1, 20, X, false)];
        let f = detect_races(&cfg(), &events);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, LintId::DataRace);
        assert_eq!(f[0].sites.len(), 2);
        assert_eq!((f[0].sites[0].tid, f[0].sites[1].tid), (0, 1));
        assert_eq!(f[0].sites[1].seq, 1);
    }

    #[test]
    fn lock_handoff_orders_plain_accesses() {
        // t0: acquire (RMW on lock word), write X, release (store).
        // t1: acquire, read X -- ordered through the lock clock.
        let events = vec![
            read(0, 1, LOCK, false),
            write(0, 1, LOCK, false), // t0 acquire = RMW
            write(0, 2, X, false),
            write(0, 3, LOCK, false), // t0 release
            read(1, 4, LOCK, false),
            write(1, 4, LOCK, false), // t1 acquire
            read(1, 5, X, false),
        ];
        assert!(detect_races(&cfg(), &events).is_empty());
    }

    #[test]
    fn txn_read_of_plain_write_races_without_subscription() {
        // The broken-SLR shape: t0 writes X under the lock, t1's
        // transaction reads X and commits without a subscription read.
        let events = vec![
            read(0, 1, LOCK, false),
            write(0, 1, LOCK, false),
            write(0, 2, X, false),
            ev(1, 3, SanAccess::TxnBegin),
            read(1, 4, X, true),
            ev(1, 5, SanAccess::TxnCommit),
        ];
        let f = detect_races(&cfg(), &events);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, LintId::DataRace);
    }

    #[test]
    fn subscription_read_orders_txn_after_lock_release() {
        // Same shape but the transaction subscribes (reads the lock
        // word) after t0's release: the lock clock orders everything.
        let events = vec![
            read(0, 1, LOCK, false),
            write(0, 1, LOCK, false),
            write(0, 2, X, false),
            write(0, 3, LOCK, false), // release
            ev(1, 4, SanAccess::TxnBegin),
            read(1, 5, X, true),
            read(1, 6, LOCK, true), // lazy subscription
            ev(1, 7, SanAccess::TxnCommit),
        ];
        assert!(detect_races(&cfg(), &events).is_empty());
    }

    #[test]
    fn committed_txn_orders_later_plain_access() {
        let events = vec![
            ev(0, 1, SanAccess::TxnBegin),
            read(0, 2, X, true),
            write(0, 3, X, true), // publish
            ev(0, 3, SanAccess::TxnCommit),
            read(1, 9, X, false), // joins the commit clock: ordered
        ];
        assert!(detect_races(&cfg(), &events).is_empty());
    }

    #[test]
    fn plain_write_then_commit_races() {
        let events = vec![
            write(0, 1, X, false), // plain, no lock held
            ev(1, 2, SanAccess::TxnBegin),
            write(1, 3, X, true),
            ev(1, 3, SanAccess::TxnCommit),
        ];
        let f = detect_races(&cfg(), &events);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, LintId::DataRace);
    }

    #[test]
    fn aborted_txn_accesses_are_discarded() {
        let events = vec![
            ev(1, 1, SanAccess::TxnBegin),
            read(1, 2, X, true),
            ev(1, 3, SanAccess::TxnAbort { cause: elision_sim::AbortCause::DataConflict }),
            write(0, 9, X, false),
        ];
        assert!(detect_races(&cfg(), &events).is_empty());
    }

    #[test]
    fn duplicate_pairs_reported_once() {
        let events = vec![
            write(0, 1, X, false),
            read(1, 2, X, false),
            read(1, 3, X, false),
            read(1, 4, X, false),
        ];
        assert_eq!(detect_races(&cfg(), &events).len(), 1);
    }
}
