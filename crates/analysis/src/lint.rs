//! Lock-discipline lints over the merged per-thread trace.
//!
//! Operates on the protocol-level [`GlobalTrace`] (transaction
//! begin/commit/abort, non-speculative lock transitions, subscription
//! markers) rather than the word-level sanitizer log. The checks are the
//! paper's "discipline" obligations:
//!
//! * begin/commit/abort events balance per thread
//!   ([`LintId::UnbalancedTxn`]);
//! * non-speculative acquires and releases pair up, and two threads
//!   never hold the same lock at once ([`LintId::ReleaseWithoutAcquire`],
//!   [`LintId::OverlappingAcquire`]);
//! * lazy-subscription schemes subscribe to the main lock before every
//!   commit (Figure 5 line 24 — [`LintId::SlrUnsubscribedCommit`]);
//! * under SCM, only the auxiliary-lock holder takes the main lock
//!   non-speculatively (paper §6 — [`LintId::ScmMainWithoutAux`]).
//!
//! The merged trace orders events by `(time, tid)`. A release and the
//! next acquire can carry the *same* timestamp (the handoff happens in
//! one scheduler step), and if the releasing thread has a larger id the
//! acquire sorts first. The acquire handler therefore looks ahead
//! through the same-timestamp group for the matching release and applies
//! it early instead of reporting a phantom overlap.

use crate::{AccessSite, Finding, LintId};
use elision_sim::{GlobalTrace, TraceEvent};
use std::collections::{HashMap, HashSet};

/// Configuration for [`lint_trace`].
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    /// Require a subscription marker before every commit (SLR/SCM lazy
    /// or eager subscription schemes).
    pub require_subscription: bool,
    /// Enforce the SCM rule: the main lock may only be taken by a
    /// thread holding an auxiliary lock.
    pub aux_discipline: bool,
    /// Raw word index identifying the main lock, if any.
    pub main_lock: Option<u32>,
    /// Raw word indices of the auxiliary (SCM) locks.
    pub aux_locks: Vec<u32>,
    /// Number of simulated threads.
    pub threads: usize,
}

#[derive(Debug, Default, Clone)]
struct ThreadState {
    in_txn: bool,
    subscribed: bool,
}

/// Run the lock-discipline lints over a merged trace.
///
/// The caller must ensure `trace.dropped() == 0`: balanced-pair checks
/// are meaningless over a truncated trace.
pub fn lint_trace(cfg: &LintConfig, trace: &GlobalTrace) -> Vec<Finding> {
    assert_eq!(trace.dropped(), 0, "lint pass requires a complete (undropped) trace");
    let events = trace.events();
    let mut threads: Vec<ThreadState> = vec![ThreadState::default(); cfg.threads];
    let mut holders: HashMap<u32, usize> = HashMap::new();
    // Indices of LockRelease events already applied early by the
    // same-timestamp look-ahead.
    let mut consumed: HashSet<usize> = HashSet::new();
    let mut findings = Vec::new();

    let site = |seq: usize, tid: usize, time: u64, word: Option<u32>| AccessSite {
        tid,
        var: word,
        line: None,
        time,
        seq,
    };

    for (seq, ev) in events.iter().enumerate() {
        let tid = ev.tid;
        if tid >= cfg.threads {
            continue;
        }
        match ev.event {
            TraceEvent::TxnBegin => {
                if threads[tid].in_txn {
                    findings.push(Finding {
                        lint: LintId::UnbalancedTxn,
                        message: format!("t{tid} began a transaction while one was live"),
                        sites: vec![site(seq, tid, ev.time, None)],
                    });
                }
                threads[tid].in_txn = true;
                threads[tid].subscribed = false;
            }
            TraceEvent::TxnCommit => {
                if !threads[tid].in_txn {
                    findings.push(Finding {
                        lint: LintId::UnbalancedTxn,
                        message: format!("t{tid} committed with no live transaction"),
                        sites: vec![site(seq, tid, ev.time, None)],
                    });
                } else if cfg.require_subscription && !threads[tid].subscribed {
                    findings.push(Finding {
                        lint: LintId::SlrUnsubscribedCommit,
                        message: format!("t{tid} committed without subscribing to the main lock"),
                        sites: vec![site(seq, tid, ev.time, cfg.main_lock)],
                    });
                }
                threads[tid].in_txn = false;
                threads[tid].subscribed = false;
            }
            TraceEvent::TxnAbort(_) => {
                if !threads[tid].in_txn {
                    findings.push(Finding {
                        lint: LintId::UnbalancedTxn,
                        message: format!("t{tid} aborted with no live transaction"),
                        sites: vec![site(seq, tid, ev.time, None)],
                    });
                }
                threads[tid].in_txn = false;
                threads[tid].subscribed = false;
            }
            TraceEvent::Custom("subscribe", _) => {
                threads[tid].subscribed = true;
            }
            TraceEvent::Custom(..) => {}
            TraceEvent::LockAcquire(word) => {
                if let Some(&holder) = holders.get(&word) {
                    if holder != tid {
                        // Same-timestamp handoff inversion: the
                        // holder's release may sort after this acquire
                        // within the same-(time) group. Apply it early.
                        let mut handed_off = None;
                        for (off, e) in events[seq + 1..].iter().enumerate() {
                            if e.time != ev.time {
                                break;
                            }
                            let idx = seq + 1 + off;
                            if e.tid == holder
                                && e.event == TraceEvent::LockRelease(word)
                                && !consumed.contains(&idx)
                            {
                                handed_off = Some(idx);
                                break;
                            }
                        }
                        match handed_off {
                            Some(idx) => {
                                consumed.insert(idx);
                                holders.remove(&word);
                            }
                            None => {
                                findings.push(Finding {
                                    lint: LintId::OverlappingAcquire,
                                    message: format!(
                                        "t{tid} acquired lock word {word} while t{holder} \
                                         held it"
                                    ),
                                    sites: vec![site(seq, tid, ev.time, Some(word))],
                                });
                            }
                        }
                    }
                }
                if cfg.aux_discipline
                    && Some(word) == cfg.main_lock
                    && !cfg.aux_locks.iter().any(|aux| holders.get(aux) == Some(&tid))
                {
                    findings.push(Finding {
                        lint: LintId::ScmMainWithoutAux,
                        message: format!(
                            "t{tid} took the main lock without holding an auxiliary lock"
                        ),
                        sites: vec![site(seq, tid, ev.time, Some(word))],
                    });
                }
                holders.insert(word, tid);
            }
            TraceEvent::LockRelease(word) => {
                if consumed.remove(&seq) {
                    continue;
                }
                if holders.get(&word) == Some(&tid) {
                    holders.remove(&word);
                } else {
                    findings.push(Finding {
                        lint: LintId::ReleaseWithoutAcquire,
                        message: format!("t{tid} released lock word {word} it did not hold"),
                        sites: vec![site(seq, tid, ev.time, Some(word))],
                    });
                }
            }
        }
    }

    for (tid, st) in threads.iter().enumerate() {
        if st.in_txn {
            findings.push(Finding {
                lint: LintId::UnbalancedTxn,
                message: format!("t{tid} ended the run inside a live transaction"),
                sites: vec![site(events.len(), tid, u64::MAX, None)],
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use elision_sim::{AbortCause, TraceRing};

    const MAIN: u32 = 0;
    const AUX: u32 = 16;

    fn cfg(threads: usize) -> LintConfig {
        LintConfig {
            require_subscription: false,
            aux_discipline: false,
            main_lock: Some(MAIN),
            aux_locks: vec![AUX],
            threads,
        }
    }

    fn merged(rings: Vec<(usize, TraceRing)>) -> GlobalTrace {
        GlobalTrace::merge(rings.iter().map(|(tid, r)| (*tid, r)))
    }

    #[test]
    fn balanced_run_is_clean() {
        let mut r = TraceRing::new(16);
        r.record(1, TraceEvent::TxnBegin);
        r.record(2, TraceEvent::TxnAbort(AbortCause::DataConflict));
        r.record(3, TraceEvent::LockAcquire(MAIN));
        r.record(4, TraceEvent::LockRelease(MAIN));
        r.record(5, TraceEvent::TxnBegin);
        r.record(6, TraceEvent::TxnCommit);
        assert!(lint_trace(&cfg(1), &merged(vec![(0, r)])).is_empty());
    }

    #[test]
    fn double_release_reported() {
        let mut r = TraceRing::new(8);
        r.record(1, TraceEvent::LockAcquire(MAIN));
        r.record(2, TraceEvent::LockRelease(MAIN));
        r.record(3, TraceEvent::LockRelease(MAIN));
        let f = lint_trace(&cfg(1), &merged(vec![(0, r)]));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, LintId::ReleaseWithoutAcquire);
        assert_eq!(f[0].sites[0].seq, 2);
    }

    #[test]
    fn unsubscribed_commit_reported_when_required() {
        let mut r = TraceRing::new(8);
        r.record(1, TraceEvent::TxnBegin);
        r.record(2, TraceEvent::TxnCommit);
        let mut c = cfg(1);
        c.require_subscription = true;
        let f = lint_trace(&c, &merged(vec![(0, r)]));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, LintId::SlrUnsubscribedCommit);
    }

    #[test]
    fn subscription_marker_suppresses_the_lint() {
        let mut r = TraceRing::new(8);
        r.record(1, TraceEvent::TxnBegin);
        r.record(2, TraceEvent::Custom("subscribe", u64::from(MAIN)));
        r.record(3, TraceEvent::TxnCommit);
        let mut c = cfg(1);
        c.require_subscription = true;
        assert!(lint_trace(&c, &merged(vec![(0, r)])).is_empty());
    }

    #[test]
    fn overlapping_acquire_reported() {
        let mut r0 = TraceRing::new(8);
        r0.record(1, TraceEvent::LockAcquire(MAIN));
        r0.record(9, TraceEvent::LockRelease(MAIN));
        let mut r1 = TraceRing::new(8);
        r1.record(5, TraceEvent::LockAcquire(MAIN));
        r1.record(6, TraceEvent::LockRelease(MAIN));
        let f = lint_trace(&cfg(2), &merged(vec![(0, r0), (1, r1)]));
        assert!(f.iter().any(|f| f.lint == LintId::OverlappingAcquire), "{f:?}");
    }

    #[test]
    fn same_time_handoff_inversion_is_not_an_overlap() {
        // t1 releases at time 7 and t0 acquires at time 7: the merge
        // sorts t0's acquire first, but this is a legal handoff.
        let mut r0 = TraceRing::new(8);
        r0.record(7, TraceEvent::LockAcquire(MAIN));
        r0.record(9, TraceEvent::LockRelease(MAIN));
        let mut r1 = TraceRing::new(8);
        r1.record(3, TraceEvent::LockAcquire(MAIN));
        r1.record(7, TraceEvent::LockRelease(MAIN));
        assert!(lint_trace(&cfg(2), &merged(vec![(0, r0), (1, r1)])).is_empty());
    }

    #[test]
    fn scm_main_without_aux_reported() {
        let mut c = cfg(2);
        c.aux_discipline = true;
        // t0 holds aux then main: fine. t1 takes main bare: lint.
        let mut r0 = TraceRing::new(8);
        r0.record(1, TraceEvent::LockAcquire(AUX));
        r0.record(2, TraceEvent::LockAcquire(MAIN));
        r0.record(3, TraceEvent::LockRelease(MAIN));
        r0.record(4, TraceEvent::LockRelease(AUX));
        let mut r1 = TraceRing::new(8);
        r1.record(6, TraceEvent::LockAcquire(MAIN));
        r1.record(7, TraceEvent::LockRelease(MAIN));
        let f = lint_trace(&c, &merged(vec![(0, r0), (1, r1)]));
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, LintId::ScmMainWithoutAux);
        assert_eq!(f[0].sites[0].tid, 1);
    }

    #[test]
    fn commit_without_begin_and_trailing_txn_reported() {
        let mut r = TraceRing::new(8);
        r.record(1, TraceEvent::TxnCommit);
        r.record(2, TraceEvent::TxnBegin);
        let f = lint_trace(&cfg(1), &merged(vec![(0, r)]));
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.lint == LintId::UnbalancedTxn));
    }

    #[test]
    #[should_panic(expected = "undropped")]
    fn truncated_trace_rejected() {
        let mut r = TraceRing::new(1);
        r.record(1, TraceEvent::TxnBegin);
        r.record(2, TraceEvent::TxnCommit);
        lint_trace(&cfg(1), &merged(vec![(0, r)]));
    }
}
