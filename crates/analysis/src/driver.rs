//! End-to-end sanitize mode: run one scheme × lock cell of the paper's
//! matrix with the sanitizer log and per-thread traces enabled, then
//! feed the logs through all three analysis passes.
//!
//! The workload is a shared counter plus a small array of contended
//! words, all mutated through [`elision_core::Scheme::execute`] — small
//! enough that the full word-level log fits comfortably, contended
//! enough that every path (speculation, retries, fallback, SCM
//! auxiliary serialization) is exercised. The run uses scheduler window
//! 0 (the strict deterministic interleaving): that is what makes the
//! sanitizer log's append order the execution order, which both the
//! race and opacity passes rely on.
//!
//! Note the cell runs under [`SchemeConfig::paper`] plus the sanitize
//! flag — deliberately *without* the speculation circuit breaker: the
//! breaker's lockdown path takes the main lock directly (bypassing the
//! SCM auxiliary handshake), which is a deliberate liveness/discipline
//! trade-off the lint pass would rightly flag.

use crate::lint::{lint_trace, LintConfig};
use crate::opacity::{check_opacity, OpacityConfig, OpacityPolicy};
use crate::race::{detect_races, RaceConfig};
use crate::{AccessSite, Finding, LintId};
use elision_core::{make_scheme, LockKind, Scheme, SchemeConfig, SchemeKind};
use elision_htm::{harness, HtmConfig, MemoryBuilder, VarId};
use elision_sim::{FaultPlan, GlobalTrace};
use std::sync::Arc;

/// Number of contended data words in the workload array.
const TARGETS: usize = 8;

/// One sanitize-mode cell: which scheme/lock to run and how hard.
#[derive(Debug, Clone)]
pub struct SanitizeSpec {
    /// The elision scheme under test.
    pub scheme: SchemeKind,
    /// The main lock family.
    pub lock: LockKind,
    /// Simulated threads.
    pub threads: usize,
    /// Critical sections per thread.
    pub ops_per_thread: usize,
    /// RNG seed (also perturbs the per-thread operation mix).
    pub seed: u64,
    /// HTM behaviour (capacity, spurious aborts, injected HTM faults).
    pub htm: HtmConfig,
    /// Scheduler-level fault plan (preemption, jitter).
    pub faults: FaultPlan,
}

impl SanitizeSpec {
    /// A default cell: 4 threads × 24 ops, deterministic HTM, no faults.
    pub fn new(scheme: SchemeKind, lock: LockKind) -> Self {
        SanitizeSpec {
            scheme,
            lock,
            threads: 4,
            ops_per_thread: 24,
            seed: 0xE11D,
            htm: HtmConfig::deterministic(),
            faults: FaultPlan::none(),
        }
    }
}

/// The outcome of one sanitized cell.
#[derive(Debug)]
pub struct SanReport {
    /// Everything the three passes (plus the residual-bit check) found.
    pub findings: Vec<Finding>,
    /// Word-level sanitizer events analysed.
    pub san_events: usize,
    /// Protocol-level trace events analysed.
    pub trace_events: usize,
    /// Final value of the shared counter.
    pub hot_total: u64,
    /// Sum of the contended array words.
    pub target_sum: u64,
    /// What both totals must equal (`threads * ops_per_thread`).
    pub expected_total: u64,
    /// Simulated makespan in cycles.
    pub makespan: u64,
}

impl SanReport {
    /// True when the workload's arithmetic survived: both totals match.
    pub fn counters_ok(&self) -> bool {
        self.hot_total == self.expected_total && self.target_sum == self.expected_total
    }

    /// True when no pass found anything and the counters add up.
    pub fn clean(&self) -> bool {
        self.findings.is_empty() && self.counters_ok()
    }
}

/// The opacity policy a scheme promises (see [`OpacityPolicy`]).
pub fn policy_for(kind: SchemeKind) -> OpacityPolicy {
    match kind {
        // Lazy subscription: zombies are expected, commits are not.
        SchemeKind::OptSlr | SchemeKind::SlrScm => OpacityPolicy::Sandboxed,
        _ => OpacityPolicy::Strict,
    }
}

/// Build the lint configuration matching a scheme instance.
pub fn lint_config_for(scheme: &Scheme, threads: usize) -> LintConfig {
    LintConfig {
        require_subscription: scheme.kind() != SchemeKind::Standard,
        aux_discipline: scheme.kind().uses_aux(),
        main_lock: Some(scheme.main_lock().lock_word().index()),
        aux_locks: scheme.aux_locks().iter().map(|l| l.lock_word().index()).collect(),
        threads,
    }
}

/// Run one cell under the sanitizer and analyse its logs.
///
/// # Panics
///
/// Panics if a trace ring overflowed (the rings are sized so this
/// cannot happen for sane `ops_per_thread`) — lints over a truncated
/// trace would be unsound, so this fails loudly instead.
pub fn sanitize_run(spec: &SanitizeSpec) -> SanReport {
    let mut b = MemoryBuilder::new();
    b.enable_sanitizer();
    let mut cfg = SchemeConfig::paper();
    cfg.sanitize = true;
    let scheme = make_scheme(spec.scheme, spec.lock, cfg, &mut b, spec.threads);
    let hot = b.alloc_isolated(0);
    let targets: Vec<VarId> = (0..TARGETS).map(|_| b.alloc_isolated(0)).collect();
    let mem = Arc::new(b.freeze(spec.threads));

    let (rings, makespan, _faults) = {
        let scheme = Arc::clone(&scheme);
        let targets = targets.clone();
        let ops = spec.ops_per_thread;
        // Each op logs a handful of protocol events even through the
        // retry/fallback paths; 64 entries per op is far beyond worst
        // case, so dropped() == 0 is guaranteed for sane op counts.
        let ring_capacity = (ops * 64).max(1024);
        harness::run_arc_faulted(
            spec.threads,
            0, // strict window: log order == execution order
            spec.htm,
            spec.seed,
            spec.faults,
            Arc::clone(&mem),
            move |s| {
                s.enable_trace(ring_capacity);
                for _ in 0..ops {
                    let t = s.rng.below(TARGETS as u64) as usize;
                    let target = targets[t];
                    scheme.execute(s, |s| {
                        let h = s.load(hot)?;
                        let v = s.load(target)?;
                        s.store(target, v + 1)?;
                        s.store(hot, h + 1)?;
                        Ok(())
                    });
                }
                s.trace.take().expect("trace enabled above")
            },
        )
    };

    let trace = GlobalTrace::merge(rings.iter().enumerate());
    assert_eq!(trace.dropped(), 0, "trace ring overflowed; grow ring_capacity");

    let san = mem.san_log().expect("sanitizer enabled above");
    let events = san.snapshot();

    let race_cfg = RaceConfig {
        threads: spec.threads,
        words_per_line: mem.words_per_line() as u32,
        lock_lines: (0..mem.line_count()).map(|l| mem.is_lock_line(l as u32)).collect(),
    };
    let opacity_cfg = OpacityConfig {
        policy: policy_for(spec.scheme),
        main_lock: Some(scheme.main_lock().lock_word().index()),
    };

    let mut findings = detect_races(&race_cfg, &events);
    findings.extend(check_opacity(&opacity_cfg, san.initial_values(), &events));
    findings.extend(lint_trace(&lint_config_for(&scheme, spec.threads), &trace));

    // Post-run leak check: after quiescence every conflict-bitmap bit
    // must be cleared.
    for line in mem.residual_lines() {
        findings.push(Finding {
            lint: LintId::ResidualConflictBits,
            message: format!("line {} kept reader/writer bits after quiescence", line.raw()),
            sites: vec![AccessSite {
                tid: 0,
                var: None,
                line: Some(line.raw()),
                time: makespan,
                seq: events.len(),
            }],
        });
    }

    let expected = (spec.threads * spec.ops_per_thread) as u64;
    SanReport {
        findings,
        san_events: events.len(),
        trace_events: trace.len(),
        hot_total: mem.read_direct(hot),
        target_sum: targets.iter().map(|&t| mem.read_direct(t)).sum(),
        expected_total: expected,
        makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_clean(scheme: SchemeKind, lock: LockKind) {
        let report = sanitize_run(&SanitizeSpec::new(scheme, lock));
        assert!(report.findings.is_empty(), "{scheme:?}/{lock:?}: {:#?}", report.findings);
        assert!(
            report.counters_ok(),
            "{scheme:?}/{lock:?}: hot {} targets {} expected {}",
            report.hot_total,
            report.target_sum,
            report.expected_total
        );
        assert!(report.san_events > 0, "sanitizer log was empty");
        assert!(report.trace_events > 0, "trace was empty");
    }

    #[test]
    fn hle_over_mcs_is_clean() {
        assert_clean(SchemeKind::Hle, LockKind::Mcs);
    }

    #[test]
    fn opt_slr_over_ttas_is_clean() {
        assert_clean(SchemeKind::OptSlr, LockKind::Ttas);
    }

    #[test]
    fn slr_scm_over_ticket_is_clean() {
        assert_clean(SchemeKind::SlrScm, LockKind::Ticket);
    }

    #[test]
    fn standard_over_clh_is_clean() {
        assert_clean(SchemeKind::Standard, LockKind::Clh);
    }
}
