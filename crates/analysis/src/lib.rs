//! Opacity/race sanitizer and lock-discipline lints for the elision stack.
//!
//! The paper's correctness argument rests on three claims that are easy
//! to state and easy to silently break while tuning the schemes:
//!
//! 1. **Data-race freedom** — every access to critical-section data is
//!    ordered by the locking/elision protocol (happens-before), so a
//!    committed speculative run is indistinguishable from a locked one.
//! 2. **Opacity / sandboxing** (paper §5) — an HLE or eagerly-subscribed
//!    SCM transaction never *observes* inconsistent state (opacity);
//!    a lazily-subscribed SLR transaction may observe inconsistent state
//!    as a doomed "zombie" but must never *commit* it (sandboxing), and
//!    no transaction may commit while a non-speculative peer holds the
//!    main lock.
//! 3. **Lock discipline** — SLR/SCM transactions subscribe to the main
//!    lock before committing, SCM threads take the main lock only while
//!    holding their auxiliary lock, and acquires/releases balance.
//!
//! This crate checks all three *post hoc* over the logs the lower layers
//! already produce: the [`elision_htm::SanLog`] (every memory access, in
//! global execution order — sound under the simulator's strict window 0)
//! and the merged [`elision_sim::GlobalTrace`] of per-thread trace rings.
//! [`driver::sanitize_run`] wires a whole scheme × lock × fault-plan cell
//! through all three passes; [`testkit`] provides known-bad schedules and
//! workloads that must trip specific lints (the sanitizer's own negative
//! tests).
//!
//! On top of the sampling passes, [`explore`] turns the sanitizer into a
//! bounded *model checker*: it drives the controlled scheduler through all
//! interleavings of small configurations (with dynamic partial-order
//! reduction), runs every execution through the passes above plus the
//! [`linearize`] history oracle, and minimizes any failing schedule into a
//! counterexample small enough to read.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advisor;
pub mod driver;
pub mod explore;
pub mod footprint;
pub mod layout;
pub mod linearize;
pub mod lint;
pub mod opacity;
pub mod race;
pub mod testkit;

use std::fmt;

/// The sanitizer's lint taxonomy: every finding carries exactly one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintId {
    /// Two unordered accesses to the same data word, at least one a
    /// write (vector-clock happens-before violation).
    DataRace,
    /// A live transaction performed a read while a previously-read word
    /// had been overwritten by a peer — an inconsistent snapshot,
    /// forbidden for opacity-preserving (eagerly subscribed) schemes.
    OpacityInconsistentRead,
    /// A transaction committed after one of its reads went stale: a
    /// zombie escaped the sandbox (forbidden for *every* scheme).
    ZombieCommit,
    /// A transaction committed while a different thread held the main
    /// lock non-speculatively — the unsafe-lazy-subscription failure
    /// mode of paper §5.
    CommitWhileLockHeld,
    /// Conflict-bitmap reader/writer bits survived the run: some
    /// transaction leaked its read/write-set registration.
    ResidualConflictBits,
    /// Transaction begin/commit/abort events do not balance.
    UnbalancedTxn,
    /// A lock release by a thread that did not hold the lock.
    ReleaseWithoutAcquire,
    /// A lock acquisition while another thread held the lock (mutual
    /// exclusion violation at the trace level).
    OverlappingAcquire,
    /// A transaction committed without subscribing to the main lock —
    /// SLR's lazy subscription (Figure 5 line 24) was skipped.
    SlrUnsubscribedCommit,
    /// The main lock was acquired non-speculatively by an SCM thread
    /// that held no auxiliary lock (paper §6: only the aux holder may
    /// take the main lock).
    ScmMainWithoutAux,
    /// A concurrent operation history admits no sequential order that is
    /// consistent with real-time precedence and the sequential reference
    /// model — the execution is not linearizable.
    NotLinearizable,
    /// Static (advisor) lint: two operations that never touch a common
    /// variable nevertheless conflict on a cache line, because distinct
    /// variables share the line (arXiv 1504.04640's placement-induced
    /// aborts).
    FalseSharing,
    /// Static (advisor) lint: an operation's read- or write-line
    /// footprint is within the configured margin of the HTM's `LineSet`
    /// capacity — capacity aborts are predicted.
    CapacityRisk,
    /// Static (advisor) lint: a data or metadata variable shares a cache
    /// line with a lock word, so every elided critical section touching
    /// it conflicts with its own lock — the classic HLE self-abort.
    LockWordCoResidency,
    /// Static (advisor) lint: a lazily-subscribed (SLR-style) section
    /// contains writes whose target depends on data read inside the
    /// section — the "dangerous instruction" class of arXiv 1407.6968: a
    /// zombie running such a section can target wild addresses before
    /// the subscription check would have stopped it.
    LazyDangerousInstruction,
}

impl LintId {
    /// Every lint the sanitizer can report.
    pub const ALL: [LintId; 15] = [
        LintId::DataRace,
        LintId::OpacityInconsistentRead,
        LintId::ZombieCommit,
        LintId::CommitWhileLockHeld,
        LintId::ResidualConflictBits,
        LintId::UnbalancedTxn,
        LintId::ReleaseWithoutAcquire,
        LintId::OverlappingAcquire,
        LintId::SlrUnsubscribedCommit,
        LintId::ScmMainWithoutAux,
        LintId::NotLinearizable,
        LintId::FalseSharing,
        LintId::CapacityRisk,
        LintId::LockWordCoResidency,
        LintId::LazyDangerousInstruction,
    ];

    /// Stable kebab-case identifier (used in JSON reports and docs).
    pub fn label(&self) -> &'static str {
        match self {
            LintId::DataRace => "data-race",
            LintId::OpacityInconsistentRead => "opacity-inconsistent-read",
            LintId::ZombieCommit => "zombie-commit",
            LintId::CommitWhileLockHeld => "commit-while-lock-held",
            LintId::ResidualConflictBits => "residual-conflict-bits",
            LintId::UnbalancedTxn => "unbalanced-txn",
            LintId::ReleaseWithoutAcquire => "release-without-acquire",
            LintId::OverlappingAcquire => "overlapping-acquire",
            LintId::SlrUnsubscribedCommit => "slr-unsubscribed-commit",
            LintId::ScmMainWithoutAux => "scm-main-without-aux",
            LintId::NotLinearizable => "not-linearizable",
            LintId::FalseSharing => "false-sharing",
            LintId::CapacityRisk => "capacity-risk",
            LintId::LockWordCoResidency => "lock-word-co-residency",
            LintId::LazyDangerousInstruction => "lazy-dangerous-instruction",
        }
    }
}

impl fmt::Display for LintId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Provenance of one access involved in a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessSite {
    /// The simulated thread that performed the access.
    pub tid: usize,
    /// The word accessed (raw [`elision_htm::VarId`] index), if any.
    pub var: Option<u32>,
    /// The cache line involved, if known.
    pub line: Option<u32>,
    /// The thread's logical clock at the access.
    pub time: u64,
    /// Global sequence number: the access's index in the sanitizer log
    /// (or merged trace, for trace-level lints).
    pub seq: usize,
}

impl fmt::Display for AccessSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}@{}#{}", self.tid, self.time, self.seq)?;
        if let Some(v) = self.var {
            write!(f, " var {v}")?;
        }
        if let Some(l) = self.line {
            write!(f, " line {l}")?;
        }
        Ok(())
    }
}

/// One sanitizer finding: a lint, a human-readable message, and the
/// access sites that witness the violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which invariant was violated.
    pub lint: LintId,
    /// Human-readable description with concrete values.
    pub message: String,
    /// The witnessing accesses, in the order they appear in the log.
    pub sites: Vec<AccessSite>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.lint, self.message)?;
        for s in &self.sites {
            write!(f, "\n    at {s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct_kebab_case() {
        for (i, a) in LintId::ALL.iter().enumerate() {
            assert!(a.label().chars().all(|c| c.is_ascii_lowercase() || c == '-'));
            for b in &LintId::ALL[i + 1..] {
                assert_ne!(a.label(), b.label());
            }
        }
    }

    #[test]
    fn finding_display_carries_provenance() {
        let f = Finding {
            lint: LintId::DataRace,
            message: "write/read on var 3".into(),
            sites: vec![AccessSite { tid: 1, var: Some(3), line: Some(0), time: 42, seq: 7 }],
        };
        let s = f.to_string();
        assert!(s.contains("data-race"));
        assert!(s.contains("t1@42#7"));
        assert!(s.contains("var 3"));
    }
}
