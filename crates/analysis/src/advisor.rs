//! The static elision advisor: layout-aware lints and scheme-selection
//! advice from solo dry-runs, with *no* interleaving exploration.
//!
//! [`advise`] builds one structure under a concrete
//! [`elision_htm::PlacementConfig`], dry-runs a small battery of
//! operation instances per operation class ([`crate::footprint`]),
//! projects the footprints onto the placement's [`LayoutMap`]
//! ([`crate::layout`]), and emits [`Finding`]s under the sanitizer's
//! [`LintId`] taxonomy:
//!
//! - [`LintId::FalseSharing`] — operations that share no variable yet
//!   conflict on a line (arXiv 1504.04640's placement-induced aborts);
//! - [`LintId::CapacityRisk`] — a footprint within the configured margin
//!   of the HTM's read/write line budgets;
//! - [`LintId::LockWordCoResidency`] — data co-resident with a lock
//!   word, so every elided section self-aborts on its own lock line;
//! - [`LintId::LazyDangerousInstruction`] — a lazily-subscribed scheme
//!   running sections whose write targets are data-dependent
//!   (arXiv 1407.6968's dangerous instructions).
//!
//! The report also predicts the *hot lines* — where dynamic conflict
//! aborts should land — so a sweep can cross-validate the static story
//! against [`elision_sim::ConflictLineHistogram`] telemetry.

use std::collections::BTreeSet;

use elision_core::{make_scheme, LockKind, SchemeConfig, SchemeKind};
use elision_htm::{HtmConfig, LayoutMap, MemoryBuilder, PlacementConfig, Placer, VarRole};
use elision_structures::{HashTable, RbTree, SimQueue, SortedList, StructureKind};

use crate::footprint::{dry_run, OpFootprint, OpSpec};
use crate::layout::{false_sharing_lines, interference_graph, Interference};
use crate::{AccessSite, Finding, LintId};

/// Everything [`advise`] needs to analyze one structure × placement ×
/// scheme cell.
#[derive(Debug, Clone)]
pub struct AdvisorSpec {
    /// Which data structure to profile.
    pub structure: StructureKind,
    /// The memory-placement policy to lay it out under.
    pub placement: PlacementConfig,
    /// The elision scheme the advice targets (its lock words are placed
    /// into the layout; lazy schemes enable the dangerous-instruction
    /// lint).
    pub scheme: SchemeKind,
    /// The main-lock implementation (affects lock-word count/placement).
    pub lock: LockKind,
    /// The HTM whose capacity budgets the footprints are linted against.
    pub htm: HtmConfig,
    /// Thread count the structure is sized for (free-list partitions,
    /// lock slots). The dry-run itself is always single-threaded.
    pub threads: usize,
    /// Keys/values present before the battery runs.
    pub prefill: usize,
    /// Dry-run seed (footprints are deterministic; this only seeds the
    /// strand RNG, which a solo deterministic run never draws from).
    pub seed: u64,
    /// Flag a footprint whose line count reaches this fraction (permille)
    /// of a capacity budget. Default 800 (80%).
    pub capacity_margin_permille: u32,
    /// Restrict the battery to read-only operation classes.
    pub read_only: bool,
}

impl AdvisorSpec {
    /// A spec with the default lock (TTAS), Haswell HTM budgets, 4
    /// threads, a small prefill, margin 800‰, and a full battery.
    pub fn new(structure: StructureKind, placement: PlacementConfig, scheme: SchemeKind) -> Self {
        AdvisorSpec {
            structure,
            placement,
            scheme,
            lock: LockKind::Ttas,
            htm: HtmConfig::haswell(),
            threads: 4,
            prefill: 24,
            seed: 0x5EED_AD01,
            capacity_margin_permille: 800,
            read_only: false,
        }
    }

    /// Stable cell label: `structure/placement/scheme`.
    pub fn label(&self) -> String {
        format!("{}/{}/{}", self.structure.label(), self.placement.label(), self.scheme.label())
    }

    /// Record-arena capacity the profiled structure is built with:
    /// `prefill` plus slack for the battery's inserts. A dynamic probe
    /// that wants the advisor's exact layout must size identically.
    pub fn arena_capacity(&self) -> usize {
        self.prefill + 8
    }

    /// Bucket count for the hash-table cell (half the prefill, so
    /// chains stay short but collisions exist).
    pub fn n_buckets(&self) -> usize {
        (self.prefill / 2).max(4)
    }
}

/// The advisor's verdict for one cell.
#[derive(Debug)]
pub struct AdvisorReport {
    /// Cell label (`structure/placement/scheme`).
    pub label: String,
    /// Layout-aware lints, in taxonomy order then line/label order.
    pub findings: Vec<Finding>,
    /// The dry-run footprints, in battery order.
    pub footprints: Vec<OpFootprint>,
    /// The cross-operation interference graph.
    pub edges: Vec<Interference>,
    /// Predicted conflict/capacity hot lines: lines of written
    /// variables, widened to whole record regions (a dry-run write to
    /// record *i* stands for a runtime write to any record), plus every
    /// lock line.
    pub hot_lines: BTreeSet<u32>,
    /// Scheme-selection advice, human-readable, deterministic.
    pub advice: Vec<String>,
    /// The placement's layout map.
    pub layout: LayoutMap,
}

impl AdvisorReport {
    /// The distinct lints present, in [`LintId::ALL`] order.
    pub fn lints(&self) -> Vec<LintId> {
        LintId::ALL.into_iter().filter(|l| self.findings.iter().any(|f| f.lint == *l)).collect()
    }
}

fn site(var: Option<u32>, line: Option<u32>) -> AccessSite {
    // Static findings have no schedule provenance; tid/time/seq are
    // fixed so reports stay byte-stable.
    AccessSite { tid: 0, var, line, time: 0, seq: 0 }
}

/// Battery + layout for one structure under one placement. Returns the
/// layout, the footprints, and the battery's write-capable class names.
fn profile(spec: &AdvisorSpec) -> (LayoutMap, Vec<OpFootprint>) {
    let mut b = MemoryBuilder::new();
    b.enable_sanitizer();
    let mut p = Placer::new(b, spec.placement);
    // Lock words first: co-resident placement packs them against the
    // structure the same way a careless allocator would.
    let _scheme =
        make_scheme(spec.scheme, spec.lock, SchemeConfig::paper(), p.builder_mut(), spec.threads);
    let n = spec.prefill;
    let cap = spec.arena_capacity();
    // Present keys are even; battery misses/inserts use odd keys.
    let hit = move |i: usize| 2 * (i % n.max(1)) as u64;
    let miss = |i: usize| (2 * i + 1) as u64;
    // The three battery probes per class are spread across the prefilled
    // keyspace (first, middle, last) so worst-case walks — the
    // footprints capacity linting must see — are represented instead of
    // only near-head early exits.
    let spread = move |i: usize| i * n.saturating_sub(1) / 2;
    let probe_hit = move |i: usize| hit(spread(i));
    let probe_miss = move |i: usize| miss(spread(i));
    let mut ops: Vec<OpSpec> = Vec::new();
    let prefill: crate::footprint::OpFn;
    // Free-list chaining happens via direct writes after freeze, before
    // the strand runs (queue needs none).
    let init: Box<dyn Fn(&elision_htm::Memory)>;
    match spec.structure {
        StructureKind::RbTree => {
            let t = RbTree::new_placed(&mut p, cap, spec.threads);
            let ti = t.clone();
            init = Box::new(move |m| ti.init(m));
            let tp = t.clone();
            prefill = Box::new(move |s| {
                for i in 0..n {
                    tp.insert(s, hit(i))?;
                }
                Ok(())
            });
            for i in 0..3 {
                let t2 = t.clone();
                ops.push(OpSpec::new(
                    "contains",
                    format!("contains({})", probe_hit(i)),
                    move |s| t2.contains(s, probe_hit(i)).map(|_| ()),
                ));
            }
            if !spec.read_only {
                for i in 0..3 {
                    let t2 = t.clone();
                    ops.push(OpSpec::new(
                        "insert",
                        format!("insert({})", probe_miss(i)),
                        move |s| t2.insert(s, probe_miss(i)).map(|_| ()),
                    ));
                    let t2 = t.clone();
                    ops.push(OpSpec::new(
                        "remove",
                        format!("remove({})", probe_hit(i)),
                        move |s| t2.remove(s, probe_hit(i)).map(|_| ()),
                    ));
                }
            }
        }
        StructureKind::List => {
            let l = SortedList::new_placed(&mut p, cap, spec.threads);
            let li = l.clone();
            init = Box::new(move |m| li.init(m));
            let lp = l.clone();
            prefill = Box::new(move |s| {
                for i in 0..n {
                    lp.insert(s, hit(i))?;
                }
                Ok(())
            });
            for i in 0..3 {
                let l2 = l.clone();
                ops.push(OpSpec::new(
                    "contains",
                    format!("contains({})", probe_hit(i)),
                    move |s| l2.contains(s, probe_hit(i)).map(|_| ()),
                ));
            }
            if !spec.read_only {
                for i in 0..3 {
                    let l2 = l.clone();
                    ops.push(OpSpec::new(
                        "insert",
                        format!("insert({})", probe_miss(i)),
                        move |s| l2.insert(s, probe_miss(i)).map(|_| ()),
                    ));
                    let l2 = l.clone();
                    ops.push(OpSpec::new(
                        "remove",
                        format!("remove({})", probe_hit(i)),
                        move |s| l2.remove(s, probe_hit(i)).map(|_| ()),
                    ));
                }
            }
        }
        StructureKind::HashTable => {
            let buckets = spec.n_buckets();
            let h = HashTable::new_placed(&mut p, buckets, cap, spec.threads);
            let hi = h.clone();
            init = Box::new(move |m| hi.init(m));
            let hp = h.clone();
            prefill = Box::new(move |s| {
                for i in 0..n {
                    hp.put(s, hit(i), hit(i) + 1)?;
                }
                Ok(())
            });
            for i in 0..3 {
                let h2 = h.clone();
                ops.push(OpSpec::new("get", format!("get({})", probe_hit(i)), move |s| {
                    h2.get(s, probe_hit(i)).map(|_| ())
                }));
            }
            if !spec.read_only {
                for i in 0..3 {
                    let h2 = h.clone();
                    ops.push(OpSpec::new("put", format!("put({})", probe_miss(i)), move |s| {
                        h2.put(s, probe_miss(i), 7).map(|_| ())
                    }));
                    let h2 = h.clone();
                    ops.push(OpSpec::new(
                        "remove",
                        format!("remove({})", probe_hit(i)),
                        move |s| h2.remove(s, probe_hit(i)).map(|_| ()),
                    ));
                }
            }
        }
        StructureKind::Queue => {
            let q = SimQueue::new_placed(&mut p, cap);
            init = Box::new(|_| {});
            let qp = q.clone();
            prefill = Box::new(move |s| {
                for i in 0..n {
                    qp.push(s, hit(i))?;
                }
                Ok(())
            });
            for _ in 0..3 {
                let q2 = q.clone();
                ops.push(OpSpec::new("len", "len()", move |s| q2.len(s).map(|_| ())));
            }
            if !spec.read_only {
                for i in 0..3 {
                    let q2 = q.clone();
                    ops.push(OpSpec::new("push", format!("push#{i}"), move |s| {
                        q2.push(s, 9).map(|_| ())
                    }));
                    let q2 = q.clone();
                    ops.push(OpSpec::new("pop", format!("pop#{i}"), move |s| {
                        q2.pop(s).map(|_| ())
                    }));
                }
            }
        }
    }
    let (b, layout) = p.finish();
    let mem = b.freeze(1);
    init(&mem);
    let footprints = dry_run(mem, spec.seed, prefill, ops);
    (layout, footprints)
}

fn lint_false_sharing(
    edges: &[Interference],
    fps: &[OpFootprint],
    layout: &LayoutMap,
    findings: &mut Vec<Finding>,
) {
    for (line, edge_idx) in false_sharing_lines(edges) {
        let e = &edges[edge_idx];
        let (wv, tv) = e.witness.expect("false-sharing edge carries a witness");
        let name = |v: u32| {
            layout
                .resolve(v)
                .map(|r| format!("{}[{}].{}", r.name, r.record, r.field))
                .unwrap_or_else(|| format!("word {v}"))
        };
        findings.push(Finding {
            lint: LintId::FalseSharing,
            message: format!(
                "line {line}: {} ({}) and {} ({}) conflict only through co-residency — \
                 the operations share no variable; padding or scattering removes this abort",
                name(wv),
                fps[e.a].label,
                name(tv),
                fps[e.b].label,
            ),
            sites: vec![site(Some(wv), Some(line)), site(Some(tv), Some(line))],
        });
    }
}

fn lint_capacity(
    spec: &AdvisorSpec,
    fps: &[OpFootprint],
    layout: &LayoutMap,
    out: &mut Vec<Finding>,
) {
    let speculative = !matches!(spec.scheme, SchemeKind::NoLock | SchemeKind::Standard);
    // Every elided section also reads the main lock's line (eager
    // subscription up front, lazy at commit): one extra read line.
    let overhead = usize::from(speculative);
    let margin = spec.capacity_margin_permille as usize;
    for fp in fps {
        let reads = fp.read_lines(layout).len() + overhead;
        let writes = fp.write_lines(layout).len();
        for (kind, used, budget) in
            [("read", reads, spec.htm.read_set_lines), ("write", writes, spec.htm.write_set_lines)]
        {
            if budget > 0 && used * 1000 >= margin * budget {
                out.push(Finding {
                    lint: LintId::CapacityRisk,
                    message: format!(
                        "{}: {kind}-set footprint of {used} lines is within {}‰ of the \
                         {budget}-line budget — capacity aborts make elision futile here",
                        fp.label,
                        1000 - margin.min(1000),
                    ),
                    sites: vec![site(None, None)],
                });
            }
        }
    }
}

fn lint_lock_coresidency(layout: &LayoutMap, out: &mut Vec<Finding>) {
    let lock_lines: BTreeSet<u32> = layout.lock_lines().into_iter().collect();
    if lock_lines.is_empty() {
        return;
    }
    let mut flagged: BTreeSet<u32> = BTreeSet::new();
    for (ri, region) in layout.regions().iter().enumerate() {
        if region.role == VarRole::Lock {
            continue;
        }
        for line in layout.lines_of_region(ri) {
            if lock_lines.contains(&line) && flagged.insert(line) {
                out.push(Finding {
                    lint: LintId::LockWordCoResidency,
                    message: format!(
                        "line {line}: region \"{}\" shares a cache line with a lock word — \
                         every elided section touching it conflicts with its own lock \
                         (guaranteed HLE self-abort)",
                        region.name,
                    ),
                    sites: vec![site(None, Some(line))],
                });
            }
        }
    }
}

fn lint_lazy_dangerous(spec: &AdvisorSpec, fps: &[OpFootprint], out: &mut Vec<Finding>) {
    if !spec.scheme.is_lazy_subscription() {
        return;
    }
    let mut classes: Vec<&str> = Vec::new();
    for f in fps {
        if !classes.contains(&f.class.as_str()) {
            classes.push(&f.class);
        }
    }
    for class in classes {
        let sets: Vec<&BTreeSet<u32>> =
            fps.iter().filter(|f| f.class == class).map(|f| &f.writes).collect();
        let writes_anything = sets.iter().any(|s| !s.is_empty());
        let unstable = sets.windows(2).any(|w| w[0] != w[1]);
        if writes_anything && unstable {
            let a = sets[0];
            let b = sets.iter().find(|s| **s != a).expect("unstable implies a differing set");
            let wa = a.iter().next().copied();
            let wb = b.iter().next().copied();
            out.push(Finding {
                lint: LintId::LazyDangerousInstruction,
                message: format!(
                    "{} under {}: \"{class}\" writes data-dependent targets (instances \
                     differ in their write sets) — a zombie running this lazily-subscribed \
                     section can write wild addresses before the subscription check",
                    spec.structure.label(),
                    spec.scheme.label(),
                ),
                sites: vec![site(wa, None), site(wb, None)],
            });
        }
    }
}

fn predicted_hot_lines(fps: &[OpFootprint], layout: &LayoutMap) -> BTreeSet<u32> {
    let mut hot: BTreeSet<u32> = BTreeSet::new();
    let mut hot_regions: BTreeSet<usize> = BTreeSet::new();
    for fp in fps {
        for &w in &fp.writes {
            hot.insert(layout.line_of_word(w));
            if let Some(r) = layout.resolve(w) {
                // A dry-run write to record i stands for a runtime write
                // to any record of the region.
                if layout.regions()[r.region].bases.len() > 1 {
                    hot_regions.insert(r.region);
                }
            }
        }
    }
    for ri in hot_regions {
        hot.extend(layout.lines_of_region(ri));
    }
    hot.extend(layout.lock_lines());
    hot
}

fn build_advice(
    spec: &AdvisorSpec,
    findings: &[Finding],
    fps: &[OpFootprint],
    layout: &LayoutMap,
) -> Vec<String> {
    let has = |l: LintId| findings.iter().any(|f| f.lint == l);
    let mut advice = Vec::new();
    if has(LintId::LockWordCoResidency) {
        advice.push(
            "isolate lock words (placement without lock co-residency): co-resident locks \
             guarantee self-aborts, so elision degenerates to the standard lock"
                .to_string(),
        );
    }
    if has(LintId::CapacityRisk) {
        advice.push(format!(
            "footprints approach the HTM line budget: prefer {} over speculative retries \
             (capacity aborts are deterministic, retrying them is wasted work)",
            SchemeKind::Standard.label(),
        ));
    }
    if has(LintId::FalseSharing) {
        advice.push(
            "placement-induced conflicts detected: padded or index-aware placement removes \
             them without touching the algorithm"
                .to_string(),
        );
    }
    if has(LintId::LazyDangerousInstruction) {
        advice.push(format!(
            "write targets are data-dependent: prefer eager subscription ({} / {}) over \
             lazily-subscribed SLR variants",
            SchemeKind::Hle.label(),
            SchemeKind::HleScm.label(),
        ));
    }
    if advice.is_empty() {
        let max_lines = fps.iter().map(|f| f.lines(layout).len()).max().unwrap_or(0);
        advice.push(format!(
            "layout clean for {}: max footprint {max_lines} line(s) — speculation should \
             scale, conflicts (if any) are inherent to the workload",
            spec.scheme.label(),
        ));
    }
    advice
}

/// Run the full static analysis for one cell.
///
/// # Panics
///
/// Panics if the dry-run battery aborts (impossible under the dry-run
/// HTM configuration unless the structure itself is broken) or exhausts
/// an arena (spec sizing bug).
pub fn advise(spec: &AdvisorSpec) -> AdvisorReport {
    let (layout, footprints) = profile(spec);
    let edges = interference_graph(&footprints, &layout);
    let mut findings = Vec::new();
    lint_false_sharing(&edges, &footprints, &layout, &mut findings);
    lint_capacity(spec, &footprints, &layout, &mut findings);
    lint_lock_coresidency(&layout, &mut findings);
    lint_lazy_dangerous(spec, &footprints, &mut findings);
    // Taxonomy order, then insertion order within a lint: byte-stable.
    findings.sort_by_key(|f| LintId::ALL.iter().position(|l| *l == f.lint));
    let hot_lines = predicted_hot_lines(&footprints, &layout);
    let advice = build_advice(spec, &findings, &footprints, &layout);
    AdvisorReport { label: spec.label(), findings, footprints, edges, hot_lines, advice, layout }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elision_htm::PlacementPolicy;

    fn spec(
        structure: StructureKind,
        placement: PlacementConfig,
        scheme: SchemeKind,
    ) -> AdvisorSpec {
        AdvisorSpec::new(structure, placement, scheme)
    }

    #[test]
    fn padded_layouts_are_clean_for_eager_schemes() {
        for structure in StructureKind::ALL {
            let report = advise(&spec(structure, PlacementConfig::padded(), SchemeKind::Hle));
            assert!(
                report.findings.is_empty(),
                "{}: unexpected findings: {:?}",
                report.label,
                report.findings
            );
            assert!(!report.hot_lines.is_empty());
            assert_eq!(report.advice.len(), 1);
        }
    }

    #[test]
    fn coresident_locks_are_flagged() {
        let report =
            advise(&spec(StructureKind::RbTree, PlacementConfig::packed(), SchemeKind::Hle));
        assert!(report.lints().contains(&LintId::LockWordCoResidency), "{:?}", report.findings);
    }

    #[test]
    fn lazy_scheme_flags_data_dependent_writes() {
        let report =
            advise(&spec(StructureKind::RbTree, PlacementConfig::padded(), SchemeKind::OptSlr));
        let lints = report.lints();
        assert!(lints.contains(&LintId::LazyDangerousInstruction), "{:?}", report.findings);
        assert!(!lints.contains(&LintId::LockWordCoResidency));
    }

    #[test]
    fn tight_budget_triggers_capacity_risk() {
        let mut s = spec(StructureKind::List, PlacementConfig::padded(), SchemeKind::Hle);
        s.htm = HtmConfig::deterministic().with_capacity(8, 8);
        let report = advise(&s);
        assert!(report.lints().contains(&LintId::CapacityRisk), "{:?}", report.findings);
    }

    #[test]
    fn read_only_battery_has_no_writes() {
        let mut s = spec(StructureKind::HashTable, PlacementConfig::padded(), SchemeKind::OptSlr);
        s.read_only = true;
        let report = advise(&s);
        assert!(report.footprints.iter().all(|f| f.writes.is_empty()));
        assert!(!report.lints().contains(&LintId::LazyDangerousInstruction));
    }

    #[test]
    fn reports_are_deterministic() {
        let s = spec(
            StructureKind::HashTable,
            PlacementConfig::new(PlacementPolicy::Randomized(3)),
            SchemeKind::Hle,
        );
        let a = advise(&s);
        let b = advise(&s);
        assert_eq!(format!("{:?}", a.findings), format!("{:?}", b.findings));
        assert_eq!(a.hot_lines, b.hot_lines);
    }
}
