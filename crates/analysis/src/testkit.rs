//! Shared known-bad fixtures: the sanitizer's and model checker's
//! negative tests.
//!
//! A sanitizer that has never caught anything is indistinguishable from
//! one that cannot. The fixtures here deliberately violate the protocol
//! and are shared by the unit tests, the `sanitize_all` CI job, and the
//! `model_check` explorer so none of them duplicates the setup. They come
//! in two flavours:
//!
//! * **Fixed-schedule runs** — the violation fires on the standard
//!   window-0 schedule, so a single run exhibits it:
//!   [`broken_slr_schedule`] (the unsafe-lazy-subscription pitfall of
//!   paper §5 — expected [`LintId::DataRace`] +
//!   [`LintId::CommitWhileLockHeld`] + [`LintId::SlrUnsubscribedCommit`])
//!   and [`double_release_schedule`] (expected
//!   [`LintId::ReleaseWithoutAcquire`]).
//! * **Schedule-dependent runs** — the *default* schedule is clean and
//!   only a reordered interleaving exposes the bug, which is exactly what
//!   the [`crate::explore`] model checker exists to find:
//!   [`broken_slr_explore`] (an unsubscribed read-only transaction that
//!   only commits inside the lock holder's critical section when the
//!   scheduler is adversarial) and [`double_release_explore`] (a
//!   double-release gated on a probe word another thread must win the
//!   race to set).
//!
//! [`LintId::DataRace`]: crate::LintId::DataRace
//! [`LintId::CommitWhileLockHeld`]: crate::LintId::CommitWhileLockHeld
//! [`LintId::SlrUnsubscribedCommit`]: crate::LintId::SlrUnsubscribedCommit
//! [`LintId::ReleaseWithoutAcquire`]: crate::LintId::ReleaseWithoutAcquire

use crate::driver::{lint_config_for, policy_for};
use crate::lint::{lint_trace, LintConfig};
use crate::opacity::{check_opacity, OpacityConfig, OpacityPolicy};
use crate::race::{detect_races, RaceConfig};
use crate::Finding;
use elision_core::{make_scheme, LazyMode, LockKind, SchemeConfig, SchemeKind};
use elision_htm::{codes, harness, HtmConfig, HwSubscription, Memory, MemoryBuilder, VarId};
use elision_locks::{RawLock, TtasLock};
use elision_sim::{GlobalTrace, ScheduleControl, StepRecord};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Build the [`RaceConfig`] describing `mem`'s layout.
pub fn race_cfg(mem: &Memory, threads: usize) -> RaceConfig {
    RaceConfig {
        threads,
        words_per_line: mem.words_per_line() as u32,
        lock_lines: (0..mem.line_count()).map(|l| mem.is_lock_line(l as u32)).collect(),
    }
}

/// Run the broken eager-commit SLR variant: the transaction skips the
/// subscription read (Figure 5 line 24) and commits while the lock
/// holder is mid-critical-section. Returns all findings.
pub fn broken_slr_schedule() -> Vec<Finding> {
    let mut b = MemoryBuilder::new();
    b.enable_sanitizer();
    let lock = Arc::new(TtasLock::new(&mut b));
    let x = b.alloc_isolated(0);
    let y = b.alloc_isolated(0);
    let mem = Arc::new(b.freeze(2));
    let threads = 2;

    let (rings, _makespan) = {
        let lock = Arc::clone(&lock);
        harness::run_arc(
            threads,
            0, // strict window: required for log soundness
            HtmConfig::deterministic(),
            7,
            Arc::clone(&mem),
            move |s| {
                s.enable_trace(64);
                if s.tid() == 0 {
                    // The honest lock holder: a long critical section
                    // mutating x then (much later) y.
                    lock.acquire(s).expect("non-speculative acquire");
                    s.store(x, 1).expect("plain store");
                    s.work(5_000).expect("non-transactional work");
                    s.store(y, 2).expect("plain store");
                    lock.release(s).expect("non-speculative release");
                } else {
                    // The broken SLR transaction: reads the holder's
                    // in-flight data and commits without subscribing.
                    s.work(50).expect("non-transactional work");
                    s.attempt(|s| {
                        s.load(x)?;
                        s.load(y)?;
                        Ok(())
                    })
                    .expect("uncontended read-only txn commits");
                }
                s.trace.take().expect("trace enabled above")
            },
        )
    };

    let trace = GlobalTrace::merge(rings.iter().enumerate());
    let san = mem.san_log().expect("sanitizer enabled above");
    let events = san.snapshot();

    let mut findings = detect_races(&race_cfg(&mem, threads), &events);
    findings.extend(check_opacity(
        &OpacityConfig {
            policy: OpacityPolicy::Sandboxed,
            main_lock: Some(lock.lock_word().index()),
        },
        san.initial_values(),
        &events,
    ));
    findings.extend(lint_trace(
        &LintConfig {
            require_subscription: true,
            aux_discipline: false,
            main_lock: Some(lock.lock_word().index()),
            aux_locks: Vec::new(),
            threads,
        },
        &trace,
    ));
    findings
}

/// Run a schedule where a thread releases the lock twice. Returns all
/// lint findings.
pub fn double_release_schedule() -> Vec<Finding> {
    let mut b = MemoryBuilder::new();
    b.enable_sanitizer();
    let lock = Arc::new(TtasLock::new(&mut b));
    let data = b.alloc_isolated(0);
    let mem = Arc::new(b.freeze(1));

    let (rings, _makespan) = {
        let lock = Arc::clone(&lock);
        harness::run_arc(1, 0, HtmConfig::deterministic(), 7, Arc::clone(&mem), move |s| {
            s.enable_trace(64);
            lock.acquire(s).expect("non-speculative acquire");
            s.store(data, 1).expect("plain store");
            lock.release(s).expect("non-speculative release");
            // The bug: a second release of a lock this thread no
            // longer holds.
            lock.release(s).expect("non-speculative release");
            s.trace.take().expect("trace enabled above")
        })
    };

    let trace = GlobalTrace::merge(rings.iter().enumerate());
    lint_trace(
        &LintConfig {
            require_subscription: false,
            aux_discipline: false,
            main_lock: Some(lock.lock_word().index()),
            aux_locks: Vec::new(),
            threads: 1,
        },
        &trace,
    )
}

/// A controlled run's observable outcome: the schedule that was executed
/// (one [`StepRecord`] per decision) and everything the analysis passes
/// found on it.
pub type ExploreRun = (Vec<StepRecord>, Vec<Finding>);

/// Schedule-dependent broken SLR: an unsubscribed read-only transaction
/// racing a non-speculative lock holder, arranged so the *default*
/// window-0 schedule is clean.
///
/// Thread 1's transaction reads `x` and `y` and commits immediately,
/// while thread 0 first burns a long stretch of non-critical work and
/// only then takes the lock and writes both words. Under the default
/// `(clock, id)`-minimal schedule the transaction therefore commits long
/// before the lock is even acquired — no race (the later plain writes
/// join the global commit clock) and no commit-while-locked. Only an
/// adversarial schedule that delays the reader into the critical section
/// exposes the missing subscription as
/// [`LintId::CommitWhileLockHeld`](crate::LintId::CommitWhileLockHeld)
/// and/or [`LintId::DataRace`](crate::LintId::DataRace).
///
/// The lint pass runs with `require_subscription: false` on purpose: the
/// always-firing subscription lint would otherwise mask the
/// schedule-dependence this fixture exists to demonstrate.
pub fn broken_slr_explore(overrides: &BTreeMap<usize, usize>) -> ExploreRun {
    let mut b = MemoryBuilder::new();
    b.enable_sanitizer();
    let lock = Arc::new(TtasLock::new(&mut b));
    let x = b.alloc_isolated(0);
    let y = b.alloc_isolated(0);
    let mem = Arc::new(b.freeze(2));
    let threads = 2;
    let control = Arc::new(ScheduleControl::new(threads, overrides.clone()));

    let (rings, _makespan) = {
        let lock = Arc::clone(&lock);
        harness::run_arc_controlled(
            threads,
            HtmConfig::deterministic(),
            7,
            Arc::clone(&control),
            Arc::clone(&mem),
            move |s| {
                s.enable_trace(256);
                if s.tid() == 0 {
                    // Long non-critical prelude, then the critical
                    // section. Under the default schedule the peer's
                    // whole transaction fits inside the prelude.
                    s.work(200).expect("non-transactional work");
                    lock.acquire(s).expect("non-speculative acquire");
                    s.store(x, 1).expect("plain store");
                    s.work(20).expect("non-transactional work");
                    s.store(y, 2).expect("plain store");
                    lock.release(s).expect("non-speculative release");
                } else {
                    // Unsubscribed read-only transaction, bounded retry:
                    // adversarial schedules may doom it repeatedly.
                    for _ in 0..4 {
                        let done = s
                            .attempt(|s| {
                                s.load(x)?;
                                s.load(y)?;
                                Ok(())
                            })
                            .is_ok();
                        if done {
                            break;
                        }
                    }
                }
                s.trace.take().expect("trace enabled above")
            },
        )
    };

    let trace = GlobalTrace::merge(rings.iter().enumerate());
    let san = mem.san_log().expect("sanitizer enabled above");
    let events = san.snapshot();

    let mut findings = detect_races(&race_cfg(&mem, threads), &events);
    findings.extend(check_opacity(
        &OpacityConfig {
            policy: OpacityPolicy::Sandboxed,
            main_lock: Some(lock.lock_word().index()),
        },
        san.initial_values(),
        &events,
    ));
    findings.extend(lint_trace(
        &LintConfig {
            require_subscription: false,
            aux_discipline: false,
            main_lock: Some(lock.lock_word().index()),
            aux_locks: Vec::new(),
            threads,
        },
        &trace,
    ));
    (control.steps(), findings)
}

/// Schedule-dependent double release: thread 0 releases the lock a
/// second time only when it observes `probe == 1`, and thread 1 — which
/// publishes the probe through a properly subscribed transaction — loses
/// the race under the default schedule.
///
/// Thread 0 samples the probe *inside* its critical section, and thread
/// 1's transaction validates its lock subscription before committing
/// (the correct SLR shape — it deliberately contains no bug and never
/// spins on the lock), so no schedule produces a data race or a
/// commit-while-locked: the *only* finding any schedule can produce is
/// [`LintId::ReleaseWithoutAcquire`](crate::LintId::ReleaseWithoutAcquire)
/// — and only on interleavings where thread 1's transaction commits
/// before thread 0 samples the probe.
pub fn double_release_explore(overrides: &BTreeMap<usize, usize>) -> ExploreRun {
    let mut b = MemoryBuilder::new();
    b.enable_sanitizer();
    let lock = Arc::new(TtasLock::new(&mut b));
    let data = b.alloc_isolated(0);
    let probe = b.alloc_isolated(0);
    let mem = Arc::new(b.freeze(2));
    let threads = 2;
    let control = Arc::new(ScheduleControl::new(threads, overrides.clone()));

    let (rings, _makespan) = {
        let lock = Arc::clone(&lock);
        harness::run_arc_controlled(
            threads,
            HtmConfig::deterministic(),
            7,
            Arc::clone(&control),
            Arc::clone(&mem),
            move |s| {
                s.enable_trace(256);
                if s.tid() == 0 {
                    lock.acquire(s).expect("non-speculative acquire");
                    s.store(data, 1).expect("plain store");
                    let p = s.load(probe).expect("plain load under the lock");
                    lock.release(s).expect("non-speculative release");
                    if p == 1 {
                        // The bug: releasing again because a peer was
                        // observed to have run first.
                        lock.release(s).expect("non-speculative release");
                    }
                } else {
                    // Late-starting peer: under the default schedule its
                    // transaction commits after thread 0 sampled the
                    // probe. The transaction itself is a *correct* SLR
                    // shape: subscribe-and-validate before committing.
                    s.work(60).expect("non-transactional work");
                    for _ in 0..4 {
                        let done = s
                            .attempt(|s| {
                                s.store(probe, 1)?;
                                if lock.is_locked(s)? {
                                    return Err(s.xabort(codes::LOCK_BUSY, true));
                                }
                                Ok(())
                            })
                            .is_ok();
                        if done {
                            break;
                        }
                    }
                }
                s.trace.take().expect("trace enabled above")
            },
        )
    };

    let trace = GlobalTrace::merge(rings.iter().enumerate());
    let san = mem.san_log().expect("sanitizer enabled above");
    let events = san.snapshot();

    let mut findings = detect_races(&race_cfg(&mem, threads), &events);
    findings.extend(check_opacity(
        &OpacityConfig { policy: OpacityPolicy::Strict, main_lock: Some(lock.lock_word().index()) },
        san.initial_values(),
        &events,
    ));
    findings.extend(lint_trace(
        &LintConfig {
            require_subscription: false,
            aux_discipline: false,
            main_lock: Some(lock.lock_word().index()),
            aux_locks: Vec::new(),
            threads,
        },
        &trace,
    ));
    (control.steps(), findings)
}

/// Which of arXiv 1407.6968's hardware fixes a lazy-subscription fixture
/// runs with. `Default` is the unfixed stock-Haswell configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LazyFixes {
    /// Hardware dangerous-instruction detection
    /// ([`HtmConfig::dangerous_abort`]): the zombie's wild store aborts
    /// at the offending access. Fixes the zombie class only — the
    /// commit-time subscription race involves no dangerous instruction.
    pub dangerous_abort: bool,
    /// Hardware commit-time subscription ([`LazyMode::HardwareCommit`]):
    /// the commit itself verifies the lock-free descriptor atomically
    /// with publication. Fixes both unsafe classes.
    pub hardware_commit: bool,
}

impl LazyFixes {
    /// The four sweep configurations, unfixed first.
    pub const ALL: [LazyFixes; 4] = [
        LazyFixes { dangerous_abort: false, hardware_commit: false },
        LazyFixes { dangerous_abort: true, hardware_commit: false },
        LazyFixes { dangerous_abort: false, hardware_commit: true },
        LazyFixes { dangerous_abort: true, hardware_commit: true },
    ];

    /// Stable snake_case label for artifacts.
    pub fn label(&self) -> &'static str {
        match (self.dangerous_abort, self.hardware_commit) {
            (false, false) => "unfixed",
            (true, false) => "dangerous_abort",
            (false, true) => "hardware_commit",
            (true, true) => "both",
        }
    }

    /// The HTM configuration this fix set implies.
    pub fn htm(&self) -> HtmConfig {
        HtmConfig::deterministic().with_dangerous_abort(self.dangerous_abort)
    }

    /// The scheme configuration this fix set implies, given the software
    /// subscription shape (`unfixed_mode`) the fixture models when the
    /// hardware commit-time subscription is absent.
    pub fn scheme_cfg(&self, unfixed_mode: LazyMode) -> SchemeConfig {
        let mode = if self.hardware_commit { LazyMode::HardwareCommit } else { unfixed_mode };
        SchemeConfig::explore().with_lazy_mode(mode)
    }
}

/// The wild store the class-A zombie issues after a torn read: a
/// `(target, value)` pair aimed at the lock so that the zombie's *own*
/// subscription check — served from its write buffer — reads the lock as
/// free. Derived from the lock's hardware descriptor so every family
/// gets the family-appropriate corruption.
fn zombie_wild_store(lock: &dyn RawLock, threads: usize) -> (VarId, u64) {
    match lock.hw_subscription().expect("every built-in lock provides a descriptor") {
        HwSubscription::ValueIs { word, free } => (word, free),
        // Ticket: overwrite `next` with `owner`'s initial value (0, and
        // still 0 while the victim holds its first acquisition), making
        // next == owner read as free.
        HwSubscription::WordsEqual { a, .. } => (a, 0),
        // CLH: point the tail back at the initial node, which stays
        // unlocked while the victim spins on its own node.
        HwSubscription::IndirectValueIs { ptr, .. } => (ptr, threads as u64),
    }
}

/// Run every analysis pass a lazy-subscription fixture needs and return
/// the combined findings.
fn analyze_lazy_run(
    scheme: &elision_core::Scheme,
    mem: &Memory,
    threads: usize,
    rings: Vec<elision_sim::TraceRing>,
) -> Vec<Finding> {
    let trace = GlobalTrace::merge(rings.iter().enumerate());
    let san = mem.san_log().expect("sanitizer enabled by the fixture");
    let events = san.snapshot();
    let mut findings = detect_races(&race_cfg(mem, threads), &events);
    findings.extend(check_opacity(
        &OpacityConfig {
            policy: policy_for(scheme.kind()),
            main_lock: Some(scheme.main_lock().lock_word().index()),
        },
        san.initial_values(),
        &events,
    ));
    findings.extend(lint_trace(&lint_config_for(scheme, threads), &trace));
    findings
}

/// Class A of arXiv 1407.6968 — the **zombie dangerous instruction**.
///
/// Thread 0 is an honest non-speculative lock holder maintaining the
/// invariant `sel == val` (both written inside the critical section,
/// with a gap). Thread 1 runs the same data through an SLR (lazy
/// subscription) transaction whose write *target* depends on what it
/// read: on a consistent snapshot it writes a scratch word, but on a
/// torn snapshot (`sel != val`) the computed "pointer" resolves to the
/// main lock word — and the value it writes there is exactly the lock's
/// free encoding, so the zombie's own commit-time subscription check,
/// served from its write buffer, passes on fabricated state and the wild
/// store escapes to memory. The default schedule is clean (the whole
/// transaction fits inside thread 0's prelude); only an adversarial
/// interleaving exposes [`crate::LintId::LazyDangerousInstruction`] +
/// [`crate::LintId::CommitWhileLockHeld`].
///
/// MCS is deliberately not offered here: its free encoding is a nil
/// tail, and publishing that while the victim is queued wedges the
/// victim's release in an unbounded spin — the corruption manifests as
/// a hang rather than a finite counterexample, which a bounded explorer
/// cannot exhibit (see DESIGN.md §5g).
pub fn lazy_zombie_explore(
    lock: LockKind,
    fixes: LazyFixes,
    overrides: &BTreeMap<usize, usize>,
) -> ExploreRun {
    assert!(lock != LockKind::Mcs, "MCS wild store wedges the victim; not explorable");
    let threads = 2;
    let mut b = MemoryBuilder::new();
    b.enable_sanitizer();
    let scheme =
        make_scheme(SchemeKind::OptSlr, lock, fixes.scheme_cfg(LazyMode::ReadSet), &mut b, threads);
    let sel = b.alloc_isolated(0);
    let val = b.alloc_isolated(0);
    let scratch = b.alloc_isolated(0);
    let (wild_target, wild_value) = zombie_wild_store(scheme.main_lock().as_ref(), threads);
    let mem = Arc::new(b.freeze(threads));
    let control = Arc::new(ScheduleControl::new(threads, overrides.clone()));

    let (rings, _makespan) = {
        let scheme = Arc::clone(&scheme);
        let main = Arc::clone(scheme.main_lock());
        harness::run_arc_controlled(
            threads,
            fixes.htm(),
            7,
            Arc::clone(&control),
            Arc::clone(&mem),
            move |s| {
                s.enable_trace(1024);
                if s.tid() == 0 {
                    // Long non-critical prelude (keeps the default
                    // schedule clean), then the invariant-maintaining
                    // critical section.
                    s.work(200).expect("non-transactional work");
                    main.acquire(s).expect("non-speculative acquire");
                    s.store(sel, 1).expect("plain store");
                    s.work(20).expect("non-transactional work");
                    s.store(val, 1).expect("plain store");
                    main.release(s).expect("non-speculative release");
                } else {
                    scheme.execute(s, |s| {
                        let a = s.load(sel)?;
                        let v = s.load(val)?;
                        if a == v {
                            s.store(scratch, a + v)?;
                        } else {
                            // Torn snapshot: the data-dependent write
                            // target resolves to the lock word.
                            s.store(wild_target, wild_value)?;
                        }
                        Ok(())
                    });
                }
                s.trace.take().expect("trace enabled above")
            },
        )
    };
    let findings = analyze_lazy_run(&scheme, &mem, threads, rings);
    (control.steps(), findings)
}

/// Class B of arXiv 1407.6968 — the **commit-time subscription race**.
///
/// Thread 1's transaction touches only a private counter and performs
/// its lazy subscription check the way stock hardware runs it
/// ([`LazyMode::Unfenced`]): a racy sample of the lock that joins no
/// read set. Thread 0 acquires the lock between that sample and the
/// commit — the commit publishes into an active critical section, seen
/// as [`crate::LintId::ZombieCommit`] (the sampled lock word went stale)
/// plus [`crate::LintId::CommitWhileLockHeld`]. The default schedule is
/// clean; all four lock families are explorable.
pub fn lazy_race_explore(
    lock: LockKind,
    fixes: LazyFixes,
    overrides: &BTreeMap<usize, usize>,
) -> ExploreRun {
    let threads = 2;
    let mut b = MemoryBuilder::new();
    b.enable_sanitizer();
    let scheme = make_scheme(
        SchemeKind::OptSlr,
        lock,
        fixes.scheme_cfg(LazyMode::Unfenced),
        &mut b,
        threads,
    );
    let x = b.alloc_isolated(0);
    let y = b.alloc_isolated(0);
    let mem = Arc::new(b.freeze(threads));
    let control = Arc::new(ScheduleControl::new(threads, overrides.clone()));

    let (rings, _makespan) = {
        let scheme = Arc::clone(&scheme);
        let main = Arc::clone(scheme.main_lock());
        harness::run_arc_controlled(
            threads,
            fixes.htm(),
            7,
            Arc::clone(&control),
            Arc::clone(&mem),
            move |s| {
                s.enable_trace(1024);
                if s.tid() == 0 {
                    s.work(200).expect("non-transactional work");
                    main.acquire(s).expect("non-speculative acquire");
                    s.store(x, 1).expect("plain store");
                    main.release(s).expect("non-speculative release");
                } else {
                    scheme.execute(s, |s| {
                        let v = s.load(y)?;
                        s.store(y, v + 1)?;
                        Ok(())
                    });
                }
                s.trace.take().expect("trace enabled above")
            },
        )
    };
    let findings = analyze_lazy_run(&scheme, &mem, threads, rings);
    (control.steps(), findings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LintId;

    #[test]
    fn broken_slr_trips_race_lock_held_and_subscription_lints() {
        let findings = broken_slr_schedule();
        for expected in
            [LintId::DataRace, LintId::CommitWhileLockHeld, LintId::SlrUnsubscribedCommit]
        {
            let hit = findings.iter().find(|f| f.lint == expected);
            let hit = hit.unwrap_or_else(|| panic!("{expected} not detected: {findings:#?}"));
            assert!(!hit.sites.is_empty(), "{expected} finding lacks provenance");
        }
        // The race must implicate both threads with real provenance.
        let race = findings.iter().find(|f| f.lint == LintId::DataRace).expect("checked above");
        let tids: Vec<usize> = race.sites.iter().map(|s| s.tid).collect();
        assert!(tids.contains(&0) && tids.contains(&1), "race sites: {:?}", race.sites);
    }

    #[test]
    fn double_release_trips_the_lint() {
        let findings = double_release_schedule();
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert_eq!(findings[0].lint, LintId::ReleaseWithoutAcquire);
        assert!(!findings[0].sites.is_empty());
    }

    #[test]
    fn explore_fixtures_are_clean_on_the_default_schedule() {
        let (steps, findings) = broken_slr_explore(&BTreeMap::new());
        assert!(!steps.is_empty(), "controlled run recorded no decisions");
        assert!(findings.is_empty(), "default broken-SLR schedule must be clean: {findings:#?}");

        let (steps, findings) = double_release_explore(&BTreeMap::new());
        assert!(!steps.is_empty(), "controlled run recorded no decisions");
        assert!(
            findings.is_empty(),
            "default double-release schedule must be clean: {findings:#?}"
        );
    }

    #[test]
    fn lazy_fixtures_are_clean_on_the_default_schedule() {
        // Every (class, lock, fixes) cell the sweep visits must be clean
        // on the default schedule — the unsafety is schedule-dependent.
        for fixes in LazyFixes::ALL {
            for lock in [LockKind::Ttas, LockKind::Ticket, LockKind::Clh] {
                let (steps, findings) = lazy_zombie_explore(lock, fixes, &BTreeMap::new());
                assert!(!steps.is_empty(), "controlled run recorded no decisions");
                assert!(
                    findings.is_empty(),
                    "default zombie schedule ({} / {}) must be clean: {findings:#?}",
                    lock.label(),
                    fixes.label()
                );
            }
            for lock in [LockKind::Ttas, LockKind::Mcs, LockKind::Ticket, LockKind::Clh] {
                let (steps, findings) = lazy_race_explore(lock, fixes, &BTreeMap::new());
                assert!(!steps.is_empty(), "controlled run recorded no decisions");
                assert!(
                    findings.is_empty(),
                    "default subscription-race schedule ({} / {}) must be clean: {findings:#?}",
                    lock.label(),
                    fixes.label()
                );
            }
        }
    }

    #[test]
    fn explore_fixtures_replay_deterministically() {
        let (a_steps, a_findings) = broken_slr_explore(&BTreeMap::new());
        let (b_steps, b_findings) = broken_slr_explore(&BTreeMap::new());
        assert_eq!(a_steps.len(), b_steps.len());
        for (a, b) in a_steps.iter().zip(&b_steps) {
            assert_eq!(a.chosen, b.chosen);
            assert_eq!(a.default, b.default);
            assert_eq!(a.enabled, b.enabled);
            assert_eq!(a.accesses, b.accesses);
        }
        assert_eq!(a_findings, b_findings);
    }
}
