//! Cross-operation interference analysis over a memory layout.
//!
//! Given the word-level footprints of [`crate::footprint::dry_run`] and
//! the [`LayoutMap`] the placement policy produced, this module predicts
//! which pairs of operations the HTM's line-granular conflict detection
//! would serialize — and, crucially, *why*: a genuine shared variable (or
//! two fields of one record, inseparable at record granularity), or mere
//! co-residency of unrelated records on one line (false sharing, the
//! placement-induced aborts of arXiv 1504.04640).

use std::collections::{BTreeMap, BTreeSet};

use elision_htm::LayoutMap;

use crate::footprint::OpFootprint;

/// Why two operations conflict at line granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterferenceKind {
    /// The operations share a variable (one side writing it), or only
    /// ever collide on fields of the *same record* — either way the
    /// conflict is inherent at record granularity and no placement
    /// policy can remove it.
    VarConflict,
    /// The operations share *no* variable, yet one writes a line the
    /// other touches through a **different record**: unrelated data
    /// co-resides on the line. Padding or scattering removes this
    /// conflict.
    FalseSharing,
}

/// One edge of the interference graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interference {
    /// Index of the first operation in the footprint slice.
    pub a: usize,
    /// Index of the second operation (`a < b`).
    pub b: usize,
    /// Whether the conflict is inherent or placement-induced.
    pub kind: InterferenceKind,
    /// The conflicting cache lines, ascending. For a false-sharing edge
    /// only the placement-induced lines are listed.
    pub lines: Vec<u32>,
    /// For a false-sharing edge: one witnessing variable pair on the
    /// first conflicting line — `(written by one side, distinct-record
    /// variable touched by the other)`.
    pub witness: Option<(u32, u32)>,
}

/// Identity used to decide whether two co-resident words are "the same
/// data" for false-sharing purposes: the (region, record) pair, with
/// unmapped words (outside every region) each counting as their own
/// record.
fn record_id(layout: &LayoutMap, var: u32) -> (usize, u32) {
    match layout.resolve(var) {
        Some(r) => (r.region, r.record),
        None => (usize::MAX, var),
    }
}

/// Per conflicting line: a cross-record witness pair, if one exists.
fn line_conflicts(
    wa: &BTreeSet<u32>,
    ta: &BTreeSet<u32>,
    wb: &BTreeSet<u32>,
    tb: &BTreeSet<u32>,
    layout: &LayoutMap,
) -> BTreeMap<u32, Option<(u32, u32)>> {
    let mut out: BTreeMap<u32, Option<(u32, u32)>> = BTreeMap::new();
    let by_line = |vars: &BTreeSet<u32>| -> BTreeMap<u32, Vec<u32>> {
        let mut m: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for &v in vars {
            m.entry(layout.line_of_word(v)).or_default().push(v);
        }
        m
    };
    for (writes, touched) in [(wa, tb), (wb, ta)] {
        let w = by_line(writes);
        let t = by_line(touched);
        for (&line, wv) in &w {
            if let Some(tv) = t.get(&line) {
                let cross = wv.iter().find_map(|&x| {
                    tv.iter()
                        .find(|&&y| record_id(layout, x) != record_id(layout, y))
                        .map(|&y| (x, y))
                });
                let slot = out.entry(line).or_insert(None);
                if slot.is_none() {
                    *slot = cross;
                }
            }
        }
    }
    out
}

/// Build the full pairwise interference graph over `ops`.
///
/// An edge exists between two operation instances iff one writes a cache
/// line the other touches. It is [`InterferenceKind::FalseSharing`] only
/// when the operations share no variable *and* some conflicting line is
/// witnessed by two distinct records — otherwise the conflict is
/// inherent and classified [`InterferenceKind::VarConflict`].
pub fn interference_graph(ops: &[OpFootprint], layout: &LayoutMap) -> Vec<Interference> {
    let touched: Vec<BTreeSet<u32>> = ops.iter().map(|o| o.touched()).collect();
    let mut edges = Vec::new();
    for a in 0..ops.len() {
        for b in a + 1..ops.len() {
            let var_conflict = ops[a].writes.intersection(&touched[b]).next().is_some()
                || ops[b].writes.intersection(&touched[a]).next().is_some();
            let conflicts =
                line_conflicts(&ops[a].writes, &touched[a], &ops[b].writes, &touched[b], layout);
            if conflicts.is_empty() {
                continue;
            }
            let cross: Vec<(u32, (u32, u32))> =
                conflicts.iter().filter_map(|(&l, w)| w.map(|w| (l, w))).collect();
            let (kind, lines, witness) = if var_conflict || cross.is_empty() {
                (InterferenceKind::VarConflict, conflicts.keys().copied().collect(), None)
            } else {
                (
                    InterferenceKind::FalseSharing,
                    cross.iter().map(|&(l, _)| l).collect(),
                    Some(cross[0].1),
                )
            };
            edges.push(Interference { a, b, kind, lines, witness });
        }
    }
    edges
}

/// The false-sharing lines of a graph, each with one witnessing edge
/// index — deduplicated so a lint pass can emit one finding per line.
pub fn false_sharing_lines(edges: &[Interference]) -> BTreeMap<u32, usize> {
    let mut out = BTreeMap::new();
    for (i, e) in edges.iter().enumerate() {
        if e.kind == InterferenceKind::FalseSharing {
            for &line in &e.lines {
                out.entry(line).or_insert(i);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use elision_htm::{Region, VarRole};

    fn fp(class: &str, reads: &[u32], writes: &[u32]) -> OpFootprint {
        OpFootprint {
            class: class.into(),
            label: class.into(),
            reads: reads.iter().copied().collect(),
            writes: writes.iter().copied().collect(),
        }
    }

    fn layout(wpl: u32, words: u32) -> LayoutMap {
        LayoutMap::new(wpl, words, Vec::new())
    }

    #[test]
    fn distinct_vars_on_one_line_are_false_sharing() {
        // Words 0 and 1 share line 0 under an 8-word line; with no
        // regions each word is its own record.
        let l = layout(8, 16);
        let ops = [fp("a", &[], &[0]), fp("b", &[1], &[])];
        let edges = interference_graph(&ops, &l);
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].kind, InterferenceKind::FalseSharing);
        assert_eq!(edges[0].lines, vec![0]);
        assert_eq!(edges[0].witness, Some((0, 1)));
        assert_eq!(false_sharing_lines(&edges).len(), 1);
    }

    #[test]
    fn shared_variable_is_a_var_conflict() {
        let l = layout(8, 16);
        let ops = [fp("a", &[], &[3]), fp("b", &[3], &[])];
        let edges = interference_graph(&ops, &l);
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].kind, InterferenceKind::VarConflict);
        assert!(edges[0].witness.is_none());
        assert!(false_sharing_lines(&edges).is_empty());
    }

    #[test]
    fn same_record_fields_are_not_false_sharing() {
        // One two-field record at words 0-1: touching different fields
        // of the same record is inherent, not placement-induced.
        let l = LayoutMap::new(
            8,
            16,
            vec![Region { name: "rec".into(), role: VarRole::Data, stride: 2, bases: vec![0] }],
        );
        let ops = [fp("a", &[], &[0]), fp("b", &[1], &[])];
        let edges = interference_graph(&ops, &l);
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].kind, InterferenceKind::VarConflict);
        assert!(false_sharing_lines(&edges).is_empty());
    }

    #[test]
    fn different_records_on_one_line_are_false_sharing() {
        let l = LayoutMap::new(
            8,
            16,
            vec![Region { name: "rec".into(), role: VarRole::Data, stride: 2, bases: vec![0, 2] }],
        );
        let ops = [fp("a", &[], &[0]), fp("b", &[2], &[])];
        let edges = interference_graph(&ops, &l);
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].kind, InterferenceKind::FalseSharing);
    }

    #[test]
    fn separate_lines_do_not_interfere() {
        let l = layout(8, 16);
        let ops = [fp("a", &[], &[0]), fp("b", &[8], &[])];
        assert!(interference_graph(&ops, &l).is_empty());
    }

    #[test]
    fn read_read_sharing_is_not_interference() {
        let l = layout(8, 16);
        let ops = [fp("a", &[0], &[]), fp("b", &[1], &[])];
        assert!(interference_graph(&ops, &l).is_empty());
    }
}
