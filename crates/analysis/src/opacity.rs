//! Opacity / sandboxing checker over the sanitizer log.
//!
//! Replays the log's globally-ordered event stream, maintaining the
//! committed value of every word, and tracks each live transaction's
//! read snapshot:
//!
//! * **Strict policy** (HLE, eager-subscription SCM): the moment any
//!   word a live transaction has read changes under it, the transaction
//!   is doomed — if it performs *another* read while its snapshot is
//!   stale, that is an [`LintId::OpacityInconsistentRead`] (the paper's
//!   opacity property: a speculative run never observes state no locked
//!   run could observe).
//! * **Sandboxed policy** (lazy-subscription SLR/SCM): zombies may keep
//!   reading inconsistent state, but must abort before commit. A commit
//!   with a stale snapshot is a [`LintId::ZombieCommit`] under *either*
//!   policy.
//! * A commit while a different thread holds the main lock
//!   non-speculatively is a [`LintId::CommitWhileLockHeld`] — the
//!   unsafe-lazy-subscription pitfall of paper §5.
//!
//! Staleness is value-based: if a word is overwritten and later restored
//! to the read value (A-B-A), the snapshot is considered consistent
//! again. This matches what the simulated conflict detection can
//! actually distinguish and avoids false positives on silent stores.

use crate::{AccessSite, Finding, LintId};
use elision_htm::{SanAccess, SanEvent};
use std::collections::HashMap;

/// Which consistency property a scheme promises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpacityPolicy {
    /// Reads must always be consistent (HLE and eager subscription:
    /// the lock word is in the read set from the start, so any
    /// conflicting write aborts the transaction before it can observe
    /// a torn snapshot).
    Strict,
    /// Zombie reads are tolerated (lazy subscription), but zombie
    /// commits are not.
    Sandboxed,
}

/// Configuration for [`check_opacity`].
#[derive(Debug, Clone)]
pub struct OpacityConfig {
    /// The consistency property to enforce.
    pub policy: OpacityPolicy,
    /// Raw index of the main lock's word, if commits should be checked
    /// against non-speculative holders.
    pub main_lock: Option<u32>,
}

#[derive(Debug, Default)]
struct LiveTxn {
    /// Word -> (value observed, site of the first read of that word).
    reads: HashMap<u32, (u64, AccessSite)>,
    /// Words whose observed value has since changed: word -> site of
    /// the conflicting write that made the snapshot stale.
    stale: HashMap<u32, AccessSite>,
}

/// Replay a sanitizer log and report opacity/sandboxing violations.
///
/// `initial` is the memory image at the start of the run
/// ([`elision_htm::SanLog::initial_values`]).
pub fn check_opacity(cfg: &OpacityConfig, initial: &[u64], events: &[SanEvent]) -> Vec<Finding> {
    let mut committed: Vec<u64> = initial.to_vec();
    let mut live: HashMap<usize, LiveTxn> = HashMap::new();
    let mut lock_holder: Option<usize> = None;
    let mut findings = Vec::new();

    for (seq, ev) in events.iter().enumerate() {
        let tid = ev.tid;
        let site = |var: Option<u32>| AccessSite { tid, var, line: None, time: ev.time, seq };
        match ev.access {
            SanAccess::TxnBegin => {
                live.insert(tid, LiveTxn::default());
            }
            SanAccess::TxnAbort { .. } => {
                live.remove(&tid);
            }
            SanAccess::TxnCommit => {
                if let Some(txn) = live.remove(&tid) {
                    if let Some((&var, &wsite)) = txn.stale.iter().min_by_key(|(v, _)| **v) {
                        let rsite = txn.reads.get(&var).map(|&(_, s)| s);
                        findings.push(Finding {
                            lint: LintId::ZombieCommit,
                            message: format!(
                                "t{tid} committed with a stale read of var {var} \
                                 ({} word(s) stale): zombie escaped the sandbox",
                                txn.stale.len()
                            ),
                            sites: rsite.into_iter().chain([wsite, site(None)]).collect(),
                        });
                    }
                    if let Some(holder) = lock_holder {
                        if holder != tid {
                            findings.push(Finding {
                                lint: LintId::CommitWhileLockHeld,
                                message: format!(
                                    "t{tid} committed while t{holder} held the main lock \
                                     non-speculatively"
                                ),
                                sites: vec![site(None)],
                            });
                        }
                    }
                }
            }
            SanAccess::Read { var, value, txn: true } => {
                let idx = var.index();
                if let Some(txn) = live.get_mut(&tid) {
                    if cfg.policy == OpacityPolicy::Strict {
                        if let Some((&sv, &wsite)) = txn.stale.iter().min_by_key(|(v, _)| **v) {
                            let rsite = txn.reads.get(&sv).map(|&(_, s)| s);
                            findings.push(Finding {
                                lint: LintId::OpacityInconsistentRead,
                                message: format!(
                                    "t{tid} read var {idx} after its earlier read of var {sv} \
                                     went stale: inconsistent snapshot observed"
                                ),
                                sites: rsite.into_iter().chain([wsite, site(Some(idx))]).collect(),
                            });
                        }
                    }
                    txn.reads.entry(idx).or_insert((value, site(Some(idx))));
                }
            }
            SanAccess::Write { var, value, .. } => {
                let idx = var.index();
                if committed.len() <= idx as usize {
                    committed.resize(idx as usize + 1, 0);
                }
                committed[idx as usize] = value;
                let txn_write = matches!(ev.access, SanAccess::Write { txn: true, .. });
                // Transactional writes reach the log only when published
                // at commit, and every legitimate scheme path either
                // elides its lock-word stores (dropped pre-publish) or
                // issues them non-transactionally. A published
                // transactional store to the main lock word is therefore
                // a zombie's wild store escaping to memory — the
                // "dangerous instruction" of arXiv 1407.6968, caught
                // dynamically.
                if txn_write && Some(idx) == cfg.main_lock {
                    findings.push(Finding {
                        lint: LintId::LazyDangerousInstruction,
                        message: format!(
                            "t{tid} published a transactional store of {value} to the \
                             main lock word (var {idx}): a lazily subscribed zombie \
                             executed a dangerous instruction"
                        ),
                        sites: vec![site(Some(idx))],
                    });
                }
                for (&t, txn) in live.iter_mut() {
                    // A transaction's own publishes cannot stale its
                    // own snapshot.
                    if txn_write && t == tid {
                        continue;
                    }
                    if let Some(&(seen, _)) = txn.reads.get(&idx) {
                        if seen != value {
                            txn.stale.entry(idx).or_insert(site(Some(idx)));
                        } else {
                            txn.stale.remove(&idx); // A-B-A: consistent again
                        }
                    }
                }
            }
            SanAccess::LockAcquire { word } => {
                if Some(word.index()) == cfg.main_lock {
                    lock_holder = Some(tid);
                }
            }
            SanAccess::LockRelease { word } => {
                if Some(word.index()) == cfg.main_lock && lock_holder == Some(tid) {
                    lock_holder = None;
                }
            }
            SanAccess::Read { txn: false, .. } | SanAccess::Marker { .. } => {}
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use elision_htm::VarId;
    use elision_sim::AbortCause;

    const L: u32 = 0;
    const X: u32 = 8;
    const Y: u32 = 9;

    fn strict() -> OpacityConfig {
        OpacityConfig { policy: OpacityPolicy::Strict, main_lock: Some(L) }
    }

    fn sandboxed() -> OpacityConfig {
        OpacityConfig { policy: OpacityPolicy::Sandboxed, main_lock: Some(L) }
    }

    fn ev(tid: usize, time: u64, access: SanAccess) -> SanEvent {
        SanEvent { tid, time, access }
    }

    fn read(tid: usize, time: u64, var: u32, value: u64) -> SanEvent {
        ev(tid, time, SanAccess::Read { var: VarId::from_index(var), value, txn: true })
    }

    fn plain_write(tid: usize, time: u64, var: u32, value: u64) -> SanEvent {
        ev(tid, time, SanAccess::Write { var: VarId::from_index(var), value, txn: false })
    }

    fn init() -> Vec<u64> {
        vec![0; 16]
    }

    #[test]
    fn dirty_read_trips_strict_but_not_sandboxed() {
        let events = vec![
            ev(0, 1, SanAccess::TxnBegin),
            read(0, 2, X, 0),
            plain_write(1, 3, X, 7), // X goes stale under t0
            read(0, 4, Y, 0),        // t0 observes an inconsistent snapshot
            ev(0, 5, SanAccess::TxnAbort { cause: AbortCause::DataConflict }),
        ];
        let f = check_opacity(&strict(), &init(), &events);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, LintId::OpacityInconsistentRead);
        // Provenance: stale read of X, conflicting write, offending read.
        assert_eq!(f[0].sites.len(), 3);
        assert_eq!(f[0].sites[1].tid, 1);

        assert!(check_opacity(&sandboxed(), &init(), &events).is_empty());
    }

    #[test]
    fn zombie_commit_trips_both_policies() {
        let events = vec![
            ev(0, 1, SanAccess::TxnBegin),
            read(0, 2, X, 0),
            plain_write(1, 3, X, 7),
            ev(0, 4, SanAccess::TxnCommit),
        ];
        for cfg in [strict(), sandboxed()] {
            let f = check_opacity(&cfg, &init(), &events);
            assert!(f.iter().any(|f| f.lint == LintId::ZombieCommit), "{cfg:?}: {f:?}");
        }
    }

    #[test]
    fn aba_restores_consistency() {
        let events = vec![
            ev(0, 1, SanAccess::TxnBegin),
            read(0, 2, X, 0),
            plain_write(1, 3, X, 7),
            plain_write(1, 4, X, 0), // back to the observed value
            read(0, 5, Y, 0),
            ev(0, 6, SanAccess::TxnCommit),
        ];
        assert!(check_opacity(&strict(), &init(), &events).is_empty());
    }

    #[test]
    fn own_publishes_do_not_stale_own_snapshot() {
        let events = vec![
            ev(0, 1, SanAccess::TxnBegin),
            read(0, 2, X, 0),
            ev(0, 3, SanAccess::Write { var: VarId::from_index(X), value: 9, txn: true }),
            ev(0, 3, SanAccess::TxnCommit),
        ];
        assert!(check_opacity(&strict(), &init(), &events).is_empty());
    }

    #[test]
    fn commit_while_peer_holds_main_lock() {
        let events = vec![
            ev(1, 1, SanAccess::LockAcquire { word: VarId::from_index(L) }),
            ev(0, 2, SanAccess::TxnBegin),
            read(0, 3, X, 0),
            ev(0, 4, SanAccess::TxnCommit),
        ];
        let f = check_opacity(&sandboxed(), &init(), &events);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, LintId::CommitWhileLockHeld);
    }

    #[test]
    fn commit_after_release_is_clean() {
        let events = vec![
            ev(1, 1, SanAccess::LockAcquire { word: VarId::from_index(L) }),
            ev(1, 2, SanAccess::LockRelease { word: VarId::from_index(L) }),
            ev(0, 3, SanAccess::TxnBegin),
            read(0, 4, X, 0),
            ev(0, 5, SanAccess::TxnCommit),
        ];
        assert!(check_opacity(&sandboxed(), &init(), &events).is_empty());
    }

    #[test]
    fn published_txn_store_to_lock_word_is_dangerous() {
        let events = vec![
            ev(0, 1, SanAccess::TxnBegin),
            read(0, 2, X, 0),
            ev(0, 3, SanAccess::Write { var: VarId::from_index(L), value: 0, txn: true }),
            ev(0, 3, SanAccess::TxnCommit),
        ];
        let f = check_opacity(&sandboxed(), &init(), &events);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, LintId::LazyDangerousInstruction);
        // A non-transactional store to the lock word (Standard path after
        // a fallback acquire) is fine.
        let events = vec![plain_write(0, 1, L, 1), plain_write(0, 2, L, 0)];
        assert!(check_opacity(&sandboxed(), &init(), &events).is_empty());
    }

    #[test]
    fn aborted_zombie_is_fine_under_sandboxing() {
        let events = vec![
            ev(0, 1, SanAccess::TxnBegin),
            read(0, 2, X, 0),
            plain_write(1, 3, X, 7),
            read(0, 4, Y, 0), // zombie read: allowed
            ev(0, 5, SanAccess::TxnAbort { cause: AbortCause::DataConflict }),
        ];
        assert!(check_opacity(&sandboxed(), &init(), &events).is_empty());
    }
}
