//! Per-operation access-footprint extraction via instrumented dry-runs.
//!
//! The static advisor's ground truth: each structure operation is run
//! once, alone, on a single strand with the sanitizer log attached and a
//! deterministic HTM configuration whose capacity is far above any real
//! footprint. No interleavings are explored — the [`elision_htm::SanLog`]
//! of the solo run *is* the operation's read/write set, because under
//! strict window 0 with one thread the log order equals program order and
//! every transactional access of the k-th attempt lands between the k-th
//! `TxnBegin`/`TxnCommit` pair.
//!
//! Combined with a [`LayoutMap`] the word-level footprints project onto
//! cache lines, which is what every layout-aware lint reasons about.

use std::collections::BTreeSet;
use std::sync::Arc;

use elision_htm::{harness, HtmConfig, LayoutMap, Memory, SanAccess, Strand, TxResult};

/// A critical-section body to dry-run as one operation instance.
pub type OpFn = Box<dyn Fn(&mut Strand) -> TxResult<()> + Send + Sync>;

/// One operation instance to profile: an operation class (e.g.
/// `"insert"`), a concrete label (e.g. `"insert(17)"`), and its body.
pub struct OpSpec {
    /// Operation class, shared by all instances of the same operation.
    pub class: String,
    /// Concrete instance label (class plus arguments).
    pub label: String,
    /// The critical-section body.
    pub run: OpFn,
}

impl OpSpec {
    /// Convenience constructor.
    pub fn new(
        class: impl Into<String>,
        label: impl Into<String>,
        run: impl Fn(&mut Strand) -> TxResult<()> + Send + Sync + 'static,
    ) -> Self {
        OpSpec { class: class.into(), label: label.into(), run: Box::new(run) }
    }
}

/// The word-level access footprint of one operation instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpFootprint {
    /// Operation class (shared across instances, e.g. `"insert"`).
    pub class: String,
    /// Concrete instance label (e.g. `"insert(17)"`).
    pub label: String,
    /// Raw [`elision_htm::VarId`] indices read inside the transaction.
    /// Reads served from the transaction's own write buffer are not
    /// logged; such words appear in `writes` only.
    pub reads: BTreeSet<u32>,
    /// Raw indices written (commit-time publications).
    pub writes: BTreeSet<u32>,
}

impl OpFootprint {
    /// Every word the operation touched (reads ∪ writes).
    pub fn touched(&self) -> BTreeSet<u32> {
        self.reads.union(&self.writes).copied().collect()
    }

    /// Cache lines holding read words. Written words count too: the HTM
    /// tracks a written line for conflicts exactly like a read one, so
    /// the *read-set* capacity budget sees the union.
    pub fn read_lines(&self, layout: &LayoutMap) -> BTreeSet<u32> {
        self.touched().iter().map(|&v| layout.line_of_word(v)).collect()
    }

    /// Cache lines holding written words.
    pub fn write_lines(&self, layout: &LayoutMap) -> BTreeSet<u32> {
        self.writes.iter().map(|&v| layout.line_of_word(v)).collect()
    }

    /// Every line the operation touched.
    pub fn lines(&self, layout: &LayoutMap) -> BTreeSet<u32> {
        self.touched().iter().map(|&v| layout.line_of_word(v)).collect()
    }
}

/// The deterministic HTM configuration every dry-run uses: zero spurious
/// aborts and a line budget far above any structure operation, so the
/// only way an attempt can abort is a bug in the battery itself.
pub fn dry_run_config() -> HtmConfig {
    HtmConfig::deterministic().with_capacity(4096, 4096)
}

/// Dry-run `ops` one after another on a single strand over `mem` and
/// return their footprints, in order.
///
/// `mem` must have been frozen for exactly one thread with the sanitizer
/// enabled ([`elision_htm::MemoryBuilder::enable_sanitizer`]); quiescent
/// prefill (structure `init`, pre-inserted keys) should already have
/// happened, either via direct writes or by `prefill` — which runs on
/// the strand *outside* any transaction, so its accesses are logged
/// unflagged and excluded from every footprint.
///
/// # Panics
///
/// Panics if the sanitizer is not attached, if any attempt aborts (the
/// dry-run configuration makes that impossible for a correct battery),
/// or if the log's transaction spans do not line up with `ops`.
pub fn dry_run(mem: Memory, seed: u64, prefill: OpFn, ops: Vec<OpSpec>) -> Vec<OpFootprint> {
    let names: Vec<(String, String)> =
        ops.iter().map(|o| (o.class.clone(), o.label.clone())).collect();
    let ops = Arc::new(ops);
    let prefill = Arc::new(prefill);
    let (_, mem, _) = harness::run(1, 0, dry_run_config(), seed, mem, move |s| {
        prefill(s).expect("non-transactional prefill cannot abort");
        for op in ops.iter() {
            if let Err(status) = s.attempt(|st| (op.run)(st)) {
                panic!("dry-run of {} aborted: {status:?}", op.label);
            }
        }
    });
    let log = mem.san_log().expect("dry_run requires an attached sanitizer log");
    let mut spans: Vec<(BTreeSet<u32>, BTreeSet<u32>)> = Vec::new();
    let mut open: Option<(BTreeSet<u32>, BTreeSet<u32>)> = None;
    for ev in log.snapshot() {
        match ev.access {
            SanAccess::TxnBegin => {
                assert!(open.is_none(), "nested TxnBegin in a single-thread dry-run");
                open = Some((BTreeSet::new(), BTreeSet::new()));
            }
            SanAccess::TxnCommit => {
                spans.push(open.take().expect("TxnCommit without TxnBegin"));
            }
            SanAccess::TxnAbort { cause } => {
                panic!("dry-run aborted ({cause:?}) — battery must be conflict- and capacity-free")
            }
            SanAccess::Read { var, txn: true, .. } => {
                let (reads, _) = open.as_mut().expect("transactional read outside a span");
                reads.insert(var.index());
            }
            SanAccess::Write { var, txn: true, .. } => {
                let (_, writes) = open.as_mut().expect("transactional write outside a span");
                writes.insert(var.index());
            }
            _ => {}
        }
    }
    assert!(open.is_none(), "unterminated transaction span in dry-run log");
    assert_eq!(spans.len(), names.len(), "one transaction span per battery op");
    names
        .into_iter()
        .zip(spans)
        .map(|((class, label), (reads, writes))| OpFootprint { class, label, reads, writes })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use elision_htm::MemoryBuilder;

    #[test]
    fn dry_run_separates_spans_and_flags() {
        let mut b = MemoryBuilder::new();
        b.enable_sanitizer();
        let x = b.alloc_isolated(1);
        let y = b.alloc_isolated(2);
        let mem = b.freeze(1);
        let ops = vec![
            OpSpec::new("bump", "bump(x)", move |s| {
                let v = s.load(x)?;
                s.store(x, v + 1)
            }),
            OpSpec::new("read", "read(y)", move |s| s.load(y).map(|_| ())),
        ];
        // The prefill touches both words outside any transaction; none of
        // that may leak into a footprint.
        let fps = dry_run(
            mem,
            7,
            Box::new(move |s| {
                s.load(x)?;
                s.store(y, 9)
            }),
            ops,
        );
        assert_eq!(fps.len(), 2);
        assert_eq!(fps[0].class, "bump");
        assert_eq!(fps[0].reads, BTreeSet::from([x.index()]));
        assert_eq!(fps[0].writes, BTreeSet::from([x.index()]));
        assert_eq!(fps[1].reads, BTreeSet::from([y.index()]));
        assert!(fps[1].writes.is_empty());
    }
}
