//! Seeded known-bad schedules: the sanitizer's negative tests.
//!
//! A sanitizer that has never caught anything is indistinguishable from
//! one that cannot. These two runs deliberately violate the protocol on
//! a fixed deterministic schedule and return whatever the analysis
//! passes found, so the test suite (and the `sanitize_all` CI job) can
//! assert the violations are caught with the right lint IDs and
//! provenance:
//!
//! * [`broken_slr_schedule`] — the unsafe-lazy-subscription pitfall of
//!   paper §5: a transaction reads data a non-speculative lock holder
//!   is mutating and commits without ever subscribing to the lock.
//!   Expected: [`LintId::DataRace`] + [`LintId::CommitWhileLockHeld`] +
//!   [`LintId::SlrUnsubscribedCommit`].
//! * [`double_release_schedule`] — a thread releases a lock it no
//!   longer holds. Expected: [`LintId::ReleaseWithoutAcquire`].

use crate::lint::{lint_trace, LintConfig};
use crate::opacity::{check_opacity, OpacityConfig, OpacityPolicy};
use crate::race::{detect_races, RaceConfig};
use crate::Finding;
use elision_htm::{harness, HtmConfig, Memory, MemoryBuilder};
use elision_locks::{RawLock, TtasLock};
use elision_sim::GlobalTrace;
use std::sync::Arc;

fn race_cfg(mem: &Memory, threads: usize) -> RaceConfig {
    RaceConfig {
        threads,
        words_per_line: mem.words_per_line() as u32,
        lock_lines: (0..mem.line_count()).map(|l| mem.is_lock_line(l as u32)).collect(),
    }
}

/// Run the broken eager-commit SLR variant: the transaction skips the
/// subscription read (Figure 5 line 24) and commits while the lock
/// holder is mid-critical-section. Returns all findings.
pub fn broken_slr_schedule() -> Vec<Finding> {
    let mut b = MemoryBuilder::new();
    b.enable_sanitizer();
    let lock = Arc::new(TtasLock::new(&mut b));
    let x = b.alloc_isolated(0);
    let y = b.alloc_isolated(0);
    let mem = Arc::new(b.freeze(2));
    let threads = 2;

    let (rings, _makespan) = {
        let lock = Arc::clone(&lock);
        harness::run_arc(
            threads,
            0, // strict window: required for log soundness
            HtmConfig::deterministic(),
            7,
            Arc::clone(&mem),
            move |s| {
                s.enable_trace(64);
                if s.tid() == 0 {
                    // The honest lock holder: a long critical section
                    // mutating x then (much later) y.
                    lock.acquire(s).expect("non-speculative acquire");
                    s.store(x, 1).expect("plain store");
                    s.work(5_000).expect("non-transactional work");
                    s.store(y, 2).expect("plain store");
                    lock.release(s).expect("non-speculative release");
                } else {
                    // The broken SLR transaction: reads the holder's
                    // in-flight data and commits without subscribing.
                    s.work(50).expect("non-transactional work");
                    s.attempt(|s| {
                        s.load(x)?;
                        s.load(y)?;
                        Ok(())
                    })
                    .expect("uncontended read-only txn commits");
                }
                s.trace.take().expect("trace enabled above")
            },
        )
    };

    let trace = GlobalTrace::merge(rings.iter().enumerate());
    let san = mem.san_log().expect("sanitizer enabled above");
    let events = san.snapshot();

    let mut findings = detect_races(&race_cfg(&mem, threads), &events);
    findings.extend(check_opacity(
        &OpacityConfig {
            policy: OpacityPolicy::Sandboxed,
            main_lock: Some(lock.lock_word().index()),
        },
        san.initial_values(),
        &events,
    ));
    findings.extend(lint_trace(
        &LintConfig {
            require_subscription: true,
            aux_discipline: false,
            main_lock: Some(lock.lock_word().index()),
            aux_locks: Vec::new(),
            threads,
        },
        &trace,
    ));
    findings
}

/// Run a schedule where a thread releases the lock twice. Returns all
/// lint findings.
pub fn double_release_schedule() -> Vec<Finding> {
    let mut b = MemoryBuilder::new();
    b.enable_sanitizer();
    let lock = Arc::new(TtasLock::new(&mut b));
    let data = b.alloc_isolated(0);
    let mem = Arc::new(b.freeze(1));

    let (rings, _makespan) = {
        let lock = Arc::clone(&lock);
        harness::run_arc(1, 0, HtmConfig::deterministic(), 7, Arc::clone(&mem), move |s| {
            s.enable_trace(64);
            lock.acquire(s).expect("non-speculative acquire");
            s.store(data, 1).expect("plain store");
            lock.release(s).expect("non-speculative release");
            // The bug: a second release of a lock this thread no
            // longer holds.
            lock.release(s).expect("non-speculative release");
            s.trace.take().expect("trace enabled above")
        })
    };

    let trace = GlobalTrace::merge(rings.iter().enumerate());
    lint_trace(
        &LintConfig {
            require_subscription: false,
            aux_discipline: false,
            main_lock: Some(lock.lock_word().index()),
            aux_locks: Vec::new(),
            threads: 1,
        },
        &trace,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LintId;

    #[test]
    fn broken_slr_trips_race_lock_held_and_subscription_lints() {
        let findings = broken_slr_schedule();
        for expected in
            [LintId::DataRace, LintId::CommitWhileLockHeld, LintId::SlrUnsubscribedCommit]
        {
            let hit = findings.iter().find(|f| f.lint == expected);
            let hit = hit.unwrap_or_else(|| panic!("{expected} not detected: {findings:#?}"));
            assert!(!hit.sites.is_empty(), "{expected} finding lacks provenance");
        }
        // The race must implicate both threads with real provenance.
        let race = findings.iter().find(|f| f.lint == LintId::DataRace).expect("checked above");
        let tids: Vec<usize> = race.sites.iter().map(|s| s.tid).collect();
        assert!(tids.contains(&0) && tids.contains(&1), "race sites: {:?}", race.sites);
    }

    #[test]
    fn double_release_trips_the_lint() {
        let findings = double_release_schedule();
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert_eq!(findings[0].lint, LintId::ReleaseWithoutAcquire);
        assert!(!findings[0].sites.is_empty());
    }
}
