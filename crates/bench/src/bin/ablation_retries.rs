//! Ablation — the `MAX_RETRIES` budget (paper §7 "Conflict management
//! tuning": the paper fixes 10 and reports other tunings only degrade
//! performance).
//!
//! Sweeps the retry budget for HLE-retries, opt SLR and HLE-SCM on the
//! 128-node moderate-contention tree and reports throughput normalized to
//! the paper's budget of 10.

use elision_bench::metrics::{Json, MetricsReport};
use elision_bench::report::{f2, ratio, Table};
use elision_bench::sweep::{Cell, Sweep, TimingLog};
use elision_bench::CliArgs;
use elision_core::{make_scheme_with_aux, LockKind, SchemeConfig, SchemeKind};
use elision_htm::{harness, HtmConfig, MemoryBuilder};
use elision_structures::{key_domain, OpMix, RbTree, TreeOp};
use std::sync::Arc;

fn run_with_budget(
    args: &CliArgs,
    scheme: SchemeKind,
    lock: LockKind,
    budget: u32,
    ops: u64,
) -> f64 {
    let size = 128;
    let domain = key_domain(size);
    let threads = args.threads;
    let mut b = MemoryBuilder::new();
    let tree = RbTree::new(&mut b, domain as usize + threads * 4 + 16, threads);
    let cfg = SchemeConfig { max_retries: budget, ..SchemeConfig::paper() };
    let sch = make_scheme_with_aux(scheme, lock, LockKind::Mcs, cfg, &mut b, threads);
    let mem = Arc::new(b.freeze(threads));
    tree.init(&mem);
    {
        let tree = tree.clone();
        harness::run_arc(1, 0, HtmConfig::deterministic(), 0xF111, Arc::clone(&mem), move |s| {
            let mut filled = 0;
            while filled < size {
                let key = s.rng.below(domain);
                if tree.insert(s, key).expect("fill") {
                    filled += 1;
                }
            }
        });
    }
    tree.rebalance_freelists(&mem);
    let tree2 = tree.clone();
    let (_, makespan) = harness::run_arc(
        threads,
        args.window,
        HtmConfig::haswell(),
        42,
        Arc::clone(&mem),
        move |s| {
            for _ in 0..ops {
                let op = OpMix::MODERATE.draw(&mut s.rng);
                let key = s.rng.below(domain);
                sch.execute(s, |s| match op {
                    TreeOp::Insert => tree2.insert(s, key).map(|_| ()),
                    TreeOp::Delete => tree2.remove(s, key).map(|_| ()),
                    TreeOp::Lookup => tree2.contains(s, key).map(|_| ()),
                });
            }
        },
    );
    ops as f64 * threads as f64 * 1000.0 / makespan.max(1) as f64
}

fn main() {
    let args = CliArgs::parse();
    let ops = if args.quick { 300 } else { 1000 };
    let budgets = [1u32, 2, 5, 10, 20, 50];

    println!("== Ablation: MAX_RETRIES budget (128-node tree, moderate contention) ==");
    println!("values normalized to the paper's budget of 10\n");

    let schemes = [SchemeKind::HleRetries, SchemeKind::OptSlr, SchemeKind::HleScm];
    // Per lock: one baseline (budget 10) cell per scheme, then the full
    // budget × scheme grid.
    let mut cells = Vec::new();
    for lock in [LockKind::Ttas, LockKind::Mcs] {
        for &scheme in &schemes {
            let args = &args;
            cells.push(Cell::new(
                format!("{}/base/{}", lock.label(), scheme.label()),
                args.threads,
                move || run_with_budget(args, scheme, lock, 10, ops),
            ));
        }
        for &budget in &budgets {
            for &scheme in &schemes {
                let args = &args;
                cells.push(Cell::new(
                    format!("{}/{budget}/{}", lock.label(), scheme.label()),
                    args.threads,
                    move || run_with_budget(args, scheme, lock, budget, ops),
                ));
            }
        }
    }
    let sweep = Sweep::from_args(&args);
    let outcome = sweep.run(cells);
    let mut timing = TimingLog::new("ablation_retries", sweep.jobs());
    timing.absorb(&outcome);

    let per_lock = schemes.len() * (1 + budgets.len());
    let mut report = MetricsReport::new("ablation_retries", &args);
    let mut locks_chunks = outcome.results.chunks_exact(per_lock);
    for lock in [LockKind::Ttas, LockKind::Mcs] {
        let chunk = locks_chunks.next().expect("one chunk per lock");
        let (baseline, grid) = chunk.split_at(schemes.len());
        println!("--- {} main lock ---", lock.label());
        let mut table = Table::new(&["budget", "HLE-retries", "opt SLR", "HLE-SCM"]);
        let mut grid = grid.iter();
        for &budget in &budgets {
            let mut cells = vec![budget.to_string()];
            for (i, &scheme) in schemes.iter().enumerate() {
                let thr = *grid.next().expect("one result per budget/scheme");
                cells.push(f2(ratio(thr, baseline[i])));
                report.push_row(Json::obj(vec![
                    ("lock", Json::Str(lock.label().to_string())),
                    ("budget", Json::Uint(u64::from(budget))),
                    ("scheme", Json::Str(scheme.label().to_string())),
                    ("throughput", Json::Float(thr)),
                    ("norm_throughput", Json::Float(ratio(thr, baseline[i]))),
                ]));
            }
            table.row(cells);
        }
        table.print();
        if let Some(dir) = &args.csv {
            table.write_csv(dir, &format!("ablation_retries_{}", lock.label().to_lowercase()));
        }
        println!();
    }
    if let Some(dir) = &args.metrics {
        report.write(dir);
        timing.write(dir);
    }
    println!("Shape check: performance is flat-ish around 10 and degrades at budget 1.");
}
