//! perf_gate — the simulated-ops/sec performance trajectory gate.
//!
//! Runs the standard scheme × lock sweep (Standard/HLE/HLE+SCM/Opt-SLR
//! over TTAS and MCS) through the sweep orchestrator and splits its output
//! into two deliberately separate artifacts:
//!
//! * `BENCH_SIM_HOTPATH.json` (`--metrics DIR`): the *deterministic*
//!   per-cell metrics — simulated throughput, makespan, attempts and
//!   abort causes. A pure function of the specs, byte-identical at any
//!   `--jobs` value; CI diffs a `--jobs 4` run against `--jobs 1`.
//! * host-wall-clock **simulated ops/sec** (simulated operations
//!   completed per host second, summed over per-cell wall times so the
//!   figure is independent of sweep-level parallelism; best of `--reps`
//!   sweep repetitions, default 3, to shed OS scheduling noise):
//!   inherently nondeterministic, so it is *never* written into the
//!   metrics file. It is compared against the tracked baseline instead.
//!
//! The tracked baseline lives at `results/BENCH_SIM_HOTPATH_BASELINE.json`
//! (override with `--baseline PATH`). The gate fails (exit 1) when the
//! measured ops/sec drops below `tolerance_frac` (0.75 = a >25% drop) of
//! the blessed figure; `--bless` refreshes the baseline instead of
//! comparing, appending the measurement to the file's `history` array
//! (label it with `--label NAME`) so the perf trajectory across hot-path
//! work stays on record. See EXPERIMENTS.md for the update procedure.

use elision_bench::metrics::{parse, Json, MetricsReport, SCHEMA_VERSION};
use elision_bench::report::{f2, Table};
use elision_bench::sweep::{Cell, Sweep, TimingLog};
use elision_bench::{run_tree_bench_avg, CliArgs, TreeBenchSpec};
use elision_core::{LockKind, SchemeKind};
use elision_structures::OpMix;
use std::path::PathBuf;

/// Fraction of the blessed ops/sec below which the gate fails. 0.75
/// tolerates a 25% drop — generous enough to absorb host jitter between
/// CI runners, tight enough to catch a real hot-path regression.
const TOLERANCE_FRAC: f64 = 0.75;

/// Flags specific to this binary, peeled off before the shared parser
/// (which exits on flags it does not know) sees the command line.
struct GateArgs {
    bless: bool,
    /// Emit metrics only, skipping the baseline comparison. For runs whose
    /// wall clock is not comparable to the baseline's — e.g. the CI
    /// determinism check at `--jobs 4`, where cells time-share cores and
    /// per-cell wall times inflate (the gate proper runs at `--jobs 1`).
    no_gate: bool,
    /// Repetitions of the whole sweep; the gated ops/sec figure uses the
    /// repetition with the *lowest* total wall time (best-of-N). Slow
    /// outliers come from OS scheduling noise, never from the code being
    /// faster than it is, so the minimum is the low-variance estimator of
    /// the true cost. The metrics artifact is identical across reps (the
    /// sweep is deterministic), so reps only spend wall clock.
    reps: usize,
    label: String,
    baseline: PathBuf,
    rest: Vec<String>,
}

fn parse_gate_args() -> GateArgs {
    let mut out = GateArgs {
        bless: false,
        no_gate: false,
        reps: 3,
        label: "blessed".to_string(),
        baseline: PathBuf::from("results/BENCH_SIM_HOTPATH_BASELINE.json"),
        rest: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--bless" => out.bless = true,
            "--no-gate" => out.no_gate = true,
            "--reps" => {
                out.reps =
                    it.next().and_then(|v| v.parse().ok()).filter(|&n| n > 0).unwrap_or_else(
                        || {
                            eprintln!("error: --reps needs a positive count");
                            std::process::exit(2);
                        },
                    );
            }
            "--label" => {
                out.label = it.next().unwrap_or_else(|| {
                    eprintln!("error: --label needs a name");
                    std::process::exit(2);
                });
            }
            "--baseline" => {
                out.baseline = PathBuf::from(it.next().unwrap_or_else(|| {
                    eprintln!("error: --baseline needs a path");
                    std::process::exit(2);
                }));
            }
            _ => out.rest.push(a),
        }
    }
    out
}

fn main() {
    let gate = parse_gate_args();
    let args = CliArgs::parse_from(gate.rest.clone());
    let ops = if args.quick { 150 } else { 400 };
    let size = 512;

    println!("== perf gate: simulated ops/sec over the scheme × lock sweep ==");
    println!("{} threads, size {size}, {ops} ops/thread, {} seed(s)\n", args.threads, args.seeds);

    let schemes = [SchemeKind::Standard, SchemeKind::Hle, SchemeKind::HleScm, SchemeKind::OptSlr];
    let locks = [LockKind::Ttas, LockKind::Mcs];
    let build_cells = || {
        let mut cells = Vec::new();
        for &scheme in &schemes {
            for &lock in &locks {
                let args = &args;
                cells.push(Cell::new(
                    format!("{scheme}/{}", lock.label()),
                    args.threads,
                    move || {
                        let mut spec =
                            TreeBenchSpec::new(scheme, lock, args.threads, size, OpMix::MODERATE);
                        spec.ops_per_thread = ops;
                        spec.window = args.window;
                        (scheme, lock, run_tree_bench_avg(&spec, args.seeds))
                    },
                ));
            }
        }
        cells
    };
    // Best-of-N: keep the repetition with the lowest total wall time (the
    // results themselves are deterministic, so any rep's outcome carries
    // the same metrics — only the wall-clock side differs).
    fn total_wall<T>(o: &elision_bench::sweep::SweepOutcome<T>) -> u64 {
        o.timings.iter().map(|t| t.wall_ms).sum()
    }
    let sweep = Sweep::from_args(&args);
    let mut outcome = sweep.run(build_cells());
    for _ in 1..gate.reps {
        let rerun = sweep.run(build_cells());
        if total_wall(&rerun) < total_wall(&outcome) {
            outcome = rerun;
        }
    }
    let mut timing = TimingLog::new("perf_gate", sweep.jobs());
    timing.absorb(&outcome);

    // Deterministic metrics: one row per cell, byte-identical across
    // --jobs (the sweep merges in canonical order; nothing wall-clock
    // based goes in here).
    let mut table = Table::new(&["scheme", "lock", "sim-throughput", "attempts/op", "wall-ms"]);
    let mut report = MetricsReport::new("BENCH_SIM_HOTPATH", &args);
    let mut total_sim_ops = 0u64;
    let mut total_wall_ms = 0u64;
    for ((scheme, lock, r), t) in outcome.results.iter().zip(&outcome.timings) {
        table.row(vec![
            scheme.to_string(),
            lock.label().to_string(),
            f2(r.throughput),
            f2(r.counters.attempts_per_op()),
            t.wall_ms.to_string(),
        ]);
        report.push_result(
            vec![
                ("scheme", Json::Str(scheme.to_string())),
                ("lock", Json::Str(lock.label().to_string())),
                ("makespan", Json::Uint(r.makespan)),
            ],
            r,
        );
        total_sim_ops += r.counters.completed();
        total_wall_ms += t.wall_ms;
    }
    table.print();
    if let Some(dir) = &args.csv {
        table.write_csv(dir, "perf_gate");
    }
    if let Some(dir) = &args.metrics {
        report.write(dir);
        timing.write(dir);
    }

    // Simulated ops/sec: completed simulated operations per host second,
    // over the *sum* of per-cell wall times so `--jobs` does not change
    // the figure's meaning.
    let ops_per_sec = total_sim_ops as f64 * 1000.0 / (total_wall_ms.max(1)) as f64;
    println!(
        "\nsimulated ops/sec: {ops_per_sec:.0} ({total_sim_ops} ops over {total_wall_ms} ms, \
         best of {} rep(s))",
        gate.reps
    );

    if gate.bless {
        bless(&gate, &args, ops_per_sec);
        return;
    }
    if gate.no_gate {
        println!("baseline comparison skipped (--no-gate)");
        return;
    }
    compare(&gate, ops_per_sec);
}

/// Write (or refresh) the tracked baseline, appending to its history.
fn bless(gate: &GateArgs, args: &CliArgs, ops_per_sec: f64) {
    let history = match std::fs::read_to_string(&gate.baseline) {
        Ok(text) => {
            let doc = parse(&text).expect("existing baseline must parse");
            doc.get("history").and_then(Json::as_arr).map(<[Json]>::to_vec).unwrap_or_default()
        }
        Err(_) => Vec::new(),
    };
    let mut history = history;
    history.push(Json::obj(vec![
        ("label", Json::Str(gate.label.clone())),
        ("ops_per_sec", Json::Float(ops_per_sec)),
    ]));
    let doc = Json::obj(vec![
        ("schema_version", Json::Uint(SCHEMA_VERSION)),
        ("kind", Json::Str("perf_baseline".to_string())),
        ("binary", Json::Str("perf_gate".to_string())),
        (
            "config",
            Json::obj(vec![
                ("threads", Json::Uint(args.threads as u64)),
                ("seeds", Json::Uint(args.seeds)),
                ("quick", Json::Bool(args.quick)),
                ("reps", Json::Uint(gate.reps as u64)),
            ]),
        ),
        ("tolerance_frac", Json::Float(TOLERANCE_FRAC)),
        ("ops_per_sec", Json::Float(ops_per_sec)),
        ("history", Json::Arr(history)),
    ]);
    if let Some(dir) = gate.baseline.parent() {
        std::fs::create_dir_all(dir).expect("creating baseline directory");
    }
    std::fs::write(&gate.baseline, doc.render()).expect("writing baseline");
    println!("blessed baseline {} at {ops_per_sec:.0} ops/sec", gate.baseline.display());
}

/// Compare against the tracked baseline; exit 1 on a >25% drop.
fn compare(gate: &GateArgs, ops_per_sec: f64) {
    let text = match std::fs::read_to_string(&gate.baseline) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "error: no baseline at {} ({e}); run with --bless to create one",
                gate.baseline.display()
            );
            std::process::exit(1);
        }
    };
    let doc = parse(&text).unwrap_or_else(|e| {
        eprintln!("error: baseline {} is not valid JSON: {e}", gate.baseline.display());
        std::process::exit(1);
    });
    let blessed = doc
        .get("ops_per_sec")
        .and_then(|v| match v {
            Json::Float(x) => Some(*x),
            Json::Uint(x) => Some(*x as f64),
            _ => None,
        })
        .unwrap_or_else(|| {
            eprintln!("error: baseline lacks an ops_per_sec figure");
            std::process::exit(1);
        });
    let ratio = ops_per_sec / blessed.max(f64::MIN_POSITIVE);
    println!("baseline: {blessed:.0} ops/sec -> ratio {ratio:.2}x (gate at {TOLERANCE_FRAC}x)");
    if ratio < TOLERANCE_FRAC {
        eprintln!(
            "PERF GATE FAILED: {ops_per_sec:.0} ops/sec is below {TOLERANCE_FRAC}x the \
             blessed {blessed:.0}; investigate, or --bless a new baseline if intentional"
        );
        std::process::exit(1);
    }
    println!("perf gate passed");
}
