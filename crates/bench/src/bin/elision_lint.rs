//! Static elision advisor sweep: run the layout-aware lint passes over
//! the structure × placement-policy × scheme matrix, assert the seeded
//! findings, and cross-validate the static predictions against dynamic
//! abort telemetry.
//!
//! Three cell families:
//!
//! - **matrix** cells run [`elision_analysis::advisor::advise`] alone.
//!   Seeded-bad layouts (packed records, lock words co-resident with
//!   data, lazily-subscribed schemes over data-dependent writes) MUST be
//!   flagged with the expected lints; padded layouts under eager schemes
//!   MUST report zero findings.
//! - **capacity** cells lint the sorted list against a deliberately tiny
//!   HTM line budget (flagged) and the default budget (clean), each
//!   cross-checked against a dynamic run's capacity-abort count.
//! - **xval** cells rebuild the advisor's exact layout, run a real
//!   multi-threaded workload over it with per-strand conflict-line
//!   telemetry, and assert that (a) every dynamic conflict abort lands
//!   on an advisor-predicted hot line and (b) the abort-cause mix agrees
//!   with the static verdict: a padded bucket-disjoint hash workload
//!   aborts zero times, the same workload packed aborts on placement
//!   alone, and a packed+lockco queue self-aborts on its lock line.
//!
//! With `--metrics DIR` the report is written as `ELISION_LINT.json`
//! (schema-compatible with `bench_summary`). It contains no job counts
//! or wall-clock data, so it is byte-identical across `--jobs` values;
//! host timing goes to `TIMING_elision_lint.json`, which the determinism
//! gates exclude.

use elision_analysis::advisor::{advise, AdvisorReport, AdvisorSpec};
use elision_analysis::LintId;
use elision_bench::metrics::{Json, SCHEMA_VERSION};
use elision_bench::report::Table;
use elision_bench::sweep::{Cell, Sweep, TimingLog};
use elision_bench::CliArgs;
use elision_core::{make_scheme, SchemeConfig, SchemeKind};
use elision_htm::{harness, MemoryBuilder, PlacementConfig, PlacementPolicy, Placer, Strand};
use elision_sim::{AbortCause, ConflictLineHistogram, DetRng, OpCounters};
use elision_structures::{HashTable, SimQueue, SortedList, StructureKind};
use std::sync::Arc;

/// The four layout lints, i.e. everything a clean layout must not trip.
const ALL_LAYOUT_LINTS: [LintId; 4] = [
    LintId::FalseSharing,
    LintId::CapacityRisk,
    LintId::LockWordCoResidency,
    LintId::LazyDangerousInstruction,
];

/// Operations per simulated thread in a dynamic probe.
const PROBE_ITERS: usize = 240;
/// Seed for probe workload RNGs (the advisor dry-run seed is fixed in
/// [`AdvisorSpec`]).
const PROBE_SEED: u64 = 0xE11D;

/// What a cell's dynamic probe must show to agree with the advisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProbeCheck {
    /// Static-only cell: no dynamic run.
    None,
    /// The layout is clean and the workload conflict-free: zero aborts.
    NoAborts,
    /// Placement-induced conflicts must appear, all on predicted hot
    /// lines.
    ConflictsOnHot,
    /// Lock-word self-aborts must appear, all conflicts on hot lines.
    LockWordOnHot,
    /// Capacity aborts must appear (tight budget cell).
    CapacityYes,
    /// Capacity aborts must be absent (roomy budget cell).
    CapacityNo,
}

struct CellSpec {
    key: String,
    spec: AdvisorSpec,
    /// Lints that MUST be present in the advisor findings.
    expected: Vec<LintId>,
    /// Lints that MUST be absent.
    forbidden: Vec<LintId>,
    /// The findings list must be exactly empty.
    strict_clean: bool,
    probe: ProbeCheck,
}

struct CellOut {
    report: AdvisorReport,
    probe: Option<(OpCounters, ConflictLineHistogram)>,
}

/// Run one strand's measured phase: reset counters, attach the
/// conflict-line recorder, run `iters` operations.
fn measured<F: FnMut(&mut Strand, usize)>(s: &mut Strand, iters: usize, mut op: F) {
    s.counters = OpCounters::new();
    s.enable_conflict_lines();
    for i in 0..iters {
        op(s, i);
    }
}

/// Rebuild the advisor's exact layout (same allocation order and sizing
/// as its dry-run) and run a real multi-threaded workload over it.
fn run_probe(spec: &AdvisorSpec, report: &AdvisorReport) -> (OpCounters, ConflictLineHistogram) {
    let threads = spec.threads;
    let mut p = Placer::new(MemoryBuilder::new(), spec.placement);
    let scheme =
        make_scheme(spec.scheme, spec.lock, SchemeConfig::paper(), p.builder_mut(), threads);
    let cap = spec.arena_capacity();
    let results: Vec<(OpCounters, ConflictLineHistogram)> = match spec.structure {
        StructureKind::HashTable => {
            let table = HashTable::new_placed(&mut p, spec.n_buckets(), cap, threads);
            let (b, layout) = p.finish();
            check_layout(&layout, report);
            let mem = Arc::new(b.freeze(threads));
            table.init(&mem);
            // Bucket-disjoint key sets: thread t only ever touches keys
            // hashing into its own half of the bucket array, so under a
            // padded layout the threads' footprints are fully disjoint
            // and every dynamic conflict is placement-induced.
            let buckets = table.n_buckets();
            let mut keys: Vec<Vec<u64>> = vec![Vec::new(); threads];
            let mut k = 0u64;
            let per = buckets / threads;
            while keys.iter().any(|v| v.len() < 8) {
                let t = (table.bucket_of(k) / per.max(1)).min(threads - 1);
                if keys[t].len() < 8 {
                    keys[t].push(k);
                }
                k += 1;
            }
            let keys = Arc::new(keys);
            let (results, _) = harness::run_arc(threads, 0, spec.htm, PROBE_SEED, mem, move |s| {
                let mine = &keys[s.tid()];
                // Prefill own keys (allocates from this thread's
                // free-list pool, interleaving node indices across
                // threads). Not part of the measured phase.
                for &key in mine {
                    scheme.execute(s, |s| table.put(s, key, 1).map(|_| ()));
                }
                let mut rng = DetRng::new(PROBE_SEED + s.tid() as u64, 0x11);
                measured(s, PROBE_ITERS, |s, i| {
                    let key = mine[rng.below(mine.len() as u64) as usize];
                    if rng.below(2) == 0 {
                        scheme.execute(s, |s| table.put(s, key, i as u64).map(|_| ()));
                    } else {
                        scheme.execute(s, |s| table.get(s, key).map(|_| ()));
                    }
                });
                (s.counters, s.conflict_lines.take().unwrap_or_default())
            });
            results
        }
        StructureKind::Queue => {
            let q = SimQueue::new_placed(&mut p, cap);
            let (b, layout) = p.finish();
            check_layout(&layout, report);
            let mem = Arc::new(b.freeze(threads));
            let (results, _) = harness::run_arc(threads, 0, spec.htm, PROBE_SEED, mem, move |s| {
                measured(s, PROBE_ITERS, |s, i| {
                    if i % 2 == 0 {
                        scheme.execute(s, |s| q.push(s, i as u64).map(|_| ()));
                    } else {
                        scheme.execute(s, |s| q.pop(s).map(|_| ()));
                    }
                });
                (s.counters, s.conflict_lines.take().unwrap_or_default())
            });
            results
        }
        StructureKind::List => {
            let list = SortedList::new_placed(&mut p, cap, threads);
            let (b, layout) = p.finish();
            check_layout(&layout, report);
            let mem = Arc::new(b.freeze(threads));
            list.init(&mem);
            let n = spec.prefill as u64;
            // Quiescent single-thread prefill, as the advisor does.
            harness::run_arc(
                1,
                0,
                elision_htm::HtmConfig::deterministic(),
                PROBE_SEED,
                Arc::clone(&mem),
                {
                    let list = list.clone();
                    move |s| {
                        for i in 0..n {
                            list.insert(s, 2 * i).expect("plain prefill cannot abort");
                        }
                    }
                },
            );
            let (results, _) = harness::run_arc(threads, 0, spec.htm, PROBE_SEED, mem, move |s| {
                let mut rng = DetRng::new(PROBE_SEED + s.tid() as u64, 0x13);
                measured(s, PROBE_ITERS, |s, _| {
                    let key = 2 * rng.below(n);
                    scheme.execute(s, |s| list.contains(s, key).map(|_| ()));
                });
                (s.counters, s.conflict_lines.take().unwrap_or_default())
            });
            results
        }
        StructureKind::RbTree => unimplemented!("no rbtree probe cell in the sweep"),
    };
    let mut counters = OpCounters::new();
    let mut lines = ConflictLineHistogram::new();
    for (c, h) in &results {
        counters.merge(c);
        lines.merge(h);
    }
    (counters, lines)
}

/// The probe's layout must be the advisor's layout, word for word — this
/// catches sizing drift between [`advise`] and [`run_probe`].
fn check_layout(probe: &elision_htm::LayoutMap, report: &AdvisorReport) {
    assert_eq!(probe.words(), report.layout.words(), "probe/advisor layout width drifted");
    assert_eq!(
        probe.lock_lines(),
        report.layout.lock_lines(),
        "probe/advisor lock placement drifted"
    );
    assert_eq!(
        probe.regions().len(),
        report.layout.regions().len(),
        "probe/advisor region count drifted"
    );
}

fn lint_labels(lints: &[LintId]) -> Json {
    Json::Arr(lints.iter().map(|l| Json::Str(l.label().to_string())).collect())
}

fn row_json(cell: &CellSpec, out: &CellOut, lines_in_hot: Option<bool>) -> Json {
    let findings = out
        .report
        .findings
        .iter()
        .map(|f| {
            Json::obj(vec![
                ("lint", Json::Str(f.lint.label().to_string())),
                ("message", Json::Str(f.message.clone())),
                (
                    "sites",
                    Json::Arr(
                        f.sites
                            .iter()
                            .map(|s| {
                                Json::obj(vec![
                                    ("tid", Json::Uint(s.tid as u64)),
                                    ("var", s.var.map_or(Json::Null, |v| Json::Uint(u64::from(v)))),
                                    (
                                        "line",
                                        s.line.map_or(Json::Null, |l| Json::Uint(u64::from(l))),
                                    ),
                                    ("time", Json::Uint(s.time)),
                                    ("seq", Json::Uint(s.seq as u64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let footprints = out
        .report
        .footprints
        .iter()
        .map(|fp| {
            Json::obj(vec![
                ("class", Json::Str(fp.class.clone())),
                ("label", Json::Str(fp.label.clone())),
                ("read_lines", Json::Uint(fp.read_lines(&out.report.layout).len() as u64)),
                ("write_lines", Json::Uint(fp.write_lines(&out.report.layout).len() as u64)),
            ])
        })
        .collect();
    let mut fields = vec![
        ("cell", Json::Str(cell.key.clone())),
        ("structure", Json::Str(cell.spec.structure.label().to_string())),
        ("placement", Json::Str(cell.spec.placement.label())),
        ("scheme", Json::Str(cell.spec.scheme.label().to_string())),
        ("expected", lint_labels(&cell.expected)),
        ("forbidden", lint_labels(&cell.forbidden)),
        ("strict_clean", Json::Bool(cell.strict_clean)),
        ("findings", Json::Arr(findings)),
        ("advice", Json::Arr(out.report.advice.iter().map(|a| Json::Str(a.clone())).collect())),
        (
            "hot_lines",
            Json::Arr(out.report.hot_lines.iter().map(|&l| Json::Uint(u64::from(l))).collect()),
        ),
        ("footprints", Json::Arr(footprints)),
    ];
    if let Some((counters, lines)) = &out.probe {
        fields.push((
            "abort_causes",
            Json::Obj(
                AbortCause::ALL
                    .iter()
                    .map(|c| (c.label().to_string(), Json::Uint(counters.causes.get(*c))))
                    .collect(),
            ),
        ));
        fields.push((
            "probe",
            Json::obj(vec![
                ("completed", Json::Uint(counters.completed())),
                ("aborted", Json::Uint(counters.aborted)),
                (
                    "conflict_lines",
                    Json::Arr(
                        lines
                            .iter()
                            .map(|(l, n)| {
                                Json::obj(vec![
                                    ("line", Json::Uint(u64::from(l))),
                                    ("aborts", Json::Uint(n)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("lines_in_hot", lines_in_hot.map_or(Json::Null, Json::Bool)),
            ]),
        ));
    }
    Json::obj(fields)
}

/// Structures whose packed battery provably exhibits cross-record false
/// sharing (determined by the advisor itself; asserted so the lint
/// cannot silently go vacuous).
fn packed_false_sharing(structure: StructureKind) -> bool {
    // The queue's operations all collide on head/tail, so every packed
    // conflict is inherent — the advisor correctly refuses to call it
    // false sharing.
    !matches!(structure, StructureKind::Queue)
}

fn matrix_cells(full: bool) -> Vec<CellSpec> {
    let placements = [
        PlacementConfig::packed(),
        PlacementConfig::new(PlacementPolicy::Packed),
        PlacementConfig::padded(),
        PlacementConfig::new(PlacementPolicy::IndexAware),
        PlacementConfig::new(PlacementPolicy::Randomized(0x9E37_79B9)),
    ];
    let schemes: &[SchemeKind] = if full {
        &[
            SchemeKind::Standard,
            SchemeKind::Hle,
            SchemeKind::HleRetries,
            SchemeKind::HleScm,
            SchemeKind::OptSlr,
            SchemeKind::SlrScm,
        ]
    } else {
        &[SchemeKind::Hle, SchemeKind::OptSlr]
    };
    let mut cells = Vec::new();
    for structure in StructureKind::ALL {
        for placement in placements {
            for &scheme in schemes {
                let lazy = scheme.is_lazy_subscription();
                let mut expected = Vec::new();
                let mut forbidden = Vec::new();
                let mut strict_clean = false;
                match placement.policy {
                    PlacementPolicy::Packed if placement.lock_coresident => {
                        expected.push(LintId::LockWordCoResidency);
                        forbidden.push(LintId::CapacityRisk);
                    }
                    PlacementPolicy::Packed => {
                        if packed_false_sharing(structure) {
                            expected.push(LintId::FalseSharing);
                        }
                        forbidden.push(LintId::LockWordCoResidency);
                        forbidden.push(LintId::CapacityRisk);
                    }
                    PlacementPolicy::Padded => {
                        forbidden.push(LintId::FalseSharing);
                        forbidden.push(LintId::LockWordCoResidency);
                        forbidden.push(LintId::CapacityRisk);
                        strict_clean = !lazy;
                    }
                    PlacementPolicy::IndexAware | PlacementPolicy::Randomized(_) => {
                        forbidden.push(LintId::LockWordCoResidency);
                        forbidden.push(LintId::CapacityRisk);
                    }
                }
                if lazy {
                    expected.push(LintId::LazyDangerousInstruction);
                } else {
                    forbidden.push(LintId::LazyDangerousInstruction);
                }
                let spec = AdvisorSpec::new(structure, placement, scheme);
                cells.push(CellSpec {
                    key: format!("matrix/{}", spec.label()),
                    spec,
                    expected,
                    forbidden,
                    strict_clean,
                    probe: ProbeCheck::None,
                });
            }
        }
    }
    cells
}

fn probe_cells() -> Vec<CellSpec> {
    let det = elision_htm::HtmConfig::deterministic();
    let mut cells = Vec::new();

    // Capacity pair: the same padded list linted against a tiny budget
    // (flagged, and the dynamic run hits capacity aborts) and the
    // default budget (clean, and the dynamic run hits none).
    let mut tight =
        AdvisorSpec::new(StructureKind::List, PlacementConfig::padded(), SchemeKind::Hle);
    tight.threads = 2;
    tight.htm = det.with_capacity(16, 8);
    cells.push(CellSpec {
        key: "capacity/list/tight".to_string(),
        spec: tight,
        expected: vec![LintId::CapacityRisk],
        forbidden: vec![
            LintId::FalseSharing,
            LintId::LockWordCoResidency,
            LintId::LazyDangerousInstruction,
        ],
        strict_clean: false,
        probe: ProbeCheck::CapacityYes,
    });
    let mut roomy =
        AdvisorSpec::new(StructureKind::List, PlacementConfig::padded(), SchemeKind::Hle);
    roomy.threads = 2;
    roomy.htm = det;
    cells.push(CellSpec {
        key: "capacity/list/roomy".to_string(),
        spec: roomy,
        expected: Vec::new(),
        forbidden: ALL_LAYOUT_LINTS.to_vec(),
        strict_clean: true,
        probe: ProbeCheck::CapacityNo,
    });

    // Cross-validation trio: identical bucket-disjoint hash workload
    // under padded (zero aborts) and packed (placement-induced aborts on
    // predicted hot lines), plus a packed+lockco queue whose head/tail
    // words share the lock line (lock-word self-aborts).
    let mut hp =
        AdvisorSpec::new(StructureKind::HashTable, PlacementConfig::padded(), SchemeKind::Hle);
    hp.threads = 2;
    hp.htm = det;
    cells.push(CellSpec {
        key: "xval/hashtable/padded".to_string(),
        spec: hp,
        expected: Vec::new(),
        forbidden: ALL_LAYOUT_LINTS.to_vec(),
        strict_clean: true,
        probe: ProbeCheck::NoAborts,
    });
    let mut hk = AdvisorSpec::new(
        StructureKind::HashTable,
        PlacementConfig::new(PlacementPolicy::Packed),
        SchemeKind::Hle,
    );
    hk.threads = 2;
    hk.htm = det;
    cells.push(CellSpec {
        key: "xval/hashtable/packed".to_string(),
        spec: hk,
        expected: vec![LintId::FalseSharing],
        forbidden: vec![LintId::LockWordCoResidency, LintId::CapacityRisk],
        strict_clean: false,
        probe: ProbeCheck::ConflictsOnHot,
    });
    let mut ql = AdvisorSpec::new(StructureKind::Queue, PlacementConfig::packed(), SchemeKind::Hle);
    ql.threads = 2;
    ql.htm = det;
    cells.push(CellSpec {
        key: "xval/queue/packed+lockco".to_string(),
        spec: ql,
        expected: vec![LintId::LockWordCoResidency],
        forbidden: vec![LintId::CapacityRisk],
        strict_clean: false,
        probe: ProbeCheck::LockWordOnHot,
    });
    cells
}

fn main() {
    let args = CliArgs::parse();
    println!("== Static elision advisor: structure x placement x scheme ==\n");

    let mut cells = matrix_cells(args.full);
    cells.extend(probe_cells());

    let sweep_cells: Vec<Cell<'_, CellOut>> = cells
        .iter()
        .map(|c| {
            let spec = c.spec.clone();
            let probe = c.probe;
            // Matrix cells only dry-run on one strand; probe cells also
            // spawn `spec.threads` simulated threads.
            let sim = if probe == ProbeCheck::None { 1 } else { spec.threads };
            Cell::new(c.key.clone(), sim, move || {
                let report = advise(&spec);
                let probe = (probe != ProbeCheck::None).then(|| run_probe(&spec, &report));
                CellOut { report, probe }
            })
        })
        .collect();

    let sweep = Sweep::from_args(&args);
    let outcome = sweep.run(sweep_cells);
    let mut timing = TimingLog::new("elision_lint", sweep.jobs());
    timing.absorb(&outcome);

    let mut rows: Vec<Json> = Vec::new();
    let mut table = Table::new(&["cell", "findings", "lints", "probe"]);
    let mut clean = 0usize;
    let mut flagged = 0usize;
    for (cell, out) in cells.iter().zip(&outcome.results) {
        let found: Vec<LintId> = out.report.lints();
        for lint in &cell.expected {
            assert!(
                found.contains(lint),
                "{}: expected lint {} missing; found {:?}\nfindings: {:#?}",
                cell.key,
                lint.label(),
                found.iter().map(|l| l.label()).collect::<Vec<_>>(),
                out.report.findings
            );
        }
        for lint in &cell.forbidden {
            assert!(
                !found.contains(lint),
                "{}: forbidden lint {} present\nfindings: {:#?}",
                cell.key,
                lint.label(),
                out.report.findings
            );
        }
        if cell.strict_clean {
            assert!(
                out.report.findings.is_empty(),
                "{}: clean layout produced findings: {:#?}",
                cell.key,
                out.report.findings
            );
            clean += 1;
        }
        if !cell.expected.is_empty() {
            flagged += 1;
        }

        // Dynamic cross-validation.
        let mut lines_in_hot = None;
        let mut probe_desc = "-".to_string();
        if let Some((counters, lines)) = &out.probe {
            let hot = &out.report.hot_lines;
            let stray: Vec<u32> =
                lines.iter().map(|(l, _)| l).filter(|l| !hot.contains(l)).collect();
            assert!(
                stray.is_empty(),
                "{}: dynamic conflict aborts on lines {stray:?} outside the advisor's \
                 predicted hot set {hot:?}",
                cell.key
            );
            lines_in_hot = Some(true);
            let conflicts = counters.causes.get(AbortCause::DataConflict)
                + counters.causes.get(AbortCause::LockWordConflict);
            match cell.probe {
                ProbeCheck::None => unreachable!("probe result without a probe check"),
                ProbeCheck::NoAborts => assert_eq!(
                    (counters.aborted, lines.total()),
                    (0, 0),
                    "{}: advisor-clean cell aborted {} times dynamically",
                    cell.key,
                    counters.aborted
                ),
                ProbeCheck::ConflictsOnHot => assert!(
                    conflicts > 0,
                    "{}: advisor flagged false sharing but the dynamic run had no conflicts",
                    cell.key
                ),
                ProbeCheck::LockWordOnHot => assert!(
                    counters.causes.get(AbortCause::LockWordConflict) > 0,
                    "{}: advisor flagged lock co-residency but the dynamic run had no \
                     lock-word aborts",
                    cell.key
                ),
                ProbeCheck::CapacityYes => assert!(
                    counters.causes.get(AbortCause::Capacity) > 0,
                    "{}: advisor flagged capacity risk but the dynamic run had no \
                     capacity aborts",
                    cell.key
                ),
                ProbeCheck::CapacityNo => assert_eq!(
                    counters.causes.get(AbortCause::Capacity),
                    0,
                    "{}: advisor saw no capacity risk but the dynamic run hit capacity",
                    cell.key
                ),
            }
            probe_desc = format!(
                "{} ops, {} aborts ({} conflict lines)",
                counters.completed(),
                counters.aborted,
                lines.lines().len()
            );
        }

        table.row(vec![
            cell.key.clone(),
            out.report.findings.len().to_string(),
            if found.is_empty() {
                "-".to_string()
            } else {
                found.iter().map(|l| l.label()).collect::<Vec<_>>().join(",")
            },
            probe_desc,
        ]);
        rows.push(row_json(cell, out, lines_in_hot));
    }

    table.print();
    println!(
        "\n{} cells: {flagged} seeded-bad layouts flagged, {clean} clean layouts verified",
        cells.len()
    );

    if let Some(dir) = &args.metrics {
        let doc = Json::obj(vec![
            ("schema_version", Json::Uint(SCHEMA_VERSION)),
            ("binary", Json::Str("elision_lint".to_string())),
            (
                "config",
                Json::obj(vec![
                    ("quick", Json::Bool(args.quick)),
                    ("full", Json::Bool(args.full)),
                    ("probe_iters", Json::Uint(PROBE_ITERS as u64)),
                    ("probe_seed", Json::Uint(PROBE_SEED)),
                ]),
            ),
            ("rows", Json::Arr(rows)),
        ]);
        std::fs::create_dir_all(dir).expect("creating metrics directory");
        let path = dir.join("ELISION_LINT.json");
        std::fs::write(&path, doc.render()).expect("writing ELISION_LINT.json");
        eprintln!("wrote {}", path.display());
        timing.write(dir);
    }
    println!("\nall elision-lint assertions passed");
}
