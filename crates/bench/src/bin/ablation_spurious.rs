//! Ablation — spurious aborts trigger the fair-lock lemming effect
//! (paper §3.1 / §7.1: "even in a read-only workload, the MCS lock
//! experiences a severe lemming effect due to spurious aborts").
//!
//! Sweeps the injected spurious-abort rate on a lookups-only workload and
//! reports the fraction of non-speculative completions for HLE and
//! HLE-SCM over the MCS lock. With zero spurious aborts a read-only
//! workload never aborts; even a tiny rate collapses plain HLE-MCS.

use elision_bench::metrics::{Json, MetricsReport};
use elision_bench::report::{f2, f3, ratio, Table};
use elision_bench::sweep::{Cell, Sweep, TimingLog};
use elision_bench::{CliArgs, TreeBenchSpec};
use elision_core::{LockKind, SchemeKind};
use elision_htm::HtmConfig;
use elision_structures::OpMix;

fn main() {
    let args = CliArgs::parse();
    let ops = if args.quick { 300 } else { 1000 };
    let rates = [0.0, 0.0005, 0.002, 0.01, 0.05];
    let schemes = [SchemeKind::Hle, SchemeKind::HleScm, SchemeKind::Standard];

    println!("== Ablation: spurious-abort rate vs the MCS lemming effect ==");
    println!("{} threads, 512-node tree, lookups only\n", args.threads);

    let mut cells = Vec::new();
    for &rate in &rates {
        for scheme in schemes {
            let args = &args;
            cells.push(Cell::new(format!("{rate}/{}", scheme.label()), args.threads, move || {
                let mut spec = TreeBenchSpec::new(
                    scheme,
                    LockKind::Mcs,
                    args.threads,
                    512,
                    OpMix::LOOKUP_ONLY,
                );
                spec.ops_per_thread = ops;
                spec.window = args.window;
                spec.htm = HtmConfig::haswell().with_spurious(rate, 0.0);
                elision_bench::run_tree_bench_avg(&spec, args.seeds)
            }));
        }
    }
    let sweep = Sweep::from_args(&args);
    let outcome = sweep.run(cells);
    let mut timing = TimingLog::new("ablation_spurious", sweep.jobs());
    timing.absorb(&outcome);

    let mut table = Table::new(&[
        "spurious/txn",
        "HLE frac-nonspec",
        "HLE-SCM frac-nonspec",
        "HLE speedup-vs-std",
        "HLE-SCM speedup-vs-std",
    ]);
    let mut report = MetricsReport::new("ablation_spurious", &args);
    let mut chunks = outcome.results.chunks_exact(schemes.len());
    for &rate in &rates {
        let chunk = chunks.next().expect("one chunk per rate");
        let (hle, scm, std) = (&chunk[0], &chunk[1], &chunk[2]);
        table.row(vec![
            format!("{rate}"),
            f3(hle.counters.frac_nonspeculative()),
            f3(scm.counters.frac_nonspeculative()),
            f2(ratio(hle.throughput, std.throughput)),
            f2(ratio(scm.throughput, std.throughput)),
        ]);
        for (scheme, r) in [("HLE", hle), ("HLE-SCM", scm)] {
            report.push_result(
                vec![
                    ("spurious_rate", Json::Float(rate)),
                    ("scheme", Json::Str(scheme.to_string())),
                    ("speedup_vs_std", Json::Float(ratio(r.throughput, std.throughput))),
                ],
                r,
            );
        }
    }
    table.print();
    if let Some(dir) = &args.csv {
        table.write_csv(dir, "ablation_spurious");
    }
    if let Some(dir) = &args.metrics {
        report.write(dir);
        timing.write(dir);
    }
    println!(
        "\nShape check: HLE-MCS frac-nonspec jumps toward 1 as soon as the rate is \
         nonzero; HLE-SCM stays near 0 and keeps its speedup."
    );
}
