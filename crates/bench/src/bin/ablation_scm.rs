//! Ablation — SCM design choices.
//!
//! Two knobs the paper discusses:
//!
//! * **Auxiliary-lock fairness** (§6 "Preventing starvation"): the scheme
//!   inherits the aux lock's fairness; a TTAS aux lock can starve
//!   conflicting threads, a fair MCS aux lock cannot. We compare
//!   throughput and the spread of per-thread completion times.
//! * **Eager vs lazy subscription and true HLE-in-RTM nesting** (§6
//!   "Implementation and HLE compatibility"): Haswell could not nest HLE
//!   inside RTM, forcing the read-and-check workaround. The simulator can
//!   do both, quantifying what the workaround costs.

use elision_bench::metrics::{Json, MetricsReport};
use elision_bench::report::{f2, Table};
use elision_bench::sweep::{Cell, Sweep, TimingLog};
use elision_bench::CliArgs;
use elision_core::{make_scheme_with_aux, LockKind, Scheme, SchemeConfig, SchemeKind};
use elision_htm::{harness, HtmConfig, MemoryBuilder};
use elision_structures::{key_domain, OpMix, RbTree, TreeOp};
use std::sync::Arc;

/// Run a moderate-contention tree workload under an explicitly built
/// scheme; returns (throughput, per-thread end-time spread ratio).
fn run_custom(
    args: &CliArgs,
    build: impl Fn(&mut MemoryBuilder, usize) -> Arc<Scheme>,
    ops: u64,
) -> (f64, f64) {
    let size = 128;
    let domain = key_domain(size);
    let threads = args.threads;
    let mut b = MemoryBuilder::new();
    let tree = RbTree::new(&mut b, domain as usize + threads * 4 + 16, threads);
    let scheme = build(&mut b, threads);
    let mem = Arc::new(b.freeze(threads));
    tree.init(&mem);
    {
        let tree = tree.clone();
        harness::run_arc(1, 0, HtmConfig::deterministic(), 0xF111, Arc::clone(&mem), move |s| {
            let mut filled = 0;
            while filled < size {
                let key = s.rng.below(domain);
                if tree.insert(s, key).expect("fill") {
                    filled += 1;
                }
            }
        });
    }
    tree.rebalance_freelists(&mem);
    let tree2 = tree.clone();
    let (ends, makespan) = harness::run_arc(
        threads,
        args.window,
        HtmConfig::haswell(),
        42,
        Arc::clone(&mem),
        move |s| {
            for _ in 0..ops {
                let op = OpMix::MODERATE.draw(&mut s.rng);
                let key = s.rng.below(domain);
                scheme.execute(s, |s| match op {
                    TreeOp::Insert => tree2.insert(s, key).map(|_| ()),
                    TreeOp::Delete => tree2.remove(s, key).map(|_| ()),
                    TreeOp::Lookup => tree2.contains(s, key).map(|_| ()),
                });
            }
            s.now()
        },
    );
    let throughput = ops as f64 * threads as f64 * 1000.0 / makespan.max(1) as f64;
    let min = *ends.iter().min().expect("nonempty") as f64;
    let max = *ends.iter().max().expect("nonempty") as f64;
    (throughput, max / min.max(1.0))
}

fn main() {
    let args = CliArgs::parse();
    let ops = if args.quick { 300 } else { 1000 };

    println!("== Ablation: SCM design choices (128-node tree, moderate contention) ==\n");

    const AUX_LOCKS: [LockKind; 4] =
        [LockKind::Mcs, LockKind::Ticket, LockKind::Clh, LockKind::Ttas];
    const VARIANTS: [(&str, SchemeKind, bool); 3] = [
        ("eager check (paper's Haswell workaround)", SchemeKind::HleScm, false),
        ("true HLE-in-RTM nesting (paper's intended design)", SchemeKind::HleScm, true),
        ("lazy commit-time check (SLR-SCM)", SchemeKind::SlrScm, false),
    ];
    let mut cells = Vec::new();
    for aux in AUX_LOCKS {
        let args = &args;
        cells.push(Cell::new(format!("aux/{}", aux.label()), args.threads, move || {
            run_custom(
                args,
                |b, t| {
                    make_scheme_with_aux(
                        SchemeKind::HleScm,
                        LockKind::Mcs,
                        aux,
                        SchemeConfig::paper(),
                        b,
                        t,
                    )
                },
                ops,
            )
        }));
    }
    for (label, kind, nesting) in VARIANTS {
        let args = &args;
        cells.push(Cell::new(format!("subscription/{label}"), args.threads, move || {
            run_custom(
                args,
                |b, t| {
                    let cfg = SchemeConfig { scm_true_nesting: nesting, ..SchemeConfig::paper() };
                    make_scheme_with_aux(kind, LockKind::Mcs, LockKind::Mcs, cfg, b, t)
                },
                ops,
            )
        }));
    }
    let sweep = Sweep::from_args(&args);
    let outcome = sweep.run(cells);
    let mut timing = TimingLog::new("ablation_scm", sweep.jobs());
    timing.absorb(&outcome);

    println!("--- auxiliary-lock fairness (HLE-SCM over MCS main lock) ---");
    let mut report = MetricsReport::new("ablation_scm", &args);
    let mut table = Table::new(&["aux lock", "throughput (ops/kcycle)", "finish-time spread"]);
    for (aux, (thr, spread)) in AUX_LOCKS.iter().zip(&outcome.results) {
        let (thr, spread) = (*thr, *spread);
        table.row(vec![aux.label().to_string(), f2(thr), f2(spread)]);
        report.push_row(Json::obj(vec![
            ("section", Json::Str("aux_fairness".to_string())),
            ("aux_lock", Json::Str(aux.label().to_string())),
            ("throughput", Json::Float(thr)),
            ("finish_time_spread", Json::Float(spread)),
        ]));
    }
    table.print();
    if let Some(dir) = &args.csv {
        table.write_csv(dir, "ablation_scm_aux");
    }

    println!("\n--- subscription policy (SCM over MCS main lock) ---");
    let mut table = Table::new(&["variant", "throughput (ops/kcycle)"]);
    for ((label, _, _), (thr, _)) in VARIANTS.iter().zip(&outcome.results[AUX_LOCKS.len()..]) {
        let thr = *thr;
        table.row(vec![label.to_string(), f2(thr)]);
        report.push_row(Json::obj(vec![
            ("section", Json::Str("subscription".to_string())),
            ("variant", Json::Str(label.to_string())),
            ("throughput", Json::Float(thr)),
        ]));
    }
    table.print();
    if let Some(dir) = &args.csv {
        table.write_csv(dir, "ablation_scm_subscription");
    }
    if let Some(dir) = &args.metrics {
        report.write(dir);
        timing.write(dir);
    }
    println!(
        "\nShape check: fair aux locks keep the finish-time spread tight; the \
         workaround and true nesting should perform comparably (the paper argues \
         the workaround only loses the self-illusion of holding the lock)."
    );
}
