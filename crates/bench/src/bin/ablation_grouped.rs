//! Ablation — the grouped-SCM extension (paper §6 remark / §8 future
//! work): partition conflicting threads by the cache line the abort
//! occurred on, one auxiliary lock per group, so threads conflicting on
//! unrelated data do not serialize with each other.
//!
//! The sweep covers multi-hot-spot workloads under one global lock,
//! varying the number of independent hot words, the thread count and the
//! critical-section length. The measured pattern: grouping wins when
//! several well-separated conflict groups are simultaneously active and
//! critical sections are long (the serializing path is the bottleneck),
//! and can *lose* when few groups are active — the global serialization
//! of classic SCM then usefully throttles wasted speculation, which is
//! exactly the trade-off the paper's remark anticipates.

use elision_bench::metrics::{Json, MetricsReport};
use elision_bench::report::{f2, Table};
use elision_bench::sweep::{Cell, Sweep, TimingLog};
use elision_bench::CliArgs;
use elision_core::{make_grouped_scm, make_scheme, LockKind, SchemeConfig, SchemeKind};
use elision_htm::{harness, HtmConfig, MemoryBuilder, VarId};

fn run(grouped: bool, hot_words: usize, threads: usize, work: u64, ops: u64) -> u64 {
    let mut b = MemoryBuilder::new();
    let hot: Vec<VarId> = (0..hot_words).map(|_| b.alloc_isolated(0)).collect();
    let scheme = if grouped {
        make_grouped_scm(LockKind::Ttas, 16, SchemeConfig::paper(), &mut b, threads)
    } else {
        make_scheme(SchemeKind::HleScm, LockKind::Ttas, SchemeConfig::paper(), &mut b, threads)
    };
    let mem = b.freeze(threads);
    let hot2 = hot.clone();
    let (_, mem, makespan) =
        harness::run(threads, 0, HtmConfig::deterministic(), 3, mem, move |s| {
            let target = hot2[s.tid() % hot2.len()];
            for _ in 0..ops {
                scheme.execute(s, |s| {
                    let v = s.load(target)?;
                    s.work(work)?;
                    s.store(target, v + 1)
                });
            }
        });
    let total: u64 = hot.iter().map(|&h| mem.read_direct(h)).sum();
    assert_eq!(total, threads as u64 * ops, "lost updates");
    makespan
}

fn main() {
    let args = CliArgs::parse();
    let ops = if args.quick { 60 } else { 150 };

    println!("== Ablation: grouped SCM (conflict-line-aware auxiliary locks) ==");
    println!("speedup of grouped over single-aux SCM; >1 means grouping wins\n");

    const CONFIGS: [(usize, usize, u64); 7] =
        [(1, 8, 40), (2, 6, 80), (2, 8, 40), (4, 8, 40), (4, 8, 80), (4, 12, 60), (8, 16, 60)];
    let mut cells = Vec::new();
    for (hw, thr, work) in CONFIGS {
        for grouped in [false, true] {
            let kind = if grouped { "grouped" } else { "single" };
            cells.push(Cell::new(format!("{hw}w/{thr}t/{work}c/{kind}"), thr, move || {
                run(grouped, hw, thr, work, ops)
            }));
        }
    }
    let sweep = Sweep::from_args(&args);
    let outcome = sweep.run(cells);
    let mut timing = TimingLog::new("ablation_grouped", sweep.jobs());
    timing.absorb(&outcome);

    let mut table =
        Table::new(&["hot words", "threads", "cs work", "single-aux", "grouped", "speedup"]);
    let mut report = MetricsReport::new("ablation_grouped", &args);
    let mut pairs = outcome.results.chunks_exact(2);
    for (hw, thr, work) in CONFIGS {
        let pair = pairs.next().expect("one single/grouped pair per config");
        let (s, g) = (pair[0], pair[1]);
        table.row(vec![
            hw.to_string(),
            thr.to_string(),
            work.to_string(),
            s.to_string(),
            g.to_string(),
            f2(s as f64 / g as f64),
        ]);
        report.push_row(Json::obj(vec![
            ("hot_words", Json::Uint(hw as u64)),
            ("threads", Json::Uint(thr as u64)),
            ("cs_work", Json::Uint(work)),
            ("single_aux_makespan", Json::Uint(s)),
            ("grouped_makespan", Json::Uint(g)),
            ("speedup", Json::Float(s as f64 / g as f64)),
        ]));
    }
    table.print();
    if let Some(dir) = &args.csv {
        table.write_csv(dir, "ablation_grouped");
    }
    if let Some(dir) = &args.metrics {
        report.write(dir);
        timing.write(dir);
    }
    println!(
        "\nShape check: speedup > 1 with many active groups and long critical \
         sections; <= 1 when conflicts collapse into one or two groups."
    );
}
