//! Diagnostic — abort breakdown by cause for every scheme/lock cell on
//! one tree configuration. Not a paper figure; used when analysing why a
//! scheme serializes (conflict vs capacity vs spurious vs lock-busy).

use elision_bench::report::{f2, f3, Table};
use elision_bench::{run_tree_bench, CliArgs, TreeBenchSpec};
use elision_core::{LockKind, SchemeKind};
use elision_structures::OpMix;

fn main() {
    let args = CliArgs::parse();
    let size = if args.quick { 128 } else { 2048 };
    let ops = if args.quick { 300 } else { 1000 };

    println!("== Diagnostic: abort breakdown ({size}-node tree, moderate contention) ==\n");
    let mut table = Table::new(&[
        "lock",
        "scheme",
        "frac-nonspec",
        "attempts/op",
        "conflict",
        "capacity",
        "explicit",
        "spurious",
        "restore",
    ]);
    for lock in [LockKind::Ttas, LockKind::Mcs] {
        for scheme in SchemeKind::ALL {
            let mut spec = TreeBenchSpec::new(scheme, lock, args.threads, size, OpMix::MODERATE);
            spec.ops_per_thread = ops;
            let r = run_tree_bench(&spec);
            let t = &r.txn_stats;
            table.row(vec![
                lock.label().to_string(),
                scheme.label().to_string(),
                f3(r.counters.frac_nonspeculative()),
                f2(r.counters.attempts_per_op()),
                t.aborts_conflict.to_string(),
                t.aborts_capacity.to_string(),
                t.aborts_explicit.to_string(),
                t.aborts_spurious.to_string(),
                t.aborts_restore.to_string(),
            ]);
        }
    }
    table.print();
    if let Some(dir) = &args.csv {
        table.write_csv(dir, "diag_aborts");
    }
}
