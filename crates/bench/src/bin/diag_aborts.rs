//! Diagnostic — abort breakdown by *classified cause* for every
//! scheme/lock cell on one tree configuration. Not a paper figure; used
//! when analysing why a scheme serializes (data conflict vs lock-word
//! conflict vs capacity vs explicit vs injected).
//!
//! Doubles as an end-to-end cross-check of the abort-cause taxonomy: for
//! every cell the classified cause counts must sum exactly to the number
//! of aborted attempts the scheme counters and the raw HTM statistics
//! both report. The binary panics if the accounting ever disagrees.

use elision_bench::metrics::{Json, MetricsReport};
use elision_bench::report::{f2, f3, Table};
use elision_bench::sweep::{Cell, Sweep, TimingLog};
use elision_bench::{run_tree_bench, CliArgs, TreeBenchSpec};
use elision_core::{LockKind, SchemeKind};
use elision_sim::AbortCause;
use elision_structures::OpMix;

fn main() {
    let args = CliArgs::parse();
    let size = if args.quick { 128 } else { 2048 };
    let ops = if args.quick { 300 } else { 1000 };

    println!(
        "== Diagnostic: abort breakdown by cause ({size}-node tree, moderate contention) ==\n"
    );
    let mut cells = Vec::new();
    for lock in [LockKind::Ttas, LockKind::Mcs] {
        for scheme in SchemeKind::ALL {
            let args = &args;
            cells.push(Cell::new(
                format!("{}/{}", lock.label(), scheme.label()),
                args.threads,
                move || {
                    let mut spec =
                        TreeBenchSpec::new(scheme, lock, args.threads, size, OpMix::MODERATE);
                    spec.ops_per_thread = ops;
                    spec.window = args.window;
                    run_tree_bench(&spec)
                },
            ));
        }
    }
    let sweep = Sweep::from_args(&args);
    let outcome = sweep.run(cells);
    let mut timing = TimingLog::new("diag_aborts", sweep.jobs());
    timing.absorb(&outcome);

    let mut headers = vec!["lock", "scheme", "frac-nonspec", "attempts/op", "aborted"];
    headers.extend(AbortCause::ALL.iter().map(|c| c.label()));
    let mut table = Table::new(&headers);
    let mut report = MetricsReport::new("diag_aborts", &args);
    let mut next = outcome.results.iter();
    for lock in [LockKind::Ttas, LockKind::Mcs] {
        for scheme in SchemeKind::ALL {
            let r = next.next().expect("one result per cell");

            // Taxonomy cross-check: every aborted attempt must carry
            // exactly one classified cause, and the scheme-level abort
            // counter must agree with the raw HTM abort statistics.
            let causes = r.counters.causes;
            assert_eq!(
                causes.total(),
                r.counters.aborted,
                "{lock}/{scheme}: cause counts must sum to aborted attempts"
            );
            assert_eq!(
                r.counters.aborted,
                r.txn_stats.aborts(),
                "{lock}/{scheme}: scheme abort count must match HTM abort count"
            );

            let mut row = vec![
                lock.label().to_string(),
                scheme.label().to_string(),
                f3(r.counters.frac_nonspeculative()),
                f2(r.counters.attempts_per_op()),
                r.counters.aborted.to_string(),
            ];
            row.extend(AbortCause::ALL.iter().map(|&c| causes.get(c).to_string()));
            table.row(row);
            report.push_result(
                vec![
                    ("lock", Json::Str(lock.label().to_string())),
                    ("scheme", Json::Str(scheme.label().to_string())),
                ],
                r,
            );
        }
    }
    table.print();
    println!("\ncause accounting verified: per-cell cause counts sum to aborted attempts");
    if let Some(dir) = &args.csv {
        table.write_csv(dir, "diag_aborts");
    }
    if let Some(dir) = &args.metrics {
        report.write(dir);
        timing.write(dir);
    }
}
