//! Figure 11 — STAMP applications under every scheme (lower is better).
//!
//! For each of the nine STAMP workloads (bayes excluded, as in the
//! paper), runs the six schemes at 8 threads over the TTAS and MCS locks
//! and reports simulated runtime normalized to the standard
//! (non-speculative) version of the same lock.
//!
//! Paper expectation: plain HLE gains nothing on MCS but up to ~2x on
//! TTAS (intruder); HLE-SCM rescues MCS (up to ~2.5x); opt SLR is the
//! overall best on most tests (up to ~4x over standard); HLE-retries
//! tracks SLR on TTAS but collapses to ~standard on MCS for genome, yada
//! and vacation; SLR-SCM only helps vacation-low (~15%).

use elision_bench::metrics::{Json, MetricsReport};
use elision_bench::report::{f3, ratio, Table};
use elision_bench::sweep::{Cell, Sweep, TimingLog};
use elision_bench::CliArgs;
use elision_core::{LockKind, SchemeKind};
use elision_htm::HtmConfig;
use elision_stamp::{run_kernel, KernelKind, StampParams};

fn main() {
    let args = CliArgs::parse();
    let params = if args.quick { StampParams::quick() } else { StampParams::full() };

    println!("== Figure 11: STAMP normalized runtime (lower is better) ==");
    println!("{} threads; y=1 is the standard version of the same lock\n", args.threads);

    // One cell per (lock, kernel, scheme); the cell averages the kernel's
    // makespan over the seeds and the post-pass normalizes each chunk to
    // its Standard column.
    let mut cells = Vec::new();
    for lock in [LockKind::Ttas, LockKind::Mcs] {
        for kernel in KernelKind::ALL {
            for scheme in SchemeKind::ALL {
                let args = &args;
                let params = &params;
                cells.push(Cell::new(
                    format!("{}/{}/{}", lock.label(), kernel.label(), scheme.label()),
                    args.threads,
                    move || {
                        let mut total = 0u64;
                        for k in 0..args.seeds {
                            let mut p = *params;
                            p.seed = params.seed.wrapping_add(k * 7919);
                            let run = run_kernel(
                                kernel,
                                scheme,
                                lock,
                                args.threads,
                                &p,
                                args.window,
                                HtmConfig::haswell(),
                            );
                            total += run.makespan;
                        }
                        total as f64 / args.seeds as f64
                    },
                ));
            }
        }
    }
    let sweep = Sweep::from_args(&args);
    let outcome = sweep.run(cells);
    let mut timing = TimingLog::new("fig11_stamp", sweep.jobs());
    timing.absorb(&outcome);

    let mut report = MetricsReport::new("fig11_stamp", &args);
    let mut chunks = outcome.results.chunks_exact(SchemeKind::ALL.len());
    for lock in [LockKind::Ttas, LockKind::Mcs] {
        println!("--- {} lock ---", lock.label());
        let mut headers = vec!["test".to_string()];
        headers.extend(SchemeKind::ALL.iter().map(|s| s.label().to_string()));
        let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut table = Table::new(&header_refs);
        for kernel in KernelKind::ALL {
            let times = chunks.next().expect("one chunk per kernel");
            let baseline = SchemeKind::ALL
                .iter()
                .zip(times)
                .find(|(s, _)| **s == SchemeKind::Standard)
                .map(|(_, t)| *t)
                .expect("Standard scheme in every chunk");
            let mut cells = vec![kernel.label().to_string()];
            for (scheme, t) in SchemeKind::ALL.iter().zip(times) {
                cells.push(f3(ratio(*t, baseline)));
                report.push_row(Json::obj(vec![
                    ("lock", Json::Str(lock.label().to_string())),
                    ("test", Json::Str(kernel.label().to_string())),
                    ("scheme", Json::Str(scheme.label().to_string())),
                    ("mean_makespan_cycles", Json::Float(*t)),
                    ("norm_runtime", Json::Float(ratio(*t, baseline))),
                ]));
            }
            table.row(cells);
        }
        table.print();
        if let Some(dir) = &args.csv {
            table.write_csv(dir, &format!("fig11_stamp_{}", lock.label().to_lowercase()));
        }
        println!();
    }
    if let Some(dir) = &args.metrics {
        report.write(dir);
        timing.write(dir);
    }
    println!(
        "Paper shape check: HLE column ~1 for MCS but <1 for TTAS on several tests; \
         HLE-SCM well below 1 on MCS; opt SLR lowest on most rows for both locks."
    );
}
