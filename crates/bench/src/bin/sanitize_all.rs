//! Run the opacity/race sanitizer and lock-discipline lints over the
//! whole scheme × lock matrix, under the default configuration and
//! under injected chaos, then verify the sanitizer still *catches*
//! violations by replaying the seeded known-bad schedules.
//!
//! Exits nonzero (via assertion) if any clean cell produces a finding,
//! any cell's counters fail to add up, or a seeded violation goes
//! undetected. Findings are printed with full access provenance and
//! serialized into the metrics JSON (`--metrics <dir>`).

use elision_analysis::driver::{sanitize_run, SanReport, SanitizeSpec};
use elision_analysis::testkit::{broken_slr_schedule, double_release_schedule};
use elision_analysis::{Finding, LintId};
use elision_bench::metrics::{Json, MetricsReport};
use elision_bench::report::Table;
use elision_bench::sweep::{Cell, Sweep, TimingLog};
use elision_bench::{ChaosProfile, CliArgs};
use elision_core::{LockKind, SchemeKind};
use elision_htm::HtmConfig;

fn finding_json(f: &Finding) -> Json {
    Json::obj(vec![
        ("lint", Json::Str(f.lint.label().to_string())),
        ("message", Json::Str(f.message.clone())),
        (
            "sites",
            Json::Arr(
                f.sites
                    .iter()
                    .map(|s| {
                        Json::obj(vec![
                            ("tid", Json::Uint(s.tid as u64)),
                            ("var", s.var.map_or(Json::Null, |v| Json::Uint(u64::from(v)))),
                            ("line", s.line.map_or(Json::Null, |l| Json::Uint(u64::from(l)))),
                            ("time", Json::Uint(s.time)),
                            ("seq", Json::Uint(s.seq as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn cell_row(scheme: SchemeKind, lock: LockKind, profile: &str, level: u32, r: &SanReport) -> Json {
    Json::obj(vec![
        ("scheme", Json::Str(scheme.label().to_string())),
        ("lock", Json::Str(lock.label().to_string())),
        ("profile", Json::Str(profile.to_string())),
        ("level", Json::Uint(u64::from(level))),
        ("san_events", Json::Uint(r.san_events as u64)),
        ("trace_events", Json::Uint(r.trace_events as u64)),
        ("makespan", Json::Uint(r.makespan)),
        ("hot_total", Json::Uint(r.hot_total)),
        ("expected_total", Json::Uint(r.expected_total)),
        ("findings", Json::Arr(r.findings.iter().map(finding_json).collect())),
    ])
}

/// Post-pass over one sanitized cell: print, tabulate, assert clean.
fn check_cell(r: &SanReport, what: &str, table: &mut Table) {
    table.row(vec![
        what.to_string(),
        r.san_events.to_string(),
        r.trace_events.to_string(),
        r.findings.len().to_string(),
        if r.counters_ok() { "ok".to_string() } else { "MISMATCH".to_string() },
    ]);
    for f in &r.findings {
        println!("  FINDING {what}: {f}");
    }
    assert!(
        r.counters_ok(),
        "{what}: counters corrupted (hot {} / targets {} / expected {})",
        r.hot_total,
        r.target_sum,
        r.expected_total
    );
    assert!(r.findings.is_empty(), "{what}: sanitizer reported {} finding(s)", r.findings.len());
}

/// A seeded schedule must trip every expected lint, with provenance.
fn check_seeded(name: &str, findings: &[Finding], expected: &[LintId], report: &mut MetricsReport) {
    for lint in expected {
        let hit = findings.iter().find(|f| f.lint == *lint);
        let hit = hit.unwrap_or_else(|| {
            panic!("seeded schedule {name}: expected {lint} was not detected: {findings:#?}")
        });
        assert!(
            !hit.sites.is_empty(),
            "seeded schedule {name}: {lint} finding carries no access provenance"
        );
        println!("  seeded {name}: caught {hit}");
    }
    report.push_row(Json::obj(vec![
        ("seeded", Json::Str(name.to_string())),
        ("expected", Json::Arr(expected.iter().map(|l| Json::Str(l.to_string())).collect())),
        ("findings", Json::Arr(findings.iter().map(finding_json).collect())),
    ]));
}

fn main() {
    let args = CliArgs::parse();
    let threads = args.threads.clamp(2, 4);
    let ops = if args.quick { 16 } else { 32 };

    let schemes = SchemeKind::ALL;
    let locks: &[LockKind] = if args.quick {
        &[LockKind::Ttas, LockKind::Mcs]
    } else {
        &[LockKind::Ttas, LockKind::Mcs, LockKind::Ticket, LockKind::Clh]
    };
    let chaos: Vec<(ChaosProfile, u32)> = if args.quick {
        vec![(ChaosProfile::Storm, 1), (ChaosProfile::Preempt, 1), (ChaosProfile::Full, 1)]
    } else {
        ChaosProfile::ALL
            .iter()
            .copied()
            .filter(|p| *p != ChaosProfile::None)
            .map(|p| (p, 2))
            .collect()
    };

    println!("== Sanitizer sweep: every scheme x lock, default + chaos, window=0 ==");
    println!("{threads} threads, {ops} ops/thread\n");

    // Build the full default + chaos grid as sweep cells; sanitize_run is
    // pure per cell, so the matrix parallelizes like any figure sweep.
    // Keys double as the post-pass labels so ordering stays canonical.
    let mut keys: Vec<(SchemeKind, LockKind, String, u32, String)> = Vec::new();
    let mut sweep_cells = Vec::new();
    for &scheme in &schemes {
        for &lock in locks {
            let what = format!("{}/{}", scheme.label(), lock.label());
            keys.push((scheme, lock, "none".to_string(), 0, what.clone()));
            sweep_cells.push(Cell::new(what, threads, move || {
                let mut spec = SanitizeSpec::new(scheme, lock);
                spec.threads = threads;
                spec.ops_per_thread = ops;
                sanitize_run(&spec)
            }));
        }
    }
    for &(profile, level) in &chaos {
        let (plan, htm_faults) = profile.at_intensity(level, 0x5A17_AB1E);
        for &scheme in &schemes {
            for &lock in locks {
                let what = format!("{}/{} {profile}@{level}", scheme.label(), lock.label());
                keys.push((scheme, lock, profile.label().to_string(), level, what.clone()));
                sweep_cells.push(Cell::new(what, threads, move || {
                    let mut spec = SanitizeSpec::new(scheme, lock);
                    spec.threads = threads;
                    spec.ops_per_thread = ops;
                    spec.htm = HtmConfig::deterministic().with_faults(htm_faults);
                    spec.faults = plan;
                    sanitize_run(&spec)
                }));
            }
        }
    }
    let sweep = Sweep::from_args(&args);
    let outcome = sweep.run(sweep_cells);
    let mut timing = TimingLog::new("sanitize_all", sweep.jobs());
    timing.absorb(&outcome);

    let mut report = MetricsReport::new("sanitize_all", &args);
    let mut table = Table::new(&["cell", "san-events", "trace-events", "findings", "counters"]);
    for ((scheme, lock, profile, level, what), r) in keys.iter().zip(&outcome.results) {
        check_cell(r, what, &mut table);
        report.push_row(cell_row(*scheme, *lock, profile, *level, r));
    }

    table.print();
    println!("\n{} cells clean under the sanitizer", keys.len());

    println!("\n-- seeded negative schedules --");
    check_seeded(
        "broken-slr",
        &broken_slr_schedule(),
        &[LintId::DataRace, LintId::CommitWhileLockHeld, LintId::SlrUnsubscribedCommit],
        &mut report,
    );
    check_seeded(
        "double-release",
        &double_release_schedule(),
        &[LintId::ReleaseWithoutAcquire],
        &mut report,
    );

    if let Some(dir) = &args.metrics {
        report.write(dir);
        timing.write(dir);
    }
    println!("\nall sanitizer assertions passed");
}
