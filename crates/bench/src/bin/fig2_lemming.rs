//! Figure 2 — the lemming effect under plain HLE.
//!
//! For each tree size (8 threads, 10/10/80 insert/delete/lookup) and for
//! the TTAS and MCS locks, reports:
//!
//! * speedup over the standard version of the same lock (top panel),
//! * average execution attempts per critical section, `(A+N+S)/(N+S)`
//!   (middle panel, "Total Work"),
//! * fraction of operations completing non-speculatively, `N/(N+S)`, and
//!   the fraction of TTAS arrivals that found the lock held (bottom
//!   panel).
//!
//! Paper expectation: MCS executes virtually everything non-speculatively
//! (fraction ~1, no speedup); TTAS recovers, needing 2-3.5 attempts per
//! operation on small trees with 30-70% completing speculatively, and
//! nearly all speculative on large trees.

use elision_bench::metrics::{Json, MetricsReport};
use elision_bench::report::{f2, f3, Table};
use elision_bench::sweep::{Cell, Sweep, TimingLog};
use elision_bench::{run_tree_bench_avg, size_sweep, CliArgs, TreeBenchSpec};
use elision_core::{LockKind, SchemeKind};
use elision_structures::OpMix;

fn main() {
    let args = CliArgs::parse();
    let sizes = size_sweep(args.quick, args.full);
    let ops = if args.quick { 300 } else { 1000 };
    // --chaos runs the whole figure under the named fault profile at a
    // moderate intensity (level 2 of 3).
    let (fault_plan, htm_faults) = args.chaos.at_intensity(2, 0xC4A0);

    println!("== Figure 2: impact of aborts under plain HLE ==");
    println!("{} threads, 10% insert / 10% delete / 80% lookup", args.threads);
    println!("chaos profile: {}\n", args.chaos);

    let mut cells = Vec::new();
    for &size in &sizes {
        for lock in [LockKind::Ttas, LockKind::Mcs] {
            let args = &args;
            cells.push(Cell::new(format!("{size}/{}", lock.label()), args.threads, move || {
                let mut spec =
                    TreeBenchSpec::new(SchemeKind::Hle, lock, args.threads, size, OpMix::MODERATE);
                spec.ops_per_thread = ops;
                spec.window = args.window;
                spec.faults = fault_plan;
                spec.htm = spec.htm.with_faults(htm_faults);
                let hle = run_tree_bench_avg(&spec, args.seeds);
                let mut std_spec = spec;
                std_spec.scheme = SchemeKind::Standard;
                let std = run_tree_bench_avg(&std_spec, args.seeds);
                (size, lock, hle, std)
            }));
        }
    }
    let sweep = Sweep::from_args(&args);
    let outcome = sweep.run(cells);
    let mut timing = TimingLog::new("fig2_lemming", sweep.jobs());
    timing.absorb(&outcome);

    let mut table = Table::new(&[
        "size",
        "lock",
        "speedup-vs-std",
        "attempts/op",
        "frac-nonspec",
        "frac-arrive-held",
    ]);
    let mut report = MetricsReport::new("fig2_lemming", &args);
    for (size, lock, hle, std) in &outcome.results {
        table.row(vec![
            size.to_string(),
            lock.label().to_string(),
            f2(hle.throughput / std.throughput),
            f2(hle.counters.attempts_per_op()),
            f3(hle.counters.frac_nonspeculative()),
            f3(hle.counters.frac_arrived_lock_held()),
        ]);
        report.push_result(
            vec![
                ("size", Json::Uint(*size as u64)),
                ("lock", Json::Str(lock.label().to_string())),
                ("speedup_vs_std", Json::Float(hle.throughput / std.throughput)),
                ("frac_arrived_lock_held", Json::Float(hle.counters.frac_arrived_lock_held())),
            ],
            hle,
        );
    }
    table.print();
    if let Some(dir) = &args.csv {
        table.write_csv(dir, "fig2_lemming");
    }
    if let Some(dir) = &args.metrics {
        report.write(dir);
        timing.write(dir);
    }

    println!(
        "\nPaper shape check: MCS frac-nonspec ~1 at every size; TTAS needs \
         2-3.5 attempts/op on small trees but keeps 30-70% speculative, \
         approaching 0 nonspec on large trees."
    );
}
