//! Bounded model checking over the scheme × lock matrix: drive every
//! cell through *all* interleavings of a small configuration (DPOR with
//! the explorer's divergence/step bounds), run every execution through
//! the race/opacity/lint passes plus the linearizability oracle, and
//! fail on any finding.
//!
//! Two seeded known-bad workloads (an eager/unsubscribed SLR commit and
//! a double lock release) are swept alongside the correct cells; each
//! MUST produce at least one finding, with a minimized counterexample of
//! at most 12 forced schedule steps, proving the explorer actually
//! catches schedule-dependent violations rather than vacuously passing.
//!
//! Results are rendered as a table and, with `--metrics DIR`, written as
//! `MODELCHECK.json`. The report deliberately contains no job counts,
//! timestamps or wall-clock data, so it is byte-identical across
//! `--jobs` values (host timing goes to `TIMING_model_check.json`,
//! which the determinism gates exclude).

use elision_analysis::explore::{
    explore_and_minimize, explore_cell, Bounds, CellReport, ExploreFinding, ExploreSpec, Mode,
};
use elision_analysis::testkit::{broken_slr_explore, double_release_explore};
use elision_analysis::LintId;
use elision_bench::metrics::{Json, SCHEMA_VERSION};
use elision_bench::report::Table;
use elision_bench::sweep::{Cell, Sweep, TimingLog};
use elision_bench::CliArgs;
use elision_core::{LockKind, SchemeKind};
use elision_structures::history::StructureKind;

/// Acceptance bound on a minimized counterexample: replaying at most
/// this many forced decisions must reproduce a seeded violation.
const MAX_COUNTEREXAMPLE_STEPS: usize = 12;

fn finding_json(f: &ExploreFinding) -> Json {
    Json::obj(vec![
        ("lint", Json::Str(f.finding.lint.label().to_string())),
        ("message", Json::Str(f.finding.message.clone())),
        (
            "forced",
            Json::Arr(
                f.forced
                    .iter()
                    .map(|&(step, thread)| {
                        Json::obj(vec![
                            ("step", Json::Uint(step as u64)),
                            ("thread", Json::Uint(thread as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("diagram", Json::Arr(f.diagram.iter().map(|l| Json::Str(l.clone())).collect())),
        (
            "sites",
            Json::Arr(
                f.finding
                    .sites
                    .iter()
                    .map(|s| {
                        Json::obj(vec![
                            ("tid", Json::Uint(s.tid as u64)),
                            ("var", s.var.map_or(Json::Null, |v| Json::Uint(u64::from(v)))),
                            ("line", s.line.map_or(Json::Null, |l| Json::Uint(u64::from(l)))),
                            ("time", Json::Uint(s.time)),
                            ("seq", Json::Uint(s.seq as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn cell_json(key: &str, seeded: bool, r: &CellReport) -> Json {
    Json::obj(vec![
        ("cell", Json::Str(key.to_string())),
        ("seeded", Json::Bool(seeded)),
        ("executions", Json::Uint(r.executions as u64)),
        ("runs", Json::Uint(r.runs as u64)),
        ("truncated", Json::Bool(r.truncated)),
        ("findings", Json::Arr(r.findings.iter().map(finding_json).collect())),
    ])
}

/// A seeded known-bad workload: its name, its explorer entry point, and
/// the lints at least one of which it must trip (the explorer may
/// legitimately surface several).
type SeededCell = (&'static str, fn(&ExploreSpec) -> CellReport, Vec<LintId>);

fn seeded_cells() -> Vec<SeededCell> {
    // `ExploreSpec` carries only the bounds/mode here; the workload is
    // fixed by the testkit fixture, so scheme/lock/structure are unused.
    fn broken_slr(spec: &ExploreSpec) -> CellReport {
        let (stats, findings) = explore_and_minimize(spec.mode, &spec.bounds, broken_slr_explore);
        CellReport {
            executions: stats.executions,
            runs: stats.runs,
            truncated: stats.truncated,
            findings,
        }
    }
    fn double_release(spec: &ExploreSpec) -> CellReport {
        let (stats, findings) =
            explore_and_minimize(spec.mode, &spec.bounds, double_release_explore);
        CellReport {
            executions: stats.executions,
            runs: stats.runs,
            truncated: stats.truncated,
            findings,
        }
    }
    vec![
        (
            "seeded/broken-slr",
            broken_slr as fn(&ExploreSpec) -> CellReport,
            vec![LintId::CommitWhileLockHeld, LintId::DataRace],
        ),
        ("seeded/double-release", double_release, vec![LintId::ReleaseWithoutAcquire]),
    ]
}

fn main() {
    let args = CliArgs::parse();
    let schemes = SchemeKind::ALL;
    let locks = [LockKind::Ttas, LockKind::Mcs, LockKind::Ticket, LockKind::Clh];
    let structures = StructureKind::ALL;

    println!("== Model check: every scheme x lock, DPOR at 2 threads x 3 sections ==\n");

    // Every scheme × lock pair is always covered (that is the CI
    // contract); `--full` additionally crosses in every structure,
    // while the default/quick grid rotates structures round-robin so
    // all four kinds still appear.
    let mut keys: Vec<(String, bool, Vec<LintId>)> = Vec::new();
    let mut cells: Vec<Cell<'_, CellReport>> = Vec::new();
    for (i, &scheme) in schemes.iter().enumerate() {
        for (j, &lock) in locks.iter().enumerate() {
            let kinds: Vec<StructureKind> = if args.full {
                structures.to_vec()
            } else {
                vec![structures[(i * locks.len() + j) % structures.len()]]
            };
            for kind in kinds {
                let spec = ExploreSpec::quick(scheme, lock, kind);
                let key = format!("{}/{}/{}", scheme.label(), lock.label(), kind.label());
                keys.push((key.clone(), false, Vec::new()));
                cells.push(Cell::new(key, spec.threads, move || explore_cell(&spec)));
            }
        }
    }
    for (name, run, expected) in seeded_cells() {
        // The seeded fixtures are 2-thread workloads; bounds match the
        // grid cells so their counterexamples honor the same budget.
        let spec = ExploreSpec {
            mode: Mode::Dpor,
            bounds: Bounds::quick(),
            ..ExploreSpec::quick(SchemeKind::OptSlr, LockKind::Ttas, StructureKind::Queue)
        };
        keys.push((name.to_string(), true, expected));
        cells.push(Cell::new(name, 2, move || run(&spec)));
    }

    let sweep = Sweep::from_args(&args);
    let outcome = sweep.run(cells);
    let mut timing = TimingLog::new("model_check", sweep.jobs());
    timing.absorb(&outcome);

    let mut rows: Vec<Json> = Vec::new();
    let mut table = Table::new(&["cell", "executions", "runs", "truncated", "findings"]);
    let mut clean = 0usize;
    for ((key, seeded, expected), r) in keys.iter().zip(&outcome.results) {
        table.row(vec![
            key.clone(),
            r.executions.to_string(),
            r.runs.to_string(),
            if r.truncated { "yes".to_string() } else { "no".to_string() },
            r.findings.len().to_string(),
        ]);
        for f in &r.findings {
            println!("  FINDING {key}: {} ({} forced steps)", f.finding, f.forced.len());
            for line in &f.diagram {
                println!("    {line}");
            }
        }
        rows.push(cell_json(key, *seeded, r));
        if *seeded {
            assert!(
                !r.findings.is_empty(),
                "{key}: seeded known-bad workload produced no finding — \
                 the explorer is vacuous"
            );
            assert!(
                r.findings.iter().any(|f| expected.contains(&f.finding.lint)),
                "{key}: none of the expected lints {expected:?} were caught: {:?}",
                r.findings.iter().map(|f| f.finding.lint).collect::<Vec<_>>()
            );
            for f in &r.findings {
                assert!(
                    f.forced.len() <= MAX_COUNTEREXAMPLE_STEPS,
                    "{key}: counterexample needs {} forced steps (budget {})",
                    f.forced.len(),
                    MAX_COUNTEREXAMPLE_STEPS
                );
                assert!(!f.diagram.is_empty(), "{key}: counterexample has no diagram");
            }
            println!(
                "  seeded {key}: caught {} finding(s), all within {MAX_COUNTEREXAMPLE_STEPS} \
                 forced steps",
                r.findings.len()
            );
        } else {
            assert!(
                r.findings.is_empty(),
                "{key}: model checker reported {} finding(s) on a correct cell",
                r.findings.len()
            );
            clean += 1;
        }
    }

    table.print();
    println!("\n{clean} cells verified clean across every explored interleaving");

    if let Some(dir) = &args.metrics {
        let doc = Json::obj(vec![
            ("schema_version", Json::Uint(SCHEMA_VERSION)),
            ("binary", Json::Str("model_check".to_string())),
            (
                "config",
                Json::obj(vec![
                    ("threads", Json::Uint(2)),
                    ("sections", Json::Uint(3)),
                    ("mode", Json::Str("dpor".to_string())),
                    ("quick", Json::Bool(args.quick)),
                    ("full", Json::Bool(args.full)),
                ]),
            ),
            ("cells", Json::Arr(rows)),
        ]);
        std::fs::create_dir_all(dir).expect("creating metrics directory");
        let path = dir.join("MODELCHECK.json");
        std::fs::write(&path, doc.render()).expect("writing MODELCHECK.json");
        eprintln!("wrote {}", path.display());
        timing.write(dir);
    }
    println!("\nall model-check assertions passed");
}
